// Concurrent union-find over vertex ids (Jayanti–Tarjan style: CAS link at
// roots, path halving/compression on find). Used to maintain the
// dependency-DAG parent pointers of the CPLDS (paper §5.2): each marked
// vertex points (transitively) at its DAG's single root; unions merge DAGs;
// readers traverse parents and may compress paths concurrently with
// updates.
//
// Entries are 64-bit words packing (stamp, parent). The stamp is the batch
// number at the entry's last reset; every CAS compares the full word, so a
// reader delayed across a batch boundary cannot corrupt the next batch's
// DAG with a stale compression (its expected word carries the old stamp and
// the CAS fails). This closes the cross-batch ABA that a bare parent array
// would allow.
//
// Determinism: links always attach the smaller-id root under the larger-id
// root, so the surviving root of a merged set is the maximum id — the
// deterministic "sole root" choice the paper requires. A corollary used by
// readers for termination: every stored parent of v is >= v, so any
// traversal strictly ascends and finishes in < n hops even across stale
// states.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

class ConcurrentUnionFind {
 public:
  using word_t = std::uint64_t;

  explicit ConcurrentUnionFind(vertex_t n) : words_(n) {
    for (vertex_t v = 0; v < n; ++v) {
      words_[v].store(pack(0, v), std::memory_order_relaxed);
    }
  }

  ConcurrentUnionFind(const ConcurrentUnionFind&) = delete;
  ConcurrentUnionFind& operator=(const ConcurrentUnionFind&) = delete;

  [[nodiscard]] vertex_t size() const {
    return static_cast<vertex_t>(words_.size());
  }

  static constexpr word_t pack(std::uint64_t stamp, vertex_t parent) {
    return (stamp << 32) | parent;
  }
  static constexpr vertex_t parent_of(word_t w) {
    return static_cast<vertex_t>(w & 0xFFFFFFFFULL);
  }
  static constexpr std::uint32_t stamp_of(word_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }

  /// Makes v a singleton root, tagged with `stamp` (low 32 bits used).
  void reset(vertex_t v, std::uint64_t stamp) {
    words_[v].store(pack(stamp & 0xFFFFFFFFULL, v),
                    std::memory_order_seq_cst);
  }

  [[nodiscard]] word_t word(vertex_t v) const {
    return words_[v].load(std::memory_order_seq_cst);
  }

  /// Raw parent pointer (one hop). parent(v) == v iff v is a root.
  [[nodiscard]] vertex_t parent(vertex_t v) const {
    return parent_of(word(v));
  }

  /// Root of v's set, with path halving. Safe concurrently with unite/find
  /// and reader compression.
  vertex_t find(vertex_t v) {
    for (;;) {
      word_t wv = words_[v].load(std::memory_order_seq_cst);
      const vertex_t p = parent_of(wv);
      if (p == v) return v;
      const word_t wp = words_[p].load(std::memory_order_seq_cst);
      const vertex_t gp = parent_of(wp);
      if (gp == p) return p;
      // Halving: splice v past its parent, preserving v's stamp. Failure is
      // benign; continue from p either way.
      words_[v].compare_exchange_weak(wv, pack(stamp_of(wv), gp),
                                      std::memory_order_seq_cst);
      v = p;
    }
  }

  /// Best-effort reader-side compression: repoint v at `new_parent` if its
  /// word is still exactly `expected` (same stamp and parent).
  void compress(vertex_t v, word_t expected, vertex_t new_parent) {
    words_[v].compare_exchange_strong(
        expected, pack(stamp_of(expected), new_parent),
        std::memory_order_seq_cst);
  }

  /// Merges the sets of u and v. Lock-free; the surviving root is the
  /// maximum id among the roots at link time.
  void unite(vertex_t u, vertex_t v) {
    for (;;) {
      vertex_t ru = find(u);
      vertex_t rv = find(v);
      if (ru == rv) return;
      if (ru > rv) std::swap(ru, rv);  // link smaller under larger
      word_t expected = words_[ru].load(std::memory_order_seq_cst);
      if (parent_of(expected) != ru) continue;  // lost root status; retry
      if (words_[ru].compare_exchange_strong(
              expected, pack(stamp_of(expected), rv),
              std::memory_order_seq_cst)) {
        return;
      }
    }
  }

  /// True iff u and v are currently in the same set (quiescent use only).
  bool same_set(vertex_t u, vertex_t v) { return find(u) == find(v); }

 private:
  std::vector<std::atomic<word_t>> words_;
};

}  // namespace cpkcore
