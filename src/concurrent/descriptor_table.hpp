// Operation-descriptor table (paper §5.1, Algorithm 1). One packed 64-bit
// atomic word per vertex:
//
//   bit 63      : marked flag
//   bits 32..62 : batch tag (low 31 bits of the batch number; diagnostic)
//   bits 0..31  : old_level — the vertex's level before the current batch
//
// UNMARKED is the all-zero word. The DAG parent pointer lives in the
// companion ConcurrentUnionFind rather than in the word itself; `mark` must
// be preceded by a union-find reset of the vertex (see CPLDS::on_mark for
// the required ordering: reset parent, then set the word, then union).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

class DescriptorTable {
 public:
  using word_t = std::uint64_t;

  static constexpr word_t kUnmarked = 0;

  explicit DescriptorTable(vertex_t n) : words_(n) {
    for (auto& w : words_) w.store(kUnmarked, std::memory_order_relaxed);
  }

  DescriptorTable(const DescriptorTable&) = delete;
  DescriptorTable& operator=(const DescriptorTable&) = delete;

  [[nodiscard]] vertex_t size() const {
    return static_cast<vertex_t>(words_.size());
  }

  static constexpr word_t pack(level_t old_level, std::uint64_t batch) {
    return (word_t{1} << 63) | ((batch & 0x7FFFFFFFULL) << 32) |
           static_cast<std::uint32_t>(old_level);
  }

  static constexpr bool is_marked(word_t w) { return (w >> 63) != 0; }

  static constexpr level_t old_level(word_t w) {
    return static_cast<level_t>(static_cast<std::uint32_t>(w));
  }

  static constexpr std::uint64_t batch_tag(word_t w) {
    return (w >> 32) & 0x7FFFFFFFULL;
  }

  /// Atomically loads v's descriptor word.
  [[nodiscard]] word_t word(vertex_t v) const {
    return words_[v].load(std::memory_order_seq_cst);
  }

  [[nodiscard]] bool marked(vertex_t v) const { return is_marked(word(v)); }

  /// Marks v with its pre-batch level.
  void mark(vertex_t v, level_t old_level_value, std::uint64_t batch) {
    words_[v].store(pack(old_level_value, batch), std::memory_order_seq_cst);
  }

  /// Unmarks v (idempotent).
  void unmark(vertex_t v) {
    words_[v].store(kUnmarked, std::memory_order_seq_cst);
  }

 private:
  std::vector<std::atomic<word_t>> words_;
};

}  // namespace cpkcore
