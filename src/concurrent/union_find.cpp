#include "concurrent/union_find.hpp"

// Header-only implementation; this TU verifies standalone inclusion.

namespace cpkcore {
static_assert(sizeof(ConcurrentUnionFind) > 0);
}  // namespace cpkcore
