// Pluggable safe-memory-reclamation for the lock-free read path.
//
// The CPLDS publishes an immutable LevelView per committed batch (pointer
// swap); readers traverse the latest view without locks. Retired views
// cannot be freed while a reader may still hold them — that is this layer's
// job, in the shape of pop_setbench's recordmgr: one `Reclaimer` interface,
// several algorithms behind it, selected per workload.
//
//   reader thread ──pin()──▶ per-thread slot (epoch announce / nesting)
//        │ view_.load(seq_cst), traverse            ▲ scanned by
//        └─unpin()                                  │
//   apply thread ──retire(old view)──▶ limbo list ──┴─▶ advance + free
//
// Algorithms:
//  * EpochReclaimer (EBR, the default): pin announces the global epoch with
//    a seq_cst store; retire tags the object with the current epoch; the
//    epoch advances only when every pinned slot has caught up, and objects
//    two epochs behind are freed. Readers pay one seq_cst store per pin —
//    wait-free, bounded reclamation lag.
//  * QsbrReclaimer (quiescent-state-based): pin is a plain nesting bump (no
//    ordered store at all); unpin declares a quiescent state by publishing
//    the global epoch with one release store. Cheapest possible read side,
//    but a registered thread that stops reading without exiting stalls
//    reclamation — that shows up in `lagging_readers` and as a rate-limited
//    "reclaimer_stall" event in the journal.
//
// Threading contract: any thread may pin/unpin (slots are acquired on first
// pin and released at thread exit); retire and try_reclaim may be called
// from any thread (serialized internally) but are typically the structure's
// single apply thread. Destroying a reclaimer requires that no thread is
// pinned and no further pins will occur; remaining limbo objects are freed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

namespace cpkcore::concurrent {

/// Which reclamation algorithm backs a Reclaimer. kAuto resolves from the
/// CPKC_RECLAIMER environment variable ("epoch" / "qsbr"), defaulting to
/// epoch-based.
enum class ReclaimerKind { kAuto, kEpoch, kQsbr };

[[nodiscard]] std::string_view to_string(ReclaimerKind kind);

/// Parses "epoch" / "ebr" / "qsbr" (case-sensitive); throws
/// std::invalid_argument on anything else.
[[nodiscard]] ReclaimerKind parse_reclaimer_kind(std::string_view name);

/// Resolves kAuto against CPKC_RECLAIMER (unset/invalid -> kEpoch); returns
/// a concrete kind unchanged.
[[nodiscard]] ReclaimerKind resolve_reclaimer_kind(ReclaimerKind kind);

class Reclaimer {
 public:
  /// Deletes/frees one retired object. Must be self-contained: it may run
  /// on the retiring thread (during a later retire/try_reclaim) or in the
  /// reclaimer's destructor, after the retiring structure is gone.
  using Deleter = void (*)(void*);

  /// Monotone counters (plus the limbo gauge), snapshot via stats().
  struct Stats {
    std::uint64_t epoch_advances = 0;  ///< global epoch increments
    std::uint64_t retired = 0;         ///< objects handed to retire()
    std::uint64_t freed = 0;           ///< retired objects actually freed
    /// Reclamation attempts blocked by a reader pinned at (EBR) or not yet
    /// quiesced past (QSBR) an older epoch.
    std::uint64_t lagging_readers = 0;
    std::size_t limbo = 0;  ///< gauge: retired objects not yet freed
  };

  /// RAII pin: the reclaimer guarantees that no object retired after the
  /// pin is freed before the unpin. Nestable per thread; movable.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(Reclaimer* r) : r_(r) {
      if (r_ != nullptr) r_->pin();
    }
    ~Guard() {
      if (r_ != nullptr) r_->unpin();
    }
    Guard(Guard&& other) noexcept : r_(std::exchange(other.r_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        if (r_ != nullptr) r_->unpin();
        r_ = std::exchange(other.r_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Reclaimer* r_ = nullptr;
  };

  virtual ~Reclaimer() = default;

  /// Protects a read-side critical section.
  [[nodiscard]] Guard read_guard() { return Guard(this); }

  /// Hands one unreachable (already un-published) object to the reclaimer;
  /// `deleter(p)` runs once it is provably unreachable by every reader.
  /// May reclaim older objects inline.
  virtual void retire(void* p, Deleter deleter) = 0;

  /// One explicit advance-and-free attempt (tests, idle housekeeping).
  /// Returns the number of objects freed.
  virtual std::size_t try_reclaim() = 0;

  [[nodiscard]] virtual Stats stats() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual ReclaimerKind kind() const = 0;

 protected:
  friend class Guard;
  virtual void pin() = 0;
  virtual void unpin() = 0;
};

/// Builds a reclaimer of the given kind (kAuto resolved first).
[[nodiscard]] std::unique_ptr<Reclaimer> make_reclaimer(
    ReclaimerKind kind = ReclaimerKind::kAuto);

/// Process-wide default (CPKC_RECLAIMER-resolved, epoch-based otherwise):
/// what a CPLDS uses when its owner wires no instance of its own. Never
/// destroyed — bare CPLDS instances (tests, examples) may retire into it up
/// to the end of the process.
[[nodiscard]] Reclaimer& global_reclaimer();

}  // namespace cpkcore::concurrent
