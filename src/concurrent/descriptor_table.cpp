#include "concurrent/descriptor_table.hpp"

namespace cpkcore {
static_assert(DescriptorTable::is_marked(DescriptorTable::pack(0, 0)));
static_assert(!DescriptorTable::is_marked(DescriptorTable::kUnmarked));
static_assert(DescriptorTable::old_level(DescriptorTable::pack(42, 7)) == 42);
static_assert(DescriptorTable::batch_tag(DescriptorTable::pack(42, 7)) == 7);
}  // namespace cpkcore
