#include "concurrent/reclaim.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event_log.hpp"
#include "util/cacheline.hpp"

namespace cpkcore::concurrent {

namespace {

/// Per-thread reclamation state, one slot per (thread, reclaimer) pair.
/// `word` is the only cross-thread field: the announced epoch under EBR,
/// the last-seen (quiescence) epoch under QSBR. kIdle doubles as "not in a
/// critical section" (EBR) and "never quiesced" (QSBR) — the global epoch
/// starts at 1 so the sentinel can never collide with a real epoch.
constexpr std::uint64_t kIdle = 0;

struct alignas(kCacheLine) Slot {
  std::atomic<bool> claimed{false};
  std::atomic<std::uint64_t> word{kIdle};
  std::uint32_t nesting = 0;  ///< owner thread only
};

constexpr std::size_t kMaxSlots = 256;

/// Limbo depth at which a blocked reclamation attempt becomes a journal
/// event (the EventLog rate-limits repeats per (component, name)).
constexpr std::size_t kStallEventLimbo = 64;

class ReclaimerBase;

/// Registry of live reclaimers, keyed by a never-reused id. Slot release at
/// thread exit and reclaimer destruction race freely: both serialize here,
/// and a thread exiting after "its" reclaimer died simply finds the id
/// gone. Heap-allocated and leaked so thread-exit destructors can run at
/// any point of process teardown.
std::mutex& registry_mu() {
  static auto* mu = new std::mutex;
  return *mu;
}

std::unordered_map<std::uint64_t, ReclaimerBase*>& live_reclaimers() {
  static auto* map = new std::unordered_map<std::uint64_t, ReclaimerBase*>;
  return *map;
}

struct SlotCache {
  struct Entry {
    std::uint64_t reclaimer_id = 0;
    std::uint32_t slot = 0;
  };
  std::vector<Entry> entries;
  ~SlotCache();
};

thread_local SlotCache t_slots;

/// Slot bookkeeping shared by both algorithms: claim-on-first-pin with a
/// thread-local cache, release at thread exit, deregistration on
/// destruction.
class ReclaimerBase : public Reclaimer {
 public:
  ReclaimerBase() : id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
    std::lock_guard lock(registry_mu());
    live_reclaimers().emplace(id_, this);
  }

  ~ReclaimerBase() override {
    std::lock_guard lock(registry_mu());
    live_reclaimers().erase(id_);
  }

  void release_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.word.store(kIdle, std::memory_order_release);
    s.nesting = 0;
    // Release store: a scanner that observes the slot unclaimed (acquire)
    // happens-after every read the departed thread did under a pin.
    s.claimed.store(false, std::memory_order_release);
  }

 protected:
  Slot& my_slot() {
    for (const SlotCache::Entry& e : t_slots.entries) {
      if (e.reclaimer_id == id_) return slots_[e.slot];
    }
    return claim_slot();
  }

  /// Applies `fn(word)` to every claimed slot; returns false early when fn
  /// does. Skipped (unclaimed) slots synchronize via the acquire load.
  template <typename Fn>
  bool for_each_claimed(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (!s.claimed.load(std::memory_order_acquire)) continue;
      if (!fn(s.word.load(std::memory_order_seq_cst))) return false;
    }
    return true;
  }

 private:
  Slot& claim_slot() {
    for (std::uint32_t i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (slots_[i].claimed.load(std::memory_order_relaxed)) continue;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        slots_[i].nesting = 0;
        slots_[i].word.store(kIdle, std::memory_order_seq_cst);
        t_slots.entries.push_back({id_, i});
        return slots_[i];
      }
    }
    throw std::runtime_error(
        "Reclaimer: out of thread slots (> 256 concurrent reader threads)");
  }

  static inline std::atomic<std::uint64_t> next_id_{1};

  const std::uint64_t id_;
  Slot slots_[kMaxSlots];
};

SlotCache::~SlotCache() {
  std::lock_guard lock(registry_mu());
  auto& live = live_reclaimers();
  for (const Entry& e : entries) {
    auto it = live.find(e.reclaimer_id);
    if (it != live.end()) it->second->release_slot(e.slot);
  }
}

/// One retired object awaiting its safe epoch.
struct RetiredObject {
  void* ptr = nullptr;
  Reclaimer::Deleter deleter = nullptr;
  std::uint64_t epoch = 0;
};

void emit_stall_event(std::string_view algo, std::size_t limbo,
                      std::uint64_t epoch) {
  obs::EventLog::instance().emit(
      obs::Severity::kWarn, "reclaim", "reclaimer_stall",
      {{"algo", std::string(algo)},
       {"limbo", std::to_string(limbo)},
       {"epoch", std::to_string(epoch)}});
}

// ---------------------------------------------------------------------------
// Epoch-based reclamation (EBR).
//
// pin announces the global epoch into the thread's slot with a seq_cst
// store before the reader's first data load; the view un-publish is a
// seq_cst store too, so any reader that obtained a since-retired pointer is
// visible as pinned to every later slot scan (the classic store/load
// ordering). retire tags the object with the epoch *at retire time* — at or
// after the un-publish — so a reader that could hold it is pinned at that
// epoch or earlier. The epoch advances only when no slot is pinned behind
// it; after two advances past an object's tag no such reader can still be
// pinned, and the object is freed.
// ---------------------------------------------------------------------------
class EpochReclaimer final : public ReclaimerBase {
 public:
  void retire(void* p, Deleter deleter) override {
    std::lock_guard lock(limbo_mu_);
    limbo_.push_back(
        {p, deleter, global_.load(std::memory_order_relaxed)});
    retired_.fetch_add(1, std::memory_order_relaxed);
    reclaim_locked();
  }

  std::size_t try_reclaim() override {
    std::lock_guard lock(limbo_mu_);
    return reclaim_locked();
  }

  ~EpochReclaimer() override {
    // Contract: no pinned readers remain. Free everything still in limbo.
    for (const RetiredObject& r : limbo_) r.deleter(r.ptr);
  }

  [[nodiscard]] Stats stats() const override {
    Stats s;
    s.epoch_advances = advances_.load(std::memory_order_relaxed);
    s.retired = retired_.load(std::memory_order_relaxed);
    s.freed = freed_.load(std::memory_order_relaxed);
    s.lagging_readers = lagging_.load(std::memory_order_relaxed);
    std::lock_guard lock(limbo_mu_);
    s.limbo = limbo_.size();
    return s;
  }

  [[nodiscard]] std::string_view name() const override { return "epoch"; }
  [[nodiscard]] ReclaimerKind kind() const override {
    return ReclaimerKind::kEpoch;
  }

 protected:
  void pin() override {
    Slot& s = my_slot();
    if (s.nesting++ == 0) {
      // Announce-then-read: the seq_cst store orders the announcement
      // before the reader's first shared load, pairing with the seq_cst
      // view un-publish on the writer (no standalone fences — TSan models
      // atomic operations, not fences).
      s.word.store(global_.load(std::memory_order_seq_cst),
                   std::memory_order_seq_cst);
    }
  }

  void unpin() override {
    Slot& s = my_slot();
    if (--s.nesting == 0) {
      s.word.store(kIdle, std::memory_order_release);
    }
  }

 private:
  /// Advance-and-free under limbo_mu_. Deleters run inline (they must not
  /// call back into the reclaimer).
  std::size_t reclaim_locked() {
    const std::uint64_t e = global_.load(std::memory_order_relaxed);
    const bool quiet = for_each_claimed([&](std::uint64_t w) {
      return w == kIdle || w >= e;  // pinned behind e blocks the advance
    });
    if (quiet) {
      global_.store(e + 1, std::memory_order_seq_cst);
      advances_.fetch_add(1, std::memory_order_relaxed);
    } else {
      lagging_.fetch_add(1, std::memory_order_relaxed);
      if (limbo_.size() >= kStallEventLimbo) {
        emit_stall_event(name(), limbo_.size(), e);
      }
    }
    const std::uint64_t g = global_.load(std::memory_order_relaxed);
    std::size_t freed = 0;
    std::size_t kept = 0;
    for (RetiredObject& r : limbo_) {
      if (r.epoch + 2 <= g) {
        r.deleter(r.ptr);
        ++freed;
      } else {
        limbo_[kept++] = r;
      }
    }
    limbo_.resize(kept);
    freed_.fetch_add(freed, std::memory_order_relaxed);
    return freed;
  }

  std::atomic<std::uint64_t> global_{1};
  mutable std::mutex limbo_mu_;
  std::vector<RetiredObject> limbo_;  // under limbo_mu_
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> lagging_{0};
};

// ---------------------------------------------------------------------------
// Quiescent-state-based reclamation (QSBR).
//
// pin is a plain nesting bump — no ordered store, the cheapest possible
// read side. unpin *is* the quiescent-state declaration: one release store
// of the current global epoch. An object retired at epoch e was
// un-published first, and every reader that could hold it last quiesced at
// an epoch <= e (the epoch is bumped after the retire is staged), so the
// object is free once every registered slot has declared >= e + 1. The
// price: a registered thread that stops reading without exiting never
// re-declares and stalls reclamation — tracked in lagging_readers and
// journaled as reclaimer_stall.
// ---------------------------------------------------------------------------
class QsbrReclaimer final : public ReclaimerBase {
 public:
  void retire(void* p, Deleter deleter) override {
    std::lock_guard lock(limbo_mu_);
    limbo_.push_back(
        {p, deleter, global_.load(std::memory_order_relaxed)});
    retired_.fetch_add(1, std::memory_order_relaxed);
    // Epoch bump after the object is staged: readers quiescing at the new
    // epoch provably did so after the un-publish (release store pairs with
    // the acquire load in unpin's epoch read path via seq_cst).
    global_.fetch_add(1, std::memory_order_seq_cst);
    advances_.fetch_add(1, std::memory_order_relaxed);
    reclaim_locked();
  }

  std::size_t try_reclaim() override {
    std::lock_guard lock(limbo_mu_);
    return reclaim_locked();
  }

  ~QsbrReclaimer() override {
    for (const RetiredObject& r : limbo_) r.deleter(r.ptr);
  }

  [[nodiscard]] Stats stats() const override {
    Stats s;
    s.epoch_advances = advances_.load(std::memory_order_relaxed);
    s.retired = retired_.load(std::memory_order_relaxed);
    s.freed = freed_.load(std::memory_order_relaxed);
    s.lagging_readers = lagging_.load(std::memory_order_relaxed);
    std::lock_guard lock(limbo_mu_);
    s.limbo = limbo_.size();
    return s;
  }

  [[nodiscard]] std::string_view name() const override { return "qsbr"; }
  [[nodiscard]] ReclaimerKind kind() const override {
    return ReclaimerKind::kQsbr;
  }

 protected:
  void pin() override { my_slot().nesting++; }

  void unpin() override {
    Slot& s = my_slot();
    if (--s.nesting == 0) {
      // Quiescent-state declaration. The release store orders every read
      // of the finished critical section before it; the reclaim scan's
      // seq_cst load pairs with it.
      s.word.store(global_.load(std::memory_order_seq_cst),
                   std::memory_order_release);
    }
  }

 private:
  std::size_t reclaim_locked() {
    // min over registered slots of the last-declared epoch; a slot that
    // never quiesced (kIdle) pins the minimum at 0.
    std::uint64_t min_seen = ~std::uint64_t{0};
    for_each_claimed([&](std::uint64_t w) {
      min_seen = std::min(min_seen, w);
      return true;
    });
    std::size_t freed = 0;
    std::size_t kept = 0;
    for (RetiredObject& r : limbo_) {
      if (min_seen != ~std::uint64_t{0} && r.epoch >= min_seen) {
        limbo_[kept++] = r;  // some thread has not quiesced past it yet
      } else {
        r.deleter(r.ptr);
        ++freed;
      }
    }
    limbo_.resize(kept);
    freed_.fetch_add(freed, std::memory_order_relaxed);
    if (kept > 0) {
      lagging_.fetch_add(1, std::memory_order_relaxed);
      if (kept >= kStallEventLimbo) {
        emit_stall_event(name(), kept,
                         global_.load(std::memory_order_relaxed));
      }
    }
    return freed;
  }

  std::atomic<std::uint64_t> global_{1};
  mutable std::mutex limbo_mu_;
  std::vector<RetiredObject> limbo_;  // under limbo_mu_
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> lagging_{0};
};

}  // namespace

std::string_view to_string(ReclaimerKind kind) {
  switch (kind) {
    case ReclaimerKind::kAuto:
      return "auto";
    case ReclaimerKind::kEpoch:
      return "epoch";
    case ReclaimerKind::kQsbr:
      return "qsbr";
  }
  return "?";
}

ReclaimerKind parse_reclaimer_kind(std::string_view name) {
  if (name == "auto") return ReclaimerKind::kAuto;
  if (name == "epoch" || name == "ebr") return ReclaimerKind::kEpoch;
  if (name == "qsbr") return ReclaimerKind::kQsbr;
  throw std::invalid_argument("unknown reclaimer kind: " +
                              std::string(name));
}

ReclaimerKind resolve_reclaimer_kind(ReclaimerKind kind) {
  if (kind != ReclaimerKind::kAuto) return kind;
  if (const char* env = std::getenv("CPKC_RECLAIMER");
      env != nullptr && *env != '\0') {
    if (std::string_view(env) == "epoch" || std::string_view(env) == "ebr") {
      return ReclaimerKind::kEpoch;
    }
    if (std::string_view(env) == "qsbr") return ReclaimerKind::kQsbr;
    // An unknown override falls through to the default rather than failing
    // service startup.
  }
  return ReclaimerKind::kEpoch;
}

std::unique_ptr<Reclaimer> make_reclaimer(ReclaimerKind kind) {
  switch (resolve_reclaimer_kind(kind)) {
    case ReclaimerKind::kQsbr:
      return std::make_unique<QsbrReclaimer>();
    case ReclaimerKind::kEpoch:
    case ReclaimerKind::kAuto:
      break;
  }
  return std::make_unique<EpochReclaimer>();
}

Reclaimer& global_reclaimer() {
  // Leaked: bare CPLDS instances retire into it until process exit, and
  // thread-exit slot releases must outlive static destruction order.
  static Reclaimer* instance = make_reclaimer().release();
  return *instance;
}

}  // namespace cpkcore::concurrent
