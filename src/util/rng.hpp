// Small, fast pseudo-random generators: SplitMix64 (seeding) and
// xoshiro256** (bulk generation). Deterministic across platforms so tests
// and workload generation are reproducible.
#pragma once

#include <array>
#include <cstdint>

namespace cpkcore {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Creates an independent stream (for per-thread generators).
  Xoshiro256 split() { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// 64-bit mix function usable as a hash for integer keys.
constexpr std::uint64_t hash64(std::uint64_t x) {
  x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCDULL;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return x ^ (x >> 33);
}

}  // namespace cpkcore
