// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with a compile-time
// table. Used by the write-ahead log to checksum each record so replay can
// distinguish a torn/corrupted tail from committed data.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cpkcore {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}();

}  // namespace detail

/// Incremental CRC-32. value() may be read at any point; updates may
/// continue afterwards.
class Crc32 {
 public:
  void update(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
      c = detail::kCrc32Table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  void update_u8(std::uint8_t v) { update(&v, sizeof v); }
  /// Integers are fed in a fixed (little-endian) byte order so checksums
  /// are portable across hosts.
  void update_u32(std::uint32_t v) {
    const unsigned char b[4] = {
        static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
        static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 24)};
    update(b, sizeof b);
  }
  void update_u64(std::uint64_t v) {
    update_u32(static_cast<std::uint32_t>(v));
    update_u32(static_cast<std::uint32_t>(v >> 32));
  }

  [[nodiscard]] std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

}  // namespace cpkcore
