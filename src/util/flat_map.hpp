// Open-addressing hash map for integer keys, mirroring FlatSet (linear
// probing, backward-shift deletion, allocation-free when empty).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace cpkcore {

template <class K, class V, K EmptyKey>
class FlatMap {
 public:
  struct Slot {
    K key = EmptyKey;
    V value{};
  };

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool insert_or_assign(K key, V value) {
    assert(key != EmptyKey);
    if (size_ + 1 > (slots_.size() * 7) / 8 || slots_.empty()) grow();
    std::size_t i = probe_start(key);
    while (slots_[i].key != EmptyKey) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return false;
      }
      i = next(i);
    }
    slots_[i] = Slot{key, std::move(value)};
    ++size_;
    return true;
  }

  /// Returns a pointer to the value, or nullptr if absent. Stable only until
  /// the next mutation.
  [[nodiscard]] V* find(K key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    while (slots_[i].key != EmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = next(i);
    }
    return nullptr;
  }

  [[nodiscard]] const V* find(K key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Returns the value for key, inserting a default if absent.
  V& operator[](K key) {
    assert(key != EmptyKey);
    if (V* v = find(key)) return *v;
    insert_or_assign(key, V{});
    return *find(key);
  }

  bool erase(K key) {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(key);
    while (slots_[i].key != EmptyKey) {
      if (slots_[i].key == key) {
        backward_shift(i);
        --size_;
        return true;
      }
      i = next(i);
    }
    return false;
  }

  void clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
  }

  template <class F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.key != EmptyKey) f(s.key, s.value);
    }
  }

 private:
  [[nodiscard]] std::size_t probe_start(K key) const {
    return static_cast<std::size_t>(hash64(key)) & (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key == EmptyKey) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].key != EmptyKey) i = next(i);
      slots_[i] = std::move(s);
      ++size_;
    }
  }

  void backward_shift(std::size_t hole) {
    std::size_t i = next(hole);
    while (slots_[i].key != EmptyKey) {
      const std::size_t ideal = probe_start(slots_[i].key);
      const std::size_t mask = slots_.size() - 1;
      const std::size_t d_hole = (hole - ideal) & mask;
      const std::size_t d_i = (i - ideal) & mask;
      if (d_hole <= d_i) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
      i = next(i);
    }
    slots_[hole] = Slot{};
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

template <class K, class V>
using IntMap = FlatMap<K, V, static_cast<K>(~K{0})>;

}  // namespace cpkcore
