// Log-bucketed latency histogram (HdrHistogram-style) for recording millions
// of read latencies with bounded memory and ~2% relative quantile error.
// Single-writer; merge histograms across threads after the run.
#pragma once

#include <cstdint>
#include <vector>

namespace cpkcore {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency sample in nanoseconds.
  void record(std::uint64_t ns);

  /// Adds all samples of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const { return max_; }
  [[nodiscard]] std::uint64_t min_ns() const { return count_ ? min_ : 0; }

  /// Arithmetic mean of recorded samples (0 when empty).
  [[nodiscard]] double mean_ns() const;

  /// Quantile in [0,1]; returns a representative value of the bucket
  /// containing the q-th sample (0 when empty).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;

  [[nodiscard]] std::uint64_t p50_ns() const { return quantile_ns(0.50); }
  [[nodiscard]] std::uint64_t p99_ns() const { return quantile_ns(0.99); }
  [[nodiscard]] std::uint64_t p9999_ns() const { return quantile_ns(0.9999); }

  void clear();

 private:
  // Buckets: 64 exponents x kSub linear sub-buckets each.
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;

  static std::uint32_t bucket_index(std::uint64_t ns);
  static std::uint64_t bucket_midpoint(std::uint32_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

}  // namespace cpkcore
