// Open-addressing hash set for integer keys with linear probing and
// backward-shift deletion (no tombstones). The default-constructed set holds
// no allocation, which matters for the PLDS level buckets: a vertex at level
// L owns L bucket sets, almost all of which stay empty.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace cpkcore {

/// Hash set of K (an unsigned integer type). `EmptyKey` must never be
/// inserted; it marks free slots.
template <class K, K EmptyKey>
class FlatSet {
 public:
  FlatSet() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Inserts key; returns true if newly inserted. Key must not be EmptyKey.
  bool insert(K key) {
    assert(key != EmptyKey);
    if (size_ + 1 > (slots_.size() * 7) / 8 || slots_.empty()) {
      grow();
    }
    std::size_t i = probe_start(key);
    while (slots_[i] != EmptyKey) {
      if (slots_[i] == key) return false;
      i = next(i);
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(K key) const {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(key);
    while (slots_[i] != EmptyKey) {
      if (slots_[i] == key) return true;
      i = next(i);
    }
    return false;
  }

  /// Erases key; returns true if it was present. Uses backward-shift
  /// deletion so probe sequences stay dense (no tombstone buildup).
  bool erase(K key) {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(key);
    while (slots_[i] != EmptyKey) {
      if (slots_[i] == key) {
        backward_shift(i);
        --size_;
        return true;
      }
      i = next(i);
    }
    return false;
  }

  void clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
  }

  /// Invokes f(key) for each element (unspecified order).
  template <class F>
  void for_each(F&& f) const {
    for (K k : slots_) {
      if (k != EmptyKey) f(k);
    }
  }

  /// Copies elements into a vector (unspecified order).
  [[nodiscard]] std::vector<K> to_vector() const {
    std::vector<K> out;
    out.reserve(size_);
    for_each([&](K k) { out.push_back(k); });
    return out;
  }

 private:
  [[nodiscard]] std::size_t probe_start(K key) const {
    return static_cast<std::size_t>(hash64(key)) & (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<K> old = std::move(slots_);
    slots_.assign(new_cap, EmptyKey);
    size_ = 0;
    for (K k : old) {
      if (k == EmptyKey) continue;
      std::size_t i = probe_start(k);
      while (slots_[i] != EmptyKey) i = next(i);
      slots_[i] = k;
      ++size_;
    }
  }

  // Standard backward-shift: scan forward from the hole; any element whose
  // ideal slot is "at or before" the hole (cyclically) moves back into it.
  void backward_shift(std::size_t hole) {
    std::size_t i = next(hole);
    while (slots_[i] != EmptyKey) {
      const std::size_t ideal = probe_start(slots_[i]);
      // Does slot i's element probe through `hole`? True iff the cyclic
      // distance ideal->hole is <= ideal->i.
      const std::size_t mask = slots_.size() - 1;
      const std::size_t d_hole = (hole - ideal) & mask;
      const std::size_t d_i = (i - ideal) & mask;
      if (d_hole <= d_i) {
        slots_[hole] = slots_[i];
        hole = i;
      }
      i = next(i);
    }
    slots_[hole] = EmptyKey;
  }

  std::vector<K> slots_;
  std::size_t size_ = 0;
};

/// Convenience alias for vertex sets.
template <class K>
using IntSet = FlatSet<K, static_cast<K>(~K{0})>;

}  // namespace cpkcore
