#include "util/rng.hpp"

// Header-only implementation; this TU exists so the build exercises the
// header standalone (include hygiene) and anchors any future out-of-line
// additions.

namespace cpkcore {
static_assert(Xoshiro256::min() < Xoshiro256::max());
}  // namespace cpkcore
