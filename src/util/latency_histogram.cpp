#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>

namespace cpkcore {

LatencyHistogram::LatencyHistogram() : buckets_(64 * kSub, 0) {}

std::uint32_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSub) return static_cast<std::uint32_t>(ns);
  const int msb = 63 - std::countl_zero(ns);
  // Exponent block = msb, sub-bucket = next kSubBits bits below the MSB.
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::uint32_t>((ns >> shift) & (kSub - 1));
  return static_cast<std::uint32_t>((msb - kSubBits + 1) * kSub) + sub;
}

std::uint64_t LatencyHistogram::bucket_midpoint(std::uint32_t index) {
  const std::uint32_t block = index / kSub;
  const std::uint32_t sub = index % kSub;
  if (block == 0) return sub;
  const int shift = static_cast<int>(block) - 1;
  const std::uint64_t base = (std::uint64_t{kSub} + sub) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return base + width / 2;
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++buckets_[bucket_index(ns)];
  ++count_;
  sum_ += ns;
  max_ = std::max(max_, ns);
  min_ = std::min(min_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

double LatencyHistogram::mean_ns() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return bucket_midpoint(static_cast<std::uint32_t>(i));
    }
  }
  return max_;
}

void LatencyHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~std::uint64_t{0};
}

}  // namespace cpkcore
