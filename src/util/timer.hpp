// Monotonic wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace cpkcore {

/// Nanoseconds since an arbitrary monotonic epoch.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed stopwatch.
class Timer {
 public:
  Timer() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace cpkcore
