// Cache-line utilities: padded wrappers to prevent false sharing between
// per-thread counters in the concurrent harness and scheduler.
#pragma once

#include <cstddef>
#include <new>

namespace cpkcore {

// 64 bytes on every mainstream x86-64/ARM64 part; fixed rather than
// std::hardware_destructive_interference_size so the ABI does not depend on
// compiler flags.
inline constexpr std::size_t kCacheLine = 64;

/// Value padded out to a full cache line.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace cpkcore
