// Fundamental scalar types shared by every cpkcore subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace cpkcore {

/// Vertex identifier. Vertices of an n-vertex graph are [0, n).
using vertex_t = std::uint32_t;

/// Level index inside the level data structure (LDS/PLDS/CPLDS).
using level_t = std::int32_t;

/// Sentinel for "no vertex".
inline constexpr vertex_t kNoVertex = std::numeric_limits<vertex_t>::max();

/// Sentinel for "no level".
inline constexpr level_t kNoLevel = -1;

/// An undirected edge. Canonical form has u < v (see canonical()).
struct Edge {
  vertex_t u = kNoVertex;
  vertex_t v = kNoVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;

  /// Returns the same edge with endpoints ordered (u <= v).
  [[nodiscard]] Edge canonical() const {
    return u <= v ? *this : Edge{v, u};
  }

  [[nodiscard]] bool is_self_loop() const { return u == v; }

  /// Packs the edge into one 64-bit key (canonical order assumed by caller).
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
};

/// Kind of a graph update.
enum class UpdateKind : std::uint8_t { kInsert, kDelete };

/// One dynamic-graph update: an edge plus whether it is inserted or deleted.
struct Update {
  Edge edge;
  UpdateKind kind = UpdateKind::kInsert;

  friend bool operator==(const Update&, const Update&) = default;
};

}  // namespace cpkcore
