// TraceRecorder — cross-thread pipeline tracing for the flight recorder.
//
// Low-overhead per-thread ring buffers of fixed-size events (the cxxtrace
// shape: each thread appends to its own ring, a collector walks all rings),
// exported as Chrome trace-event JSON loadable in Perfetto / about:tracing.
// Wraparound keeps memory bounded on long runs: each ring holds the most
// recent CPKC_TRACE_BUF events per thread and counts what it dropped.
//
// Correlation: every event carries an `id` — the pipeline stamps the LSN —
// so one logical write can be followed across the apply thread, the WAL
// engine's flusher/completion thread, the shipper, and each replica's
// apply thread (in Perfetto, select an event and query/filter args.lsn).
// Async phases ('b'/'e' with the LSN as the async id) additionally draw one
// commit span that *starts* on the apply thread and *ends* on the engine's
// completion thread.
//
// Gating:
//  * Runtime: off unless the CPKC_TRACE environment variable is set to a
//    non-zero value (or trace_set_enabled(true) was called). When off, each
//    instrumentation site costs one relaxed atomic load.
//  * Compile time: building with -DCPKC_TRACE_DISABLED compiles every
//    CPKC_TRACE_* macro to nothing (the CMake option CPKC_TRACE=OFF sets
//    it), for proving the instrumentation itself costs nothing.
//
// Threading: recording is wait-free against other recorders (each thread
// owns its ring; the ring's mutex is contended only by a concurrent
// exporter). Export (trace_chrome_json) may run at any time, including
// while other threads record.
#pragma once

#include <cstdint>
#include <string>

namespace cpkcore::obs {

/// Chrome trace-event phases used by the recorder.
///   'X' complete (span with duration)   'i' instant
///   'b' async begin                     'e' async end (same id matches)
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady-clock timestamp (span start)
  std::uint64_t dur_ns = 0;  ///< 'X' only
  std::uint64_t id = 0;      ///< correlation id (the pipeline stamps LSNs)
  std::uint64_t arg = 0;     ///< free-form payload (ops, bytes, ...)
  const char* name = nullptr;  ///< must be a string literal / static
  char phase = 'i';
};

/// Whether recording is on (CPKC_TRACE env, overridable below).
[[nodiscard]] bool trace_enabled();

/// Overrides the CPKC_TRACE env gate (tests, CLI flags).
void trace_set_enabled(bool enabled);

/// Sets the per-thread ring capacity (events) for rings created *after*
/// this call; existing rings keep theirs. Also settable via CPKC_TRACE_BUF.
void trace_set_ring_capacity(std::size_t events);

/// Names the calling thread in the exported trace (Chrome thread_name
/// metadata). Safe to call whether or not tracing is enabled.
void trace_set_thread_name(const std::string& name);

/// Records one event on the calling thread's ring (no-op when disabled).
void trace_record(const TraceEvent& event);

void trace_instant(const char* name, std::uint64_t id = 0,
                   std::uint64_t arg = 0);
void trace_async_begin(const char* name, std::uint64_t id,
                       std::uint64_t arg = 0);
void trace_async_end(const char* name, std::uint64_t id,
                     std::uint64_t arg = 0);

/// RAII span: records a complete ('X') event covering its lifetime.
/// The enabled check happens once, at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t id = 0,
                     std::uint64_t arg = 0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Updates the payload arg before the span closes (e.g. a result count
  /// unknown at entry).
  void set_arg(std::uint64_t arg) { event_.arg = arg; }

 private:
  TraceEvent event_;
  bool armed_ = false;
};

/// Collected recorder state (trace_stats()).
struct TraceStats {
  std::size_t threads = 0;         ///< rings ever created
  std::uint64_t recorded = 0;      ///< events recorded (incl. overwritten)
  std::uint64_t retained = 0;      ///< events currently in the rings
  std::uint64_t dropped = 0;       ///< events lost to ring wraparound
};
[[nodiscard]] TraceStats trace_stats();

/// Serializes every ring into one Chrome trace-event JSON document
/// ({"traceEvents":[...]}, events sorted by timestamp, thread-name
/// metadata included). Safe while other threads keep recording.
[[nodiscard]] std::string trace_chrome_json();

/// trace_chrome_json() to a file; false on IO failure.
bool trace_write_chrome_json(const std::string& path);

/// Empties every ring (tests / phase isolation). Threads keep recording
/// into their existing rings afterwards.
void trace_clear();

}  // namespace cpkcore::obs

// Instrumentation macros — compile to nothing under CPKC_TRACE_DISABLED.
#ifdef CPKC_TRACE_DISABLED
#define CPKC_TRACE_SPAN(var, name, id, arg)
#define CPKC_TRACE_INSTANT(name, id, arg)
#define CPKC_TRACE_ASYNC_BEGIN(name, id, arg)
#define CPKC_TRACE_ASYNC_END(name, id, arg)
#define CPKC_TRACE_THREAD_NAME(name)
#else
#define CPKC_TRACE_SPAN(var, name, id, arg) \
  ::cpkcore::obs::TraceSpan var((name), (id), (arg))
#define CPKC_TRACE_INSTANT(name, id, arg) \
  ::cpkcore::obs::trace_instant((name), (id), (arg))
#define CPKC_TRACE_ASYNC_BEGIN(name, id, arg) \
  ::cpkcore::obs::trace_async_begin((name), (id), (arg))
#define CPKC_TRACE_ASYNC_END(name, id, arg) \
  ::cpkcore::obs::trace_async_end((name), (id), (arg))
#define CPKC_TRACE_THREAD_NAME(name) \
  ::cpkcore::obs::trace_set_thread_name(name)
#endif
