// HealthMonitor — the stall watchdog of the health plane.
//
// Every long-lived pipeline thread (apply, WAL flusher/reaper, replica
// appliers) registers a heartbeat *component* and stamps it from its loop:
// beat() on progress, idle() before parking on a condition variable,
// busy() when it wakes with work. A watchdog thread classifies each
// component from its heartbeat age — a parked thread is healthy no matter
// how old its last beat; a *busy* thread whose beat has aged past the
// thresholds is degraded, then stalled. Value *probes* (replica lag,
// staged-vs-durable LSN divergence) classify from a sampled value against
// per-probe thresholds instead.
//
//   apply thread ──beat()/idle()/busy()──▶ Component (atomics, no locks)
//   shard group ──register_probe(lag_fn)──▶ Component (value thresholds)
//                                              │ watchdog thread
//                                              ▼ (check every interval/2)
//        rollup(): overall + per-partition + per-component states
//              │                   │
//   /healthz (503 iff stalled)   Router::pick_backend (skips stalled
//   state-transition events        replicas)
//     into the EventLog
//
// Components are arena-allocated and *tombstoned* on unregister — the
// pointer stays valid for the monitor's lifetime (Router caches replica
// handles; a torn-down replica just reads as inactive), but a tombstoned
// probe's callback never runs again (unregister excludes a concurrent
// check under the monitor lock, mirroring MetricsRegistry::remove_source).
//
// Detection bound: a stall is flagged once a busy component's beat age
// exceeds stalled_after_intervals (default 2) heartbeat intervals, and the
// watchdog checks at least every interval — so detection lands within 3
// intervals of the last beat, the bound tests/health_test.cpp pins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cpkcore::obs {

class EventLog;

enum class HealthState { kHealthy, kDegraded, kStalled };

[[nodiscard]] const char* health_state_name(HealthState s);

struct HealthMonitorOptions {
  /// Expected heartbeat cadence. Threads usually beat much faster (once
  /// per cycle/batch); the interval is the unit the age thresholds and
  /// the detection bound are expressed in.
  std::uint64_t heartbeat_interval_ms = 200;

  /// Busy heartbeat age (in intervals) past which a thread component is
  /// degraded / stalled. stalled >= degraded; the watchdog checks every
  /// interval/2, so detection <= stalled_after + 1/2 intervals.
  double degraded_after_intervals = 1.0;
  double stalled_after_intervals = 2.0;

  /// Journal for state-transition events (nullptr = the process-wide
  /// EventLog::instance()).
  EventLog* events = nullptr;

  /// Tests drive check_now() manually with the thread off.
  bool start_thread = true;
};

class HealthMonitor;

/// One monitored component. Thread components stamp the heartbeat
/// atomics from their loops (lock-free, relaxed); probe components hold
/// a sample callback instead. State is cached by the watchdog so
/// readers (Router, /healthz) pay one relaxed load. Namespace-scope so
/// layers can forward-declare it and plumb handles without including
/// this header.
class HealthComponent {
 public:
  /// Stamp progress (marks busy).
  void beat() {
    last_beat_ns_.store(now_ns(), std::memory_order_relaxed);
    idle_.store(false, std::memory_order_relaxed);
  }

  /// About to park (cv wait, empty queue): age stops counting.
  void idle() {
    last_beat_ns_.store(now_ns(), std::memory_order_relaxed);
    idle_.store(true, std::memory_order_relaxed);
  }

  /// Woke with work: equivalent to beat(), kept for call-site clarity.
  void busy() { beat(); }

  [[nodiscard]] HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int partition() const { return partition_; }
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class HealthMonitor;
  static std::uint64_t now_ns();

  std::string name_;
  int partition_ = -1;  ///< -1 = cluster-wide / unpartitioned
  bool is_probe_ = false;
  std::function<double()> probe_;  ///< under monitor mu_ (probe only)
  double degraded_at_ = 0.0;
  double stalled_at_ = 0.0;
  std::atomic<std::uint64_t> last_beat_ns_{0};
  std::atomic<bool> idle_{true};
  std::atomic<int> state_{0};  ///< cached HealthState
  std::atomic<bool> active_{true};
  double last_value_ = 0.0;  ///< last probe sample, under monitor mu_
};

class HealthMonitor {
 public:
  using Options = HealthMonitorOptions;
  using Component = HealthComponent;

  explicit HealthMonitor(Options options = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registers a heartbeat component for a long-lived thread. The handle
  /// stays valid for the monitor's lifetime; unregister() tombstones it.
  Component* register_thread(std::string name, int partition = -1);

  /// Registers a value probe: `value` is sampled on the watchdog thread
  /// each check and classified against the thresholds (a threshold of 0
  /// disables that classification — healthy-only probes are legal and are
  /// how off-by-default lag limits stay inert).
  Component* register_probe(std::string name, int partition,
                            std::function<double()> value,
                            double degraded_at, double stalled_at);

  /// Tombstones: excluded from rollups, probe callback never runs again
  /// after return, pointer stays valid (reads as inactive/healthy).
  void unregister(Component* component);

  struct ComponentStatus {
    std::string name;
    int partition = -1;
    HealthState state = HealthState::kHealthy;
    bool idle = false;
    bool is_probe = false;
    double beat_age_ms = 0.0;  ///< thread components
    double value = 0.0;        ///< probe components (last sample)
  };

  struct Rollup {
    HealthState overall = HealthState::kHealthy;
    /// Worst state per partition id (index = partition; partitions with
    /// no components read healthy). Unpartitioned components only feed
    /// `overall`.
    std::vector<HealthState> partitions;
    std::vector<ComponentStatus> components;

    [[nodiscard]] bool any_stalled() const {
      return overall == HealthState::kStalled;
    }
    /// {"status":"ok|degraded|stalled","partitions":[...],
    ///  "components":[{...}]}
    [[nodiscard]] std::string to_json() const;
  };

  /// Re-evaluates every component now and returns the rollup (what the
  /// watchdog does on its own each check interval). Emits transition
  /// events. Safe from any thread.
  Rollup check_now();

  /// The most recent evaluation without re-probing.
  [[nodiscard]] Rollup rollup() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void run();
  Rollup evaluate_locked();
  void emit_transition(const Component& c, HealthState from, HealthState to,
                       double age_ms_or_value);

  Options options_;

  mutable std::mutex mu_;
  // unique_ptr arena: Component addresses are stable and outlive
  // unregister (tombstone) so cached handles never dangle.
  std::vector<std::unique_ptr<Component>> components_;  // under mu_
  Rollup last_rollup_;                                  // under mu_

  std::condition_variable cv_;
  bool stop_requested_ = false;  // under mu_
  std::thread thread_;
};

}  // namespace cpkcore::obs
