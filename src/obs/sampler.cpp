#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace cpkcore::obs {

StatsSampler::StatsSampler(SamplerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::instance();
  }
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  if (options_.quiet) {
    out_ = nullptr;
  } else if (options_.path.empty()) {
    out_ = stdout;
  } else {
    out_ = std::fopen(options_.path.c_str(), "a");
    if (out_ == nullptr) {
      throw std::runtime_error("StatsSampler: cannot open " + options_.path);
    }
    owns_out_ = true;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

StatsSampler::~StatsSampler() { stop(); }

void StatsSampler::stop() {
  {
    std::lock_guard lock(mu_);
    if (stop_requested_) {
      // Already stopped (or stopping on another thread): just join below.
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  if (owns_out_ && out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
    owns_out_ = false;
  }
}

void StatsSampler::run() {
  using clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  // Poll tick: how often the thread wakes to honor request_sample() and
  // stop() even when the sampling interval is long.
  const auto tick =
      std::min(interval, std::chrono::milliseconds(100));
  auto next_sample = clock::now() + interval;
  for (;;) {
    bool stopping = false;
    {
      std::unique_lock lock(mu_);
      cv_.wait_for(lock, tick, [&] { return stop_requested_; });
      stopping = stop_requested_;
    }
    if (stopping) break;
    const bool on_demand =
        dump_requested_.exchange(false, std::memory_order_relaxed);
    if (on_demand || clock::now() >= next_sample) {
      take_sample();
      if (!on_demand) next_sample = clock::now() + interval;
    }
  }
  // Dump-on-shutdown: the final state always lands in the series.
  take_sample();
}

void StatsSampler::take_sample() {
  const MetricsSnapshot snap = options_.registry->snapshot();
  if (out_ != nullptr) {
    const std::string line = snap.to_json();
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  if (options_.on_sample) options_.on_sample(snap);
}

}  // namespace cpkcore::obs
