#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "util/timer.hpp"

namespace cpkcore::obs {

namespace {

std::size_t thread_slot() {
  // One stable small integer per thread; cheaper and better-distributed
  // than hashing std::thread::id on every record.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  // Sanitization is 1:1, so the leading-character rule can be applied to
  // the input directly.
  if (name.empty() || (name[0] >= '0' && name[0] <= '9')) out += '_';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_json_field(std::string& out, const std::string& name,
                       double value) {
  out += ",\"";
  out += json_escape(name);
  out += "\":";
  out += format_double(value);
}

}  // namespace

std::size_t Counter::stripe_index() { return thread_slot() % kStripes; }

std::size_t StripedHistogram::stripe_index() {
  return thread_slot() % kStripes;
}

void MetricsSink::push(const std::string& name, MetricType type,
                       double value, const LatencyHistogram* hist) {
  MetricSample sample;
  sample.name = prefix_ + name;
  sample.type = type;
  sample.value = value;
  if (hist != nullptr) {
    sample.hist.count = hist->count();
    sample.hist.min_ns = hist->min_ns();
    sample.hist.max_ns = hist->max_ns();
    sample.hist.mean_ns = hist->mean_ns();
    sample.hist.p50_ns = hist->p50_ns();
    sample.hist.p99_ns = hist->p99_ns();
    sample.hist.p9999_ns = hist->p9999_ns();
  }
  out_.push_back(std::move(sample));
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"ts_ms\":" + std::to_string(wall_unix_ms);
  for (const MetricSample& s : samples) {
    if (s.type == MetricType::kHistogram) {
      append_json_field(out, s.name + ".count",
                        static_cast<double>(s.hist.count));
      append_json_field(out, s.name + ".p50_ns",
                        static_cast<double>(s.hist.p50_ns));
      append_json_field(out, s.name + ".p99_ns",
                        static_cast<double>(s.hist.p99_ns));
      append_json_field(out, s.name + ".p9999_ns",
                        static_cast<double>(s.hist.p9999_ns));
      append_json_field(out, s.name + ".mean_ns", s.hist.mean_ns);
      append_json_field(out, s.name + ".max_ns",
                        static_cast<double>(s.hist.max_ns));
    } else {
      append_json_field(out, s.name, s.value);
    }
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const MetricSample& s : samples) {
    const std::string name = prometheus_name(s.name);
    switch (s.type) {
      case MetricType::kCounter:
        out += "# TYPE " + name + "_total counter\n";
        out += name + "_total " + format_double(s.value) + "\n";
        break;
      case MetricType::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_double(s.value) + "\n";
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + name + " summary\n";
        const std::pair<const char*, std::uint64_t> quantiles[] = {
            {"0.5", s.hist.p50_ns},
            {"0.99", s.hist.p99_ns},
            {"0.9999", s.hist.p9999_ns}};
        for (const auto& [q, v] : quantiles) {
          out += name + "{quantile=\"" + q + "\"} " +
                 std::to_string(v) + "\n";
        }
        out += name + "_count " + std::to_string(s.hist.count) + "\n";
        out += name + "_sum " +
               format_double(s.hist.mean_ns *
                             static_cast<double>(s.hist.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

std::uint64_t MetricsRegistry::add_source(std::string prefix,
                                          CollectFn collect) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_id_++;
  sources_.push_back(Source{id, std::move(prefix), std::move(collect)});
  return id;
}

void MetricsRegistry::remove_source(std::uint64_t id) {
  std::lock_guard lock(mu_);
  std::erase_if(sources_, [&](const Source& s) { return s.id == id; });
}

std::size_t MetricsRegistry::num_sources() const {
  std::lock_guard lock(mu_);
  return sources_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.wall_unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  snap.mono_ns = now_ns();
  {
    // Collection runs under the registry lock: remove_source() returning
    // guarantees the callback is not (and will never again be) running, so
    // RAII-deregistering components cannot dangle.
    std::lock_guard lock(mu_);
    for (const Source& source : sources_) {
      MetricsSink sink(source.prefix, snap.samples);
      source.collect(sink);
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace cpkcore::obs
