#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace cpkcore::obs {

namespace {

/// One full response on a throwaway HTTP/1.0 connection. Short writes are
/// retried; a peer that hangs up mid-response is its own problem.
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void respond(int fd, int status, const char* reason,
             const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  write_all(fd, out);
}

}  // namespace

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::instance();
  }
  if (options_.events == nullptr) options_.events = &EventLog::instance();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpExporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    std::string msg = "HttpExporter: cannot listen on ";
    msg += options_.bind_address;
    msg += ":";
    msg += std::to_string(options_.port);
    msg += " (";
    msg += std::strerror(err);
    msg += ")";
    throw std::runtime_error(msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { run(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::run() {
  // poll() with a short timeout rather than a blocking accept: stop() only
  // has to flip the flag and join, no self-connect wakeup dance.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve(fd);
    ::close(fd);
  }
}

void HttpExporter::serve(int fd) {
  // One read is enough for any real GET line; loop until the header
  // terminator just in case the client dribbles.
  std::string req;
  char buf[2048];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }
  if (req.compare(0, 4, "GET ") != 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    respond(fd, 400, "Bad Request", "text/plain", "GET only\n");
    return;
  }
  const std::size_t path_end = req.find_first_of(" \r\n", 4);
  std::string target =
      path_end == std::string::npos ? req.substr(4) : req.substr(4, path_end - 4);
  std::string query;
  if (const std::size_t q = target.find('?'); q != std::string::npos) {
    query = target.substr(q + 1);
    target.resize(q);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (target == "/metrics") {
    respond(fd, 200, "OK", "text/plain; version=0.0.4",
            options_.registry->snapshot().to_prometheus());
    return;
  }
  if (target == "/vars") {
    respond(fd, 200, "OK", "application/json",
            options_.registry->snapshot().to_json() + "\n");
    return;
  }
  if (target == "/healthz") {
    if (options_.health == nullptr) {
      respond(fd, 200, "OK", "application/json",
              "{\"status\":\"ok\",\"monitor\":false}\n");
      return;
    }
    const HealthMonitor::Rollup roll = options_.health->check_now();
    if (roll.any_stalled()) {
      respond(fd, 503, "Service Unavailable", "application/json",
              roll.to_json() + "\n");
    } else {
      respond(fd, 200, "OK", "application/json", roll.to_json() + "\n");
    }
    return;
  }
  if (target == "/events") {
    std::size_t n = options_.events_tail;
    if (query.compare(0, 2, "n=") == 0) {
      const unsigned long parsed = std::strtoul(query.c_str() + 2, nullptr, 10);
      if (parsed > 0) n = parsed;
    }
    respond(fd, 200, "OK", "application/json",
            options_.events->tail_json(n) + "\n");
    return;
  }
  respond(fd, 404, "Not Found", "text/plain",
          "/metrics /healthz /vars /events\n");
}

}  // namespace cpkcore::obs
