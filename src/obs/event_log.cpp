#include "obs/event_log.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace cpkcore::obs {

namespace {

std::uint64_t wall_unix_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mono_ns_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Event::to_json() const {
  std::string out = "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"ts_ms\":";
  out += std::to_string(wall_unix_ms);
  out += ",\"severity\":\"";
  out += severity_name(severity);
  out += "\",\"component\":\"";
  out += json_escape(component);
  out += "\",\"event\":\"";
  out += json_escape(name);
  out += "\",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(key);
    out += "\":\"";
    out += json_escape(value);
    out += "\"";
  }
  out += "}}";
  return out;
}

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

EventLog::EventLog(EventLogOptions options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
  if (!options_.json_path.empty()) {
    sink_ = std::fopen(options_.json_path.c_str(), "a");
    if (sink_ == nullptr) {
      throw std::runtime_error("EventLog: cannot open " + options_.json_path);
    }
  }
}

EventLog::~EventLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void EventLog::emit(Severity severity, std::string component,
                    std::string name, Fields fields) {
  Event e;
  e.wall_unix_ms = wall_unix_ms_now();
  e.mono_ns = mono_ns_now();
  e.severity = severity;
  e.component = std::move(component);
  e.name = std::move(name);
  e.fields = std::move(fields);

  std::lock_guard lock(mu_);
  if (options_.rate_limit_window_ms > 0) {
    RateState& rs = rate_[e.component + "\x1f" + e.name];
    const std::uint64_t window_ns = options_.rate_limit_window_ms * 1000000ull;
    if (e.mono_ns - rs.window_start_ns >= window_ns) {
      rs.window_start_ns = e.mono_ns;
      rs.in_window = 0;
    }
    if (rs.in_window >= options_.rate_limit_burst) {
      ++rs.suppressed;
      ++stats_.suppressed;
      return;
    }
    ++rs.in_window;
    if (rs.suppressed > 0) {
      // The first admitted event after a suppression run reports how many
      // of its kind the limiter dropped, so the journal never lies by
      // omission.
      e.fields.emplace_back("suppressed", std::to_string(rs.suppressed));
      rs.suppressed = 0;
    }
  }
  e.seq = next_seq_++;
  ++stats_.emitted;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(e);
  } else {
    ring_[e.seq % options_.capacity] = e;
    ++stats_.overwritten;
  }
  if (sink_ != nullptr) {
    const std::string line = e.to_json();
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
  for (const auto& [id, fn] : subscribers_) fn(e);
}

std::vector<Event> EventLog::tail(std::size_t n) const {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  const std::size_t have = ring_.size();
  const std::size_t take = n < have ? n : have;
  out.reserve(take);
  // Oldest retained seq is next_seq_ - have; we want the last `take`.
  for (std::uint64_t seq = next_seq_ - take; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % options_.capacity]);
  }
  return out;
}

std::string EventLog::tail_json(std::size_t n) const {
  const std::vector<Event> events = tail(n);
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",\n ";
    out += events[i].to_json();
  }
  out += "]";
  return out;
}

std::uint64_t EventLog::subscribe(Subscriber fn) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_subscriber_id_++;
  subscribers_.emplace_back(id, std::move(fn));
  return id;
}

void EventLog::unsubscribe(std::uint64_t id) {
  std::lock_guard lock(mu_);
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->first == id) {
      subscribers_.erase(it);
      return;
    }
  }
}

EventLog::Stats EventLog::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace cpkcore::obs
