#include "obs/health.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/event_log.hpp"

namespace cpkcore::obs {

namespace {

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

HealthState worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStalled:
      return "stalled";
  }
  return "unknown";
}

std::uint64_t HealthMonitor::Component::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

HealthMonitor::HealthMonitor(Options options) : options_(options) {
  if (options_.heartbeat_interval_ms == 0) options_.heartbeat_interval_ms = 1;
  if (options_.stalled_after_intervals < options_.degraded_after_intervals) {
    options_.stalled_after_intervals = options_.degraded_after_intervals;
  }
  if (options_.start_thread) thread_ = std::thread([this] { run(); });
}

HealthMonitor::~HealthMonitor() {
  {
    std::lock_guard lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

HealthMonitor::Component* HealthMonitor::register_thread(std::string name,
                                                         int partition) {
  auto c = std::make_unique<Component>();
  c->name_ = std::move(name);
  c->partition_ = partition;
  c->last_beat_ns_.store(Component::now_ns(), std::memory_order_relaxed);
  Component* out = c.get();
  std::lock_guard lock(mu_);
  components_.push_back(std::move(c));
  return out;
}

HealthMonitor::Component* HealthMonitor::register_probe(
    std::string name, int partition, std::function<double()> value,
    double degraded_at, double stalled_at) {
  auto c = std::make_unique<Component>();
  c->name_ = std::move(name);
  c->partition_ = partition;
  c->is_probe_ = true;
  c->probe_ = std::move(value);
  c->degraded_at_ = degraded_at;
  c->stalled_at_ = stalled_at;
  Component* out = c.get();
  std::lock_guard lock(mu_);
  components_.push_back(std::move(c));
  return out;
}

void HealthMonitor::unregister(Component* component) {
  if (component == nullptr) return;
  std::lock_guard lock(mu_);
  component->active_.store(false, std::memory_order_release);
  component->probe_ = nullptr;  // never sampled again; owner may die now
  component->state_.store(static_cast<int>(HealthState::kHealthy),
                          std::memory_order_relaxed);
}

HealthMonitor::Rollup HealthMonitor::evaluate_locked() {
  const double interval_ms =
      static_cast<double>(options_.heartbeat_interval_ms);
  const std::uint64_t now = Component::now_ns();
  Rollup out;
  for (const auto& cp : components_) {
    Component& c = *cp;
    if (!c.active_.load(std::memory_order_acquire)) continue;
    ComponentStatus status;
    status.name = c.name_;
    status.partition = c.partition_;
    status.is_probe = c.is_probe_;
    HealthState state = HealthState::kHealthy;
    if (c.is_probe_) {
      const double v = c.probe_ ? c.probe_() : 0.0;
      c.last_value_ = v;
      status.value = v;
      if (c.stalled_at_ > 0.0 && v >= c.stalled_at_) {
        state = HealthState::kStalled;
      } else if (c.degraded_at_ > 0.0 && v >= c.degraded_at_) {
        state = HealthState::kDegraded;
      }
    } else {
      const bool idle = c.idle_.load(std::memory_order_relaxed);
      const std::uint64_t beat =
          c.last_beat_ns_.load(std::memory_order_relaxed);
      const double age_ms =
          beat >= now ? 0.0 : static_cast<double>(now - beat) / 1e6;
      status.idle = idle;
      status.beat_age_ms = age_ms;
      if (!idle) {
        const double intervals = age_ms / interval_ms;
        if (intervals > options_.stalled_after_intervals) {
          state = HealthState::kStalled;
        } else if (intervals > options_.degraded_after_intervals) {
          state = HealthState::kDegraded;
        }
      }
    }
    status.state = state;
    c.state_.store(static_cast<int>(state), std::memory_order_relaxed);
    out.overall = worse(out.overall, state);
    if (c.partition_ >= 0) {
      const auto p = static_cast<std::size_t>(c.partition_);
      if (out.partitions.size() <= p) {
        out.partitions.resize(p + 1, HealthState::kHealthy);
      }
      out.partitions[p] = worse(out.partitions[p], state);
    }
    out.components.push_back(std::move(status));
  }
  return out;
}

HealthMonitor::Rollup HealthMonitor::check_now() {
  struct Transition {
    std::string name;
    int partition;
    HealthState from, to;
    double detail;  ///< beat age ms (thread) or sampled value (probe)
    bool is_probe;
  };
  std::vector<Transition> transitions;
  Rollup out;
  {
    std::lock_guard lock(mu_);
    // Snapshot prior cached states to detect transitions.
    std::vector<std::pair<Component*, HealthState>> before;
    before.reserve(components_.size());
    for (const auto& cp : components_) {
      before.emplace_back(cp.get(), cp->state());
    }
    out = evaluate_locked();
    for (const auto& [c, prior] : before) {
      if (!c->active_.load(std::memory_order_acquire)) continue;
      const HealthState now_state = c->state();
      if (now_state == prior) continue;
      double detail = 0.0;
      for (const ComponentStatus& s : out.components) {
        if (s.name == c->name_) {
          detail = c->is_probe_ ? s.value : s.beat_age_ms;
          break;
        }
      }
      transitions.push_back(
          {c->name_, c->partition_, prior, now_state, detail, c->is_probe_});
    }
    last_rollup_ = out;
  }
  // Emit outside mu_: EventLog takes its own lock and subscribers run
  // inline there — holding the monitor lock across that invites
  // inversion.
  EventLog& log =
      options_.events != nullptr ? *options_.events : EventLog::instance();
  for (const Transition& t : transitions) {
    const Severity sev = t.to == HealthState::kStalled ? Severity::kError
                         : t.to == HealthState::kDegraded ? Severity::kWarn
                                                          : Severity::kInfo;
    EventLog::Fields fields = {
        {"from", health_state_name(t.from)},
        {"to", health_state_name(t.to)},
        {t.is_probe ? "value" : "beat_age_ms", format_value(t.detail)},
    };
    if (t.partition >= 0) {
      fields.emplace_back("partition", std::to_string(t.partition));
    }
    log.emit(sev, t.name, "health_transition", std::move(fields));
  }
  return out;
}

HealthMonitor::Rollup HealthMonitor::rollup() const {
  std::lock_guard lock(mu_);
  return last_rollup_;
}

void HealthMonitor::run() {
  // Check at twice the heartbeat cadence: with stalls flagged at
  // stalled_after_intervals (default 2), detection lands inside 2.5
  // intervals — within the 3-interval bound the tests pin.
  const auto period =
      std::chrono::milliseconds(std::max<std::uint64_t>(
          1, options_.heartbeat_interval_ms / 2));
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, period, [&] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    check_now();
    lock.lock();
  }
}

std::string HealthMonitor::Rollup::to_json() const {
  std::string out = "{\"status\":\"";
  out += overall == HealthState::kHealthy ? "ok"
                                          : health_state_name(overall);
  out += "\",\"partitions\":[";
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (p > 0) out += ",";
    out += "\"";
    out += health_state_name(partitions[p]);
    out += "\"";
  }
  out += "],\"components\":[";
  for (std::size_t i = 0; i < components.size(); ++i) {
    const ComponentStatus& c = components[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    out += c.name;
    out += "\",\"state\":\"";
    out += health_state_name(c.state);
    out += "\"";
    if (c.partition >= 0) {
      out += ",\"partition\":";
      out += std::to_string(c.partition);
    }
    if (c.is_probe) {
      out += ",\"value\":";
      out += format_value(c.value);
    } else {
      out += ",\"idle\":";
      out += c.idle ? "true" : "false";
      out += ",\"beat_age_ms\":";
      out += format_value(c.beat_age_ms);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace cpkcore::obs
