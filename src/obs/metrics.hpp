// MetricsRegistry — the unified metrics plane of the flight recorder.
//
// Every layer of the pipeline (scheduler, service, WAL engines, shippers,
// replicas, router) owns its own counters/gauges/histograms and registers a
// *source* with a registry: a named prefix plus a collect callback that
// pushes current values into a MetricsSink. snapshot() walks the sources
// under one lock and returns a single consistent export — one flat,
// name-sorted sample set — with JSON and Prometheus text writers.
//
//   component ──owns──▶ obs::Counter / LatencyHistogram / raw atomics
//       │
//       └──MetricsGroup(registry, "p0.service")──▶ registry source list
//                                                        │ snapshot()
//                                  StatsSampler / bench ◀┘ (JSON / Prom)
//
// Hot-path-safe primitives:
//  * Counter — cacheline-padded sharded atomics (one stripe per thread
//    hash); add() is a relaxed fetch_add on a private line, value() sums.
//  * StripedHistogram — N {mutex, LatencyHistogram} stripes keyed by thread
//    id; record() takes an uncontended lock, merged() folds the stripes.
//
// Pull model: collect callbacks run at snapshot time on the snapshotting
// thread, so components pay nothing between snapshots, and a component's
// whole stats struct is gathered once per snapshot (not once per metric).
// Callbacks must be thread-safe; they usually call the component's existing
// stats(). Registration is RAII (MetricsGroup): a destroyed component can
// never be collected.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"
#include "util/latency_histogram.hpp"

namespace cpkcore::obs {

/// Monotone counter: sharded cacheline-padded atomics so concurrent
/// increments from many threads never share a line. Movable-in-spirit but
/// pinned in practice: components hold it by value and register a source
/// that reads it.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    stripes_[stripe_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;

  static std::size_t stripe_index();

  Padded<std::atomic<std::uint64_t>> stripes_[kStripes];
};

/// Multi-writer latency histogram: stripes of {mutex, LatencyHistogram}
/// keyed by thread id, so record() takes an (almost always uncontended)
/// lock on a private stripe. merged() folds all stripes into one.
class StripedHistogram {
 public:
  void record(std::uint64_t ns) {
    Stripe& s = stripes_[stripe_index()];
    std::lock_guard lock(s.mu);
    s.hist.record(ns);
  }

  [[nodiscard]] LatencyHistogram merged() const {
    LatencyHistogram out;
    for (const auto& s : stripes_) {
      std::lock_guard lock(s.mu);
      out.merge(s.hist);
    }
    return out;
  }

  void reset() {
    for (auto& s : stripes_) {
      std::lock_guard lock(s.mu);
      s.hist.clear();
    }
  }

 private:
  static constexpr std::size_t kStripes = 8;

  struct alignas(kCacheLine) Stripe {
    mutable std::mutex mu;
    LatencyHistogram hist;
  };

  static std::size_t stripe_index();

  Stripe stripes_[kStripes];
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Summary of a histogram at snapshot time (quantiles precomputed so
/// exports need no access to the live buckets).
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p9999_ns = 0;
};

struct MetricSample {
  std::string name;
  MetricType type = MetricType::kGauge;
  double value = 0.0;       ///< counter/gauge value (count for histograms)
  HistogramSummary hist{};  ///< populated iff type == kHistogram
};

/// One consistent export of a registry: every source collected under the
/// registry lock, samples sorted by name.
struct MetricsSnapshot {
  std::uint64_t wall_unix_ms = 0;  ///< system clock at capture
  std::uint64_t mono_ns = 0;       ///< steady clock at capture
  std::vector<MetricSample> samples;

  /// Looks up a sample by exact name (nullptr when absent).
  [[nodiscard]] const MetricSample* find(const std::string& name) const;

  /// One JSON object: {"ts_ms":..., "<name>":value, ...} with histograms
  /// expanded to <name>.count/.p50_ns/.p99_ns/.p9999_ns/.mean_ns/.max_ns.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (names sanitized [a-zA-Z0-9_:],
  /// counters as <name>_total, histograms as summaries with quantile
  /// labels plus _count/_sum).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Passed to collect callbacks: push values under the source's prefix.
class MetricsSink {
 public:
  void counter(const std::string& name, double value) {
    push(name, MetricType::kCounter, value, nullptr);
  }
  void counter(const std::string& name, const Counter& c) {
    counter(name, static_cast<double>(c.value()));
  }
  void gauge(const std::string& name, double value) {
    push(name, MetricType::kGauge, value, nullptr);
  }
  void histogram(const std::string& name, const LatencyHistogram& h) {
    push(name, MetricType::kHistogram,
         static_cast<double>(h.count()), &h);
  }
  void histogram(const std::string& name, const StripedHistogram& h) {
    const LatencyHistogram merged = h.merged();
    histogram(name, merged);
  }

 private:
  friend class MetricsRegistry;
  MetricsSink(const std::string& prefix, std::vector<MetricSample>& out)
      : prefix_(prefix), out_(out) {}

  void push(const std::string& name, MetricType type, double value,
            const LatencyHistogram* hist);

  const std::string& prefix_;
  std::vector<MetricSample>& out_;
};

class MetricsRegistry {
 public:
  /// The process-wide default registry (what the sampler, bench, and CLI
  /// export). Components take a MetricsRegistry* so tests can isolate.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  using CollectFn = std::function<void(MetricsSink&)>;

  /// Registers a source. `prefix` (usually "component." or
  /// "p0.component.") is prepended to every name the callback pushes.
  /// Returns the source id for remove_source. Thread-safe.
  std::uint64_t add_source(std::string prefix, CollectFn collect);

  /// Unregisters; after return the callback will not run again (snapshot
  /// holds the lock across collection, so a concurrent snapshot either
  /// completed the callback or never starts it).
  void remove_source(std::uint64_t id);

  [[nodiscard]] std::size_t num_sources() const;

  /// Collects every source into one consistent, name-sorted snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Source {
    std::uint64_t id = 0;
    std::string prefix;
    CollectFn collect;
  };

  mutable std::mutex mu_;
  std::vector<Source> sources_;  // under mu_
  std::uint64_t next_id_ = 1;    // under mu_
};

/// RAII bundle of sources one component registers: destroying the group
/// (or the owning component) unregisters everything it added. A
/// default-constructed / nullptr-registry group is inert — every call
/// no-ops — so components can make metrics opt-in with zero branches at
/// the call sites.
class MetricsGroup {
 public:
  MetricsGroup() = default;
  MetricsGroup(MetricsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}
  ~MetricsGroup() { release(); }

  MetricsGroup(MetricsGroup&& other) noexcept { *this = std::move(other); }
  MetricsGroup& operator=(MetricsGroup&& other) noexcept {
    if (this != &other) {
      release();
      registry_ = other.registry_;
      prefix_ = std::move(other.prefix_);
      ids_ = std::move(other.ids_);
      other.registry_ = nullptr;
      other.ids_.clear();
    }
    return *this;
  }
  MetricsGroup(const MetricsGroup&) = delete;
  MetricsGroup& operator=(const MetricsGroup&) = delete;

  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }
  explicit operator bool() const { return enabled(); }
  [[nodiscard]] MetricsRegistry* registry() const { return registry_; }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }

  /// Adds one collect source under this group's prefix.
  void collect(MetricsRegistry::CollectFn fn) {
    if (registry_ == nullptr) return;
    ids_.push_back(registry_->add_source(prefix_, std::move(fn)));
  }

  /// Unregisters every source this group added. Idempotent.
  void release() {
    if (registry_ != nullptr) {
      for (std::uint64_t id : ids_) registry_->remove_source(id);
    }
    ids_.clear();
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
  std::vector<std::uint64_t> ids_;
};

}  // namespace cpkcore::obs
