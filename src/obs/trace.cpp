#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "util/timer.hpp"

namespace cpkcore::obs {

namespace {

constexpr std::size_t kDefaultRingCapacity = 1 << 16;  // 64Ki events/thread

/// One thread's ring. The owning thread writes under `mu` (uncontended
/// except while an exporter reads), so export and wraparound accounting
/// are race-free without per-field atomics.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint32_t tid)
      : capacity(capacity == 0 ? 1 : capacity), tid(tid) {
    events.resize(this->capacity);
  }

  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage, under mu
  std::uint64_t next = 0;          // total events ever recorded, under mu
  std::size_t capacity;
  std::uint32_t tid;
  std::string thread_name;  // under mu

  void record(const TraceEvent& e) {
    std::lock_guard lock(mu);
    events[static_cast<std::size_t>(next % capacity)] = e;
    ++next;
  }
};

struct Recorder {
  std::mutex mu;
  // Rings live for the program: a thread may exit while its events are
  // still wanted in the export, and thread counts are bounded, so nothing
  // is reclaimed.
  std::vector<std::shared_ptr<ThreadRing>> rings;  // under mu
  std::atomic<std::size_t> ring_capacity{0};       // 0 = unset, use env
  std::atomic<int> enabled{-1};                    // -1 = read env

  static Recorder& instance() {
    static Recorder r;
    return r;
  }

  std::size_t resolve_capacity() {
    std::size_t cap = ring_capacity.load(std::memory_order_relaxed);
    if (cap != 0) return cap;
    if (const char* v = std::getenv("CPKC_TRACE_BUF")) {
      const long long parsed = std::strtoll(v, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return kDefaultRingCapacity;
  }

  ThreadRing& ring_for_this_thread() {
    thread_local std::shared_ptr<ThreadRing> ring;
    if (!ring) {
      std::lock_guard lock(mu);
      ring = std::make_shared<ThreadRing>(
          resolve_capacity(), static_cast<std::uint32_t>(rings.size() + 1));
      rings.push_back(ring);
    }
    return *ring;
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// Chrome trace timestamps are microseconds; keep sub-microsecond
/// resolution as a decimal fraction so adjacent events do not collapse.
void append_ts_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  out += '.';
  const std::uint64_t frac = ns % 1000;
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
}

struct ExportedEvent {
  TraceEvent event;
  std::uint32_t tid;
};

}  // namespace

bool trace_enabled() {
  Recorder& r = Recorder::instance();
  int state = r.enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* v = std::getenv("CPKC_TRACE");
    state = (v != nullptr && std::strtol(v, nullptr, 10) != 0) ? 1 : 0;
    r.enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void trace_set_enabled(bool enabled) {
  Recorder::instance().enabled.store(enabled ? 1 : 0,
                                     std::memory_order_relaxed);
}

void trace_set_ring_capacity(std::size_t events) {
  Recorder::instance().ring_capacity.store(events,
                                           std::memory_order_relaxed);
}

void trace_set_thread_name(const std::string& name) {
  ThreadRing& ring = Recorder::instance().ring_for_this_thread();
  std::lock_guard lock(ring.mu);
  ring.thread_name = name;
}

void trace_record(const TraceEvent& event) {
  if (!trace_enabled()) return;
  Recorder::instance().ring_for_this_thread().record(event);
}

void trace_instant(const char* name, std::uint64_t id, std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.id = id;
  e.arg = arg;
  e.name = name;
  e.phase = 'i';
  Recorder::instance().ring_for_this_thread().record(e);
}

void trace_async_begin(const char* name, std::uint64_t id,
                       std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.id = id;
  e.arg = arg;
  e.name = name;
  e.phase = 'b';
  Recorder::instance().ring_for_this_thread().record(e);
}

void trace_async_end(const char* name, std::uint64_t id, std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.id = id;
  e.arg = arg;
  e.name = name;
  e.phase = 'e';
  Recorder::instance().ring_for_this_thread().record(e);
}

TraceSpan::TraceSpan(const char* name, std::uint64_t id, std::uint64_t arg) {
  if (!trace_enabled()) return;
  armed_ = true;
  event_.ts_ns = now_ns();
  event_.id = id;
  event_.arg = arg;
  event_.name = name;
  event_.phase = 'X';
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  event_.dur_ns = now_ns() - event_.ts_ns;
  Recorder::instance().ring_for_this_thread().record(event_);
}

TraceStats trace_stats() {
  Recorder& r = Recorder::instance();
  TraceStats stats;
  std::lock_guard lock(r.mu);
  stats.threads = r.rings.size();
  for (const auto& ring : r.rings) {
    std::lock_guard rlock(ring->mu);
    stats.recorded += ring->next;
    const std::uint64_t retained =
        std::min<std::uint64_t>(ring->next, ring->capacity);
    stats.retained += retained;
    stats.dropped += ring->next - retained;
  }
  return stats;
}

std::string trace_chrome_json() {
  Recorder& r = Recorder::instance();
  std::vector<ExportedEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  {
    std::lock_guard lock(r.mu);
    for (const auto& ring : r.rings) {
      std::lock_guard rlock(ring->mu);
      if (!ring->thread_name.empty()) {
        thread_names.emplace_back(ring->tid, ring->thread_name);
      }
      const std::uint64_t count =
          std::min<std::uint64_t>(ring->next, ring->capacity);
      for (std::uint64_t i = ring->next - count; i < ring->next; ++i) {
        const TraceEvent& e =
            ring->events[static_cast<std::size_t>(i % ring->capacity)];
        events.push_back(ExportedEvent{e, ring->tid});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ExportedEvent& a, const ExportedEvent& b) {
              return a.event.ts_ns < b.event.ts_ns;
            });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(out, tid);
    out += ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}";
  }
  for (const ExportedEvent& ee : events) {
    const TraceEvent& e = ee.event;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(e.name != nullptr ? e.name : "?");
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    append_u64(out, ee.tid);
    out += ",\"ts\":";
    append_ts_us(out, e.ts_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      append_ts_us(out, e.dur_ns);
    }
    if (e.phase == 'b' || e.phase == 'e') {
      // Async events match on (cat, id, name); the LSN is the id, so one
      // logical commit's begin/end pair joins across threads.
      out += ",\"cat\":\"pipeline\",\"id\":\"0x";
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%llx",
                    static_cast<unsigned long long>(e.id));
      out += hex;
      out += "\"";
    } else if (e.phase == 'i') {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"lsn\":";
    append_u64(out, e.id);
    out += ",\"v\":";
    append_u64(out, e.arg);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool trace_write_chrome_json(const std::string& path) {
  const std::string json = trace_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

void trace_clear() {
  Recorder& r = Recorder::instance();
  std::lock_guard lock(r.mu);
  for (const auto& ring : r.rings) {
    std::lock_guard rlock(ring->mu);
    ring->next = 0;
  }
}

}  // namespace cpkcore::obs
