// StatsSampler — time-series capture for the flight recorder.
//
// A background thread samples a MetricsRegistry at a configurable interval
// and appends one JSON line per sample to a file (or stdout), so a gauge's
// evolution over a run — queue depths, durable lag, replica lag, budget —
// is a chartable series instead of a single end-of-run number. stop() (and
// the destructor) takes one final sample, so even an interval longer than
// the run still dumps the end state; request_sample() asks for an
// off-schedule sample from anywhere — including a signal handler (it only
// sets an atomic flag; the sampler thread polls it every poll tick).
//
//   MetricsRegistry ──snapshot()──▶ sampler thread ──▶ path (JSON lines)
//          ▲                            ▲ interval_ms ticks
//          │                            └ request_sample() (SIGUSR1 hook)
//          └ components' collect callbacks
//
// An optional on_sample callback observes every snapshot on the sampler
// thread — the hook the cluster layer's feedback loop (replica lag /
// read p99 into the batch sizer) rides on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace cpkcore::obs {

struct SamplerOptions {
  /// Output file (appended; one JSON object per line). Empty = stdout.
  std::string path;

  /// No output at all: snapshots are taken on schedule and handed to
  /// on_sample only. This is how ShardGroup runs its internal feedback
  /// loop — the sampler as a periodic-snapshot driver, not a recorder.
  bool quiet = false;

  /// Sampling period. The sampler wakes every poll tick (min(interval,
  /// 100ms)) to honor request_sample() and stop() promptly.
  std::uint64_t interval_ms = 1000;

  /// Registry to sample. Defaults to the process-wide registry.
  MetricsRegistry* registry = nullptr;

  /// Runs on the sampler thread after each snapshot is written.
  std::function<void(const MetricsSnapshot&)> on_sample;
};

class StatsSampler {
 public:
  /// Opens the output and starts the sampler thread. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit StatsSampler(SamplerOptions options);

  /// stop()s (final sample + flush) if still running.
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Requests an immediate off-schedule sample. Async-signal-safe: only
  /// sets an atomic flag (the sample itself runs on the sampler thread
  /// within one poll tick).
  void request_sample() {
    dump_requested_.store(true, std::memory_order_relaxed);
  }

  /// Takes the final sample, joins the thread, flushes and closes the
  /// output. Idempotent.
  void stop();

  /// Samples written so far.
  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void run();
  void take_sample();

  SamplerOptions options_;
  std::FILE* out_ = nullptr;
  bool owns_out_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // under mu_
  std::atomic<bool> dump_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::thread thread_;
};

}  // namespace cpkcore::obs
