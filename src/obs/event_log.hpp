// EventLog — the structured event journal of the health plane.
//
// Metrics answer "how much / how fast"; the event journal answers "what
// happened and when": discrete state transitions — WAL engine degradation,
// v3→v4 migration, checkpoint begin/end, replica catch-up source switches,
// backpressure episodes, apply-thread errors — as structured records
// (severity, component, name, key/value fields, monotonic seq) instead of
// printf lines. Events are *rare* by design; the hot path never emits.
//
//   emit site ──emit(sev, component, name, fields)──▶ EventLog
//       │                                               │ in-memory ring
//       │                                               │ (bounded, newest
//       │                                               │  overwrite oldest)
//       │                                               ├─▶ JSON-lines sink
//       │                                               └─▶ subscribers
//       └ rate limit: per (component, name) token window; suppressed
//         events are counted and surface on the key's next allowed event
//
// Emit sites use the process-wide instance() directly (like the trace
// plane) so no EventLog* threads through every constructor; tests build
// private instances. Subscribers run on the emitting thread under the
// journal lock and MUST NOT emit events or call back into the emitter.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpkcore::obs {

enum class Severity { kDebug, kInfo, kWarn, kError };

[[nodiscard]] const char* severity_name(Severity s);

/// One journal record. Fields are ordered key/value string pairs (emit
/// sites std::to_string numbers; order is preserved in exports).
struct Event {
  std::uint64_t seq = 0;           ///< monotone per-journal sequence
  std::uint64_t wall_unix_ms = 0;  ///< system clock at emit
  std::uint64_t mono_ns = 0;       ///< steady clock at emit
  Severity severity = Severity::kInfo;
  std::string component;  ///< emitting component ("p0.service", "wal", ...)
  std::string name;       ///< event kind ("checkpoint_begin", ...)
  std::vector<std::pair<std::string, std::string>> fields;

  /// {"seq":..,"ts_ms":..,"severity":"..","component":"..","event":"..,
  ///  "fields":{...}}
  [[nodiscard]] std::string to_json() const;
};

struct EventLogOptions {
  /// Ring capacity in events; the newest event overwrites the oldest once
  /// full (overwrites are counted, never silent).
  std::size_t capacity = 1024;

  /// Per-(component, name) rate limit: at most `rate_limit_burst` events
  /// per window; the rest are suppressed (counted; the key's next allowed
  /// event carries a "suppressed" field). 0 ms disables limiting.
  std::uint64_t rate_limit_window_ms = 1000;
  std::uint64_t rate_limit_burst = 8;

  /// Optional JSON-lines sink: every admitted event is appended (and
  /// flushed) as one line. Empty = in-memory only.
  std::string json_path;
};

class EventLog {
 public:
  /// The process-wide journal every instrumented layer emits to (the
  /// analogue of MetricsRegistry::instance()).
  static EventLog& instance();

  using Fields = std::vector<std::pair<std::string, std::string>>;
  using Subscriber = std::function<void(const Event&)>;

  /// Opens the JSON sink (if configured) and stands the ring up. Throws
  /// std::runtime_error when json_path cannot be opened.
  explicit EventLog(EventLogOptions options = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event (thread-safe). Rate-limited per (component, name);
  /// suppressed events only bump a counter. Subscribers run inline under
  /// the journal lock — they must not emit or block.
  void emit(Severity severity, std::string component, std::string name,
            Fields fields = {});

  /// The newest `n` events, oldest first.
  [[nodiscard]] std::vector<Event> tail(std::size_t n) const;

  /// The newest `n` events as a JSON array (oldest first).
  [[nodiscard]] std::string tail_json(std::size_t n) const;

  /// Registers a subscriber; returns an id for unsubscribe().
  std::uint64_t subscribe(Subscriber fn);

  /// After return the callback will not run again (emit holds the lock
  /// across delivery).
  void unsubscribe(std::uint64_t id);

  struct Stats {
    std::uint64_t emitted = 0;      ///< admitted to the ring
    std::uint64_t overwritten = 0;  ///< evicted by ring wraparound
    std::uint64_t suppressed = 0;   ///< dropped by the rate limiter
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t capacity() const { return options_.capacity; }

 private:
  struct RateState {
    std::uint64_t window_start_ns = 0;
    std::uint64_t in_window = 0;   ///< admitted this window
    std::uint64_t suppressed = 0;  ///< pending "suppressed" annotation
  };

  EventLogOptions options_;
  std::FILE* sink_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Event> ring_;    // under mu_; ring_[seq % capacity]
  std::uint64_t next_seq_ = 0;  // under mu_
  Stats stats_{};               // under mu_
  std::unordered_map<std::string, RateState> rate_;  // under mu_
  std::vector<std::pair<std::uint64_t, Subscriber>> subscribers_;  // mu_
  std::uint64_t next_subscriber_id_ = 1;  // under mu_
};

}  // namespace cpkcore::obs
