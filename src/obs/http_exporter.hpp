// HttpExporter — the embedded scrape endpoint of the health plane.
//
// A minimal HTTP/1.0 listener (raw POSIX sockets, one accept thread, no
// keep-alive, Connection: close) — the codebase's first network surface —
// that serves the flight recorder and health plane to curl / Prometheus:
//
//   GET /metrics        Prometheus text exposition of the registry
//   GET /healthz        HealthMonitor rollup JSON; 200 when nothing is
//                       stalled, 503 otherwise (degraded stays 200 —
//                       load-balancer semantics, not alerting semantics)
//   GET /vars           MetricsSnapshot JSON (one flat object)
//   GET /events[?n=K]   EventLog tail as a JSON array (default 100)
//
// Binds 127.0.0.1 by default (an operator opts into wider exposure);
// port 0 asks the kernel for an ephemeral port — port() reports it, which
// is what the tests use. Requests are served inline on the accept thread:
// scrapes are rare and cheap, and one thread means no connection pool to
// size or leak. The exporter only *reads* the registry/journal/monitor,
// so it can start before or after the components it exports.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace cpkcore::obs {

class EventLog;
class HealthMonitor;
class MetricsRegistry;

struct HttpExporterOptions {
  /// TCP port to listen on; 0 = kernel-assigned ephemeral (see port()).
  std::uint16_t port = 0;

  /// Listen address. Loopback by default.
  std::string bind_address = "127.0.0.1";

  /// Registry behind /metrics and /vars (nullptr = process-wide).
  MetricsRegistry* registry = nullptr;

  /// Journal behind /events (nullptr = process-wide).
  EventLog* events = nullptr;

  /// Monitor behind /healthz (nullptr = /healthz reports 200 "ok" with
  /// "monitor":false — serving without a watchdog is not an error).
  HealthMonitor* health = nullptr;

  /// Default /events tail length when ?n= is absent.
  std::size_t events_tail = 100;
};

class HttpExporter {
 public:
  /// Binds, listens, and starts the accept thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  explicit HttpExporter(HttpExporterOptions options);

  /// stop()s if still running.
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The bound port (the kernel's pick under port = 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Joins the accept thread and closes the listen socket. Idempotent.
  void stop();

  struct Stats {
    std::uint64_t requests = 0;     ///< well-formed GETs routed
    std::uint64_t bad_requests = 0; ///< unparseable or non-GET
  };
  [[nodiscard]] Stats stats() const {
    return {requests_.load(std::memory_order_relaxed),
            bad_requests_.load(std::memory_order_relaxed)};
  }

 private:
  void run();
  void serve(int fd);

  HttpExporterOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::thread thread_;
};

}  // namespace cpkcore::obs
