#include "apps/matching.hpp"

#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "util/rng.hpp"

namespace cpkcore::apps {

std::size_t Matching::size() const {
  std::size_t matched = 0;
  for (vertex_t m : mate) matched += (m != kNoVertex) ? 1 : 0;
  return matched / 2;
}

namespace {
std::uint64_t edge_priority(vertex_t u, vertex_t v, std::uint64_t seed) {
  const Edge e = Edge{u, v}.canonical();
  return hash64(e.key() ^ seed);
}
}  // namespace

Matching maximal_matching(const PLDS& plds, std::uint64_t seed) {
  const vertex_t n = plds.num_vertices();
  Matching m;
  m.mate.assign(n, kNoVertex);

  // Live vertices: unmatched with at least one unmatched neighbor.
  auto live = parallel_pack<vertex_t>(
      n,
      [&](std::size_t v) {
        return plds.degree(static_cast<vertex_t>(v)) > 0;
      },
      [](std::size_t v) { return static_cast<vertex_t>(v); });

  std::vector<std::atomic<vertex_t>> proposal(n);
  while (!live.empty()) {
    // 1. Each live vertex proposes along its minimum-priority live edge.
    parallel_for(0, live.size(), [&](std::size_t i) {
      const vertex_t v = live[i];
      vertex_t best = kNoVertex;
      std::uint64_t best_pri = ~std::uint64_t{0};
      for (vertex_t w : plds.neighbors(v)) {
        if (m.mate[w] != kNoVertex) continue;
        const std::uint64_t pri = edge_priority(v, w, seed);
        if (pri < best_pri || (pri == best_pri && w < best)) {
          best_pri = pri;
          best = w;
        }
      }
      proposal[v].store(best, std::memory_order_relaxed);
    });
    // 2. Mutual proposals match.
    parallel_for(0, live.size(), [&](std::size_t i) {
      const vertex_t v = live[i];
      const vertex_t w = proposal[v].load(std::memory_order_relaxed);
      if (w != kNoVertex && w < n &&
          proposal[w].load(std::memory_order_relaxed) == v && v < w) {
        // Exactly one writer per pair (v < w), both slots disjoint.
        m.mate[v] = w;
        m.mate[w] = v;
      }
    });
    // 3. Drop matched vertices and vertices with no unmatched neighbor.
    live = parallel_filter(live, [&](vertex_t v) {
      if (m.mate[v] != kNoVertex) return false;
      for (vertex_t w : plds.neighbors(v)) {
        if (m.mate[w] == kNoVertex) return true;
      }
      return false;
    });
  }
  return m;
}

bool is_valid_matching(const PLDS& plds, const Matching& m) {
  for (vertex_t v = 0; v < plds.num_vertices(); ++v) {
    const vertex_t w = m.mate[v];
    if (w == kNoVertex) continue;
    if (w >= plds.num_vertices()) return false;
    if (m.mate[w] != v) return false;
    if (!plds.has_edge(v, w)) return false;
  }
  return true;
}

bool is_maximal_matching(const PLDS& plds, const Matching& m) {
  for (vertex_t v = 0; v < plds.num_vertices(); ++v) {
    if (m.mate[v] != kNoVertex) continue;
    for (vertex_t w : plds.neighbors(v)) {
      if (m.mate[w] == kNoVertex) return false;
    }
  }
  return true;
}

}  // namespace cpkcore::apps
