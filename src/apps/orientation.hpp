// Low out-degree orientation from the level structure — the first of the
// paper's §9 "closely related problems". Orienting every edge toward the
// endpoint that is higher in the LDS (ties broken toward the larger id)
// bounds each vertex's out-degree by its Invariant-1 threshold, i.e. an
// O(alpha)-orientation where alpha is the graph's arboricity. This is the
// classic application of the Bhattacharya et al. / Henzinger et al. level
// structure, and what the PLDS paper (Liu et al. SPAA 2022) uses for its
// related-problem reductions.
#pragma once

#include <vector>

#include "plds/plds.hpp"
#include "util/types.hpp"

namespace cpkcore::apps {

/// An acyclic orientation: out[v] lists v's out-neighbors.
struct Orientation {
  std::vector<std::vector<vertex_t>> out;

  [[nodiscard]] std::size_t out_degree(vertex_t v) const {
    return out[v].size();
  }
  [[nodiscard]] std::size_t max_out_degree() const;
  [[nodiscard]] std::size_t num_edges() const;
};

/// Extracts the orientation from a quiescent PLDS/CPLDS snapshot. Edge
/// (u, v) is oriented u -> v iff level(u) < level(v), or levels are equal
/// and u < v. Out-degree of every vertex is bounded by its up-degree, which
/// Invariant 1 caps at (2 + 3/lambda)(1+delta)^{group(level)}.
Orientation extract_orientation(const PLDS& plds);

/// Theoretical out-degree cap for vertex v under the snapshot's invariants.
double orientation_bound(const PLDS& plds, vertex_t v);

}  // namespace cpkcore::apps
