// Approximate densest subgraph from the level structure (paper §9). The
// classic peeling connection: among the "suffix" subgraphs induced by all
// vertices at level >= L (one candidate per group boundary), the best
// density is a 2(1+epsilon)-approximation of the maximum subgraph density,
// because the level structure is a refinement of the peeling order.
#pragma once

#include <vector>

#include "plds/plds.hpp"
#include "util/types.hpp"

namespace cpkcore::apps {

struct DensestResult {
  std::vector<vertex_t> vertices;  ///< members of the best suffix subgraph
  double density = 0;              ///< edges / vertices of that subgraph
};

/// Sweeps the group boundaries of a quiescent snapshot and returns the
/// densest suffix subgraph.
DensestResult approx_densest_subgraph(const PLDS& plds);

/// Exact density of the subgraph induced by `vertices` (test helper).
double induced_density(const PLDS& plds,
                       const std::vector<vertex_t>& vertices);

}  // namespace cpkcore::apps
