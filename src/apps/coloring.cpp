#include "apps/coloring.hpp"

#include <algorithm>
#include <numeric>

namespace cpkcore::apps {

Coloring level_order_coloring(const PLDS& plds) {
  const vertex_t n = plds.num_vertices();
  std::vector<vertex_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vertex_t a, vertex_t b) {
    const level_t la = plds.level(a);
    const level_t lb = plds.level(b);
    return la != lb ? la > lb : a > b;
  });

  Coloring c;
  c.color.assign(n, ~color_t{0});
  std::vector<std::uint32_t> taken_stamp;
  std::uint32_t stamp = 0;
  for (vertex_t v : order) {
    ++stamp;
    // Mark colors taken by already-colored neighbors. Only `up` neighbors
    // (same level with larger id, or higher level) can be colored already,
    // so the scan and the palette are bounded by the up-degree.
    const auto up = plds.up_neighbors(v);
    if (taken_stamp.size() < up.size() + 1) {
      taken_stamp.resize(up.size() + 1, 0);
    }
    const level_t lv = plds.level(v);
    for (vertex_t w : up) {
      const level_t lw = plds.level(w);
      const bool colored_before = lw > lv || (lw == lv && w > v);
      if (!colored_before) continue;
      const color_t cw = c.color[w];
      if (cw < taken_stamp.size()) taken_stamp[cw] = stamp;
    }
    color_t pick = 0;
    while (pick < taken_stamp.size() && taken_stamp[pick] == stamp) ++pick;
    c.color[v] = pick;
    c.num_colors = std::max(c.num_colors, pick + 1);
  }
  return c;
}

bool is_proper(const PLDS& plds, const Coloring& coloring) {
  for (vertex_t v = 0; v < plds.num_vertices(); ++v) {
    for (vertex_t w : plds.neighbors(v)) {
      if (coloring.color[v] == coloring.color[w]) return false;
    }
  }
  return true;
}

}  // namespace cpkcore::apps
