#include "apps/densest.hpp"

#include <algorithm>

#include "parallel/primitives.hpp"
#include "util/flat_set.hpp"

namespace cpkcore::apps {

double induced_density(const PLDS& plds,
                       const std::vector<vertex_t>& vertices) {
  if (vertices.empty()) return 0;
  IntSet<vertex_t> members;
  for (vertex_t v : vertices) members.insert(v);
  std::size_t twice_edges = 0;
  for (vertex_t v : vertices) {
    for (vertex_t w : plds.neighbors(v)) {
      twice_edges += members.contains(w) ? 1 : 0;
    }
  }
  return static_cast<double>(twice_edges) /
         (2.0 * static_cast<double>(vertices.size()));
}

DensestResult approx_densest_subgraph(const PLDS& plds) {
  const vertex_t n = plds.num_vertices();
  const auto& params = plds.params();

  // Sort vertices by level once; sweep suffixes at group boundaries. For a
  // suffix S_L = {v : level(v) >= L}, the induced edge count is the number
  // of (v, up-neighbor) pairs with both endpoints in S_L, computable from
  // each member's up-degree restricted to S_L. Since up-neighbors of a
  // member are at >= its level >= L, every up-neighbor is in S_L:
  // |E(S_L)| = sum over v in S_L of |up(v)| minus same-level double counts.
  std::vector<vertex_t> by_level(n);
  for (vertex_t v = 0; v < n; ++v) by_level[v] = v;
  std::sort(by_level.begin(), by_level.end(), [&](vertex_t a, vertex_t b) {
    return plds.level(a) > plds.level(b);
  });

  DensestResult best;
  std::size_t suffix_size = 0;
  std::size_t suffix_half_edges = 0;  // up-edges, same-level counted twice
  std::size_t idx = 0;
  level_t prev_boundary = params.num_levels();
  // Walk boundaries downward one group at a time.
  for (int g = params.num_groups() - 1; g >= 0; --g) {
    const level_t boundary = g * params.levels_per_group();
    while (idx < by_level.size() && plds.level(by_level[idx]) >= boundary) {
      const vertex_t v = by_level[idx];
      // Count up-neighbors, splitting same-level (double-counted when both
      // endpoints are in the suffix) from strictly-higher.
      const level_t lv = plds.level(v);
      for (vertex_t w : plds.up_neighbors(v)) {
        suffix_half_edges += (plds.level(w) == lv) ? 1 : 2;
      }
      ++suffix_size;
      ++idx;
    }
    if (suffix_size == 0 || boundary == prev_boundary) continue;
    prev_boundary = boundary;
    const double density = static_cast<double>(suffix_half_edges) /
                           (2.0 * static_cast<double>(suffix_size));
    if (density > best.density) {
      best.density = density;
      best.vertices.assign(by_level.begin(),
                           by_level.begin() +
                               static_cast<std::ptrdiff_t>(suffix_size));
    }
  }
  return best;
}

}  // namespace cpkcore::apps
