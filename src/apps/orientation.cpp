#include "apps/orientation.hpp"

#include <algorithm>

#include "parallel/scheduler.hpp"

namespace cpkcore::apps {

std::size_t Orientation::max_out_degree() const {
  std::size_t mx = 0;
  for (const auto& o : out) mx = std::max(mx, o.size());
  return mx;
}

std::size_t Orientation::num_edges() const {
  std::size_t m = 0;
  for (const auto& o : out) m += o.size();
  return m;
}

Orientation extract_orientation(const PLDS& plds) {
  const vertex_t n = plds.num_vertices();
  Orientation o;
  o.out.resize(n);
  parallel_for(0, n, [&](std::size_t vi) {
    const auto v = static_cast<vertex_t>(vi);
    const level_t lv = plds.level(v);
    // Out-edges go to strictly-higher neighbors, or same-level neighbors
    // with a larger id — all of which live in v's `up` bucket.
    for (vertex_t w : plds.up_neighbors(v)) {
      const level_t lw = plds.level(w);
      if (lw > lv || (lw == lv && w > v)) o.out[v].push_back(w);
    }
    std::sort(o.out[v].begin(), o.out[v].end());
  });
  return o;
}

double orientation_bound(const PLDS& plds, vertex_t v) {
  const auto& p = plds.params();
  return p.upper_threshold(p.group_of_level(plds.level(v)));
}

}  // namespace cpkcore::apps
