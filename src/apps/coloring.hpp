// Greedy vertex coloring driven by the level structure (paper §9). Coloring
// vertices in decreasing level order (ties by id) means each vertex only
// competes with its already-colored `up` neighbors, so the color count is
// bounded by 1 + max Invariant-1 threshold — an O(alpha)-coloring.
#pragma once

#include <cstdint>
#include <vector>

#include "plds/plds.hpp"
#include "util/types.hpp"

namespace cpkcore::apps {

using color_t = std::uint32_t;

struct Coloring {
  std::vector<color_t> color;
  color_t num_colors = 0;
};

/// Colors a quiescent snapshot. Deterministic.
Coloring level_order_coloring(const PLDS& plds);

/// True iff no edge of the snapshot is monochromatic (test helper).
bool is_proper(const PLDS& plds, const Coloring& coloring);

}  // namespace cpkcore::apps
