// Parallel maximal matching (paper §9). Random-priority symmetry breaking:
// in each round every unmatched vertex proposes along its minimum-priority
// incident live edge; edges chosen by both endpoints join the matching.
// Expected O(log n) rounds (Luby-style), each round fully parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "plds/plds.hpp"
#include "util/types.hpp"

namespace cpkcore::apps {

struct Matching {
  /// mate[v] = matched partner, or kNoVertex.
  std::vector<vertex_t> mate;

  [[nodiscard]] std::size_t size() const;
};

/// Computes a maximal matching of a quiescent snapshot. Deterministic for a
/// fixed seed.
Matching maximal_matching(const PLDS& plds, std::uint64_t seed = 1);

/// Test helpers: validity (mates are mutual, edges exist) and maximality
/// (no edge with both endpoints unmatched).
bool is_valid_matching(const PLDS& plds, const Matching& m);
bool is_maximal_matching(const PLDS& plds, const Matching& m);

}  // namespace cpkcore::apps
