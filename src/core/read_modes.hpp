// The read strategies evaluated in the paper (§7, "Evaluated Algorithms")
// plus the descriptor-path ablation mode, dispatched uniformly for the
// workload harness.
#pragma once

#include <string_view>

#include "core/cplds.hpp"

namespace cpkcore {

enum class ReadMode {
  kCplds,     ///< this paper: wait-free linearizable reads (published view)
  kCpldsDag,  ///< Algorithm 4 descriptor/DAG double-collect (ablations)
  kSyncReads, ///< baseline: reads wait for the current batch to finish
  kNonSync,   ///< baseline: view-backed, possibly stale, never torn
};

[[nodiscard]] std::string_view to_string(ReadMode mode);

/// Parses "cplds" / "dag" ("cplds-dag") / "sync" / "nonsync"; throws
/// std::invalid_argument.
[[nodiscard]] ReadMode parse_read_mode(std::string_view name);

/// Performs one coreness read with the given strategy.
[[nodiscard]] double read_with_mode(const CPLDS& ds, vertex_t v,
                                    ReadMode mode);

/// Level-returning variant (same synchronization per mode).
[[nodiscard]] level_t read_level_with_mode(const CPLDS& ds, vertex_t v,
                                           ReadMode mode);

}  // namespace cpkcore
