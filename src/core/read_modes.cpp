#include "core/read_modes.hpp"

#include <stdexcept>
#include <string>

namespace cpkcore {

std::string_view to_string(ReadMode mode) {
  switch (mode) {
    case ReadMode::kCplds:
      return "CPLDS";
    case ReadMode::kCpldsDag:
      return "CPLDS-DAG";
    case ReadMode::kSyncReads:
      return "SyncReads";
    case ReadMode::kNonSync:
      return "NonSync";
  }
  return "?";
}

ReadMode parse_read_mode(std::string_view name) {
  if (name == "cplds" || name == "CPLDS") return ReadMode::kCplds;
  if (name == "dag" || name == "cplds-dag" || name == "CPLDS-DAG") {
    return ReadMode::kCpldsDag;
  }
  if (name == "sync" || name == "SyncReads") return ReadMode::kSyncReads;
  if (name == "nonsync" || name == "NonSync") return ReadMode::kNonSync;
  throw std::invalid_argument("unknown read mode: " + std::string(name));
}

double read_with_mode(const CPLDS& ds, vertex_t v, ReadMode mode) {
  switch (mode) {
    case ReadMode::kCplds:
      return ds.read_coreness(v);
    case ReadMode::kCpldsDag:
      return ds.read_coreness_dag(v);
    case ReadMode::kSyncReads:
      return ds.read_coreness_sync(v);
    case ReadMode::kNonSync:
      return ds.read_coreness_nonsync(v);
  }
  return 0.0;
}

level_t read_level_with_mode(const CPLDS& ds, vertex_t v, ReadMode mode) {
  switch (mode) {
    case ReadMode::kCplds:
      return ds.read_level(v);
    case ReadMode::kCpldsDag:
      return ds.read_level_dag(v);
    case ReadMode::kSyncReads:
      return ds.read_level_sync(v);
    case ReadMode::kNonSync:
      return ds.read_level_nonsync(v);
  }
  return kNoLevel;
}

}  // namespace cpkcore
