#include "core/snapshot.hpp"

#include <fstream>
#include <stdexcept>

namespace cpkcore {

namespace {
constexpr char kMagic[] = "cpkcore-snapshot-v1";
}

void save_snapshot(const CPLDS& ds, const std::string& path) {
  save_snapshot(ds.num_vertices(), collect_snapshot_edges(ds), path);
}

std::vector<Edge> collect_snapshot_edges(const CPLDS& ds) {
  // Enumerate canonical edges from the quiescent level buckets.
  const PLDS& plds = ds.plds();
  std::vector<Edge> edges;
  edges.reserve(ds.num_edges());
  for (vertex_t v = 0; v < ds.num_vertices(); ++v) {
    for (vertex_t w : plds.neighbors(v)) {
      if (w > v) edges.push_back({v, w});
    }
  }
  if (edges.size() != ds.num_edges()) {
    throw std::runtime_error("snapshot edge count mismatch");
  }
  return edges;
}

void save_snapshot(vertex_t num_vertices, const std::vector<Edge>& edges,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << kMagic << '\n' << num_vertices << '\n';
  for (const Edge& e : edges) {
    out << e.u << ' ' << e.v << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::unique_ptr<CPLDS> load_snapshot(const std::string& path,
                                     const SnapshotLoadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open snapshot: " + path);
  std::string magic;
  if (!std::getline(in, magic) || magic != kMagic) {
    throw std::runtime_error("bad snapshot header in " + path);
  }
  vertex_t n = 0;
  if (!(in >> n) || n < 2) {
    throw std::runtime_error("bad vertex count in " + path);
  }
  std::vector<Edge> edges;
  vertex_t u = 0;
  vertex_t v = 0;
  while (in >> u >> v) {
    if (u >= n || v >= n) {
      throw std::runtime_error("edge out of range in " + path);
    }
    edges.push_back({u, v});
  }
  auto ds = std::make_unique<CPLDS>(
      n,
      LDSParams::create(n, options.delta, options.lambda,
                        options.levels_per_group_cap),
      options.cplds);
  ds->insert_batch(std::move(edges));
  return ds;
}

}  // namespace cpkcore
