#include "core/cplds.hpp"

#include <algorithm>

#include "concurrent/reclaim.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace cpkcore {

CPLDS::CPLDS(vertex_t num_vertices, LDSParams params, Options options)
    : options_(options),
      plds_(num_vertices, std::move(params)),
      desc_(num_vertices),
      uf_(num_vertices),
      reclaimer_(options.reclaimer != nullptr
                     ? options.reclaimer
                     : &concurrent::global_reclaimer()),
      marked_list_(num_vertices, kNoVertex) {
  // Initial published view: every vertex at level 0, matching the fresh
  // PLDS. Readers can run from the first instant.
  view_.store(LevelView::initial(num_vertices, 0),
              std::memory_order_release);
  if (options_.track_dependencies) {
    PLDS::Hooks hooks;
    hooks.on_mark = [this](vertex_t v, level_t old_level,
                           std::span<const vertex_t> triggers) {
      on_mark(v, old_level, triggers);
    };
    hooks.is_marked = [this](vertex_t v) { return desc_.marked(v); };
    plds_.set_hooks(std::move(hooks));
  }
}

CPLDS::~CPLDS() {
  // No readers at destruction (contract); retired views are the
  // reclaimer's to free, the current view is ours.
  LevelView::destroy(view_.load(std::memory_order_relaxed));
}

std::vector<Edge> CPLDS::apply(const UpdateBatch& batch) {
  return batch.kind == UpdateKind::kInsert ? insert_batch(batch.edges)
                                           : delete_batch(batch.edges);
}

std::size_t CPLDS::apply_mixed(const std::vector<Update>& updates) {
  std::size_t applied = 0;
  for (const UpdateBatch& batch : split_batches(updates)) {
    applied += apply(batch).size();
  }
  return applied;
}

std::vector<Edge> CPLDS::delete_vertices(
    std::span<const vertex_t> vertices) {
  // Quiescent adjacency enumeration (update path), then one deletion batch;
  // delete_batch dedups edges shared by two deleted vertices.
  std::vector<Edge> incident;
  for (vertex_t v : vertices) {
    for (vertex_t w : plds_.neighbors(v)) {
      incident.push_back(Edge{v, w}.canonical());
    }
  }
  return delete_batch(std::move(incident));
}

std::vector<Edge> CPLDS::insert_batch(std::vector<Edge> edges) {
  // Pre-normalize so the batch adjacency (used by the marked-batch-neighbor
  // rule) covers exactly the edges that will be applied.
  normalize_edges(edges);
  edges = parallel_filter(
      edges, [&](const Edge& e) { return !plds_.has_edge(e.u, e.v); });

  begin_batch(edges);
  auto applied = plds_.insert_batch(edges);
  finish_batch(applied.size());
  return applied;
}

std::vector<Edge> CPLDS::delete_batch(std::vector<Edge> edges) {
  normalize_edges(edges);
  edges = parallel_filter(
      edges, [&](const Edge& e) { return plds_.has_edge(e.u, e.v); });

  begin_batch(edges);
  auto applied = plds_.delete_batch(edges);
  finish_batch(applied.size());
  return applied;
}

void CPLDS::begin_batch(const std::vector<Edge>& applied) {
  {
    std::lock_guard lock(sync_mu_);
    batch_active_ = true;
  }
  // Incremented at the *start* of every batch (paper Algorithm 1); readers
  // sandwich their collect between two loads of this counter.
  batch_number_.fetch_add(1, std::memory_order_seq_cst);

  // Batch adjacency: both directions of each applied edge, grouped by
  // endpoint, consulted by on_mark for the marked-batch-neighbor rule.
  batch_halves_.resize(applied.size() * 2);
  parallel_for(0, applied.size(), [&](std::size_t i) {
    batch_halves_[2 * i] = BatchHalf{applied[i].u, applied[i].v};
    batch_halves_[2 * i + 1] = BatchHalf{applied[i].v, applied[i].u};
  });
  auto groups =
      group_by_key(batch_halves_, [](const BatchHalf& h) { return h.at; });
  batch_adj_.clear();
  for (const GroupRange& g : groups) {
    batch_adj_.insert_or_assign(
        batch_halves_[g.begin].at,
        {static_cast<std::uint32_t>(g.begin),
         static_cast<std::uint32_t>(g.end)});
  }
  marked_count_.store(0, std::memory_order_seq_cst);
}

void CPLDS::on_mark(vertex_t v, level_t old_level,
                    std::span<const vertex_t> triggers) {
  const std::uint64_t batch = batch_number_.load(std::memory_order_relaxed);
  // Ordering matters for readers: (1) make v a fresh DAG root, (2) publish
  // the marked descriptor, (3) merge DAGs. A reader that sees v marked is
  // then guaranteed to traverse current-batch parent pointers only.
  uf_.reset(v, batch);
  desc_.mark(v, old_level, batch);
  marked_list_[marked_count_.fetch_add(1, std::memory_order_seq_cst)] = v;

  // Triggers: the PLDS's marked-neighbor scan (same-or-higher level for
  // insertions; below level-1 for deletions).
  for (vertex_t t : triggers) uf_.unite(v, t);

  // Marked batch neighbors (Lemma 6.3): scanning *after* publishing v's
  // descriptor guarantees that for any batch edge (u, v) where both
  // endpoints move, at least one endpoint's scan observes the other marked,
  // so their DAGs merge.
  if (const auto* range = batch_adj_.find(v)) {
    for (std::uint32_t i = range->first; i < range->second; ++i) {
      const vertex_t w = batch_halves_[i].other;
      if (desc_.marked(w)) uf_.unite(v, w);
    }
  }
}

void CPLDS::finish_batch(std::size_t applied_edges) {
  const std::size_t marked = marked_count_.load(std::memory_order_seq_cst);

  if (options_.capture_dags) {
    last_dags_.resize(marked);
    parallel_for(0, marked, [&](std::size_t i) {
      const vertex_t v = marked_list_[i];
      last_dags_[i] = {v, uf_.find(v)};
    });
  }

  // Algorithm 2's unmark_all: roots first, then everyone. The intermediate
  // state (root unmarked, members still marked) is exactly what the
  // check_DAG early exit relies on.
  parallel_for(0, marked, [&](std::size_t i) {
    const vertex_t v = marked_list_[i];
    if (uf_.parent(v) == v) desc_.unmark(v);
  });
  parallel_for(0, marked,
               [&](std::size_t i) { desc_.unmark(marked_list_[i]); });

  last_stats_ = BatchStats{applied_edges, marked};

  // Publish the batch's immutable level view (the linearization point of
  // the wait-free read path) and retire the predecessor. A batch that
  // moved nothing keeps the current view — no retire churn for no-ops.
  if (const auto moved = plds_.moved_vertices(); !moved.empty()) {
    const LevelView* old_view = view_.load(std::memory_order_relaxed);
    const LevelView* next_view = LevelView::successor(
        *old_view, moved, [this](vertex_t v) { return plds_.level(v); });
    // seq_cst swap: pairs with the readers' seq_cst epoch announce so a
    // reader that obtained old_view is visible as pinned to every
    // subsequent reclaimer scan.
    view_.store(next_view, std::memory_order_seq_cst);
    reclaimer_->retire(const_cast<LevelView*>(old_view),
                       &LevelView::destroy_erased);
  }

  {
    std::lock_guard lock(sync_mu_);
    batch_active_ = false;
  }
  sync_cv_.notify_all();
}

CPLDS::DagStatus CPLDS::check_dag(vertex_t v,
                                  DescriptorTable::word_t dv) const {
  if (!DescriptorTable::is_marked(dv)) return DagStatus::kUnmarked;
  vertex_t x = v;
  ConcurrentUnionFind::word_t wx = uf_.word(x);
  for (;;) {
    const vertex_t p = ConcurrentUnionFind::parent_of(wx);
    if (p == x) {
      // x is the root; its descriptor decides.
      return DescriptorTable::is_marked(desc_.word(x))
                 ? DagStatus::kMarked
                 : DagStatus::kUnmarked;
    }
    const DescriptorTable::word_t dp = desc_.word(p);
    if (options_.early_exit && !DescriptorTable::is_marked(dp)) {
      // Any unmarked descriptor on the way up implies the root is already
      // unmarked (roots are unmarked first).
      return DagStatus::kUnmarked;
    }
    const ConcurrentUnionFind::word_t wp = uf_.word(p);
    if (options_.path_compression) {
      const vertex_t gp = ConcurrentUnionFind::parent_of(wp);
      if (gp != p) uf_.compress(x, wx, gp);
    }
    x = p;
    wx = wp;
  }
}

level_t CPLDS::read_level(vertex_t v) const {
  // Wait-free: pin the reclamation guard, load the published view, index.
  // The seq_cst load pairs with the seq_cst swap in finish_batch and the
  // guard's seq_cst epoch announce (Dekker: a reader that still holds a
  // retired view is visible as pinned to every later reclaimer scan).
  const concurrent::Reclaimer::Guard guard = reclaimer_->read_guard();
  return view_.load(std::memory_order_seq_cst)->level(v);
}

double CPLDS::read_coreness(vertex_t v) const {
  return params().coreness_estimate(read_level(v));
}

level_t CPLDS::read_level_dag(vertex_t v) const {
  // Algorithm 4: double collect of the batch number around (level,
  // descriptor, DAG status, level).
  for (;;) {
    const std::uint64_t b1 = batch_number_.load(std::memory_order_seq_cst);
    const level_t l1 = plds_.level(v);
    const DescriptorTable::word_t dv = desc_.word(v);
    const DagStatus status = check_dag(v, dv);
    const level_t l2 = plds_.level(v);
    const std::uint64_t b2 = batch_number_.load(std::memory_order_seq_cst);
    if (b1 != b2) continue;  // spans a batch boundary: retry
    if (status == DagStatus::kMarked) {
      return DescriptorTable::old_level(dv);  // pre-batch level
    }
    if (l1 == l2) return l1;  // stable live level
    // Level moved under an unmarked observation: retry.
  }
}

double CPLDS::read_coreness_dag(vertex_t v) const {
  return params().coreness_estimate(read_level_dag(v));
}

double CPLDS::read_coreness_sync(vertex_t v) const {
  return params().coreness_estimate(read_level_sync(v));
}

level_t CPLDS::read_level_sync(vertex_t v) const {
  // The SyncReads baseline reads the *live* structure under quiescence —
  // it must stay the genuinely locked path the A/B bench compares against.
  std::unique_lock lock(sync_mu_);
  sync_cv_.wait(lock, [&] { return !batch_active_; });
  return plds_.level(v);
}

std::uint64_t CPLDS::view_version() const {
  const concurrent::Reclaimer::Guard guard = reclaimer_->read_guard();
  return view_.load(std::memory_order_seq_cst)->version();
}

}  // namespace cpkcore
