// CPLDS — the concurrent parallel level data structure (the paper's
// contribution, §4–§6): a PLDS whose batched updates track causal
// dependencies through operation descriptors and a dependency-DAG union-
// find, so that *asynchronous* reads of coreness estimates are linearizable
// and lock-free while batches run.
//
// Read path: the default read_coreness/read_level is *wait-free* — the
// update driver publishes an immutable LevelView per committed batch (one
// pointer swap in finish_batch) and readers pin a reclamation guard, load
// the pointer, and index it: no locks, no retries. Every read observes the
// pre-batch or post-batch levels in their entirety (the linearization point
// is the swap), which is strictly stronger than Algorithm 4's per-vertex
// guarantee. The paper's original descriptor/DAG protocol survives as
// read_coreness_dag/read_level_dag (lock-free with retries; the ablation
// benches exercise its §5.2/§5.3 optimizations). Retired views go through
// a pluggable concurrent::Reclaimer (Options::reclaimer; epoch-based by
// default).
//
// Threading contract:
//  * Updates: one driver thread calls insert_batch/delete_batch/apply; the
//    batch executes in parallel on the global scheduler.
//  * Reads: any number of reader threads may call read_coreness /
//    read_level (wait-free view read), read_coreness_dag (Algorithm 4),
//    read_coreness_nonsync (alias of the view read since the lock-free
//    read path landed — possibly stale, never torn), or read_coreness_sync
//    (the SyncReads baseline — waits for batch quiescence under a mutex)
//    at any time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "concurrent/descriptor_table.hpp"
#include "concurrent/union_find.hpp"
#include "core/level_view.hpp"
#include "graph/batch.hpp"
#include "plds/plds.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace cpkcore {

namespace concurrent {
class Reclaimer;
}  // namespace concurrent

class CPLDS {
 public:
  struct Options {
    /// Maintain operation descriptors and the dependency DAG during
    /// batches. Required for linearizable read_coreness/read_level; turn
    /// off to reproduce the paper's NonSync/SyncReads baselines, whose
    /// update path is the original PLDS without descriptor maintenance.
    bool track_dependencies = true;
    /// Compress DAG parent paths during reads and unions (§5.2
    /// optimization). Off only for the ablation bench.
    bool path_compression = true;
    /// Return UNMARKED as soon as any unmarked descriptor appears on the
    /// path to the root (§5.3 optimization). Off only for the ablation.
    bool early_exit = true;
    /// Test hook: capture (vertex, DAG root) pairs of all marked vertices
    /// at the end of every batch (before unmarking).
    bool capture_dags = false;
    /// Memory reclamation behind the wait-free read path: retired
    /// LevelViews are freed through this reclaimer once no reader can hold
    /// them. Null (the default) uses concurrent::global_reclaimer(); the
    /// serving layer wires a per-service instance (ServiceConfig::
    /// reclaimer) that must outlive the CPLDS.
    concurrent::Reclaimer* reclaimer = nullptr;
  };

  /// Per-batch bookkeeping, readable after each batch completes.
  struct BatchStats {
    std::size_t applied_edges = 0;
    std::size_t marked_vertices = 0;
  };

  CPLDS(vertex_t num_vertices, LDSParams params, Options options);
  CPLDS(vertex_t num_vertices, LDSParams params)
      : CPLDS(num_vertices, std::move(params), Options{}) {}

  ~CPLDS();

  CPLDS(const CPLDS&) = delete;
  CPLDS& operator=(const CPLDS&) = delete;

  // ---------------- update side ----------------

  /// Applies one homogeneous batch; returns the edges actually applied.
  std::vector<Edge> insert_batch(std::vector<Edge> edges);
  std::vector<Edge> delete_batch(std::vector<Edge> edges);
  std::vector<Edge> apply(const UpdateBatch& batch);

  /// Mixed update stream (paper §2: "in practice, batches contain a mix of
  /// insertions and deletions, which are separated into insertion and
  /// deletion sub-batches during pre-processing"). Applies each homogeneous
  /// run as its own batch; returns the number of applied updates.
  std::size_t apply_mixed(const std::vector<Update>& updates);

  /// Vertex deletion (paper §2 footnote 1: batch-dynamic edge solutions
  /// extend to vertex updates): removes every edge incident to the given
  /// vertices as one deletion batch and returns those edges. The ids remain
  /// valid (vertices are isolated, coreness estimate 1); vertex insertion
  /// is simply using a so-far-isolated id in a later edge batch.
  std::vector<Edge> delete_vertices(std::span<const vertex_t> vertices);

  // ---------------- read side ----------------

  /// Wait-free linearizable coreness estimate: one guard pin, one pointer
  /// load, one page index into the latest published LevelView. Returns the
  /// estimate at either the vertex's pre-batch or post-batch level, never
  /// an intermediate one (the swap in finish_batch is the linearization
  /// point of the whole batch).
  [[nodiscard]] double read_coreness(vertex_t v) const;

  /// Same guarantee, exposing the level the estimate derives from.
  [[nodiscard]] level_t read_level(vertex_t v) const;

  /// The paper's Algorithm 4: lock-free (not wait-free) double-collect
  /// over (level, descriptor, DAG status, level) with retries across batch
  /// boundaries. Requires Options::track_dependencies for linearizability;
  /// kept for the §5.2/§5.3 ablations and as the descriptor-path baseline.
  [[nodiscard]] double read_coreness_dag(vertex_t v) const;
  [[nodiscard]] level_t read_level_dag(vertex_t v) const;

  /// NonSync baseline. Historically the raw live level (racy against
  /// in-flight level stores); now routed through the published view, so
  /// "non-linearizable" means *possibly stale by one in-flight batch*,
  /// never torn or intermediate — operationally an alias of read_coreness.
  [[nodiscard]] double read_coreness_nonsync(vertex_t v) const {
    return read_coreness(v);
  }
  [[nodiscard]] level_t read_level_nonsync(vertex_t v) const {
    return read_level(v);
  }

  /// SyncReads baseline: blocks until no batch is active, then reads the
  /// live level (equivalent to queueing the read until the end of the
  /// batch, as in the paper's baseline).
  [[nodiscard]] double read_coreness_sync(vertex_t v) const;
  [[nodiscard]] level_t read_level_sync(vertex_t v) const;

  // ---------------- inspection ----------------

  [[nodiscard]] std::uint64_t batch_number() const {
    return batch_number_.load(std::memory_order_seq_cst);
  }
  /// Version of the currently published LevelView (counts batches that
  /// moved at least one vertex; no-op batches publish nothing).
  [[nodiscard]] std::uint64_t view_version() const;
  /// The reclaimer retiring this structure's views.
  [[nodiscard]] concurrent::Reclaimer& reclaimer() const {
    return *reclaimer_;
  }
  [[nodiscard]] vertex_t num_vertices() const {
    return plds_.num_vertices();
  }
  [[nodiscard]] std::size_t num_edges() const { return plds_.num_edges(); }
  [[nodiscard]] const LDSParams& params() const { return plds_.params(); }

  /// Quiescent-only access to the underlying PLDS (tests, validation).
  [[nodiscard]] const PLDS& plds() const { return plds_; }

  [[nodiscard]] const BatchStats& last_batch_stats() const {
    return last_stats_;
  }

  /// With Options::capture_dags: (vertex, DAG root) for every vertex marked
  /// in the most recent batch.
  [[nodiscard]] const std::vector<std::pair<vertex_t, vertex_t>>&
  last_batch_dags() const {
    return last_dags_;
  }

 private:
  enum class DagStatus { kMarked, kUnmarked };

  /// Algorithm 3: walks v's DAG parent chain; MARKED iff the root's
  /// descriptor is marked. Early-exits on any unmarked descriptor along the
  /// way (valid because roots are unmarked first) and compresses the path.
  [[nodiscard]] DagStatus check_dag(vertex_t v,
                                    DescriptorTable::word_t dv) const;

  /// PLDS hook (Algorithm 2): creates v's descriptor and merges v into the
  /// DAGs of its triggers and marked batch neighbors. Runs concurrently for
  /// distinct vertices.
  void on_mark(vertex_t v, level_t old_level,
               std::span<const vertex_t> triggers);

  /// Batch prologue: bumps the batch number, publishes batch adjacency for
  /// the marked-batch-neighbor rule, flags batch-active for SyncReads.
  void begin_batch(const std::vector<Edge>& applied);

  /// Batch epilogue: root-first unmarking (Algorithm 2's unmark_all),
  /// capture hooks, quiescence signal.
  void finish_batch(std::size_t applied_edges);

  Options options_;
  PLDS plds_;
  DescriptorTable desc_;
  mutable ConcurrentUnionFind uf_;
  std::atomic<std::uint64_t> batch_number_{0};

  // Wait-free read path: the published immutable view and its reclaimer
  // (never null after construction; outlives this object by contract).
  concurrent::Reclaimer* reclaimer_ = nullptr;
  std::atomic<const LevelView*> view_{nullptr};

  // Batch-scoped state (update path only).
  std::vector<vertex_t> marked_list_;
  std::atomic<std::size_t> marked_count_{0};
  struct BatchHalf {
    vertex_t at;
    vertex_t other;
  };
  std::vector<BatchHalf> batch_halves_;
  IntMap<vertex_t, std::pair<std::uint32_t, std::uint32_t>> batch_adj_;

  // SyncReads quiescence signaling.
  mutable std::mutex sync_mu_;
  mutable std::condition_variable sync_cv_;
  bool batch_active_ = false;

  BatchStats last_stats_;
  std::vector<std::pair<vertex_t, vertex_t>> last_dags_;
};

}  // namespace cpkcore
