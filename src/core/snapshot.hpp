// Quiescent snapshot save/restore for the CPLDS: persist the current edge
// set so a service can warm-restart without replaying its whole update
// history. The level structure itself is rebuilt on load (levels are a
// function of the rebalancing history, not part of the logical state; after
// reload the estimates satisfy the same approximation bound).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cplds.hpp"

namespace cpkcore {

/// Writes the snapshot (vertex count + canonical edge list) to `path`.
/// Quiescent use only. Throws std::runtime_error on IO failure.
void save_snapshot(const CPLDS& ds, const std::string& path);

/// Enumerates the current canonical edge list (u < v per edge). Quiescent
/// use only. This is the capture half of a streaming checkpoint: callers
/// copy the edges under their update lock (memory-bound pause), then write
/// them out with the overload below while updates resume.
std::vector<Edge> collect_snapshot_edges(const CPLDS& ds);

/// Writes a snapshot from an already-collected edge list — the streaming
/// half; runs with no claim on the structure. Throws on IO failure.
void save_snapshot(vertex_t num_vertices, const std::vector<Edge>& edges,
                   const std::string& path);

/// Parameters of the CPLDS rebuilt by load_snapshot. One struct instead of a
/// loose argument list so call sites (tests, the serving layer's
/// WAL-compaction path) can set one field without repeating the others.
struct SnapshotLoadOptions {
  double delta = kDefaultDelta;
  double lambda = kDefaultLambda;
  int levels_per_group_cap = kDefaultLevelsPerGroupCap;
  CPLDS::Options cplds{};
};

/// Rebuilds a CPLDS from a snapshot written by save_snapshot, applying all
/// edges as one insertion batch under the given options.
/// Throws std::runtime_error on IO/format errors.
std::unique_ptr<CPLDS> load_snapshot(
    const std::string& path,
    const SnapshotLoadOptions& options = SnapshotLoadOptions{});

}  // namespace cpkcore
