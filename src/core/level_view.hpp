// LevelView — the immutable per-batch snapshot behind the wait-free read
// path.
//
// The apply thread builds one LevelView per committed batch and publishes
// it with a single pointer swap; readers pin a reclamation guard, load the
// pointer, and index two arrays — no locks, no retries, no CAS. Views are
// copy-on-write at page granularity: a view is a table of refcounted pages
// (kPageSize levels each), and a successor copies only the pages containing
// vertices the batch moved, sharing every other page with its predecessor.
// A no-op batch therefore costs one pointer-vector copy; the initial view
// is every slot aliasing one zero page.
//
// Lifetime: pages are refcounted (writer/reclaimer side only — readers
// never touch the counts); whole views are freed through the Reclaimer once
// no reader can hold them. destroy() drops one view and every page
// reference it holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

class LevelView {
 public:
  static constexpr std::uint32_t kPageBits = 11;  // 2048 levels per page
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kPageMask = kPageSize - 1;

  /// Initial view: every vertex at `fill` (one shared page).
  static const LevelView* initial(vertex_t num_vertices, level_t fill) {
    auto* view = new LevelView(num_vertices, /*version=*/0);
    if (!view->pages_.empty()) {
      Page* zero = new Page;
      for (level_t& l : zero->levels) l = fill;
      zero->refs.store(static_cast<std::uint32_t>(view->pages_.size()),
                       std::memory_order_relaxed);
      for (Page*& slot : view->pages_) slot = zero;
    }
    return view;
  }

  /// COW successor: pages containing `moved` vertices (distinct ids) are
  /// re-read through `level_of`; all others are shared with `prev`.
  template <typename LevelFn>
  static const LevelView* successor(const LevelView& prev,
                                    std::span<const vertex_t> moved,
                                    LevelFn&& level_of) {
    auto* view = new LevelView(prev.num_vertices_, prev.version_ + 1);
    view->pages_ = prev.pages_;
    for (Page* page : view->pages_) {
      page->refs.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<std::uint8_t> copied(view->pages_.size(), 0);
    for (vertex_t v : moved) {
      const std::size_t p = v >> kPageBits;
      if (!copied[p]) {
        copied[p] = 1;
        Page* fresh = new Page;
        for (std::uint32_t i = 0; i < kPageSize; ++i) {
          fresh->levels[i] = view->pages_[p]->levels[i];
        }
        unref_page(view->pages_[p]);
        view->pages_[p] = fresh;
      }
      view->pages_[p]->levels[v & kPageMask] = level_of(v);
    }
    return view;
  }

  /// Frees one view and drops its page references (pages die at zero).
  /// Shape-compatible with Reclaimer::Deleter via destroy_erased.
  static void destroy(const LevelView* view) {
    for (Page* page : view->pages_) unref_page(page);
    delete view;
  }

  static void destroy_erased(void* view) {
    destroy(static_cast<const LevelView*>(view));
  }

  [[nodiscard]] level_t level(vertex_t v) const {
    return pages_[v >> kPageBits]->levels[v & kPageMask];
  }

  /// Batch count this view reflects (0 = initial).
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] vertex_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_pages() const { return pages_.size(); }

  LevelView(const LevelView&) = delete;
  LevelView& operator=(const LevelView&) = delete;

 private:
  struct Page {
    std::atomic<std::uint32_t> refs{1};
    level_t levels[kPageSize];
  };

  LevelView(vertex_t num_vertices, std::uint64_t version)
      : num_vertices_(num_vertices),
        version_(version),
        pages_((num_vertices + kPageSize - 1) >> kPageBits, nullptr) {}

  ~LevelView() = default;

  static void unref_page(Page* page) {
    // Standard split-count teardown: release on the decrement so every
    // prior write to the page is visible to the acquire of the freeing
    // decrement.
    if (page->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete page;
    }
  }

  vertex_t num_vertices_;
  std::uint64_t version_;
  std::vector<Page*> pages_;
};

}  // namespace cpkcore
