// Router — the sharded cluster's front end: writes are routed to the
// owning partition's primary, reads fan out across partitions (each
// partition served by a replica that has caught up to the session's cursor
// *for that partition*, with primary fallback), and sessions get
// read-your-writes on every partition at once.
//
//   client session ──write(op)──▶ Router ──Partitioner──▶ primary_p
//        │                          │                        │ ack(lsn)
//        │◀── session.lsn[p] = lsn ─┘◀───────────────────────┘
//        │
//        └──read(session, v)──▶ Router ──▶ partition 0: backend ≥ lsn[0]
//                                  │       partition 1: backend ≥ lsn[1]
//                                  │       ...        (round-robin replicas,
//                                  ▼                   primary fallback)
//                          combine per-partition estimates
//
// The session token generalizes PR 4's single LSN cursor to a *per-
// partition LSN vector*: writes advance only the owning partition's entry,
// and a fan-out read requires, per partition, a backend whose applied LSN
// has reached that partition's entry — so a session never observes state
// older than its own acked writes on any partition, while partitions the
// session never wrote to stay floor-0 and spread across all replicas.
//
// Vertex reads fan out because the edge-key partitioning spreads a
// vertex's incident edges across every partition (that is what spreads
// write load). The fan-out combines per-partition values: coreness
// estimates add (each partition holds a disjoint edge subset; the sum is
// an upper-bound-flavored aggregate, exact at P = 1), levels take the max.
// Per-partition values and serving backends are reported in the result for
// callers that want the raw cut.
//
// Thread-safety: the router is fully thread-safe. A Session may be shared
// by the threads of one logical client; its cursors only advance. Each
// part-read lands on a backend's wait-free view read (ReadMode::kCplds /
// kNonSync), so fan-out cost is per-partition pointer chases, not lock
// acquisitions — SyncReads still blocks per partition by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/partition.hpp"
#include "cluster/replica.hpp"
#include "cluster/shard_group.hpp"
#include "core/read_modes.hpp"
#include "obs/metrics.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore::cluster {

class Router {
 public:
  /// Backend index for "served by the partition's primary".
  static constexpr int kPrimary = -1;

  /// Read-your-writes session token: one LSN cursor per partition, each
  /// carrying the session's last acked write on that partition (0 = never
  /// wrote there, any backend qualifies). Create one per logical client
  /// (make_session(), or construct with the partition count); shareable
  /// across that client's threads.
  class Session {
   public:
    explicit Session(std::size_t partitions)
        : partitions_(partitions),
          lsns_(std::make_unique<std::atomic<std::uint64_t>[]>(partitions)) {
      for (std::size_t p = 0; p < partitions; ++p) lsns_[p] = 0;
    }

    [[nodiscard]] std::size_t num_partitions() const { return partitions_; }

    [[nodiscard]] std::uint64_t last_lsn(std::size_t partition) const {
      return lsns_[partition].load(std::memory_order_acquire);
    }

    /// The full cursor vector (sampled per entry; entries only advance).
    [[nodiscard]] std::vector<std::uint64_t> lsn_vector() const {
      std::vector<std::uint64_t> out(partitions_);
      for (std::size_t p = 0; p < partitions_; ++p) out[p] = last_lsn(p);
      return out;
    }

   private:
    friend class Router;
    /// Monotone advance (concurrent writers on one session race benignly).
    void advance(std::size_t partition, std::uint64_t lsn) {
      auto& cell = lsns_[partition];
      std::uint64_t cur = cell.load(std::memory_order_relaxed);
      while (cur < lsn &&
             !cell.compare_exchange_weak(cur, lsn, std::memory_order_release,
                                         std::memory_order_relaxed)) {
      }
    }

    std::size_t partitions_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> lsns_;
  };

  /// One partition's contribution to a fan-out read.
  template <typename V>
  struct PartRead {
    V value{};
    /// The serving backend's applied LSN sampled before the read — a
    /// freshness lower bound, always >= the session's cursor for this
    /// partition at routing time.
    std::uint64_t served_lsn = 0;
    int backend = kPrimary;  ///< replica index within the partition, or
                             ///< kPrimary
  };

  template <typename V>
  struct Result {
    V value{};  ///< combined across partitions (sum / max; see file header)
    std::vector<PartRead<V>> parts;  ///< one entry per partition
  };
  using ReadResult = Result<double>;
  using LevelResult = Result<level_t>;

  struct PartitionStats {
    std::uint64_t writes = 0;         ///< routed writes owned here
    std::uint64_t primary_reads = 0;  ///< part-reads the primary served
    std::vector<std::uint64_t> replica_reads;
  };
  struct Stats {
    std::uint64_t writes = 0;  ///< total routed writes
    std::uint64_t reads = 0;   ///< fan-out read operations (each touches
                               ///< every partition)
    std::uint64_t primary_reads = 0;  ///< partition-serves, aggregated
    std::uint64_t replica_reads = 0;  ///< partition-serves, aggregated
    /// Partition-serves where an LSN-eligible replica was passed over
    /// because the health plane classified it stalled (the read landed on
    /// another replica or the primary instead).
    std::uint64_t reads_rerouted_unhealthy = 0;
    std::vector<PartitionStats> partitions;
  };

  /// One partition's backends as the router sees them. The router holds
  /// pointers; backends must outlive it.
  struct PartitionBackends {
    service::KCoreService* primary = nullptr;
    std::vector<Replica*> replicas;  ///< may be empty (primary serves all)
    /// Parallel to `replicas` (or empty / nullptr entries = no health
    /// plane): each replica's watchdog handle, read lock-free per pick so
    /// a stalled replica stops serving reads. HealthMonitor keeps the
    /// pointers valid past replica teardown (tombstones read healthy).
    std::vector<const obs::HealthComponent*> replica_health;
  };

  /// Production form: route over a ShardGroup's partitions (the group must
  /// outlive the router).
  explicit Router(ShardGroup& group);

  /// Assembled form (tests, bespoke topologies): explicit backends per
  /// partition; the partitioner's width must match.
  Router(Partitioner partitioner, std::vector<PartitionBackends> partitions);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Fresh session sized to this router's partition count.
  [[nodiscard]] std::unique_ptr<Session> make_session() const {
    return std::make_unique<Session>(num_partitions());
  }

  // ---------------- writes ----------------

  /// Routes the op to its owning partition's primary, waits for the ack,
  /// and advances the session's cursor *for that partition* to the acked
  /// LSN, which is returned. Throws std::runtime_error when the primary
  /// stopped before acknowledging (outcome unknown — the cursor is not
  /// advanced).
  std::uint64_t write(Session& session, Update op);
  std::uint64_t write_insert(Session& session, vertex_t u, vertex_t v) {
    return write(session, {{u, v}, UpdateKind::kInsert});
  }
  std::uint64_t write_delete(Session& session, vertex_t u, vertex_t v) {
    return write(session, {{u, v}, UpdateKind::kDelete});
  }

  // ---------------- reads ----------------

  /// Fan-out read honoring the session's per-partition cursors.
  [[nodiscard]] ReadResult read_coreness(
      const Session& session, vertex_t v,
      ReadMode mode = ReadMode::kCplds) const;
  [[nodiscard]] LevelResult read_level(
      const Session& session, vertex_t v,
      ReadMode mode = ReadMode::kCplds) const;

  /// Session-less fan-out reads: no freshness floor on any partition.
  [[nodiscard]] ReadResult read_coreness(
      vertex_t v, ReadMode mode = ReadMode::kCplds) const;
  [[nodiscard]] LevelResult read_level(
      vertex_t v, ReadMode mode = ReadMode::kCplds) const;

  /// Samples the partitions' *applied* frontier: a vector cut that every
  /// at-cut read can serve immediately (each partition's primary is
  /// already at-or-past its entry; applied LSNs only grow).
  [[nodiscard]] std::vector<std::uint64_t> consistent_cut() const;

  /// Scatter-gather read at an explicit cut: partition p is served by a
  /// backend whose applied LSN is >= cut[p] — guaranteed, not best-effort:
  /// if a cut entry runs ahead of the partition's applied frontier
  /// (committed-but-unapplied batches), the read waits for the apply to
  /// catch up rather than silently serving older state. Cuts from
  /// consistent_cut() never wait; a hand-built cut past a crashed
  /// partition's final frontier never returns. Throws
  /// std::invalid_argument on a cut width mismatch.
  [[nodiscard]] ReadResult read_coreness_at_cut(
      const std::vector<std::uint64_t>& cut, vertex_t v,
      ReadMode mode = ReadMode::kCplds) const;

  // ---------------- inspection ----------------

  [[nodiscard]] std::size_t num_partitions() const { return parts_.size(); }
  [[nodiscard]] std::size_t num_replicas(std::size_t partition) const {
    return parts_[partition].replicas.size();
  }
  [[nodiscard]] service::KCoreService& primary(std::size_t partition) {
    return *parts_[partition].primary;
  }
  [[nodiscard]] const Partitioner& partitioner() const {
    return partitioner_;
  }
  [[nodiscard]] Stats stats() const;

  /// Merged fan-out read-latency histogram (every read() records its
  /// end-to-end time, whichever backends served it). This is the reader-
  /// side health signal the cluster feedback loop uses: its p99 feeds
  /// KCoreService::observe_cluster_feedback via ShardGroup::feed_feedback.
  [[nodiscard]] LatencyHistogram read_latency() const {
    return read_latency_.merged();
  }

  /// Registers the router's counters and read-latency histogram with a
  /// metrics registry under `prefix` (RAII-deregistered when the router
  /// dies). Safe to call once; null registry no-ops.
  void register_metrics(obs::MetricsRegistry* registry,
                        std::string prefix = "router.");

 private:
  /// Per-partition routing state (round-robin cursor + serve counters).
  struct PartState {
    std::atomic<std::uint64_t> round_robin{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> primary_reads{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> replica_reads;
  };

  /// Picks a backend of `partition` whose applied LSN is >= min_lsn:
  /// round-robin over the eligible replicas, primary fallback. Writes the
  /// sampled LSN (the freshness lower bound) to *served_lsn.
  int pick_backend(std::size_t partition, std::uint64_t min_lsn,
                   std::uint64_t* served_lsn) const;

  /// The shared fan-out skeleton: for each partition, pick a backend at or
  /// past min_lsn_for(p), read through it, fold the value into the
  /// combined result. `strict` enforces the floor even when no backend has
  /// reached it yet (at-cut reads wait; session reads never need to).
  /// Defined in the .cpp (all instantiations live there).
  template <typename V, typename MinLsn, typename Combine,
            typename ReplicaRead, typename PrimaryRead>
  Result<V> fan_out(MinLsn min_lsn_for, bool strict, Combine combine,
                    ReplicaRead on_replica, PrimaryRead on_primary) const;

  Partitioner partitioner_;
  std::vector<PartitionBackends> parts_;
  std::unique_ptr<PartState[]> state_;
  mutable std::atomic<std::uint64_t> reads_{0};
  mutable std::atomic<std::uint64_t> rerouted_unhealthy_{0};
  /// Striped: fan-out reads record concurrently from any reader thread.
  mutable obs::StripedHistogram read_latency_;
  // Declared last: deregisters before the members its collector reads.
  obs::MetricsGroup metrics_;
};

}  // namespace cpkcore::cluster
