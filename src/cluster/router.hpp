// Router — the cluster's front end: writes go to the primary, reads are
// load-balanced across replicas, and sessions get read-your-writes.
//
//   client session ──write──▶ Router ──▶ primary KCoreService
//        │                      │             │ ack(lsn)
//        │◀── session.last_lsn ─┘◀────────────┘
//        │
//        └──read(session)──▶ Router ──▶ replica with applied_lsn >= session
//                               │         (round-robin among eligible)
//                               └──else─▶ primary (always >= any acked LSN)
//
// The session token carries the LSN of the session's last acked write. A
// read is only routed to a replica whose applied LSN has reached that
// cursor; when no replica qualifies, the read falls back to the primary,
// which applied the write before acking it — so a session can never observe
// state older than its own last acked write, while sessions that tolerate
// any freshness (cursor 0) spread across all replicas.
//
// Thread-safety: the router is fully thread-safe. A Session may be shared
// by the threads of one logical client (e.g. a writer and a reader); its
// cursor only advances.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/replica.hpp"
#include "core/read_modes.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore::cluster {

class Router {
 public:
  /// Backend index for "served by the primary" in results/stats.
  static constexpr int kPrimary = -1;

  /// Read-your-writes session token: carries the LSN of the session's last
  /// acked write (0 = fresh session, any backend qualifies). Create one per
  /// logical client; shareable across that client's threads.
  class Session {
   public:
    [[nodiscard]] std::uint64_t last_lsn() const {
      return lsn_.load(std::memory_order_acquire);
    }

   private:
    friend class Router;
    /// Monotone advance (concurrent writers on one session race benignly).
    void advance(std::uint64_t lsn) {
      std::uint64_t cur = lsn_.load(std::memory_order_relaxed);
      while (cur < lsn && !lsn_.compare_exchange_weak(
                              cur, lsn, std::memory_order_release,
                              std::memory_order_relaxed)) {
      }
    }
    std::atomic<std::uint64_t> lsn_{0};
  };

  template <typename V>
  struct Result {
    V value{};
    /// The serving backend's applied LSN sampled before the read — a lower
    /// bound on the freshness of the state read; always >= the session's
    /// cursor at routing time.
    std::uint64_t served_lsn = 0;
    int backend = kPrimary;  ///< replica index, or kPrimary
  };
  using ReadResult = Result<double>;
  using LevelResult = Result<level_t>;

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t primary_reads = 0;  ///< fallbacks (no replica caught up)
    std::vector<std::uint64_t> replica_reads;
  };

  /// Replicas may be empty (every read falls back to the primary). The
  /// router holds references; primary and replicas must outlive it.
  Router(service::KCoreService& primary, std::vector<Replica*> replicas);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // ---------------- writes ----------------

  /// Submits to the primary, waits for the ack, and advances the session
  /// to the acked LSN, which is returned. Throws std::runtime_error when
  /// the primary stopped before acknowledging (outcome unknown — the
  /// session cursor is not advanced).
  std::uint64_t write(Session& session, Update op);
  std::uint64_t write_insert(Session& session, vertex_t u, vertex_t v) {
    return write(session, {{u, v}, UpdateKind::kInsert});
  }
  std::uint64_t write_delete(Session& session, vertex_t u, vertex_t v) {
    return write(session, {{u, v}, UpdateKind::kDelete});
  }

  // ---------------- reads ----------------

  [[nodiscard]] ReadResult read_coreness(
      const Session& session, vertex_t v,
      ReadMode mode = ReadMode::kCplds) const;
  [[nodiscard]] LevelResult read_level(
      const Session& session, vertex_t v,
      ReadMode mode = ReadMode::kCplds) const;

  /// Session-less reads: no freshness floor, any backend qualifies.
  [[nodiscard]] ReadResult read_coreness(
      vertex_t v, ReadMode mode = ReadMode::kCplds) const;
  [[nodiscard]] LevelResult read_level(
      vertex_t v, ReadMode mode = ReadMode::kCplds) const;

  // ---------------- inspection ----------------

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }
  [[nodiscard]] service::KCoreService& primary() { return primary_; }
  [[nodiscard]] Stats stats() const;

 private:
  /// Picks a backend whose applied LSN is >= min_lsn: round-robin over the
  /// eligible replicas, primary fallback. Writes the sampled LSN (the
  /// freshness lower bound) to *served_lsn.
  int pick_backend(std::uint64_t min_lsn, std::uint64_t* served_lsn) const;

  template <typename V, typename ReplicaRead, typename PrimaryRead>
  Result<V> route_read(std::uint64_t min_lsn, ReplicaRead on_replica,
                       PrimaryRead on_primary) const;

  service::KCoreService& primary_;
  std::vector<Replica*> replicas_;

  mutable std::atomic<std::uint64_t> round_robin_{0};
  mutable std::atomic<std::uint64_t> writes_{0};
  mutable std::atomic<std::uint64_t> reads_{0};
  mutable std::atomic<std::uint64_t> primary_reads_{0};
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> replica_reads_;
};

}  // namespace cpkcore::cluster
