#include "cluster/partition.hpp"

#include <string>

namespace cpkcore::cluster {

std::string partition_path(const std::string& stem, std::size_t partition,
                           std::size_t partitions) {
  if (stem.empty()) return stem;
  // A 1-partition topology keeps the stem untouched so it stays file-
  // compatible with the unsharded PR-4 layout (same WAL/snapshot a plain
  // KCoreService would write and warm-restart from).
  if (partitions == 1) return stem;
  return stem + ".p" + std::to_string(partition);
}

}  // namespace cpkcore::cluster
