#include "cluster/replica.hpp"

#include <utility>

#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace cpkcore::cluster {

Replica::Replica(const service::ServiceConfig& like) {
  reclaimer_ = concurrent::make_reclaimer(like.reclaimer);
  CPLDS::Options options = like.cplds;
  options.reclaimer = reclaimer_.get();
  ds_ = std::make_unique<CPLDS>(
      like.num_vertices,
      LDSParams::create(like.num_vertices, like.delta, like.lambda,
                        like.levels_per_group_cap),
      options);
}

void Replica::register_health(obs::HealthMonitor& monitor, std::string name,
                              int partition) {
  if (heartbeat_ != nullptr) return;  // one registration per replica
  health_ = &monitor;
  heartbeat_ = monitor.register_thread(std::move(name), partition);
}

void Replica::start(LogShipper& shipper) {
  if (started_) return;
  started_ = true;
  stopped_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    stop_requested_ = false;
  }
  apply_thread_ = std::thread([this] { apply_loop(); });
  shipper_ = &shipper;
  // Subscribing after the thread is up keeps catch-up delivery (which runs
  // on this thread, inside subscribe()) from backing up into the shipper:
  // records are only enqueued here, applied over there.
  subscription_ = shipper.subscribe(
      applied_lsn_.load(std::memory_order_relaxed),
      [this](const ShippedRecord& rec) { enqueue(rec); });
}

void Replica::stop() {
  if (!started_) return;
  started_ = false;
  // Unsubscribe first: after it returns no further enqueue runs, so the
  // queue the apply thread drains below is complete.
  if (shipper_ != nullptr) {
    shipper_->unsubscribe(subscription_);
    shipper_ = nullptr;
  }
  {
    std::lock_guard lock(mu_);
    stop_requested_ = true;
  }
  queue_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
  {
    // Under mu_ so a wait_for_lsn between its predicate check and its
    // block cannot miss the wakeup.
    std::lock_guard lock(mu_);
    stopped_.store(true, std::memory_order_release);
  }
  applied_cv_.notify_all();
  // Tombstone after the join: the handle stays valid (the Router may
  // still hold it — a stopped replica just reads inactive/healthy), but
  // the watchdog stops classifying it.
  if (heartbeat_ != nullptr && health_ != nullptr) {
    health_->unregister(heartbeat_);
    heartbeat_ = nullptr;
    health_ = nullptr;
  }
}

void Replica::enqueue(const ShippedRecord& record) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(record);
  }
  queue_cv_.notify_one();
}

void Replica::apply_loop() {
  CPKC_TRACE_THREAD_NAME("replica_apply");
  for (;;) {
    ShippedRecord rec;
    {
      std::unique_lock lock(mu_);
      // Parked on an empty queue is healthy: idle stops the age clock.
      if (heartbeat_ != nullptr && queue_.empty()) heartbeat_->idle();
      queue_cv_.wait(lock, [&] { return stop_requested_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      rec = std::move(queue_.front());
      queue_.pop_front();
      if (heartbeat_ != nullptr) heartbeat_->busy();
    }
    // Decode and apply outside the lock: the shipper's enqueue must never
    // wait on either (that would stall the primary's commit path). This is
    // the pipeline's single decode — the frame traveled encoded from the
    // primary's group commit all the way to this thread.
    CPKC_TRACE_SPAN(apply_span, "replica.apply", rec.lsn, 0);
    Timer timer;
    const UpdateBatch batch = rec.frame->decode_batch();
    const std::size_t edges = ds_->apply(batch).size();
    const double seconds = static_cast<double>(timer.elapsed_ns()) * 1e-9;
    applied_lsn_.store(rec.lsn, std::memory_order_release);
    {
      std::lock_guard lock(mu_);
      applied_batches_ += 1;
      applied_edges_ += edges;
      apply_seconds_ += seconds;
    }
    applied_cv_.notify_all();
  }
}

bool Replica::wait_for_lsn(std::uint64_t lsn) const {
  if (applied_lsn_.load(std::memory_order_acquire) >= lsn) return true;
  std::unique_lock lock(mu_);
  applied_cv_.wait(lock, [&] {
    return applied_lsn_.load(std::memory_order_relaxed) >= lsn ||
           stopped_.load(std::memory_order_relaxed);
  });
  return applied_lsn_.load(std::memory_order_relaxed) >= lsn;
}

Replica::Stats Replica::stats() const {
  std::lock_guard lock(mu_);
  Stats out;
  out.applied_lsn = applied_lsn_.load(std::memory_order_relaxed);
  out.applied_batches = applied_batches_;
  out.applied_edges = applied_edges_;
  out.queue_depth = queue_.size();
  out.apply_seconds = apply_seconds_;
  return out;
}

}  // namespace cpkcore::cluster
