#include "cluster/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/health.hpp"
#include "util/timer.hpp"

namespace cpkcore::cluster {

namespace {

std::vector<Router::PartitionBackends> backends_of(ShardGroup& group) {
  std::vector<Router::PartitionBackends> parts;
  parts.reserve(group.num_partitions());
  for (std::size_t p = 0; p < group.num_partitions(); ++p) {
    Router::PartitionBackends part{&group.primary(p), group.replica_set(p),
                                   {}};
    // Snapshot the health handles at construction: they are stable for
    // the monitor's lifetime (tombstoned, never freed), so the router
    // reads them lock-free even across replica teardown.
    part.replica_health.reserve(part.replicas.size());
    for (const Replica* r : part.replicas) {
      part.replica_health.push_back(r->health_component());
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace

Router::Router(ShardGroup& group)
    : Router(group.partitioner(), backends_of(group)) {}

Router::Router(Partitioner partitioner,
               std::vector<PartitionBackends> partitions)
    : partitioner_(partitioner), parts_(std::move(partitions)) {
  if (parts_.empty() || partitioner_.num_partitions() != parts_.size()) {
    throw std::invalid_argument(
        "Router: partitioner width must match the backend list");
  }
  for (const PartitionBackends& part : parts_) {
    if (part.primary == nullptr) {
      throw std::invalid_argument("Router: every partition needs a primary");
    }
  }
  state_ = std::make_unique<PartState[]>(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const std::size_t n = parts_[p].replicas.size();
    if (n == 0) continue;
    state_[p].replica_reads =
        std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t r = 0; r < n; ++r) state_[p].replica_reads[r] = 0;
  }
}

std::uint64_t Router::write(Session& session, Update op) {
  const std::size_t p = partitioner_.partition_of(op);
  const service::Ticket ticket = parts_[p].primary->submit(op);
  std::uint64_t lsn = 0;
  if (!parts_[p].primary->wait(ticket, &lsn)) {
    throw std::runtime_error(
        "Router: partition primary stopped before acknowledging the write");
  }
  session.advance(p, lsn);
  state_[p].writes.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

int Router::pick_backend(std::size_t partition, std::uint64_t min_lsn,
                         std::uint64_t* served_lsn) const {
  const PartitionBackends& part = parts_[partition];
  const std::size_t n = part.replicas.size();
  if (n > 0) {
    const std::uint64_t start =
        state_[partition].round_robin.fetch_add(1, std::memory_order_relaxed);
    bool skipped_stalled = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = (start + i) % n;
      // Sampled before the read: applied LSNs only grow, so the state the
      // read observes is at least this fresh.
      const std::uint64_t lsn = part.replicas[r]->applied_lsn();
      if (lsn < min_lsn) continue;
      // Health gate: a replica the watchdog classifies stalled (apply
      // thread wedged — its applied LSN may be fresh but will not stay
      // that way) stops taking reads; degraded still serves. One relaxed
      // load of the cached state — no lock on the read path.
      const obs::HealthComponent* hc =
          r < part.replica_health.size() ? part.replica_health[r] : nullptr;
      if (hc != nullptr && hc->state() == obs::HealthState::kStalled) {
        skipped_stalled = true;
        continue;
      }
      if (skipped_stalled) {
        rerouted_unhealthy_.fetch_add(1, std::memory_order_relaxed);
      }
      *served_lsn = lsn;
      return static_cast<int>(r);
    }
    if (skipped_stalled) {
      rerouted_unhealthy_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Primary fallback. Every acked write on this partition was applied
  // before its ack became observable, so the primary's applied LSN
  // satisfies any session cursor derived from acks against it.
  *served_lsn = part.primary->applied_lsn();
  return kPrimary;
}

template <typename V, typename MinLsn, typename Combine, typename ReplicaRead,
          typename PrimaryRead>
Router::Result<V> Router::fan_out(MinLsn min_lsn_for, bool strict,
                                  Combine combine, ReplicaRead on_replica,
                                  PrimaryRead on_primary) const {
  Result<V> result;
  result.parts.resize(parts_.size());
  reads_.fetch_add(1, std::memory_order_relaxed);
  Timer read_timer;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    PartRead<V>& part = result.parts[p];
    const std::uint64_t min_lsn = min_lsn_for(p);
    part.backend = pick_backend(p, min_lsn, &part.served_lsn);
    // Session cursors are always serveable (the primary applied every
    // acked write before its ack became observable), so non-strict reads
    // take the first pick. An explicit cut can run ahead of the applied
    // frontier — committed-but-not-yet-applied batches — so strict reads
    // spin until the apply catches up rather than silently serving older
    // state. consistent_cut() samples the applied frontier, which is
    // always serveable; only a hand-built cut past a crashed partition's
    // final frontier would spin forever.
    while (strict && part.served_lsn < min_lsn) {
      std::this_thread::yield();
      part.backend = pick_backend(p, min_lsn, &part.served_lsn);
    }
    if (part.backend == kPrimary) {
      state_[p].primary_reads.fetch_add(1, std::memory_order_relaxed);
      part.value = on_primary(*parts_[p].primary);
    } else {
      const auto r = static_cast<std::size_t>(part.backend);
      state_[p].replica_reads[r].fetch_add(1, std::memory_order_relaxed);
      part.value = on_replica(*parts_[p].replicas[r]);
    }
    result.value = p == 0 ? part.value : combine(result.value, part.value);
  }
  read_latency_.record(read_timer.elapsed_ns());
  return result;
}

Router::ReadResult Router::read_coreness(const Session& session, vertex_t v,
                                         ReadMode mode) const {
  return fan_out<double>(
      [&](std::size_t p) { return session.last_lsn(p); },
      /*strict=*/false, [](double a, double b) { return a + b; },
      [&](const Replica& r) { return r.read_coreness(v, mode); },
      [&](const service::KCoreService& s) {
        return s.read_coreness(v, mode);
      });
}

Router::LevelResult Router::read_level(const Session& session, vertex_t v,
                                       ReadMode mode) const {
  return fan_out<level_t>(
      [&](std::size_t p) { return session.last_lsn(p); },
      /*strict=*/false, [](level_t a, level_t b) { return std::max(a, b); },
      [&](const Replica& r) { return r.read_level(v, mode); },
      [&](const service::KCoreService& s) { return s.read_level(v, mode); });
}

Router::ReadResult Router::read_coreness(vertex_t v, ReadMode mode) const {
  return fan_out<double>(
      [](std::size_t) { return std::uint64_t{0}; },
      /*strict=*/false, [](double a, double b) { return a + b; },
      [&](const Replica& r) { return r.read_coreness(v, mode); },
      [&](const service::KCoreService& s) {
        return s.read_coreness(v, mode);
      });
}

Router::LevelResult Router::read_level(vertex_t v, ReadMode mode) const {
  return fan_out<level_t>(
      [](std::size_t) { return std::uint64_t{0}; },
      /*strict=*/false, [](level_t a, level_t b) { return std::max(a, b); },
      [&](const Replica& r) { return r.read_level(v, mode); },
      [&](const service::KCoreService& s) { return s.read_level(v, mode); });
}

std::vector<std::uint64_t> Router::consistent_cut() const {
  // The *applied* frontier, not the committed one: a committed-but-not-
  // yet-applied LSN is not yet serveable by any backend (the primary
  // included), so a commit-frontier cut would make every at-cut read spin
  // out the apply latency. Applied LSNs only grow, so each partition's
  // primary can always serve its entry immediately.
  std::vector<std::uint64_t> cut;
  cut.reserve(parts_.size());
  for (const PartitionBackends& part : parts_) {
    cut.push_back(part.primary->applied_lsn());
  }
  return cut;
}

Router::ReadResult Router::read_coreness_at_cut(
    const std::vector<std::uint64_t>& cut, vertex_t v, ReadMode mode) const {
  if (cut.size() != parts_.size()) {
    throw std::invalid_argument("Router: cut width must match partitions");
  }
  return fan_out<double>(
      [&](std::size_t p) { return cut[p]; },
      /*strict=*/true, [](double a, double b) { return a + b; },
      [&](const Replica& r) { return r.read_coreness(v, mode); },
      [&](const service::KCoreService& s) {
        return s.read_coreness(v, mode);
      });
}

void Router::register_metrics(obs::MetricsRegistry* registry,
                              std::string prefix) {
  if (registry == nullptr) return;
  metrics_ = obs::MetricsGroup(registry, std::move(prefix));
  metrics_.collect([this](obs::MetricsSink& sink) {
    const Stats st = stats();
    sink.counter("writes", static_cast<double>(st.writes));
    sink.counter("reads", static_cast<double>(st.reads));
    sink.counter("primary_reads", static_cast<double>(st.primary_reads));
    sink.counter("replica_reads", static_cast<double>(st.replica_reads));
    sink.counter("reads_rerouted_unhealthy",
                 static_cast<double>(st.reads_rerouted_unhealthy));
    sink.histogram("read_latency_ns", read_latency_);
  });
}

Router::Stats Router::stats() const {
  Stats out;
  out.reads = reads_.load(std::memory_order_relaxed);
  out.reads_rerouted_unhealthy =
      rerouted_unhealthy_.load(std::memory_order_relaxed);
  out.partitions.resize(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    PartitionStats& ps = out.partitions[p];
    ps.writes = state_[p].writes.load(std::memory_order_relaxed);
    ps.primary_reads =
        state_[p].primary_reads.load(std::memory_order_relaxed);
    ps.replica_reads.resize(parts_[p].replicas.size());
    for (std::size_t r = 0; r < ps.replica_reads.size(); ++r) {
      ps.replica_reads[r] =
          state_[p].replica_reads[r].load(std::memory_order_relaxed);
      out.replica_reads += ps.replica_reads[r];
    }
    out.writes += ps.writes;
    out.primary_reads += ps.primary_reads;
  }
  return out;
}

}  // namespace cpkcore::cluster
