#include "cluster/router.hpp"

#include <stdexcept>
#include <utility>

namespace cpkcore::cluster {

Router::Router(service::KCoreService& primary, std::vector<Replica*> replicas)
    : primary_(primary), replicas_(std::move(replicas)) {
  if (!replicas_.empty()) {
    replica_reads_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) replica_reads_[i] = 0;
  }
}

std::uint64_t Router::write(Session& session, Update op) {
  const service::Ticket ticket = primary_.submit(op);
  std::uint64_t lsn = 0;
  if (!primary_.wait(ticket, &lsn)) {
    throw std::runtime_error(
        "Router: primary stopped before acknowledging the write");
  }
  session.advance(lsn);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

int Router::pick_backend(std::uint64_t min_lsn,
                         std::uint64_t* served_lsn) const {
  const std::size_t n = replicas_.size();
  if (n > 0) {
    const std::uint64_t start =
        round_robin_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = (start + i) % n;
      // Sampled before the read: applied LSNs only grow, so the state the
      // read observes is at least this fresh.
      const std::uint64_t lsn = replicas_[r]->applied_lsn();
      if (lsn >= min_lsn) {
        *served_lsn = lsn;
        return static_cast<int>(r);
      }
    }
  }
  // Primary fallback. Every acked write was applied before its ack became
  // observable, so the primary's applied LSN satisfies any session cursor
  // derived from acks against it.
  *served_lsn = primary_.applied_lsn();
  return kPrimary;
}

template <typename V, typename ReplicaRead, typename PrimaryRead>
Router::Result<V> Router::route_read(std::uint64_t min_lsn,
                                     ReplicaRead on_replica,
                                     PrimaryRead on_primary) const {
  Result<V> result;
  result.backend = pick_backend(min_lsn, &result.served_lsn);
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (result.backend == kPrimary) {
    primary_reads_.fetch_add(1, std::memory_order_relaxed);
    result.value = on_primary();
  } else {
    replica_reads_[static_cast<std::size_t>(result.backend)].fetch_add(
        1, std::memory_order_relaxed);
    result.value = on_replica(*replicas_[static_cast<std::size_t>(
        result.backend)]);
  }
  return result;
}

Router::ReadResult Router::read_coreness(const Session& session, vertex_t v,
                                         ReadMode mode) const {
  return route_read<double>(
      session.last_lsn(),
      [&](const Replica& r) { return r.read_coreness(v, mode); },
      [&] { return primary_.read_coreness(v, mode); });
}

Router::LevelResult Router::read_level(const Session& session, vertex_t v,
                                       ReadMode mode) const {
  return route_read<level_t>(
      session.last_lsn(),
      [&](const Replica& r) { return r.read_level(v, mode); },
      [&] { return primary_.read_level(v, mode); });
}

Router::ReadResult Router::read_coreness(vertex_t v, ReadMode mode) const {
  return route_read<double>(
      0, [&](const Replica& r) { return r.read_coreness(v, mode); },
      [&] { return primary_.read_coreness(v, mode); });
}

Router::LevelResult Router::read_level(vertex_t v, ReadMode mode) const {
  return route_read<level_t>(
      0, [&](const Replica& r) { return r.read_level(v, mode); },
      [&] { return primary_.read_level(v, mode); });
}

Router::Stats Router::stats() const {
  Stats out;
  out.writes = writes_.load(std::memory_order_relaxed);
  out.reads = reads_.load(std::memory_order_relaxed);
  out.primary_reads = primary_reads_.load(std::memory_order_relaxed);
  out.replica_reads.resize(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    out.replica_reads[i] = replica_reads_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace cpkcore::cluster
