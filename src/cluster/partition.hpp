// Partitioner — the deterministic edge-space partitioning of the sharded
// write plane.
//
// The cluster partitions the *edge* space: every edge op hashes its
// canonical edge key to exactly one of P partitions, so all ops on one edge
// — inserts, deletes, duplicates — land on the same partition's primary in
// submission order, and each partition's primary + WAL + LSN stream +
// replica set is fully independent of every other partition's (share-
// nothing). Both endpoints of the op ride along to that partition: each
// partition's CPLDS spans the full vertex-ID space but holds only its own
// edge subset, which is what makes per-partition replicas exact and
// per-partition recovery (snapshot_p + WAL_p) self-contained.
//
// The mapping is a pure function of (edge key, P): every router, shard
// group, test, and recovery path computes the same owner with no shared
// state and no coordination. Vertex-level queries therefore fan out — a
// vertex's incident edges are spread across all partitions by design (that
// is what spreads *write* load; reads were already scaled by replicas).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace cpkcore::cluster {

/// Per-partition on-disk path for a shared stem: "<stem>.p<k>" when the
/// topology is sharded, the stem itself for a 1-partition topology (file-
/// compatible with the unsharded layout). Empty stems stay empty (feature
/// off). Used for the per-partition WAL and snapshot files.
std::string partition_path(const std::string& stem, std::size_t partition,
                           std::size_t partitions);

class Partitioner {
 public:
  /// A single-partition Partitioner routes everything to partition 0 —
  /// exactly the unsharded PR-4 topology.
  explicit Partitioner(std::size_t partitions) : partitions_(partitions) {
    if (partitions == 0) {
      throw std::invalid_argument("Partitioner: partitions must be >= 1");
    }
  }

  [[nodiscard]] std::size_t num_partitions() const { return partitions_; }

  /// Owner of an edge: hash of the canonical edge key mod P. Deterministic
  /// and direction-insensitive ((u,v) and (v,u) share an owner).
  [[nodiscard]] std::size_t partition_of(const Edge& e) const {
    return partitions_ == 1
               ? 0
               : static_cast<std::size_t>(hash64(e.canonical().key()) %
                                          partitions_);
  }

  [[nodiscard]] std::size_t partition_of(const Update& op) const {
    return partition_of(op.edge);
  }

 private:
  std::size_t partitions_;
};

}  // namespace cpkcore::cluster
