#include "cluster/shard_group.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/health.hpp"

namespace cpkcore::cluster {

namespace {

/// Runs fn(p) for every p in [0, count) on one thread per partition and
/// joins; the first exception (by partition index) is rethrown after every
/// partition has finished, so a failure never leaves a sibling mid-flight.
/// count <= 1 runs inline.
void for_each_partition(std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (count <= 1) {
    if (count == 1) fn(0);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    threads.emplace_back([&, p] {
      try {
        fn(p);
      } catch (...) {
        errors[p] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace

ShardGroup::ShardGroup(ClusterConfig config)
    : config_(std::move(config)), partitioner_(config_.partitions) {
  const std::size_t p_count = config_.partitions;
  primaries_.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    service::ServiceConfig cfg = config_.base;
    cfg.wal_path = partition_path(config_.base.wal_path, p, p_count);
    cfg.snapshot_path =
        partition_path(config_.base.snapshot_path, p, p_count);
    // Disambiguate the P primaries in one registry: partition p's sources
    // land under "p<p>.<base prefix>".
    if (cfg.metrics != nullptr) {
      // Built by append (not `"p" + ...`): GCC 12's -Wrestrict misfires on
      // the const char* + rvalue-string overload under -Werror.
      std::string prefix = "p";
      prefix += std::to_string(p);
      prefix += '.';
      prefix += config_.base.metrics_prefix;
      cfg.metrics_prefix = std::move(prefix);
    }
    if (cfg.health != nullptr) {
      // Same "p<p>." scheme for the health plane: partition p's apply
      // thread registers as "p<p>.apply", its WAL engine thread as
      // "p<p>.wal_flusher"/"p<p>.wal_reaper", all tagged partition p.
      std::string hp = "p";
      hp += std::to_string(p);
      hp += '.';
      cfg.health_prefix = std::move(hp);
      cfg.health_partition = static_cast<int>(p);
    }
    primaries_.push_back(
        std::make_unique<service::KCoreService>(std::move(cfg)));
  }
  shippers_.reserve(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    LogShipper::Options ship_opts;
    ship_opts.retain_records = config_.retain_records;
    std::string ship_comp = "p";
    ship_comp += std::to_string(p);
    ship_comp += ".ship";
    ship_opts.event_component = std::move(ship_comp);
    shippers_.push_back(
        std::make_unique<LogShipper>(*primaries_[p], std::move(ship_opts)));
  }
  replicas_.resize(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    replicas_[p].reserve(config_.replicas);
    for (std::size_t r = 0; r < config_.replicas; ++r) {
      // Mirror the primary's structural parameters. num_vertices comes
      // from the live primary, not the template config: a warm restart
      // from a snapshot may override the configured count.
      service::ServiceConfig like = config_.base;
      like.num_vertices = primaries_[p]->num_vertices();
      replicas_[p].push_back(std::make_unique<Replica>(like));
      // Heartbeat before start(): the apply thread stamps the handle from
      // its first iteration.
      if (config_.base.health != nullptr) {
        std::string rn = "p";
        rn += std::to_string(p);
        rn += ".replica";
        rn += std::to_string(r);
        replicas_[p].back()->register_health(
            *config_.base.health, std::move(rn), static_cast<int>(p));
      }
      // Fresh replicas subscribe from LSN 0; a primary warm-restarted with
      // history behind it serves the catch-up from its ring/WAL (or throws
      // "bootstrap from snapshot" if compacted — surfaced to the caller).
      replicas_[p].back()->start(*shippers_[p]);
    }
  }
  // Replica-lag probes: sampled on the watchdog thread against the
  // cluster thresholds (0 = report-only). Tombstoned first in shutdown()
  // — the callbacks walk primaries_/replicas_.
  if (config_.base.health != nullptr && config_.replicas > 0) {
    lag_probes_.reserve(p_count);
    for (std::size_t p = 0; p < p_count; ++p) {
      std::string pn = "p";
      pn += std::to_string(p);
      pn += ".replica_lag";
      lag_probes_.push_back(config_.base.health->register_probe(
          std::move(pn), static_cast<int>(p),
          [this, p]() -> double {
            return static_cast<double>(replica_lag(p));
          },
          static_cast<double>(config_.replica_lag_degraded),
          static_cast<double>(config_.replica_lag_stalled)));
    }
  }
  // Cluster-level sources: per-partition shipper + replica stats and the
  // replica-lag gauges (primaries registered themselves above). All of
  // them read components this group owns, so the group (via metrics_,
  // declared last) deregisters them before any component dies.
  if (config_.base.metrics != nullptr) {
    metrics_ = obs::MetricsGroup(config_.base.metrics, "");
    for (std::size_t p = 0; p < p_count; ++p) {
      std::string pp = "p";
      pp += std::to_string(p);
      pp += '.';
      metrics_.collect([this, p, pp](obs::MetricsSink& sink) {
        const LogShipper::Stats st = shippers_[p]->stats();
        sink.counter(pp + "ship.shipped_records",
                     static_cast<double>(st.shipped_records));
        sink.counter(pp + "ship.catchup_records",
                     static_cast<double>(st.catchup_records));
        sink.counter(pp + "ship.disk_records",
                     static_cast<double>(st.disk_records));
        sink.gauge(pp + "ship.retained", static_cast<double>(st.retained));
        sink.gauge(pp + "ship.subscribers",
                   static_cast<double>(st.subscribers));
        for (std::size_t r = 0; r < replicas_[p].size(); ++r) {
          const std::string rp = pp + "replica" + std::to_string(r) + ".";
          const Replica::Stats rs = replicas_[p][r]->stats();
          sink.counter(rp + "applied_batches",
                       static_cast<double>(rs.applied_batches));
          sink.counter(rp + "applied_edges",
                       static_cast<double>(rs.applied_edges));
          sink.gauge(rp + "applied_lsn",
                     static_cast<double>(rs.applied_lsn));
          sink.gauge(rp + "queue_depth",
                     static_cast<double>(rs.queue_depth));
        }
        sink.gauge(pp + "replica_lag",
                   static_cast<double>(replica_lag(p)));
      });
    }
    metrics_.collect([this](obs::MetricsSink& sink) {
      sink.gauge("cluster.partitions",
                 static_cast<double>(primaries_.size()));
      sink.gauge("cluster.replicas_per_partition",
                 static_cast<double>(config_.replicas));
      sink.gauge("cluster.max_replica_lag",
                 static_cast<double>(max_replica_lag()));
    });
  }
  // The closed feedback loop: a quiet sampler (no output file — the
  // snapshot itself is the product) snapshots the registry every
  // feedback_interval_ms and hands the router's read-latency p99 plus the
  // current replica lag to every primary's batch sizer. This is the
  // periodic driver feed_feedback() always wanted; the p99 reads 0 until
  // a Router registers its metrics in the same registry.
  if (config_.base.metrics != nullptr && config_.feedback_interval_ms > 0) {
    obs::SamplerOptions so;
    so.quiet = true;
    so.interval_ms = config_.feedback_interval_ms;
    so.registry = config_.base.metrics;
    so.on_sample = [this](const obs::MetricsSnapshot& snap) {
      const obs::MetricSample* rl = snap.find("router.read_latency_ns");
      feed_feedback(rl != nullptr ? rl->hist.p99_ns : 0);
    };
    feedback_sampler_ = std::make_unique<obs::StatsSampler>(std::move(so));
  }
}

ShardGroup::~ShardGroup() { shutdown(); }

std::vector<Replica*> ShardGroup::replica_set(std::size_t p) const {
  std::vector<Replica*> out;
  out.reserve(replicas_[p].size());
  for (const auto& r : replicas_[p]) out.push_back(r.get());
  return out;
}

ShardGroup::Submitted ShardGroup::submit(Update op) {
  const std::size_t p = partitioner_.partition_of(op);
  return Submitted{p, primaries_[p]->submit(op)};
}

void ShardGroup::drain() {
  for (auto& primary : primaries_) primary->drain();
}

std::vector<std::uint64_t> ShardGroup::commit_cut() const {
  std::vector<std::uint64_t> cut;
  cut.reserve(primaries_.size());
  for (const auto& primary : primaries_) cut.push_back(primary->commit_lsn());
  return cut;
}

std::vector<std::uint64_t> ShardGroup::applied_cut() const {
  std::vector<std::uint64_t> cut;
  cut.reserve(primaries_.size());
  for (const auto& primary : primaries_) {
    cut.push_back(primary->applied_lsn());
  }
  return cut;
}

bool ShardGroup::wait_replicas_at(
    const std::vector<std::uint64_t>& cut) const {
  bool ok = true;
  for (std::size_t p = 0; p < replicas_.size(); ++p) {
    for (const auto& r : replicas_[p]) {
      ok = r->wait_for_lsn(cut[p]) && ok;
    }
  }
  return ok;
}

std::vector<std::uint64_t> ShardGroup::quiesce() {
  drain();
  std::vector<std::uint64_t> cut = commit_cut();
  if (!wait_replicas_at(cut)) {
    throw std::runtime_error(
        "ShardGroup::quiesce: a replica stopped before reaching the "
        "committed cut");
  }
  return cut;
}

ShardGroup::GlobalStats ShardGroup::global_stats() const {
  GlobalStats out;
  // The cut is sampled before the gather: every per-partition figure below
  // covers at least the state at its cut entry (counters only grow).
  out.cut = commit_cut();
  out.partitions.reserve(primaries_.size());
  out.shippers.reserve(shippers_.size());
  for (std::size_t p = 0; p < primaries_.size(); ++p) {
    out.num_edges += primaries_[p]->num_edges();
    service::ServiceStats stats = primaries_[p]->stats();
    out.submitted_ops += stats.submitted_ops;
    out.acked_ops += stats.acked_ops;
    out.applied_edges += stats.applied_edges;
    out.batches += stats.batches;
    out.cycles += stats.cycles;
    out.wal_flushes += stats.wal_flushes;
    out.wal_flush_bytes += stats.wal_flush_bytes;
    out.partitions.push_back(std::move(stats));
    out.shippers.push_back(shippers_[p]->stats());
  }
  return out;
}

std::uint64_t ShardGroup::replica_lag(std::size_t p) const {
  if (replicas_[p].empty()) return 0;
  // Sample the primary first: its applied LSN only grows, so a replica
  // racing past the sampled value reads as lag 0, never as negative.
  const std::uint64_t primary_lsn = primaries_[p]->applied_lsn();
  std::uint64_t slowest = primary_lsn;
  for (const auto& r : replicas_[p]) {
    slowest = std::min(slowest, r->applied_lsn());
  }
  return primary_lsn - slowest;
}

std::uint64_t ShardGroup::max_replica_lag() const {
  std::uint64_t worst = 0;
  for (std::size_t p = 0; p < replicas_.size(); ++p) {
    worst = std::max(worst, replica_lag(p));
  }
  return worst;
}

void ShardGroup::feed_feedback(std::uint64_t read_p99_ns) {
  for (std::size_t p = 0; p < primaries_.size(); ++p) {
    primaries_[p]->observe_cluster_feedback(replica_lag(p), read_p99_ns);
  }
}

std::size_t ShardGroup::num_edges() const {
  std::size_t total = 0;
  for (const auto& primary : primaries_) total += primary->num_edges();
  return total;
}

std::vector<std::uint64_t> ShardGroup::checkpoint() {
  if (config_.base.snapshot_path.empty()) {
    throw std::logic_error(
        "ShardGroup::checkpoint requires ClusterConfig::base.snapshot_path");
  }
  std::vector<std::uint64_t> cut(primaries_.size(), 0);
  // One thread per partition: a checkpoint is snapshot write + WAL fsync,
  // so overlapping them costs slowest-partition instead of the sum.
  for_each_partition(primaries_.size(), [&](std::size_t p) {
    primaries_[p]->checkpoint();
    // The partition's snapshot covers exactly its post-checkpoint commit
    // LSN (checkpoint() is update-quiescent per partition).
    cut[p] = primaries_[p]->commit_lsn();
  });
  return cut;
}

void ShardGroup::shutdown() {
  // The feedback sampler's on_sample (and the snapshot it rides on) walks
  // every primary and replica — stop it before any of them goes down.
  if (feedback_sampler_ != nullptr) {
    feedback_sampler_->stop();
    feedback_sampler_.reset();
  }
  // Tombstone the lag probes next, for the same reason: unregister()
  // excludes a concurrent watchdog check, so after this loop no probe
  // callback can touch a stopping component.
  if (config_.base.health != nullptr) {
    for (obs::HealthComponent* probe : lag_probes_) {
      config_.base.health->unregister(probe);
    }
    lag_probes_.clear();
  }
  // Stage by dependency (replicas, shippers, primaries), each stage
  // overlapped across partitions — a primary's shutdown drains its async
  // WAL engine, and those waits should run concurrently, not in sequence.
  for_each_partition(replicas_.size(), [&](std::size_t p) {
    for (auto& r : replicas_[p]) r->stop();
  });
  for (auto& s : shippers_) s->detach();
  for_each_partition(primaries_.size(),
                     [&](std::size_t p) { primaries_[p]->shutdown(); });
}

}  // namespace cpkcore::cluster
