// Replica — a read-only follower holding an exact copy of the primary's
// level data structure.
//
// A Replica owns its own CPLDS (built with the same structural parameters
// as the primary) and a background apply thread that consumes the shipped
// commit stream in LSN order. Since the CPLDS is a deterministic function
// of the committed batch stream, a caught-up replica's coreness estimates
// are bit-identical to the primary's — replicas scale *reads*, with the
// same three ReadModes the primary serves, at the cost of replication lag
// (tracked as applied_lsn).
//
//   LogShipper ──callback──▶ queue ──apply thread──▶ CPLDS ◀── readers
//                                        │
//                                        └──▶ applied_lsn (router routing)
//
// Threading: the apply thread is the replica CPLDS's single update driver;
// any number of reader threads may query concurrently (the CPLDS contract).
// start()/stop() are not thread-safe against each other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "cluster/log_ship.hpp"
#include "core/read_modes.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore::cluster {

class Replica {
 public:
  struct Stats {
    std::uint64_t applied_lsn = 0;
    std::uint64_t applied_batches = 0;
    std::uint64_t applied_edges = 0;
    std::size_t queue_depth = 0;   ///< shipped but not yet applied
    double apply_seconds = 0.0;
  };

  /// Builds an empty replica mirroring the primary's structural parameters
  /// (num_vertices, delta, lambda, level cap, CPLDS options); the config's
  /// service-only fields (shards, WAL/snapshot paths, budgets) are ignored.
  /// Pass the same ServiceConfig the primary was built from so the streams
  /// replay identically.
  explicit Replica(const service::ServiceConfig& like);
  ~Replica() { stop(); }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Health plane (optional): registers this replica's apply thread as a
  /// heartbeat component (idle while parked on an empty queue, beaten per
  /// shipped record). Call before start(); stop() tombstones the
  /// component. The handle from health_component() stays valid for the
  /// monitor's lifetime — the Router caches it to skip stalled replicas.
  void register_health(obs::HealthMonitor& monitor, std::string name,
                       int partition = -1);
  [[nodiscard]] const obs::HealthComponent* health_component() const {
    return heartbeat_;
  }

  /// Starts the apply thread and subscribes to the shipper from this
  /// replica's applied LSN (0 for a fresh replica — a late joiner catches
  /// up through the shipper's ring/WAL path). Throws what subscribe()
  /// throws; the shipper must outlive this replica's stop().
  void start(LogShipper& shipper);

  /// Unsubscribes and joins the apply thread after it finishes the queue
  /// already shipped. Idempotent; called by the destructor.
  void stop();

  // ---------------- reads ----------------

  [[nodiscard]] double read_coreness(vertex_t v,
                                     ReadMode mode = ReadMode::kCplds) const {
    return read_with_mode(*ds_, v, mode);
  }
  [[nodiscard]] level_t read_level(vertex_t v,
                                   ReadMode mode = ReadMode::kCplds) const {
    return read_level_with_mode(*ds_, v, mode);
  }

  // ---------------- replication cursor ----------------

  /// Last LSN fully applied to this replica's CPLDS.
  [[nodiscard]] std::uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }

  /// Blocks until applied_lsn() >= lsn. Returns false if the replica
  /// stopped first.
  bool wait_for_lsn(std::uint64_t lsn) const;

  // ---------------- inspection ----------------

  [[nodiscard]] vertex_t num_vertices() const { return ds_->num_vertices(); }
  [[nodiscard]] std::size_t num_edges() const { return ds_->num_edges(); }
  [[nodiscard]] Stats stats() const;

  /// Quiescent-only access (tests, validation).
  [[nodiscard]] const CPLDS& cplds() const { return *ds_; }

 private:
  void enqueue(const ShippedRecord& record);
  void apply_loop();

  /// Declared before ds_ (destroyed after it): per-replica reclaimer
  /// behind the wait-free read path, built from the primary config's
  /// `reclaimer` kind.
  std::unique_ptr<concurrent::Reclaimer> reclaimer_;
  std::unique_ptr<CPLDS> ds_;
  LogShipper* shipper_ = nullptr;
  std::uint64_t subscription_ = 0;
  bool started_ = false;

  /// Health plane (register_health): the apply thread's heartbeat,
  /// tombstoned by stop(). The monitor outlives the handle's use.
  obs::HealthMonitor* health_ = nullptr;
  obs::HealthComponent* heartbeat_ = nullptr;

  mutable std::mutex mu_;
  mutable std::condition_variable queue_cv_;    // apply thread wakeups
  mutable std::condition_variable applied_cv_;  // wait_for_lsn wakeups
  std::deque<ShippedRecord> queue_;  // under mu_
  bool stop_requested_ = false;      // under mu_
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> applied_lsn_{0};

  std::uint64_t applied_batches_ = 0;  // under mu_
  std::uint64_t applied_edges_ = 0;    // under mu_
  double apply_seconds_ = 0.0;         // under mu_

  std::thread apply_thread_;
};

}  // namespace cpkcore::cluster
