#include "cluster/log_ship.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "service/wal.hpp"

namespace cpkcore::cluster {

namespace {

/// Journals one catch-up serving pass: which source fed the subscriber
/// (the retention ring or the on-disk WAL) and how many records it
/// served. A replica joining far behind flips between the two as the
/// ring advances under it — the event stream is how an operator sees
/// that dance.
void emit_catchup(const std::string& component, const char* source,
                  std::uint64_t from_lsn, std::uint64_t records) {
  obs::EventLog::instance().emit(
      obs::Severity::kInfo, component, "catchup_source",
      {{"source", source},
       {"from_lsn", std::to_string(from_lsn)},
       {"records", std::to_string(records)}});
}

}  // namespace

LogShipper::LogShipper(service::KCoreService& primary)
    : LogShipper(primary, Options()) {}

LogShipper::LogShipper(service::KCoreService& primary, Options options)
    : primary_(primary),
      options_(options),
      wal_path_(primary.config().wal_path),
      num_vertices_(primary.num_vertices()) {
  // set_commit_listener returns the commit LSN as of registration, under
  // the primary's cycle lock — exactly the first LSN we will NOT receive
  // live. But a commit can already be delivered between that call
  // returning and this constructor touching last_lsn_, and mu_ cannot be
  // held across the registration (on_commit runs under the primary's
  // cycle lock and then takes mu_ — the opposite order). So whoever gets
  // to mu_ first seeds the cursor: on_commit from its first record's
  // predecessor, or this constructor from the registration LSN — the two
  // agree, since the first live record is always registration + 1.
  const std::uint64_t at_registration = primary_.set_commit_listener(
      [this](const service::WalFramePtr& frame) { on_commit(frame); });
  attached_ = true;
  std::lock_guard lock(mu_);
  if (!cursor_seeded_) {
    last_lsn_ = at_registration;
    cursor_seeded_ = true;
  }
}

void LogShipper::detach() {
  if (!attached_) return;
  primary_.set_commit_listener(nullptr);
  attached_ = false;
}

void LogShipper::on_commit(const service::WalFramePtr& frame) {
  const std::uint64_t lsn = frame->lsn();
  std::lock_guard lock(mu_);
  // First delivery beat the constructor to the cursor (see there).
  if (!cursor_seeded_) {
    last_lsn_ = lsn - 1;
    cursor_seeded_ = true;
  }
  // The primary assigns consecutive LSNs and commits them in order; a gap
  // here would mean shipped streams silently diverge from the log.
  if (lsn != last_lsn_ + 1) {
    throw std::runtime_error("LogShipper: non-consecutive commit LSN");
  }
  last_lsn_ = lsn;
  // Retaining the frame is a shared_ptr copy — the encoded bytes the WAL
  // just committed are never duplicated on this path.
  const ShippedRecord record{lsn, frame};
  retained_.push_back(record);
  // Evict *after* the push so retain_records = 0 still ships live records
  // (the ring then only serves subscribers already caught up).
  while (retained_.size() > options_.retain_records) retained_.pop_front();
  retained_peak_ = std::max(retained_peak_, retained_.size());
  ++shipped_;
  CPKC_TRACE_INSTANT("ship", lsn, subscribers_.size());
  for (auto& [id, cb] : subscribers_) {
    cb(record);
  }
}

std::uint64_t LogShipper::subscribe(std::uint64_t from_lsn,
                                    Callback callback) {
  // Largest ring backlog delivered while holding mu_ (and therefore while
  // stalling the primary's commit path). A bigger backlog is copied out
  // (shared_ptrs — cheap) and delivered unlocked, then re-checked; the
  // final splice is always the small-in-lock case, so delivery order is
  // preserved with a bounded stall.
  constexpr std::size_t kSpliceChunk = 256;
  for (;;) {
    std::unique_lock lock(mu_);
    // First LSN the ring (plus the live stream) can serve contiguously.
    const std::uint64_t ring_start =
        retained_.empty() ? last_lsn_ + 1 : retained_.front().lsn;
    if (from_lsn + 1 >= ring_start) {
      std::vector<ShippedRecord> backlog;
      for (const ShippedRecord& rec : retained_) {
        if (rec.lsn > from_lsn) backlog.push_back(rec);
      }
      if (backlog.size() <= kSpliceChunk) {
        for (const ShippedRecord& rec : backlog) {
          callback(rec);
          ++catchup_;
        }
        const std::uint64_t id = next_id_++;
        subscribers_.emplace(id, std::move(callback));
        lock.unlock();
        if (!backlog.empty()) {
          emit_catchup(options_.event_component, "ring", from_lsn,
                       backlog.size());
        }
        return id;
      }
      lock.unlock();
      emit_catchup(options_.event_component, "ring", from_lsn,
                   backlog.size());
      for (const ShippedRecord& rec : backlog) callback(rec);
      from_lsn = backlog.back().lsn;
      {
        std::lock_guard stats_lock(mu_);
        catchup_ += backlog.size();
      }
      continue;
    }
    // The ring has evicted records the subscriber needs: serve the range
    // (from_lsn, ring_start) from the on-disk log, outside the lock so the
    // primary's commit path is not stalled behind file IO. The WAL only
    // grows meanwhile (checkpoint compaction would raise its base LSN, and
    // the base check below catches that), so re-checking the ring on the
    // next iteration closes any window the eviction opened.
    const std::uint64_t need_below = ring_start;
    lock.unlock();
    if (wal_path_.empty()) {
      throw std::runtime_error(
          "LogShipper: subscriber needs records evicted from retention and "
          "the primary has no WAL to catch up from");
    }
    // With an async commit engine the ring can be ahead of the disk: a
    // record enters retention at apply time but its frame may still sit in
    // the engine's flush queue. Wait for the needed prefix to become
    // durable before scanning, or the scan would legitimately stop at the
    // not-yet-flushed tail and we would misreport "WAL ends before the
    // retention ring begins". A false return (engine failed / service
    // stopping) falls through — the shortfall checks below surface it.
    if (need_below > 1) primary_.wait_wal_durable(need_below - 1);
    std::uint64_t served_upto = from_lsn;
    // scan_wal_frames lifts v4 frames straight off disk — the subscriber
    // receives the identical bytes the live stream carries, with no decode
    // (and no re-encode) on this path.
    const service::WalScanInfo info = service::scan_wal_frames(
        wal_path_, num_vertices_,
        [&](const service::WalFramePtr& frame) {
          const std::uint64_t lsn = frame->lsn();
          if (lsn <= from_lsn || lsn >= need_below) return;
          callback(ShippedRecord{lsn, frame});
          served_upto = lsn;
        });
    if (info.base_lsn > from_lsn) {
      throw std::runtime_error(
          "LogShipper: records before the WAL base LSN were compacted away; "
          "bootstrap the replica from a snapshot instead");
    }
    if (served_upto + 1 < need_below) {
      throw std::runtime_error(
          "LogShipper: WAL ends before the retention ring begins");
    }
    {
      std::lock_guard stats_lock(mu_);
      const std::uint64_t n = served_upto - from_lsn;
      catchup_ += n;
      disk_ += n;
    }
    if (served_upto > from_lsn) {
      emit_catchup(options_.event_component, "disk", from_lsn,
                   served_upto - from_lsn);
    }
    from_lsn = served_upto;
  }
}

void LogShipper::unsubscribe(std::uint64_t id) {
  std::lock_guard lock(mu_);
  subscribers_.erase(id);
}

std::uint64_t LogShipper::last_shipped_lsn() const {
  std::lock_guard lock(mu_);
  return last_lsn_;
}

LogShipper::Stats LogShipper::stats() const {
  std::lock_guard lock(mu_);
  Stats out;
  out.shipped_records = shipped_;
  out.catchup_records = catchup_;
  out.disk_records = disk_;
  out.retained = retained_.size();
  out.retained_peak = retained_peak_;
  out.retain_capacity = options_.retain_records;
  out.subscribers = subscribers_.size();
  return out;
}

}  // namespace cpkcore::cluster
