// ShardGroup — the sharded write plane: P independent partition primaries,
// each with its own WAL, LSN stream, log shipper, and replica set.
//
//   edge op ──Partitioner──▶ partition p ──▶ primary_p (KCoreService)
//                                               │  WAL_p, LSNs_p
//                                               ▼
//                                           LogShipper_p ──▶ replica_p,0
//                                                            replica_p,1 ...
//
// PR 4 scaled reads (one primary, N exact replicas); the ShardGroup scales
// *writes* by partitioning the edge space across P primaries (edge-key hash
// via Partitioner), composing with the replica sets: every partition is the
// complete PR-4 topology over its own edge subset. Partitions share
// nothing — no cross-partition locks, logs, or LSN coordination — which is
// what lets write throughput scale with P, and what keeps per-partition
// guarantees intact: each partition's replicas stay bit-identical to their
// primary, and each partition's (snapshot_p, WAL_p) pair recovers it
// independently.
//
// Cross-partition state lives behind *vector cuts*: a per-partition LSN
// vector (cut[p] = an LSN on partition p's stream). commit_cut() samples
// the committed frontier; scatter-gather consumers (global stats, fan-out
// reads, checkpoint) record the cut they operated at. Because partitions
// are independent, a vector cut IS a consistent cut: no cross-partition
// ordering exists to violate.
//
// Threading: construction and shutdown() are single-threaded; everything
// else (submit/wait/drain, cut sampling, stats) is thread-safe, delegating
// to the per-partition services. The ShardGroup owns every component and
// tears them down in dependency order (replicas, shippers, primaries).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/log_ship.hpp"
#include "cluster/partition.hpp"
#include "cluster/replica.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore::cluster {

struct ClusterConfig {
  /// Write-plane width P: independent partition primaries. 1 = the
  /// unsharded PR-4 topology (and on-disk file layout).
  std::size_t partitions = 1;

  /// Read-plane depth R: exact replicas per partition. 0 = no replicas
  /// (reads fall back to the partition primaries).
  std::size_t replicas = 0;

  /// Capacity of each partition's LogShipper in-memory retention ring.
  /// Bounded topologies (replicas subscribe at construction, no late
  /// joiners) can keep this small; late joiners past the ring fall back to
  /// the partition's on-disk WAL. Defaults to unbounded, like LogShipper.
  std::size_t retain_records = std::numeric_limits<std::size_t>::max();

  /// Closed-loop feedback cadence: with `base.metrics` set and this
  /// nonzero, the group runs an internal *quiet* StatsSampler that
  /// snapshots the registry every feedback_interval_ms and pushes the
  /// per-partition replica lag plus the router's read-latency p99 (the
  /// "router.read_latency_ns" sample, once a Router has registered its
  /// metrics in the same registry) into every primary's adaptive batch
  /// sizer via feed_feedback(). 0 = no internal driver; callers may still
  /// call feed_feedback() themselves. Inert toward the budget unless the
  /// base config's feedback thresholds (max_replica_lag /
  /// target_read_p99_ns) are set.
  std::uint64_t feedback_interval_ms = 200;

  /// Replica-lag health probes (records the slowest replica trails its
  /// partition primary): with `base.health` set and replicas > 0, each
  /// partition registers a "p<p>.replica_lag" value probe classified
  /// against these thresholds. 0 disables that classification — the probe
  /// still reports its value in rollups.
  std::uint64_t replica_lag_degraded = 0;
  std::uint64_t replica_lag_stalled = 0;

  /// Template ServiceConfig applied to every partition primary.
  /// `num_vertices` is the *global* vertex space (every partition spans
  /// it); `wal_path` and `snapshot_path` are stems — partition p uses
  /// "<stem>.p<p>" when partitions > 1 (see partition_path), the stem
  /// itself when partitions == 1. When `base.metrics` is set, the group
  /// prefixes each partition's sources with "p<p>." (primary under
  /// "p<p>.service.", shipper under "p<p>.ship.", replica r under
  /// "p<p>.replica<r>.") and adds per-partition replica-lag gauges under
  /// "cluster.". When `base.health` is set, the same "p<p>." scheme names
  /// the health components (apply/WAL-engine heartbeats, replica apply
  /// heartbeats "p<p>.replica<r>", lag probes "p<p>.replica_lag"), each
  /// tagged with its partition id for per-partition rollups.
  service::ServiceConfig base;
};

class ShardGroup {
 public:
  /// Builds every partition primary (cold, or warm from its own
  /// snapshot/WAL), its log shipper (ring capacity `retain_records`), and
  /// its `replicas` replicas, already subscribed. Throws what
  /// KCoreService / LogShipper / Replica construction throws;
  /// std::invalid_argument for partitions == 0.
  explicit ShardGroup(ClusterConfig config);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  // ---------------- topology ----------------

  [[nodiscard]] std::size_t num_partitions() const {
    return primaries_.size();
  }
  /// Replicas per partition (uniform across partitions).
  [[nodiscard]] std::size_t num_replicas() const {
    return config_.replicas;
  }
  [[nodiscard]] const Partitioner& partitioner() const {
    return partitioner_;
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] service::KCoreService& primary(std::size_t p) {
    return *primaries_[p];
  }
  [[nodiscard]] const service::KCoreService& primary(std::size_t p) const {
    return *primaries_[p];
  }
  [[nodiscard]] LogShipper& shipper(std::size_t p) { return *shippers_[p]; }
  [[nodiscard]] Replica& replica(std::size_t p, std::size_t r) {
    return *replicas_[p][r];
  }
  [[nodiscard]] const Replica& replica(std::size_t p, std::size_t r) const {
    return *replicas_[p][r];
  }
  /// Partition p's replica set as raw pointers (router construction).
  [[nodiscard]] std::vector<Replica*> replica_set(std::size_t p) const;

  // ---------------- write plane ----------------

  /// A routed submission: which partition took the op, and its ticket
  /// *on that partition's primary*.
  struct Submitted {
    std::size_t partition = 0;
    service::Ticket ticket;
  };

  /// Open-loop routed submission: hashes the op's edge to its owning
  /// partition and submits there. Thread-safe; throws what
  /// KCoreService::submit throws.
  Submitted submit(Update op);
  Submitted submit_insert(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kInsert});
  }
  Submitted submit_delete(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kDelete});
  }

  /// Blocks until the submission is acknowledged by its partition; on
  /// success optionally reports the partition-local acked LSN. False iff
  /// that partition's primary stopped first.
  bool wait(const Submitted& s, std::uint64_t* acked_lsn = nullptr) {
    return primaries_[s.partition]->wait(s.ticket, acked_lsn);
  }

  /// Blocks until every op submitted (to any partition) before the call is
  /// acknowledged.
  void drain();

  // ---------------- cross-partition cuts ----------------

  /// Samples the committed frontier: cut[p] = partition p's commit LSN.
  /// Any backend at-or-past its entry serves state no older than every
  /// write acked before the sample.
  [[nodiscard]] std::vector<std::uint64_t> commit_cut() const;

  /// Samples the applied frontier of the partition primaries.
  [[nodiscard]] std::vector<std::uint64_t> applied_cut() const;

  /// Blocks until every replica of every partition has applied at least
  /// its partition's cut entry. False if any replica stopped first.
  bool wait_replicas_at(const std::vector<std::uint64_t>& cut) const;

  /// drain() + wait_replicas_at(commit_cut()): on return every backend of
  /// every partition serves the same quiescent state. Returns the cut.
  /// Throws std::runtime_error if a replica stopped before reaching it
  /// (the quiescence guarantee would silently not hold otherwise).
  std::vector<std::uint64_t> quiesce();

  // ---------------- scatter-gather ----------------

  /// Cross-partition aggregate stats, stamped with the commit cut they
  /// were gathered at (sampled first, so every per-partition figure is
  /// at-or-past its cut entry).
  struct GlobalStats {
    std::vector<std::uint64_t> cut;  ///< per-partition commit LSNs
    std::size_t num_edges = 0;       ///< sum of partition edge counts
    std::uint64_t submitted_ops = 0;
    std::uint64_t acked_ops = 0;
    std::uint64_t applied_edges = 0;
    std::uint64_t batches = 0;
    std::uint64_t cycles = 0;
    /// Sum of per-partition WAL flush syscall counts / bytes (see
    /// ServiceStats::wal_flushes) — the cluster-wide durability pipeline
    /// cost, one aggregate to chart against acked_ops.
    std::uint64_t wal_flushes = 0;
    std::uint64_t wal_flush_bytes = 0;
    std::vector<service::ServiceStats> partitions;
    std::vector<LogShipper::Stats> shippers;
  };
  [[nodiscard]] GlobalStats global_stats() const;

  /// Total edges across partitions (each edge lives on exactly one).
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] vertex_t num_vertices() const {
    return primaries_.front()->num_vertices();
  }

  // ---------------- cluster feedback ----------------

  /// Records partition p's slowest replica trails its primary's applied
  /// LSN by (0 with no replicas).
  [[nodiscard]] std::uint64_t replica_lag(std::size_t p) const;

  /// Max of replica_lag(p) over the partitions — the cluster-wide
  /// replication health signal.
  [[nodiscard]] std::uint64_t max_replica_lag() const;

  /// Pushes the current per-partition replica lag plus the caller's read
  /// p99 (e.g. Router::read_latency().p99_ns(), or 0 when unknown) into
  /// every primary's adaptive batch sizer (observe_cluster_feedback).
  /// Driven automatically by the group's internal feedback sampler every
  /// ClusterConfig::feedback_interval_ms (when metrics are on); exposed
  /// for callers that want an extra push or run without metrics. No-ops
  /// toward the budget unless the base config's thresholds are set.
  void feed_feedback(std::uint64_t read_p99_ns);

  // ---------------- lifecycle ----------------

  /// Checkpoints every partition (snapshot_p + WAL_p truncation) and
  /// returns the vector of base LSNs the snapshots cover. Partitions
  /// checkpoint *concurrently* (one thread each): a checkpoint's cost is
  /// dominated by snapshot write + WAL fsync, so overlapping them takes
  /// the wall-clock from sum-of-partitions to slowest-partition. Each
  /// partition's checkpoint is internally update-quiescent; across
  /// partitions the cut is a vector cut — consistent because partitions
  /// share nothing, so restoring every (snapshot_p, WAL_p) pair reproduces
  /// a reachable global state. Throws std::logic_error when the config has
  /// no snapshot stem; rethrows the first per-partition failure after all
  /// partitions finish.
  std::vector<std::uint64_t> checkpoint();

  /// Graceful teardown in dependency order: replicas stop, shippers
  /// detach, primaries shut down (draining). Each stage runs its
  /// partitions concurrently — with async WAL engines a primary's
  /// shutdown waits out its in-flight flush chain, and overlapping those
  /// drains keeps teardown at slowest-partition cost. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  ClusterConfig config_;
  Partitioner partitioner_;
  // Declaration order is destruction-order-in-reverse: replicas_ destroys
  // first (stop() unsubscribes), then shippers_ (detach needs a live
  // primary), then primaries_.
  std::vector<std::unique_ptr<service::KCoreService>> primaries_;
  std::vector<std::unique_ptr<LogShipper>> shippers_;
  std::vector<std::vector<std::unique_ptr<Replica>>> replicas_;
  /// Per-partition replica-lag probes (base.health set, replicas > 0);
  /// their callbacks walk primaries_/replicas_, so shutdown() tombstones
  /// them before any component stops.
  std::vector<obs::HealthComponent*> lag_probes_;
  /// Internal feedback driver (quiet sampler, feedback_interval_ms): its
  /// on_sample walks every component, so shutdown() stops it FIRST.
  std::unique_ptr<obs::StatsSampler> feedback_sampler_;
  // Declared last: the cluster-level collect callbacks walk every
  // component above, so they must deregister first.
  obs::MetricsGroup metrics_;
};

}  // namespace cpkcore::cluster
