// Log shipping — the replication transport of the read-scaling cluster.
//
// A LogShipper taps the primary KCoreService's group-commit path (via
// KCoreService::set_commit_listener) and fans every committed record out to
// its subscribers, in strictly increasing LSN order with no gaps. Because
// batch application to the level data structure is deterministic given the
// committed batch stream, a subscriber that applies the stream to its own
// CPLDS is an *exact* replica, not an approximation.
//
// What travels is the *encoded* WalFrame — the same bytes the primary's WAL
// committed, shared by pointer from the apply thread's single encode. The
// retention ring holds frames, disk catch-up lifts frames straight off the
// v4 log without decoding (scan_wal_frames), and each replica decodes a
// frame's payload exactly once on its own apply thread. Nothing between the
// group commit and the replica apply re-serializes.
//
//   primary apply thread ──commit listener──▶ LogShipper ──▶ subscriber 0
//                                               │   ▲        subscriber 1
//                                   retained ◀──┘   │        ...
//                                   ring            └── catch-up: on-disk WAL
//
// Late joiners: subscribe(from_lsn) first replays every record the
// subscriber missed — from the in-memory retention ring when it still holds
// them, else from the primary's on-disk WAL (scan_wal) — and then splices
// the subscriber into the live stream with no gap and no duplicate. Records
// older than the WAL's base LSN were compacted away by a checkpoint; a
// joiner that needs them must bootstrap from a snapshot instead (throws).
//
// Lifetime: construct after the primary, destroy (or detach()) before it.
// Subscriber callbacks run under the shipper lock on the primary's apply
// thread — or, when the primary ships at the durable point
// (ServiceConfig::ship_at = kDurable with an async WAL engine), on the
// engine's completion thread. Either way they must be fast
// (enqueue-and-return, as Replica does) and must not call back into the
// shipper or the primary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/batch.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore::cluster {

/// One committed batch as shipped to subscribers: the encoded frame the
/// primary's WAL committed, shared — not copied — so one record fans out to
/// the retention ring and every subscriber without duplicating bytes on the
/// primary's commit path. Consumers call frame->decode_batch() exactly once
/// (or frame->bytes() to forward the wire form untouched).
struct ShippedRecord {
  std::uint64_t lsn = 0;
  service::WalFramePtr frame;
};

class LogShipper {
 public:
  struct Options {
    /// In-memory retention ring size. Records evicted from the ring are
    /// still reachable through the primary's on-disk WAL (when one is
    /// configured); with no WAL, keep this unbounded or late joiners past
    /// the ring will fail to subscribe. Degenerate but allowed: 0 keeps
    /// nothing, so a subscriber behind the live stream can only splice in
    /// (via repeated full-WAL scans) once the primary pauses committing —
    /// use at least a small ring when joiners must land under write load.
    std::size_t retain_records = std::numeric_limits<std::size_t>::max();

    /// Event-journal component for catch-up source events ("served N
    /// records from the ring / from the on-disk WAL"); a ShardGroup names
    /// its shippers per partition ("p0.ship").
    std::string event_component = "ship";
  };

  struct Stats {
    std::uint64_t shipped_records = 0;   ///< live records fanned out
    std::uint64_t catchup_records = 0;   ///< records served during catch-up
    std::uint64_t disk_records = 0;      ///< ... of which read from the WAL
    std::size_t retained = 0;            ///< current ring occupancy
    std::size_t retained_peak = 0;       ///< high-water ring occupancy
    std::size_t retain_capacity = 0;     ///< configured ring capacity
    std::size_t subscribers = 0;
  };

  /// Attaches to the primary's commit stream. Records committed before
  /// attachment are reachable only through the WAL catch-up path.
  explicit LogShipper(service::KCoreService& primary);
  LogShipper(service::KCoreService& primary, Options options);
  ~LogShipper() { detach(); }

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  using Callback = std::function<void(const ShippedRecord&)>;

  /// Delivers every committed record with LSN > from_lsn (catch-up), then
  /// registers the callback for the live stream; the two phases splice
  /// without gap or duplicate. Returns the subscription id. Throws
  /// std::runtime_error when the missed records are reachable neither from
  /// the retention ring nor from the WAL (no WAL configured, or the records
  /// predate the WAL's base LSN — bootstrap from a snapshot instead).
  std::uint64_t subscribe(std::uint64_t from_lsn, Callback callback);

  /// Stops delivery to `id`. After return, no further callback runs.
  void unsubscribe(std::uint64_t id);

  /// Unhooks from the primary (idempotent; the destructor calls it). Must
  /// run while the primary is still alive.
  void detach();

  /// LSN of the last record shipped (or known committed at attach time).
  [[nodiscard]] std::uint64_t last_shipped_lsn() const;

  [[nodiscard]] Stats stats() const;

 private:
  void on_commit(const service::WalFramePtr& frame);

  service::KCoreService& primary_;
  Options options_;
  std::string wal_path_;     ///< catch-up source ("" = none)
  vertex_t num_vertices_ = 0;
  bool attached_ = false;

  mutable std::mutex mu_;
  std::deque<ShippedRecord> retained_;          // under mu_
  std::map<std::uint64_t, Callback> subscribers_;  // under mu_
  std::uint64_t next_id_ = 1;                   // under mu_
  std::uint64_t last_lsn_ = 0;                  // under mu_
  bool cursor_seeded_ = false;                  // under mu_ (see ctor)
  std::uint64_t shipped_ = 0;                   // under mu_
  std::uint64_t catchup_ = 0;                   // under mu_
  std::uint64_t disk_ = 0;                      // under mu_
  std::size_t retained_peak_ = 0;               // under mu_
};

}  // namespace cpkcore::cluster
