// Concurrent workload runner reproducing the paper's methodology (§7): one
// update driver applies homogeneous batches (internally parallel on the
// scheduler) while dedicated reader threads issue uniform-random coreness
// reads continuously. Latencies land in per-thread log-bucketed histograms;
// optional sampling records (vertex, estimate, batch-window) triples for
// accuracy / linearizability evaluation, and optional boundary snapshots
// record per-batch level arrays and exact coreness.
#pragma once

#include <cstdint>
#include <vector>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "util/latency_histogram.hpp"
#include "util/types.hpp"

namespace cpkcore::harness {

struct WorkloadConfig {
  ReadMode mode = ReadMode::kCplds;
  std::size_t reader_threads = 4;
  std::uint64_t seed = 1;

  /// If > 0, every `sample_stride`-th read per thread is recorded (only
  /// samples whose batch window is unambiguous are kept).
  std::size_t sample_stride = 0;
  std::size_t max_samples_per_thread = 1u << 20;

  /// Snapshot the level of every vertex at every batch boundary
  /// (boundary j = state after j batches). Enables linearizability checks.
  bool record_boundary_levels = false;

  /// Additionally compute exact coreness at every boundary (maintains a
  /// mirror graph; intended for small accuracy runs).
  bool record_boundary_exact = false;

  /// Test-only negative control: bypass the read modes and sample the raw
  /// live PLDS level array (the historical torn NonSync behavior). Keeps
  /// the linearizability checker falsifiable now that every ReadMode is
  /// tear-free.
  bool raw_live_reads = false;
};

struct ReadSample {
  vertex_t v = kNoVertex;
  level_t level = kNoLevel;  ///< the level the read's estimate derives from
  /// Value of CPLDS::batch_number() observed unchanged around the read.
  /// Relative to the workload's window_base b: window c <= b means "before
  /// this workload's first batch" (boundary 0); window c > b means "during
  /// or after this workload's batch (c - b - 1)", so the linearized state
  /// is boundary c - b - 1 or boundary c - b.
  std::uint64_t window = 0;
};

struct WorkloadResult {
  LatencyHistogram latency;
  std::uint64_t total_reads = 0;
  std::vector<double> batch_seconds;
  std::size_t total_applied_edges = 0;
  std::vector<ReadSample> samples;
  /// CPLDS::batch_number() before this workload's first batch (batches
  /// applied by the caller beforehand, e.g. the deletion preload, shift
  /// sample windows by this much).
  std::uint64_t window_base = 0;
  std::vector<std::vector<level_t>> boundary_levels;     // [B+1][n]
  std::vector<std::vector<vertex_t>> boundary_exact;     // [B+1][n]

  [[nodiscard]] double total_update_seconds() const;
  [[nodiscard]] double avg_batch_seconds() const;
  [[nodiscard]] double max_batch_seconds() const;
  /// Paper's throughput definitions: totals divided by total update time.
  [[nodiscard]] double read_throughput() const;
  [[nodiscard]] double write_throughput() const;
};

/// Runs `batches` against `ds` with concurrent readers per `cfg`.
/// The caller provides a CPLDS already loaded with any pre-existing graph.
WorkloadResult run_workload(CPLDS& ds,
                            const std::vector<UpdateBatch>& batches,
                            const WorkloadConfig& cfg);

}  // namespace cpkcore::harness
