// Plain-text table rendering for the bench binaries: every figure/table of
// the paper is reproduced as an aligned text table on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpkcore::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void print() const;  // stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23e-05 s"-style compact seconds.
std::string fmt_seconds(double seconds);

/// Fixed precision double.
std::string fmt_double(double value, int precision = 3);

/// Engineering notation for counts/throughputs (e.g. "1.25e6").
std::string fmt_si(double value);

}  // namespace cpkcore::harness
