#include "harness/workload.hpp"

#include <atomic>
#include <numeric>
#include <thread>

#include "graph/dynamic_graph.hpp"
#include "kcore/peel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cpkcore::harness {

double WorkloadResult::total_update_seconds() const {
  return std::accumulate(batch_seconds.begin(), batch_seconds.end(), 0.0);
}

double WorkloadResult::avg_batch_seconds() const {
  return batch_seconds.empty()
             ? 0.0
             : total_update_seconds() /
                   static_cast<double>(batch_seconds.size());
}

double WorkloadResult::max_batch_seconds() const {
  double mx = 0.0;
  for (double s : batch_seconds) mx = std::max(mx, s);
  return mx;
}

double WorkloadResult::read_throughput() const {
  const double t = total_update_seconds();
  return t > 0 ? static_cast<double>(total_reads) / t : 0.0;
}

double WorkloadResult::write_throughput() const {
  const double t = total_update_seconds();
  return t > 0 ? static_cast<double>(total_applied_edges) / t : 0.0;
}

WorkloadResult run_workload(CPLDS& ds,
                            const std::vector<UpdateBatch>& batches,
                            const WorkloadConfig& cfg) {
  const vertex_t n = ds.num_vertices();
  // The mirror cannot reconstruct a preloaded graph (the PLDS does not
  // expose adjacency), so accuracy runs must route every edge through
  // `batches`, starting from an empty structure. Checked before any thread
  // is spawned.
  if (cfg.record_boundary_exact && ds.num_edges() != 0) {
    throw std::logic_error(
        "record_boundary_exact requires starting from an empty CPLDS");
  }

  WorkloadResult result;
  result.window_base = ds.batch_number();

  std::atomic<bool> stop{false};
  std::vector<LatencyHistogram> hists(cfg.reader_threads);
  std::vector<std::uint64_t> counts(cfg.reader_threads, 0);
  std::vector<std::vector<ReadSample>> samples(cfg.reader_threads);

  std::vector<std::thread> readers;
  readers.reserve(cfg.reader_threads);
  for (std::size_t t = 0; t < cfg.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + t + 1);
      LatencyHistogram& hist = hists[t];
      auto& local_samples = samples[t];
      std::uint64_t issued = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<vertex_t>(rng.next_below(n));
        const bool sampling =
            cfg.sample_stride != 0 && (issued % cfg.sample_stride) == 0 &&
            local_samples.size() < cfg.max_samples_per_thread;
        std::uint64_t window_before = 0;
        if (sampling) window_before = ds.batch_number();
        const std::uint64_t t0 = now_ns();
        const level_t level = cfg.raw_live_reads
                                  ? ds.plds().level(v)
                                  : read_level_with_mode(ds, v, cfg.mode);
        const std::uint64_t t1 = now_ns();
        hist.record(t1 - t0);
        if (sampling) {
          // Keep only samples whose batch window is unambiguous.
          const std::uint64_t window_after = ds.batch_number();
          if (window_before == window_after) {
            local_samples.push_back(ReadSample{v, level, window_after});
          }
        }
        ++issued;
      }
      counts[t] = issued;
    });
  }

  auto snapshot_boundary = [&] {
    if (cfg.record_boundary_levels) {
      std::vector<level_t> levels(n);
      for (vertex_t v = 0; v < n; ++v) levels[v] = ds.read_level_nonsync(v);
      result.boundary_levels.push_back(std::move(levels));
    }
  };

  // Mirror graph for exact coreness at boundaries (accuracy runs only).
  DynamicGraph mirror(cfg.record_boundary_exact ? n : 0);
  auto snapshot_exact = [&] {
    if (cfg.record_boundary_exact) {
      result.boundary_exact.push_back(exact_coreness(mirror));
    }
  };
  snapshot_boundary();
  snapshot_exact();

  for (const UpdateBatch& batch : batches) {
    Timer timer;
    const auto applied = ds.apply(batch);
    result.batch_seconds.push_back(timer.elapsed_s());
    result.total_applied_edges += applied.size();
    if (cfg.record_boundary_exact) {
      if (batch.kind == UpdateKind::kInsert) {
        mirror.insert_batch(applied);
      } else {
        mirror.delete_batch(applied);
      }
    }
    snapshot_boundary();
    snapshot_exact();
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  for (std::size_t t = 0; t < cfg.reader_threads; ++t) {
    result.latency.merge(hists[t]);
    result.total_reads += counts[t];
    result.samples.insert(result.samples.end(), samples[t].begin(),
                          samples[t].end());
  }
  return result;
}

}  // namespace cpkcore::harness
