#include "harness/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "graph/generators.hpp"

namespace cpkcore::harness {

double scale_factor() {
  if (const char* env = std::getenv("CPKC_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return std::clamp(v, 0.05, 100.0);
  }
  return 1.0;
}

std::vector<std::string> dataset_names() {
  return {"dblp", "brain", "wiki", "yt",  "so",
          "lj",   "orkut", "ctr",  "usa", "twitter"};
}

std::vector<std::string> small_dataset_names() { return {"dblp", "yt", "lj"}; }

namespace {
vertex_t scaled(double base) {
  return static_cast<vertex_t>(std::max(64.0, base * scale_factor()));
}

std::size_t scaled_m(double base) {
  return static_cast<std::size_t>(std::max(256.0, base * scale_factor()));
}

std::uint32_t scaled_log2(double base_n) {
  const double n = std::max(1024.0, base_n * scale_factor());
  return static_cast<std::uint32_t>(std::ceil(std::log2(n)));
}
}  // namespace

Dataset make_dataset(const std::string& name) {
  Dataset d;
  d.name = name;
  // Base sizes chosen so the whole default bench suite runs in minutes on a
  // laptop while preserving each dataset's structural character.
  // Social graphs use the BA + planted-communities generator: pure BA is
  // exactly epv-degenerate, while real social graphs pair heavy-tailed
  // degrees with small dense cores (dblp k_max=113 at avg degree ~6.6).
  if (name == "dblp") {
    d.family = "social";
    d.num_vertices = scaled(20000);
    d.edges = gen::social(d.num_vertices, 4, 24,
                          static_cast<vertex_t>(40 * scale_factor()) + 12,
                          0.9, 0xD8159001);
  } else if (name == "brain") {
    // Dense, very high max-core graph (paper: k_max = 1200).
    d.family = "social";
    d.num_vertices = scaled(6000);
    d.edges = gen::social(d.num_vertices, 40, 6,
                          static_cast<vertex_t>(120 * scale_factor()) + 16,
                          0.95, 0xB8A13002);
  } else if (name == "wiki") {
    d.family = "rmat";
    const auto log_n = scaled_log2(16384);
    d.num_vertices = vertex_t{1} << log_n;
    d.edges = gen::rmat(log_n, scaled_m(50000), 0x31133003);
  } else if (name == "yt") {
    d.family = "social";
    d.num_vertices = scaled(24000);
    d.edges = gen::social(d.num_vertices, 3, 10,
                          static_cast<vertex_t>(25 * scale_factor()) + 8,
                          0.85, 0x40474004);
  } else if (name == "so") {
    d.family = "rmat";
    const auto log_n = scaled_log2(24000);
    d.num_vertices = vertex_t{1} << log_n;
    d.edges = gen::rmat(log_n, scaled_m(180000), 0x50F10005);
  } else if (name == "lj") {
    d.family = "social";
    d.num_vertices = scaled(30000);
    d.edges = gen::social(d.num_vertices, 8, 30,
                          static_cast<vertex_t>(60 * scale_factor()) + 12,
                          0.9, 0x11077006);
  } else if (name == "orkut") {
    d.family = "social";
    d.num_vertices = scaled(16000);
    d.edges = gen::social(d.num_vertices, 18, 16,
                          static_cast<vertex_t>(50 * scale_factor()) + 12,
                          0.9, 0x0B2C7007);
  } else if (name == "ctr") {
    // Road network stand-in: grid with diagonals, max coreness 3.
    d.family = "grid";
    const auto side = static_cast<vertex_t>(
        std::max(16.0, std::sqrt(12000.0 * scale_factor())));
    d.num_vertices = side * side;
    d.edges = gen::grid_2d(side, side, /*with_diagonals=*/true);
  } else if (name == "usa") {
    d.family = "grid";
    const auto side = static_cast<vertex_t>(
        std::max(16.0, std::sqrt(20000.0 * scale_factor())));
    d.num_vertices = side * side;
    d.edges = gen::grid_2d(side, side, /*with_diagonals=*/true);
  } else if (name == "twitter") {
    // The heavy one: largest m, strongest skew.
    d.family = "rmat";
    const auto log_n = scaled_log2(40000);
    d.num_vertices = vertex_t{1} << log_n;
    d.edges = gen::rmat(log_n, scaled_m(450000), 0x71717008);
  } else {
    throw std::invalid_argument("unknown dataset: " + name);
  }
  return d;
}

}  // namespace cpkcore::harness
