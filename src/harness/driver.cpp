#include "harness/driver.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/scheduler.hpp"

namespace cpkcore::harness {

ExperimentOutput run_experiment(const ExperimentSpec& spec) {
  if (spec.writer_workers > 0) {
    Scheduler::instance().set_num_workers(spec.writer_workers);
  }

  ExperimentOutput out;
  out.dataset = make_dataset(spec.dataset);
  auto params = LDSParams::create(out.dataset.num_vertices, 0.2, 9.0,
                                  spec.levels_per_group_cap);
  CPLDS ds(out.dataset.num_vertices, params, spec.cplds_options);

  std::vector<UpdateBatch> stream;
  if (spec.kind == UpdateKind::kInsert) {
    stream = insertion_stream(out.dataset.edges, spec.batch_size,
                              spec.workload.seed);
  } else {
    // Preload the full graph (unmeasured), then delete batches.
    CPLDS* preload_target = &ds;
    preload_target->insert_batch(out.dataset.edges);
    stream = deletion_stream(out.dataset.edges, spec.batch_size,
                             spec.workload.seed);
  }
  if (stream.size() > spec.max_batches) stream.resize(spec.max_batches);

  out.result = run_workload(ds, stream, spec.workload);
  out.batches_run = stream.size();
  out.last_stats = ds.last_batch_stats();
  return out;
}

namespace {
/// Maps a sample's batch window to (begin, end) boundary indices of a
/// workload whose first batch raised the batch number to window_base + 1.
std::pair<std::size_t, std::size_t> window_boundaries(
    std::uint64_t window, std::uint64_t window_base,
    std::size_t num_boundaries) {
  if (window <= window_base) return {0, 0};
  const std::uint64_t idx = window - window_base;  // batch idx 1-based
  const auto end = static_cast<std::size_t>(
      std::min<std::uint64_t>(idx, num_boundaries - 1));
  const auto begin = static_cast<std::size_t>(
      std::min<std::uint64_t>(idx - 1, num_boundaries - 1));
  return {begin, end};
}
}  // namespace

AccuracyStats evaluate_accuracy(
    const std::vector<ReadSample>& samples,
    const std::vector<std::vector<vertex_t>>& boundary_exact,
    const LDSParams& params, std::uint64_t window_base) {
  AccuracyStats stats;
  if (boundary_exact.empty()) return stats;
  double sum = 0;
  for (const ReadSample& s : samples) {
    const auto [begin, end] =
        window_boundaries(s.window, window_base, boundary_exact.size());
    const double est = std::max(1.0, params.coreness_estimate(s.level));
    auto err_vs = [&](std::size_t boundary) {
      const double truth =
          std::max<double>(1.0, boundary_exact[boundary][s.v]);
      return std::max(est / truth, truth / est);
    };
    const double err = std::min(err_vs(begin), err_vs(end));
    sum += err;
    stats.max_error = std::max(stats.max_error, err);
    ++stats.samples;
  }
  stats.avg_error = stats.samples ? sum / static_cast<double>(stats.samples)
                                  : 0.0;
  return stats;
}

std::size_t count_out_of_window_samples(
    const std::vector<ReadSample>& samples,
    const std::vector<std::vector<level_t>>& boundary_levels,
    std::uint64_t window_base) {
  if (boundary_levels.empty()) return 0;
  std::size_t violations = 0;
  for (const ReadSample& s : samples) {
    const auto [begin, end] =
        window_boundaries(s.window, window_base, boundary_levels.size());
    if (s.level != boundary_levels[begin][s.v] &&
        s.level != boundary_levels[end][s.v]) {
      ++violations;
    }
  }
  return violations;
}

}  // namespace cpkcore::harness
