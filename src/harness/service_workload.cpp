#include "harness/service_workload.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cpkcore::harness {

namespace {

/// The shared reader-thread pool behind all three workload runners. Each
/// thread issues uniform-random vertex reads through `read(t, v)` until
/// finish(); the per-read timing, per-thread histograms/counters, and the
/// final merge live here so the runners only supply the read body. `read`
/// returns the number of partition-serves the primary handled for that
/// read (0 where the notion does not apply).
template <typename ReadFn>
class ReaderPool {
 public:
  ReaderPool(std::size_t threads, std::uint64_t seed, vertex_t n, ReadFn read)
      : hists_(threads), counts_(threads, 0), primary_counts_(threads, 0) {
    threads_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      threads_.emplace_back([this, seed, n, read, t] {
        Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + t + 1);
        std::uint64_t issued = 0;
        std::uint64_t primary = 0;
        while (!stop_.load(std::memory_order_relaxed)) {
          const auto v = static_cast<vertex_t>(rng.next_below(n));
          const std::uint64_t t0 = now_ns();
          primary += read(t, v);
          hists_[t].record(now_ns() - t0);
          ++issued;
        }
        counts_[t] = issued;
        primary_counts_[t] = primary;
      });
    }
  }

  /// Stops and joins the pool, then folds every thread's histogram and
  /// counters into the caller's result fields.
  void finish(LatencyHistogram& latency, std::uint64_t& total_reads,
              std::uint64_t* primary_reads = nullptr) {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& th : threads_) th.join();
    for (std::size_t t = 0; t < hists_.size(); ++t) {
      latency.merge(hists_[t]);
      total_reads += counts_[t];
      if (primary_reads != nullptr) *primary_reads += primary_counts_[t];
    }
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<LatencyHistogram> hists_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> primary_counts_;
  std::vector<std::thread> threads_;
};

}  // namespace

ServiceWorkloadResult run_service_workload(service::KCoreService& svc,
                                           const ServiceWorkloadConfig& cfg) {
  const vertex_t n = svc.num_vertices();
  ServiceWorkloadResult result;

  ReaderPool readers(cfg.reader_threads, cfg.seed, n,
                     [&](std::size_t, vertex_t v) {
                       (void)svc.read_coreness(v, cfg.mode);
                       return std::uint64_t{0};
                     });

  Timer wall;
  std::vector<std::thread> submitters;
  submitters.reserve(cfg.submitter_threads);
  for (std::size_t t = 0; t < cfg.submitter_threads; ++t) {
    submitters.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0xD1B54A32D192ED03ULL + t + 1);
      std::vector<Edge> inserted;
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const bool del = !inserted.empty() &&
                         rng.next_double() < cfg.delete_fraction;
        if (del) {
          const std::size_t j = rng.next_below(inserted.size());
          svc.submit({inserted[j], UpdateKind::kDelete});
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(n)),
                       static_cast<vertex_t>(rng.next_below(n))};
          svc.submit({e, UpdateKind::kInsert});
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
      }
    });
  }
  for (auto& s : submitters) s.join();
  svc.drain();
  result.wall_seconds = wall.elapsed_s();
  result.ops_submitted =
      static_cast<std::uint64_t>(cfg.submitter_threads) * cfg.ops_per_thread;

  readers.finish(result.read_latency, result.total_reads);
  return result;
}

ReadScalingResult run_read_scaling(service::KCoreService& svc,
                                   const ReadScalingConfig& cfg) {
  const vertex_t n = svc.num_vertices();
  ReadScalingResult result;

  // Writers run open loop for the whole read window; their op count is
  // whatever they managed to submit before the stop flag.
  std::atomic<bool> stop_writers{false};
  std::vector<std::uint64_t> submitted(cfg.writer_threads, 0);
  std::vector<std::thread> writers;
  writers.reserve(cfg.writer_threads);
  for (std::size_t t = 0; t < cfg.writer_threads; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0xD1B54A32D192ED03ULL + t + 1);
      std::vector<Edge> inserted;
      std::uint64_t ops = 0;
      while (!stop_writers.load(std::memory_order_relaxed)) {
        const bool del = !inserted.empty() &&
                         rng.next_double() < cfg.delete_fraction;
        if (del) {
          const std::size_t j = rng.next_below(inserted.size());
          svc.submit({inserted[j], UpdateKind::kDelete});
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(n)),
                       static_cast<vertex_t>(rng.next_below(n))};
          svc.submit({e, UpdateKind::kInsert});
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
        ++ops;
      }
      submitted[t] = ops;
    });
  }

  Timer window;
  ReaderPool readers(cfg.reader_threads, cfg.seed, n,
                     [&](std::size_t, vertex_t v) {
                       (void)svc.read_coreness(v, cfg.mode);
                       return std::uint64_t{0};
                     });
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.read_seconds));
  readers.finish(result.read_latency, result.total_reads);
  result.read_seconds = window.elapsed_s();

  Timer drain;
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  svc.drain();
  result.drain_seconds = drain.elapsed_s();
  for (const std::uint64_t ops : submitted) result.ops_submitted += ops;
  return result;
}

ClusterWorkloadResult run_cluster_workload(cluster::Router& router,
                                           const ClusterWorkloadConfig& cfg) {
  const vertex_t n = router.primary(0).num_vertices();
  ClusterWorkloadResult result;

  // One read-your-writes session per writer (sized to the router's
  // partition count); readers share them so every read carries live
  // per-partition freshness cursors. The extra session backs readers when
  // there are no writers.
  std::vector<std::unique_ptr<cluster::Router::Session>> sessions;
  const std::size_t session_count =
      std::max<std::size_t>(1, cfg.writer_threads);
  sessions.reserve(session_count);
  for (std::size_t s = 0; s < session_count; ++s) {
    sessions.push_back(router.make_session());
  }

  // Wall clock covers the readers' whole run (they start immediately, not
  // when the writers do), so total_reads / wall_seconds stays honest even
  // with zero writers.
  Timer wall;
  ReaderPool readers(
      cfg.reader_threads, cfg.seed, n, [&](std::size_t t, vertex_t v) {
        cluster::Router::Session& session =
            *sessions[cfg.writer_threads > 0 ? t % cfg.writer_threads : 0];
        const auto read = router.read_coreness(session, v, cfg.mode);
        std::uint64_t primary = 0;
        for (const auto& part : read.parts) {
          if (part.backend == cluster::Router::kPrimary) ++primary;
        }
        return primary;
      });

  std::vector<std::thread> writers;
  writers.reserve(cfg.writer_threads);
  for (std::size_t t = 0; t < cfg.writer_threads; ++t) {
    writers.emplace_back([&, t] {
      cluster::Router::Session& session = *sessions[t];
      Xoshiro256 rng(cfg.seed * 0xD1B54A32D192ED03ULL + t + 1);
      std::vector<Edge> inserted;
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const bool del = !inserted.empty() &&
                         rng.next_double() < cfg.delete_fraction;
        if (del) {
          const std::size_t j = rng.next_below(inserted.size());
          router.write(session, {inserted[j], UpdateKind::kDelete});
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(n)),
                       static_cast<vertex_t>(rng.next_below(n))};
          router.write(session, {e, UpdateKind::kInsert});
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  std::uint64_t primary_total = 0;
  readers.finish(result.read_latency, result.total_reads, &primary_total);
  result.wall_seconds = wall.elapsed_s();
  result.ops_written =
      static_cast<std::uint64_t>(cfg.writer_threads) * cfg.ops_per_thread;
  result.primary_reads = primary_total;
  result.replica_reads =
      result.total_reads * router.num_partitions() - primary_total;
  return result;
}

ShardedWorkloadResult run_sharded_workload(cluster::ShardGroup& group,
                                           const ShardedWorkloadConfig& cfg) {
  const vertex_t n = group.num_vertices();
  ShardedWorkloadResult result;
  result.ops_per_partition.assign(group.num_partitions(), 0);

  // Session-less fan-out reads exercise every partition's read path while
  // the write plane is under load.
  cluster::Router router(group);

  ReaderPool readers(cfg.reader_threads, cfg.seed, n,
                     [&](std::size_t, vertex_t v) {
                       (void)router.read_coreness(v, cfg.mode);
                       return std::uint64_t{0};
                     });

  Timer wall;
  std::vector<std::vector<std::uint64_t>> routed(
      cfg.submitter_threads,
      std::vector<std::uint64_t>(group.num_partitions(), 0));
  std::vector<std::thread> submitters;
  submitters.reserve(cfg.submitter_threads);
  for (std::size_t t = 0; t < cfg.submitter_threads; ++t) {
    submitters.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0xD1B54A32D192ED03ULL + t + 1);
      std::vector<Edge> inserted;
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const bool del = !inserted.empty() &&
                         rng.next_double() < cfg.delete_fraction;
        Update op;
        if (del) {
          const std::size_t j = rng.next_below(inserted.size());
          op = {inserted[j], UpdateKind::kDelete};
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(n)),
                       static_cast<vertex_t>(rng.next_below(n))};
          op = {e, UpdateKind::kInsert};
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
        ++routed[t][group.submit(op).partition];
      }
    });
  }
  for (auto& s : submitters) s.join();
  group.drain();
  result.wall_seconds = wall.elapsed_s();
  result.ops_submitted =
      static_cast<std::uint64_t>(cfg.submitter_threads) * cfg.ops_per_thread;
  for (const auto& per_thread : routed) {
    for (std::size_t p = 0; p < per_thread.size(); ++p) {
      result.ops_per_partition[p] += per_thread[p];
    }
  }

  readers.finish(result.read_latency, result.total_reads);
  return result;
}

}  // namespace cpkcore::harness
