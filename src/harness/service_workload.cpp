#include "harness/service_workload.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cpkcore::harness {

ServiceWorkloadResult run_service_workload(service::KCoreService& svc,
                                           const ServiceWorkloadConfig& cfg) {
  const vertex_t n = svc.num_vertices();
  ServiceWorkloadResult result;

  std::atomic<bool> stop{false};
  std::vector<LatencyHistogram> hists(cfg.reader_threads);
  std::vector<std::uint64_t> counts(cfg.reader_threads, 0);
  std::vector<std::thread> readers;
  readers.reserve(cfg.reader_threads);
  for (std::size_t t = 0; t < cfg.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + t + 1);
      std::uint64_t issued = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<vertex_t>(rng.next_below(n));
        const std::uint64_t t0 = now_ns();
        (void)svc.read_coreness(v, cfg.mode);
        hists[t].record(now_ns() - t0);
        ++issued;
      }
      counts[t] = issued;
    });
  }

  Timer wall;
  std::vector<std::thread> submitters;
  submitters.reserve(cfg.submitter_threads);
  for (std::size_t t = 0; t < cfg.submitter_threads; ++t) {
    submitters.emplace_back([&, t] {
      Xoshiro256 rng(cfg.seed * 0xD1B54A32D192ED03ULL + t + 1);
      std::vector<Edge> inserted;
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const bool del = !inserted.empty() &&
                         rng.next_double() < cfg.delete_fraction;
        if (del) {
          const std::size_t j = rng.next_below(inserted.size());
          svc.submit({inserted[j], UpdateKind::kDelete});
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(n)),
                       static_cast<vertex_t>(rng.next_below(n))};
          svc.submit({e, UpdateKind::kInsert});
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
      }
    });
  }
  for (auto& s : submitters) s.join();
  svc.drain();
  result.wall_seconds = wall.elapsed_s();
  result.ops_submitted =
      static_cast<std::uint64_t>(cfg.submitter_threads) * cfg.ops_per_thread;

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  for (std::size_t t = 0; t < cfg.reader_threads; ++t) {
    result.read_latency.merge(hists[t]);
    result.total_reads += counts[t];
  }
  return result;
}

}  // namespace cpkcore::harness
