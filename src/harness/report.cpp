#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace cpkcore::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print() const { print(std::cout); }

std::string fmt_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e s", seconds);
  return buf;
}

std::string fmt_double(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_si(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

}  // namespace cpkcore::harness
