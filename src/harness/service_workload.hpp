// Concurrent workload runner for the serving layer: many client threads
// submit individual edge ops to a KCoreService (open loop, acknowledgment
// awaited at the end) while reader threads issue uniform-random coreness
// reads through a chosen ReadMode. The service-side counterpart of
// harness/workload.hpp, used by tests and bench/service_throughput.
#pragma once

#include <cstdint>

#include "core/read_modes.hpp"
#include "service/kcore_service.hpp"
#include "util/latency_histogram.hpp"

namespace cpkcore::harness {

struct ServiceWorkloadConfig {
  std::size_t submitter_threads = 4;
  std::size_t reader_threads = 0;
  ReadMode mode = ReadMode::kCplds;
  /// Ops submitted by each client thread.
  std::size_t ops_per_thread = 10000;
  /// Fraction of ops that delete a previously submitted edge (per thread);
  /// the rest insert random edges.
  double delete_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct ServiceWorkloadResult {
  std::uint64_t ops_submitted = 0;
  std::uint64_t total_reads = 0;
  /// First submit to last acknowledgment (includes the final drain).
  double wall_seconds = 0.0;
  LatencyHistogram read_latency;

  /// Acked client ops per second of wall time.
  [[nodiscard]] double submit_throughput() const {
    return wall_seconds > 0
               ? static_cast<double>(ops_submitted) / wall_seconds
               : 0.0;
  }
};

/// Runs the workload against `svc`. Returns once every submitted op is
/// acknowledged and the readers have stopped.
ServiceWorkloadResult run_service_workload(service::KCoreService& svc,
                                           const ServiceWorkloadConfig& cfg);

}  // namespace cpkcore::harness
