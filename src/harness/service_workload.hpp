// Concurrent workload runners for the serving layer: many client threads
// submit individual edge ops to a KCoreService (open loop, acknowledgment
// awaited at the end) while reader threads issue uniform-random coreness
// reads through a chosen ReadMode. The service-side counterpart of
// harness/workload.hpp, used by tests and bench/service_throughput.
//
// run_cluster_workload is the routed variant: writers and readers go
// through a (shard-aware) cluster::Router with per-writer read-your-writes
// sessions — writes are closed-loop (submit + ack advances the session's
// per-partition cursor), reads fan out across partitions.
//
// run_sharded_workload is the write-plane variant: open-loop submitters
// route each op to its owning partition primary through a
// cluster::ShardGroup (no per-op ack wait — throughput measures the
// aggregate ingest -> WAL -> apply bandwidth of P partitions), with
// optional fan-out readers.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard_group.hpp"
#include "core/read_modes.hpp"
#include "service/kcore_service.hpp"
#include "util/latency_histogram.hpp"

namespace cpkcore::harness {

struct ServiceWorkloadConfig {
  std::size_t submitter_threads = 4;
  std::size_t reader_threads = 0;
  ReadMode mode = ReadMode::kCplds;
  /// Ops submitted by each client thread.
  std::size_t ops_per_thread = 10000;
  /// Fraction of ops that delete a previously submitted edge (per thread);
  /// the rest insert random edges.
  double delete_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct ServiceWorkloadResult {
  std::uint64_t ops_submitted = 0;
  std::uint64_t total_reads = 0;
  /// First submit to last acknowledgment (includes the final drain).
  double wall_seconds = 0.0;
  LatencyHistogram read_latency;

  /// Acked client ops per second of wall time.
  [[nodiscard]] double submit_throughput() const {
    return wall_seconds > 0
               ? static_cast<double>(ops_submitted) / wall_seconds
               : 0.0;
  }
};

/// Runs the workload against `svc`. Returns once every submitted op is
/// acknowledged and the readers have stopped.
ServiceWorkloadResult run_service_workload(service::KCoreService& svc,
                                           const ServiceWorkloadConfig& cfg);

/// Reader-scaling sweep leg: a *timed* read window instead of a fixed op
/// count. Writer threads ingest continuously for the whole window (open
/// loop, drained afterwards) while `reader_threads` issue uniform-random
/// coreness reads through `mode`; read throughput and latency quantiles
/// come from the window only, so legs with different reader counts are
/// comparable.
struct ReadScalingConfig {
  std::size_t reader_threads = 8;
  std::size_t writer_threads = 2;
  ReadMode mode = ReadMode::kCplds;
  double read_seconds = 2.0;  ///< length of the timed read window
  double delete_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct ReadScalingResult {
  std::uint64_t total_reads = 0;
  std::uint64_t ops_submitted = 0;  ///< writes submitted during the window
  double read_seconds = 0.0;        ///< measured window wall time
  double drain_seconds = 0.0;       ///< post-window drain (acked tail)
  LatencyHistogram read_latency;

  [[nodiscard]] double read_throughput() const {
    return read_seconds > 0
               ? static_cast<double>(total_reads) / read_seconds
               : 0.0;
  }
  /// Acked write ops per second, amortized over window + drain (every
  /// submitted op is acked by the time the runner returns).
  [[nodiscard]] double write_throughput() const {
    const double t = read_seconds + drain_seconds;
    return t > 0 ? static_cast<double>(ops_submitted) / t : 0.0;
  }
};

ReadScalingResult run_read_scaling(service::KCoreService& svc,
                                   const ReadScalingConfig& cfg);

struct ClusterWorkloadConfig {
  std::size_t writer_threads = 4;
  std::size_t reader_threads = 4;
  ReadMode mode = ReadMode::kCplds;
  /// Acked writes issued by each writer thread (closed loop: write = submit
  /// + ack through the router).
  std::size_t ops_per_thread = 10000;
  /// Fraction of ops that delete a previously written edge (per thread);
  /// the rest insert random edges.
  double delete_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct ClusterWorkloadResult {
  std::uint64_t ops_written = 0;
  std::uint64_t total_reads = 0;   ///< fan-out read operations
  /// Partition-serve counters: each fan-out read contributes one serve per
  /// partition, so primary_reads + replica_reads = total_reads * P.
  std::uint64_t primary_reads = 0;
  std::uint64_t replica_reads = 0;
  /// First write to last reader stopping (writers and readers overlap for
  /// the whole writer phase).
  double wall_seconds = 0.0;
  LatencyHistogram read_latency;

  [[nodiscard]] double read_throughput() const {
    return wall_seconds > 0 ? static_cast<double>(total_reads) / wall_seconds
                            : 0.0;
  }
  [[nodiscard]] double write_throughput() const {
    return wall_seconds > 0 ? static_cast<double>(ops_written) / wall_seconds
                            : 0.0;
  }
};

/// Runs writers and readers through the router. Each reader shares the
/// session of writer (reader_index % writer_threads), so reads carry live
/// per-partition read-your-writes cursors; with zero writers, readers use
/// a fresh session (no freshness floor). Returns once writers finished and
/// readers stopped; replicas may still be catching up on the tail (check
/// applied LSNs / quiesce before quiescent validation).
ClusterWorkloadResult run_cluster_workload(cluster::Router& router,
                                           const ClusterWorkloadConfig& cfg);

struct ShardedWorkloadConfig {
  std::size_t submitter_threads = 4;
  std::size_t reader_threads = 0;
  ReadMode mode = ReadMode::kCplds;
  /// Ops submitted by each client thread (open loop).
  std::size_t ops_per_thread = 10000;
  double delete_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct ShardedWorkloadResult {
  std::uint64_t ops_submitted = 0;
  std::uint64_t total_reads = 0;  ///< fan-out read operations
  /// Routed submission distribution (one entry per partition).
  std::vector<std::uint64_t> ops_per_partition;
  /// First submit to last acknowledgment (includes the final drain of
  /// every partition).
  double wall_seconds = 0.0;
  LatencyHistogram read_latency;

  [[nodiscard]] double submit_throughput() const {
    return wall_seconds > 0
               ? static_cast<double>(ops_submitted) / wall_seconds
               : 0.0;
  }
};

/// Open-loop submitters route ops to their owning partition primaries via
/// group.submit(); readers (if any) issue session-less fan-out reads
/// through a router over the group. Returns once every partition drained
/// and the readers stopped.
ShardedWorkloadResult run_sharded_workload(cluster::ShardGroup& group,
                                           const ShardedWorkloadConfig& cfg);

}  // namespace cpkcore::harness
