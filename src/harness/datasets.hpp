// Synthetic dataset registry mirroring the paper's Table 1 at laptop scale.
// Each entry names the paper dataset it stands in for and reproduces the
// structural axis that matters for the experiments (degree/coreness skew
// for the social graphs, tiny constant coreness for the road networks).
// Sizes scale with the CPKC_SCALE environment variable (default 1.0).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace cpkcore::harness {

struct Dataset {
  std::string name;        ///< registry key, e.g. "dblp"
  std::string family;      ///< generator family, e.g. "barabasi-albert"
  vertex_t num_vertices = 0;
  std::vector<Edge> edges;
};

/// Global size multiplier from CPKC_SCALE (clamped to [0.05, 100]).
double scale_factor();

/// All registered dataset names, in Table 1 order.
std::vector<std::string> dataset_names();

/// The subset used by the batch-size / scalability figures (dblp, yt, lj).
std::vector<std::string> small_dataset_names();

/// Builds the named dataset (throws std::invalid_argument for unknown
/// names). Deterministic for a fixed name and scale.
Dataset make_dataset(const std::string& name);

}  // namespace cpkcore::harness
