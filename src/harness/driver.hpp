// Experiment driver: builds datasets into CPLDS instances, prepares update
// streams, runs workloads, and post-processes accuracy/linearizability
// metrics. One level above run_workload; used by every bench binary.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/datasets.hpp"
#include "harness/workload.hpp"

namespace cpkcore::harness {

struct ExperimentSpec {
  std::string dataset;
  UpdateKind kind = UpdateKind::kInsert;
  std::size_t batch_size = 100000;
  std::size_t max_batches = 8;   ///< measured batches (keeps runs bounded)
  std::size_t writer_workers = 0;  ///< 0 = leave scheduler untouched
  WorkloadConfig workload;
  CPLDS::Options cplds_options;
  int levels_per_group_cap = 0;  ///< LDSParams "-opt" style cap (0 = theory)
};

struct ExperimentOutput {
  Dataset dataset;           ///< generated dataset (edges moved out)
  WorkloadResult result;
  std::size_t batches_run = 0;
  CPLDS::BatchStats last_stats;  ///< stats of the final batch
};

/// Runs one experiment:
///  * insertions: the dataset's edges are shuffled and inserted batch by
///    batch (up to max_batches measured batches);
///  * deletions: the full graph is preloaded (unmeasured), then batches of
///    edges are deleted.
ExperimentOutput run_experiment(const ExperimentSpec& spec);

/// Accuracy metrics over sampled reads (paper Fig. 6): per sample the error
/// is err(est, k) = max(est/k', k'/est) with k' = max(k, 1), minimized over
/// the exact coreness at the begin and end boundaries of the read's batch
/// window.
struct AccuracyStats {
  double avg_error = 0;
  double max_error = 0;
  std::size_t samples = 0;
};

AccuracyStats evaluate_accuracy(
    const std::vector<ReadSample>& samples,
    const std::vector<std::vector<vertex_t>>& boundary_exact,
    const LDSParams& params, std::uint64_t window_base = 0);

/// Linearizability evidence (tests + §6): every sampled read must return
/// the vertex's level at its window's begin or end boundary — never an
/// intermediate level. Returns the number of violating samples (0 for a
/// linearizable run).
std::size_t count_out_of_window_samples(
    const std::vector<ReadSample>& samples,
    const std::vector<std::vector<level_t>>& boundary_levels,
    std::uint64_t window_base = 0);

}  // namespace cpkcore::harness
