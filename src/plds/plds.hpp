// Parallel batch-dynamic level data structure (PLDS, Liu et al. SPAA 2022;
// paper §3.2). Maintains a (2+epsilon)-approximate k-core decomposition
// under batches of edge insertions or deletions:
//
//  * Insertion phase: levels are processed in increasing order; all vertices
//    at the current level violating Invariant 1 rise one level in parallel.
//    Each level is visited at most once per batch.
//  * Deletion phase: each vertex violating Invariant 2 computes its *desire
//    level* (the highest level below its current one where Invariant 2
//    holds) and moves there directly; desire levels of affected neighbors
//    are recomputed as moves land.
//
// Per-neighbor bucket mutations are aggregated and grouped by the affected
// vertex (semisort), so every VertexBuckets instance is mutated by exactly
// one task per step — no locks on the update path.
//
// Reader-visible state is only the atomic per-vertex level array; CPLDS
// layers descriptors on top via the marking hooks below.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lds/params.hpp"
#include "plds/level_buckets.hpp"
#include "util/types.hpp"

namespace cpkcore {

class PLDS {
 public:
  /// CPLDS integration points. `on_mark(v, old_level, triggers)` fires the
  /// first time v is about to move in the current batch, *before* its level
  /// changes; `triggers` holds the marked neighbors per the paper's trigger
  /// rule (insertions: marked neighbors at v's level or above; deletions:
  /// marked neighbors strictly below level(v) - 1). `is_marked` lets the
  /// PLDS filter triggers.
  struct Hooks {
    std::function<void(vertex_t, level_t, std::span<const vertex_t>)> on_mark;
    std::function<bool(vertex_t)> is_marked;
  };

  PLDS(vertex_t num_vertices, LDSParams params);

  PLDS(const PLDS&) = delete;
  PLDS& operator=(const PLDS&) = delete;

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Applies a batch of insertions (deletions). Self loops, duplicates, and
  /// already-present (resp. absent) edges are dropped. Returns the edges
  /// actually applied.
  std::vector<Edge> insert_batch(std::vector<Edge> edges);
  std::vector<Edge> delete_batch(std::vector<Edge> edges);

  /// Reader-visible level of v (atomic).
  [[nodiscard]] level_t level(vertex_t v) const {
    return level_[v].load(std::memory_order_seq_cst);
  }

  [[nodiscard]] double coreness_estimate(vertex_t v) const {
    return params_.coreness_estimate(level(v));
  }

  [[nodiscard]] const LDSParams& params() const { return params_; }
  [[nodiscard]] vertex_t num_vertices() const {
    return static_cast<vertex_t>(level_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Update-path only (not safe concurrent with a running batch).
  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const;
  [[nodiscard]] std::size_t up_degree(vertex_t v) const {
    return buckets_[v].up_degree();
  }
  [[nodiscard]] std::size_t degree(vertex_t v) const {
    return buckets_[v].degree();
  }

  /// All neighbors of v (unspecified order). Quiescent use only.
  [[nodiscard]] std::vector<vertex_t> neighbors(vertex_t v) const {
    std::vector<vertex_t> out;
    out.reserve(buckets_[v].degree());
    buckets_[v].for_each_neighbor(
        level_relaxed(v), [&](vertex_t w, level_t) { out.push_back(w); });
    return out;
  }

  /// Neighbors of v at levels >= level(v) (the `up` bucket). Quiescent use
  /// only; the basis of the low out-degree orientation application.
  [[nodiscard]] std::vector<vertex_t> up_neighbors(vertex_t v) const {
    return buckets_[v].up_neighbors();
  }

  /// Distinct vertices whose level changed in the current (or most recent)
  /// batch, recorded independently of the CPLDS hooks — the dirty set the
  /// published-view maintenance copies pages for. Valid between batches
  /// (quiescent use only); reset by the next batch.
  [[nodiscard]] std::span<const vertex_t> moved_vertices() const {
    return {moved_list_.data(), moved_count_.load(std::memory_order_acquire)};
  }

  /// Test hook: checks bucket/level consistency and both invariants for
  /// every vertex. On failure returns false and, if `why` is non-null,
  /// stores a description.
  [[nodiscard]] bool validate(std::string* why = nullptr) const;

 private:
  /// A neighbor-bucket fix-up: vertex `moved` changed level from `from` to
  /// `to`; the buckets of vertex `at` must reflect it.
  struct NeighborMove {
    vertex_t at = kNoVertex;
    vertex_t moved = kNoVertex;
    level_t from = kNoLevel;
    level_t to = kNoLevel;
  };

  void begin_batch();
  std::vector<Edge> normalize(std::vector<Edge> edges, bool for_insert) const;
  /// Inserts/removes batch edges into/from the bucket structures, grouped by
  /// endpoint. Returns the distinct endpoints.
  std::vector<vertex_t> apply_adjacency(const std::vector<Edge>& edges,
                                        bool insert);

  void insertion_rebalance(std::vector<vertex_t> dirty);
  void deletion_rebalance(std::vector<vertex_t> dirty);

  /// Calls hooks_.on_mark for v if this is v's first move in the batch.
  void mark_if_needed(vertex_t v, bool insertion_phase);

  /// Records v into the batch's moved set (first move only; a vertex can
  /// move several times per batch). Called from the level-publication
  /// steps, where movers are distinct within a step and steps are
  /// barrier-separated — so each stamp slot has one writer at a time.
  void record_move(vertex_t v) {
    if (moved_stamp_[v] == batch_stamp_) return;
    moved_stamp_[v] = batch_stamp_;
    moved_list_[moved_count_.fetch_add(1, std::memory_order_relaxed)] = v;
  }

  /// Desire level (deletion phase): highest d <= level(v) where Invariant 2
  /// holds for v at level d; 0 if none.
  [[nodiscard]] level_t desire_level(vertex_t v) const;

  [[nodiscard]] bool inv2_violated(vertex_t v) const {
    const level_t l = level_relaxed(v);
    if (l <= 0) return false;
    return !params_.inv2_ok(l, buckets_[v].count_at_or_above(l - 1, l));
  }

  /// Non-synchronizing level read for the update path.
  [[nodiscard]] level_t level_relaxed(vertex_t v) const {
    return level_[v].load(std::memory_order_relaxed);
  }

  LDSParams params_;
  std::vector<std::atomic<level_t>> level_;
  std::vector<VertexBuckets> buckets_;
  std::size_t num_edges_ = 0;
  Hooks hooks_;

  // Batch-scoped scratch (stamp arrays avoid per-batch clearing).
  std::uint32_t batch_stamp_ = 0;
  std::vector<std::uint32_t> marked_stamp_;  // v marked in batch b
  std::vector<std::uint32_t> dirty_stamp_;   // v in the dirty/pending set
  std::vector<std::uint32_t> moved_stamp_;   // v already in the moved set
  std::vector<vertex_t> moved_list_;         // distinct movers this batch
  std::atomic<std::size_t> moved_count_{0};
  std::uint64_t move_step_ = 0;
  std::vector<std::uint64_t> moving_stamp_;  // v moves in step s
  std::vector<level_t> desire_;              // cached desire levels
};

}  // namespace cpkcore
