#include "plds/plds.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace cpkcore {

PLDS::PLDS(vertex_t num_vertices, LDSParams params)
    : params_(std::move(params)),
      level_(num_vertices),
      buckets_(num_vertices),
      marked_stamp_(num_vertices, 0),
      dirty_stamp_(num_vertices, 0),
      moved_stamp_(num_vertices, 0),
      moved_list_(num_vertices, kNoVertex),
      moving_stamp_(num_vertices, 0),
      desire_(num_vertices, 0) {}

bool PLDS::has_edge(vertex_t u, vertex_t v) const {
  if (u == v) return false;
  return buckets_[u].contains(v, level_relaxed(v), level_relaxed(u));
}

void PLDS::begin_batch() {
  ++batch_stamp_;
  moved_count_.store(0, std::memory_order_relaxed);
}

std::vector<Edge> PLDS::normalize(std::vector<Edge> edges,
                                  bool for_insert) const {
  for (auto& e : edges) e = e.canonical();
  std::erase_if(edges, [](const Edge& e) { return e.is_self_loop(); });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return parallel_filter(edges, [&](const Edge& e) {
    return for_insert ? !has_edge(e.u, e.v) : has_edge(e.u, e.v);
  });
}

std::vector<vertex_t> PLDS::apply_adjacency(const std::vector<Edge>& edges,
                                            bool insert) {
  struct Half {
    vertex_t at;
    vertex_t other;
  };
  std::vector<Half> halves(edges.size() * 2);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    halves[2 * i] = Half{edges[i].u, edges[i].v};
    halves[2 * i + 1] = Half{edges[i].v, edges[i].u};
  });
  auto groups = group_by_key(halves, [](const Half& h) { return h.at; });
  std::vector<vertex_t> endpoints(groups.size());
  // Grain 1: group sizes follow the degree distribution, so a hub vertex's
  // group dominates; per-group tasks let the pool steal around it.
  parallel_for(0, groups.size(), [&](std::size_t g) {
    const vertex_t at = halves[groups[g].begin].at;
    endpoints[g] = at;
    const level_t at_level = level_relaxed(at);
    for (std::size_t i = groups[g].begin; i < groups[g].end; ++i) {
      const vertex_t other = halves[i].other;
      if (insert) {
        buckets_[at].insert_neighbor(other, level_relaxed(other), at_level);
      } else {
        buckets_[at].erase_neighbor(other, level_relaxed(other), at_level);
      }
    }
  },
  /*grain=*/1);
  return endpoints;
}

std::vector<Edge> PLDS::insert_batch(std::vector<Edge> edges) {
  begin_batch();
  edges = normalize(std::move(edges), /*for_insert=*/true);
  if (edges.empty()) return edges;
  auto endpoints = apply_adjacency(edges, /*insert=*/true);
  num_edges_ += edges.size();
  insertion_rebalance(std::move(endpoints));
  return edges;
}

std::vector<Edge> PLDS::delete_batch(std::vector<Edge> edges) {
  begin_batch();
  edges = normalize(std::move(edges), /*for_insert=*/false);
  if (edges.empty()) return edges;
  auto endpoints = apply_adjacency(edges, /*insert=*/false);
  num_edges_ -= edges.size();
  deletion_rebalance(std::move(endpoints));
  return edges;
}

void PLDS::mark_if_needed(vertex_t v, bool insertion_phase) {
  if (!hooks_.on_mark) return;
  if (marked_stamp_[v] == batch_stamp_) return;
  marked_stamp_[v] = batch_stamp_;
  const level_t old_level = level_relaxed(v);
  std::vector<vertex_t> triggers;
  if (hooks_.is_marked) {
    if (insertion_phase) {
      // Marked neighbors at the same or higher level (all of `up`).
      buckets_[v].for_each_up([&](vertex_t w) {
        if (hooks_.is_marked(w)) triggers.push_back(w);
      });
    } else {
      // Marked neighbors strictly below level(v) - 1.
      buckets_[v].for_each_down_range(0, old_level - 1, [&](vertex_t w) {
        if (hooks_.is_marked(w)) triggers.push_back(w);
      });
    }
  }
  hooks_.on_mark(v, old_level, triggers);
}

void PLDS::insertion_rebalance(std::vector<vertex_t> dirty) {
  // Deduplicate the initial dirty set (endpoints are already distinct) and
  // stamp membership.
  for (vertex_t v : dirty) dirty_stamp_[v] = batch_stamp_;

  while (!dirty.empty()) {
    // Lowest level present in the dirty set; the sweep visits levels in
    // increasing order and new dirt only appears above the current level.
    const level_t lmin = static_cast<level_t>(parallel_reduce(
        dirty.size(), std::numeric_limits<level_t>::max(),
        [&](std::size_t i) { return level_relaxed(dirty[i]); },
        [](level_t a, level_t b) { return std::min(a, b); }));
    if (lmin >= params_.num_levels() - 1) break;  // top level cannot rise

    auto candidates = parallel_filter(dirty, [&](vertex_t v) {
      return level_relaxed(v) == lmin;
    });
    auto rest = parallel_filter(dirty, [&](vertex_t v) {
      return level_relaxed(v) != lmin;
    });

    auto movers = parallel_filter(candidates, [&](vertex_t v) {
      return !params_.inv1_ok(lmin, buckets_[v].up_degree());
    });
    // Non-movers at this level leave the dirty set (they may re-enter when
    // a neighbor rises into their level).
    parallel_for(0, candidates.size(), [&](std::size_t i) {
      const vertex_t v = candidates[i];
      if (params_.inv1_ok(lmin, buckets_[v].up_degree())) {
        dirty_stamp_[v] = 0;
      }
    });
    if (movers.empty()) {
      dirty = std::move(rest);
      continue;
    }

    ++move_step_;
    const std::uint64_t step = move_step_;
    parallel_for(0, movers.size(),
                 [&](std::size_t i) { moving_stamp_[movers[i]] = step; });

    // Mark before any level changes (descriptors must capture old levels and
    // be visible before readers can observe movement).
    if (hooks_.on_mark) {
      parallel_for(0, movers.size(), [&](std::size_t i) {
        mark_if_needed(movers[i], /*insertion_phase=*/true);
      });
    }

    // Restructure each mover's own buckets and emit fix-ups for non-moving
    // neighbors at levels >= lmin + 1. Uses pre-move levels throughout.
    // Grain 1: the bucket scans are degree-proportional, so per-mover tasks
    // keep a high-degree mover from serializing its leaf.
    std::vector<std::vector<NeighborMove>> emitted(movers.size());
    parallel_for(0, movers.size(), [&](std::size_t i) {
      const vertex_t v = movers[i];
      auto& out = emitted[i];
      buckets_[v].for_each_up([&](vertex_t w) {
        if (moving_stamp_[w] == step) return;  // rises with v; no fix-up
        if (level_relaxed(w) >= lmin + 1) {
          out.push_back(NeighborMove{w, v, lmin, lmin + 1});
        }
      });
      // Neighbors staying at lmin drop from v's `up` into down[lmin].
      buckets_[v].on_my_level_up(lmin, [&](vertex_t w) {
        return moving_stamp_[w] != step && level_relaxed(w) == lmin;
      });
    },
    /*grain=*/1);

    // Publish the new levels (and record the movers for the view layer).
    parallel_for(0, movers.size(), [&](std::size_t i) {
      level_[movers[i]].store(lmin + 1, std::memory_order_seq_cst);
      record_move(movers[i]);
    });

    // Flatten + group fix-ups by affected vertex and apply; a vertex whose
    // up-degree grows (neighbor rose into its level) becomes dirty.
    std::vector<std::size_t> offsets(movers.size());
    parallel_for(0, movers.size(),
                 [&](std::size_t i) { offsets[i] = emitted[i].size(); });
    const std::size_t total = parallel_scan_exclusive(offsets);
    std::vector<NeighborMove> moves(total);
    parallel_for(0, movers.size(), [&](std::size_t i) {
      std::copy(emitted[i].begin(), emitted[i].end(),
                moves.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
    });
    auto groups = group_by_key(moves, [](const NeighborMove& m) {
      return m.at;
    });
    std::vector<std::uint8_t> grew(groups.size(), 0);
    // Grain 1: fix-up group sizes are skewed toward hub vertices.
    parallel_for(0, groups.size(), [&](std::size_t g) {
      const vertex_t at = moves[groups[g].begin].at;
      const level_t at_level = level_relaxed(at);
      for (std::size_t i = groups[g].begin; i < groups[g].end; ++i) {
        buckets_[at].neighbor_moved(moves[i].moved, moves[i].from,
                                    moves[i].to, at_level);
      }
      // Neighbors rose to lmin+1; `at`'s up-degree grew iff it sits exactly
      // at lmin+1 (they joined its `up` bucket).
      grew[g] = (at_level == lmin + 1) ? 1 : 0;
    },
    /*grain=*/1);

    // Next dirty set: untouched higher-level dirt, movers (recheck at
    // lmin+1), and vertices whose up-degree grew.
    std::vector<vertex_t> next = std::move(rest);
    next.insert(next.end(), movers.begin(), movers.end());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (!grew[g]) continue;
      const vertex_t at = moves[groups[g].begin].at;
      if (dirty_stamp_[at] != batch_stamp_) {
        dirty_stamp_[at] = batch_stamp_;
        next.push_back(at);
      }
    }
    dirty = std::move(next);
  }
  // Clear residual stamps lazily: batch_stamp_ changes next batch.
}

level_t PLDS::desire_level(vertex_t v) const {
  const level_t current = level_relaxed(v);
  std::size_t cnt = buckets_[v].up_degree();
  for (level_t d = current; d >= 1; --d) {
    cnt += buckets_[v].down_size(d - 1);  // cnt = #neighbors at >= d-1
    if (params_.inv2_ok(d, cnt)) return d;
  }
  return 0;
}

void PLDS::deletion_rebalance(std::vector<vertex_t> dirty) {
  // Pending set P: vertices violating Invariant 2, with cached desire
  // levels. Counts only decrease during the deletion phase, so a violating
  // vertex stays violating until it moves.
  std::vector<vertex_t> pending;
  for (vertex_t v : dirty) {
    if (dirty_stamp_[v] == batch_stamp_) continue;
    if (inv2_violated(v)) {
      dirty_stamp_[v] = batch_stamp_;
      desire_[v] = desire_level(v);
      pending.push_back(v);
    }
  }

  while (!pending.empty()) {
    const level_t target = static_cast<level_t>(parallel_reduce(
        pending.size(), std::numeric_limits<level_t>::max(),
        [&](std::size_t i) { return desire_[pending[i]]; },
        [](level_t a, level_t b) { return std::min(a, b); }));

    auto movers = parallel_filter(
        pending, [&](vertex_t v) { return desire_[v] == target; });
    auto rest = parallel_filter(
        pending, [&](vertex_t v) { return desire_[v] != target; });
    assert(!movers.empty());

    ++move_step_;
    const std::uint64_t step = move_step_;
    parallel_for(0, movers.size(),
                 [&](std::size_t i) { moving_stamp_[movers[i]] = step; });

    if (hooks_.on_mark) {
      parallel_for(0, movers.size(), [&](std::size_t i) {
        mark_if_needed(movers[i], /*insertion_phase=*/false);
      });
    }

    // Emit fix-ups for non-moving neighbors above the target level, using
    // pre-move state: v's old level and bucket indices identify where v sat
    // in each neighbor's structure. Grain 1 for the degree-skewed scans.
    std::vector<std::vector<NeighborMove>> emitted(movers.size());
    parallel_for(0, movers.size(), [&](std::size_t i) {
      const vertex_t v = movers[i];
      const level_t old_level = level_relaxed(v);
      auto& out = emitted[i];
      buckets_[v].for_each_up([&](vertex_t w) {
        if (moving_stamp_[w] == step) return;
        out.push_back(NeighborMove{w, v, old_level, target});
      });
      buckets_[v].for_each_down_range(target + 1, old_level, [&](vertex_t w) {
        if (moving_stamp_[w] == step) return;
        out.push_back(NeighborMove{w, v, old_level, target});
      });
      // Own restructure: down[target..old_level) merges into `up`.
      buckets_[v].on_my_level_down(old_level, target);
    },
    /*grain=*/1);

    parallel_for(0, movers.size(), [&](std::size_t i) {
      level_[movers[i]].store(target, std::memory_order_seq_cst);
      record_move(movers[i]);
    });

    std::vector<std::size_t> offsets(movers.size());
    parallel_for(0, movers.size(),
                 [&](std::size_t i) { offsets[i] = emitted[i].size(); });
    const std::size_t total = parallel_scan_exclusive(offsets);
    std::vector<NeighborMove> moves(total);
    parallel_for(0, movers.size(), [&](std::size_t i) {
      std::copy(emitted[i].begin(), emitted[i].end(),
                moves.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
    });
    auto groups = group_by_key(moves, [](const NeighborMove& m) {
      return m.at;
    });
    std::vector<std::uint8_t> affected(groups.size(), 0);
    parallel_for(0, groups.size(), [&](std::size_t g) {
      const vertex_t at = moves[groups[g].begin].at;
      const level_t at_level = level_relaxed(at);
      bool touched = false;
      for (std::size_t i = groups[g].begin; i < groups[g].end; ++i) {
        // `from` is v's pre-move level; >= at_level means v was in at's
        // `up` bucket (erase_neighbor dispatches on that comparison).
        buckets_[at].neighbor_moved(moves[i].moved, moves[i].from,
                                    moves[i].to, at_level);
        // v left Z_{at_level - 1} iff it was at >= at_level - 1 and landed
        // below; those departures can break Invariant 2 of `at`.
        if (moves[i].from + 1 >= at_level && moves[i].to + 1 < at_level) {
          touched = true;
        }
      }
      affected[g] = touched ? 1 : 0;
    },
    /*grain=*/1);

    // Movers now satisfy Invariant 2 at their desire level by construction.
    parallel_for(0, movers.size(), [&](std::size_t i) {
      dirty_stamp_[movers[i]] = 0;
    });

    // Enqueue new violators and refresh stale desire levels.
    //  * A *pending* vertex must refresh whenever any neighbor moved: its
    //    cached desire level depends on counts at levels below its current
    //    one, which the current-level `affected` test does not cover.
    //    (Counts only decrease during the deletion phase, so refreshed
    //    desires only decrease — the min-target processing order survives.)
    //  * A non-pending vertex joins the pending set iff a departure from
    //    Z_{level-1} broke its Invariant 2.
    std::vector<vertex_t> next = std::move(rest);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const vertex_t at = moves[groups[g].begin].at;
      if (dirty_stamp_[at] == batch_stamp_) {
        desire_[at] = desire_level(at);  // unconditional refresh
      } else if (affected[g] && inv2_violated(at)) {
        dirty_stamp_[at] = batch_stamp_;
        desire_[at] = desire_level(at);
        next.push_back(at);
      }
    }
    pending = std::move(next);
  }
}

bool PLDS::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  const vertex_t n = num_vertices();
  std::size_t half_edges = 0;
  for (vertex_t v = 0; v < n; ++v) {
    const level_t lv = level_relaxed(v);
    if (lv < 0 || lv >= params_.num_levels()) {
      return fail("level out of range at vertex " + std::to_string(v));
    }
    bool ok = true;
    buckets_[v].for_each_neighbor(lv, [&](vertex_t w, level_t bucket) {
      const level_t lw = level_relaxed(w);
      // `up` bucket is keyed by my level; down buckets by exact level.
      if (bucket == lv ? (lw < lv) : (lw != bucket)) ok = false;
      if (!buckets_[w].contains(v, lv, lw)) ok = false;
      ++half_edges;
    });
    if (!ok) return fail("bucket inconsistency at vertex " + std::to_string(v));
    if (!params_.inv1_ok(lv, buckets_[v].up_degree())) {
      return fail("Invariant 1 violated at vertex " + std::to_string(v));
    }
    if (lv > 0 &&
        !params_.inv2_ok(lv, buckets_[v].count_at_or_above(lv - 1, lv))) {
      return fail("Invariant 2 violated at vertex " + std::to_string(v));
    }
  }
  if (half_edges != 2 * num_edges_) {
    return fail("edge count mismatch: " + std::to_string(half_edges) +
                " half-edges vs m=" + std::to_string(num_edges_));
  }
  return true;
}

}  // namespace cpkcore
