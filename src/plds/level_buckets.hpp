// Per-vertex adjacency partitioned by neighbor level — the PLDS working
// representation (paper §3.2 / Liu et al. SPAA 2022):
//   * `up`      : neighbors at levels >= this vertex's level,
//   * `down[j]` : neighbors at level j, for j < this vertex's level.
// This gives O(1) access to the up-degree (Invariant 1) and per-level counts
// for desire-level computation (Invariant 2), and supports moving a vertex
// or a neighbor between levels in expected O(1) per affected neighbor.
//
// All mutation happens on the update path where the owner vertex is touched
// by exactly one task at a time; readers never see these structures.
#pragma once

#include <cassert>
#include <vector>

#include "util/flat_set.hpp"
#include "util/types.hpp"

namespace cpkcore {

class VertexBuckets {
 public:
  [[nodiscard]] std::size_t up_degree() const { return up_.size(); }

  [[nodiscard]] std::size_t degree() const {
    std::size_t d = up_.size();
    for (const auto& b : down_) d += b.size();
    return d;
  }

  /// #neighbors at levels >= j, where `my_level` is this vertex's level and
  /// j <= my_level. Cost O(my_level - j).
  [[nodiscard]] std::size_t count_at_or_above(level_t j,
                                              level_t my_level) const {
    assert(j <= my_level);
    std::size_t c = up_.size();
    for (level_t i = j; i < my_level; ++i) c += down_size(i);
    return c;
  }

  [[nodiscard]] bool contains(vertex_t w, level_t w_level,
                              level_t my_level) const {
    if (w_level >= my_level) return up_.contains(w);
    if (static_cast<std::size_t>(w_level) >= down_.size()) return false;
    return down_[static_cast<std::size_t>(w_level)].contains(w);
  }

  /// Adds neighbor w (currently at w_level); this vertex is at my_level.
  void insert_neighbor(vertex_t w, level_t w_level, level_t my_level) {
    ensure_down(my_level);
    if (w_level >= my_level) {
      up_.insert(w);
    } else {
      down_[static_cast<std::size_t>(w_level)].insert(w);
    }
  }

  /// Removes neighbor w (currently at w_level).
  void erase_neighbor(vertex_t w, level_t w_level, level_t my_level) {
    if (w_level >= my_level) {
      const bool erased = up_.erase(w);
      assert(erased);
      (void)erased;
    } else {
      const bool erased =
          down_[static_cast<std::size_t>(w_level)].erase(w);
      assert(erased);
      (void)erased;
    }
  }

  /// Neighbor w moved from `from` to `to`; this vertex stays at my_level.
  void neighbor_moved(vertex_t w, level_t from, level_t to,
                      level_t my_level) {
    erase_neighbor(w, from, my_level);
    insert_neighbor(w, to, my_level);
  }

  /// This vertex rises one level: old_level -> old_level + 1. Neighbors at
  /// exactly old_level that are *not* rising with it (the caller filters
  /// those via `stays_behind`) drop from `up` into down[old_level].
  template <class StaysBehind>
  void on_my_level_up(level_t old_level, StaysBehind&& stays_behind) {
    ensure_down(old_level + 1);
    auto& new_bucket = down_[static_cast<std::size_t>(old_level)];
    // Collect first: FlatSet iteration is invalidated by mutation.
    std::vector<vertex_t> demoted;
    up_.for_each([&](vertex_t w) {
      if (stays_behind(w)) demoted.push_back(w);
    });
    for (vertex_t w : demoted) {
      up_.erase(w);
      new_bucket.insert(w);
    }
  }

  /// This vertex drops from old_level to new_level < old_level: buckets
  /// down[new_level .. old_level) merge into `up`.
  void on_my_level_down(level_t old_level, level_t new_level) {
    assert(new_level < old_level);
    for (level_t j = new_level; j < old_level; ++j) {
      auto& b = down_[static_cast<std::size_t>(j)];
      b.for_each([&](vertex_t w) { up_.insert(w); });
      b.clear();
    }
  }

  /// All neighbors currently in `up` (unspecified order).
  [[nodiscard]] std::vector<vertex_t> up_neighbors() const {
    return up_.to_vector();
  }

  template <class F>
  void for_each_up(F&& f) const {
    up_.for_each(std::forward<F>(f));
  }

  /// Iterates neighbors in down[j] for j in [lo, hi).
  template <class F>
  void for_each_down_range(level_t lo, level_t hi, F&& f) const {
    for (level_t j = lo; j < hi && static_cast<std::size_t>(j) < down_.size();
         ++j) {
      down_[static_cast<std::size_t>(j)].for_each(f);
    }
  }

  [[nodiscard]] std::size_t down_size(level_t j) const {
    return static_cast<std::size_t>(j) < down_.size()
               ? down_[static_cast<std::size_t>(j)].size()
               : 0;
  }

  /// Enumerates all neighbors with their stored level bucket:
  /// f(w, bucket_level) where bucket_level == my_level means "in up".
  template <class F>
  void for_each_neighbor(level_t my_level, F&& f) const {
    for (level_t j = 0; j < my_level; ++j) {
      if (static_cast<std::size_t>(j) >= down_.size()) break;
      down_[static_cast<std::size_t>(j)].for_each(
          [&](vertex_t w) { f(w, j); });
    }
    up_.for_each([&](vertex_t w) { f(w, my_level); });
  }

 private:
  void ensure_down(level_t my_level) {
    if (down_.size() < static_cast<std::size_t>(my_level)) {
      down_.resize(static_cast<std::size_t>(my_level));
    }
  }

  IntSet<vertex_t> up_;
  std::vector<IntSet<vertex_t>> down_;
};

}  // namespace cpkcore
