#include "plds/level_buckets.hpp"

// Header-only implementation; this TU verifies standalone inclusion.

namespace cpkcore {
static_assert(sizeof(VertexBuckets) > 0);
}  // namespace cpkcore
