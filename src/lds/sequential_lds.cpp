#include "lds/sequential_lds.hpp"

#include <cassert>
#include <deque>

namespace cpkcore {

SequentialLDS::SequentialLDS(vertex_t num_vertices, LDSParams params)
    : params_(std::move(params)),
      graph_(num_vertices),
      level_(num_vertices, 0),
      queued_(num_vertices, 0) {}

std::size_t SequentialLDS::up_degree(vertex_t v) const {
  std::size_t c = 0;
  for (vertex_t w : graph_.neighbors(v)) {
    if (level_[w] >= level_[v]) ++c;
  }
  return c;
}

std::size_t SequentialLDS::up_star_degree(vertex_t v) const {
  std::size_t c = 0;
  for (vertex_t w : graph_.neighbors(v)) {
    if (level_[w] >= level_[v] - 1) ++c;
  }
  return c;
}

bool SequentialLDS::insert_edge(Edge e) {
  if (!graph_.insert_edge(e)) return false;
  rebalance({e.u, e.v});
  return true;
}

bool SequentialLDS::delete_edge(Edge e) {
  if (!graph_.delete_edge(e)) return false;
  rebalance({e.u, e.v});
  return true;
}

void SequentialLDS::rebalance(std::vector<vertex_t> dirty) {
  ++stamp_;
  std::deque<vertex_t> queue;
  auto push = [&](vertex_t v) {
    if (queued_[v] != stamp_) {
      queued_[v] = stamp_;
      queue.push_back(v);
    }
  };
  for (vertex_t v : dirty) push(v);

  while (!queue.empty()) {
    const vertex_t v = queue.front();
    queue.pop_front();
    queued_[v] = 0;

    if (!params_.inv1_ok(level_[v], up_degree(v))) {
      ++level_[v];
      // v's rise can break Invariant 1 of neighbors now sharing its level
      // and Invariant 2 of v itself / neighbors below; recheck locally.
      push(v);
      for (vertex_t w : graph_.neighbors(v)) push(w);
    } else if (!params_.inv2_ok(level_[v], up_star_degree(v))) {
      --level_[v];
      push(v);
      for (vertex_t w : graph_.neighbors(v)) push(w);
    }
  }
}

bool SequentialLDS::invariants_hold() const {
  for (vertex_t v = 0; v < num_vertices(); ++v) {
    if (!params_.inv1_ok(level_[v], up_degree(v))) return false;
    if (!params_.inv2_ok(level_[v], up_star_degree(v))) return false;
  }
  return true;
}

}  // namespace cpkcore
