#include "lds/params.hpp"

#include <algorithm>
#include <cassert>

namespace cpkcore {

LDSParams LDSParams::create(vertex_t n, double delta, double lambda,
                            int levels_per_group_cap) {
  assert(n >= 2 && delta > 0 && lambda > 0);
  LDSParams p;
  p.delta_ = delta;
  p.lambda_ = lambda;
  p.n_ = n;

  const double log1d_n =
      std::log(static_cast<double>(n)) / std::log1p(delta);
  const int ceil_log = std::max(1, static_cast<int>(std::ceil(log1d_n)));
  p.levels_per_group_ = 4 * ceil_log;
  if (levels_per_group_cap > 0) {
    p.levels_per_group_ = std::min(p.levels_per_group_, levels_per_group_cap);
  }
  // Enough groups that the top group's lower bound exceeds any possible
  // degree (so the top level never binds): (1+delta)^{G-1} >= n.
  p.num_groups_ = ceil_log + 2;
  p.num_levels_ = p.num_groups_ * p.levels_per_group_;

  p.upper_.resize(static_cast<std::size_t>(p.num_groups_));
  p.lower_.resize(static_cast<std::size_t>(p.num_groups_));
  double pow_g = 1.0;
  for (int g = 0; g < p.num_groups_; ++g) {
    p.lower_[static_cast<std::size_t>(g)] = pow_g;
    p.upper_[static_cast<std::size_t>(g)] = (2.0 + 3.0 / lambda) * pow_g;
    pow_g *= (1.0 + delta);
  }

  p.estimate_.resize(static_cast<std::size_t>(p.num_levels_));
  for (int l = 0; l < p.num_levels_; ++l) {
    const int idx = std::max((l + 1) / p.levels_per_group_ - 1, 0);
    p.estimate_[static_cast<std::size_t>(l)] =
        std::pow(1.0 + delta, idx);
  }
  return p;
}

}  // namespace cpkcore
