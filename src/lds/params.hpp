// Shared parameters of the level data structure family (LDS / PLDS / CPLDS).
//
// The structure has K = num_groups * levels_per_group levels; contiguous
// runs of `levels_per_group` levels form groups g = 0, 1, .... A vertex at
// level l in group g must satisfy (paper §3.1):
//   Invariant 1 (upper): #neighbors at levels >= l     <= (2 + 3/lambda) * (1+delta)^g
//   Invariant 2 (lower): #neighbors at levels >= l - 1 >= (1+delta)^{g'} where
//                        g' = group(l - 1), for l > 0.
// The coreness estimate of a vertex at level l is (paper Def. 3.1):
//   (1+delta)^{max(floor((l+1)/levels_per_group) - 1, 0)}.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

/// Canonical parameter defaults (the paper's delta=0.2, lambda=9). Defined
/// once so every config struct that restates them (snapshot loading, the
/// serving layer) cannot drift from LDSParams::create.
inline constexpr double kDefaultDelta = 0.2;
inline constexpr double kDefaultLambda = 9.0;
inline constexpr int kDefaultLevelsPerGroupCap = 0;

class LDSParams {
 public:
  /// Constructs parameters for an n-vertex graph.
  /// `levels_per_group_cap`: 0 keeps the theoretical 4*ceil(log_{1+delta} n)
  /// levels per group; a positive value caps it (our rendering of the PLDS
  /// "-opt" optimization: fewer levels per group speeds up updates but
  /// degrades the approximation factor).
  static LDSParams create(vertex_t n, double delta = kDefaultDelta,
                          double lambda = kDefaultLambda,
                          int levels_per_group_cap = kDefaultLevelsPerGroupCap);

  [[nodiscard]] double delta() const { return delta_; }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] vertex_t n() const { return n_; }
  [[nodiscard]] int num_levels() const { return num_levels_; }
  [[nodiscard]] int num_groups() const { return num_groups_; }
  [[nodiscard]] int levels_per_group() const { return levels_per_group_; }

  /// Theoretical approximation factor 2 + 3/lambda + O(delta) reported for
  /// these parameters (paper uses 2.8 for delta=0.2, lambda=9... computed as
  /// (2 + 3/lambda)(1 + delta) rounded by the authors; we expose the exact
  /// product).
  [[nodiscard]] double approx_factor() const {
    return (2.0 + 3.0 / lambda_) * (1.0 + delta_);
  }

  [[nodiscard]] int group_of_level(level_t level) const {
    return static_cast<int>(level) / levels_per_group_;
  }

  /// Invariant 1 threshold for a vertex whose level lies in group g:
  /// up-degree must be <= this.
  [[nodiscard]] double upper_threshold(int group) const {
    return upper_[static_cast<std::size_t>(group)];
  }

  /// Invariant 2 threshold keyed by group(level - 1): the count of
  /// neighbors at levels >= level-1 must be >= this.
  [[nodiscard]] double lower_threshold(int group) const {
    return lower_[static_cast<std::size_t>(group)];
  }

  /// True iff a vertex at `level` with `up_degree` neighbors at levels
  /// >= `level` satisfies Invariant 1. The top level always satisfies it
  /// (nothing can move above it).
  [[nodiscard]] bool inv1_ok(level_t level, std::size_t up_degree) const {
    if (level >= num_levels_ - 1) return true;
    return static_cast<double>(up_degree) <=
           upper_threshold(group_of_level(level));
  }

  /// True iff a vertex at `level` with `count_above` neighbors at levels
  /// >= level - 1 satisfies Invariant 2. Level 0 always satisfies it.
  [[nodiscard]] bool inv2_ok(level_t level, std::size_t count_above) const {
    if (level <= 0) return true;
    return static_cast<double>(count_above) >=
           lower_threshold(group_of_level(level - 1));
  }

  /// Coreness estimate of a vertex at `level` (Definition 3.1).
  [[nodiscard]] double coreness_estimate(level_t level) const {
    return estimate_[static_cast<std::size_t>(level)];
  }

 private:
  double delta_ = 0.2;
  double lambda_ = 9.0;
  vertex_t n_ = 0;
  int levels_per_group_ = 0;
  int num_groups_ = 0;
  int num_levels_ = 0;
  std::vector<double> upper_;     // per group
  std::vector<double> lower_;     // per group
  std::vector<double> estimate_;  // per level
};

}  // namespace cpkcore
