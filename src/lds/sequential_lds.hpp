// Sequential level data structure (Bhattacharya et al. / Henzinger et al.,
// as analyzed by Liu et al.): maintains a (2+epsilon)-approximate k-core
// decomposition under single edge insertions/deletions by restoring the two
// level invariants with a work-list. This is the validation oracle for the
// parallel structures and the conceptual baseline of paper §3.1.
//
// Not thread-safe; not performance-oriented (invariant checks rescan
// adjacency). Use PLDS/CPLDS for real workloads.
#pragma once

#include <vector>

#include "graph/dynamic_graph.hpp"
#include "lds/params.hpp"
#include "util/types.hpp"

namespace cpkcore {

class SequentialLDS {
 public:
  SequentialLDS(vertex_t num_vertices, LDSParams params);

  /// Inserts (deletes) one edge and restores the invariants. Returns false
  /// for ignored updates (self loops, duplicates, missing edges).
  bool insert_edge(Edge e);
  bool delete_edge(Edge e);

  [[nodiscard]] level_t level(vertex_t v) const { return level_[v]; }
  [[nodiscard]] double coreness_estimate(vertex_t v) const {
    return params_.coreness_estimate(level_[v]);
  }

  [[nodiscard]] const LDSParams& params() const { return params_; }
  [[nodiscard]] const DynamicGraph& graph() const { return graph_; }
  [[nodiscard]] vertex_t num_vertices() const {
    return graph_.num_vertices();
  }

  /// Checks both invariants for every vertex (test hook).
  [[nodiscard]] bool invariants_hold() const;

 private:
  /// #neighbors of v at levels >= level(v).
  [[nodiscard]] std::size_t up_degree(vertex_t v) const;
  /// #neighbors of v at levels >= level(v) - 1.
  [[nodiscard]] std::size_t up_star_degree(vertex_t v) const;

  /// Moves vertices up/down one level at a time until both invariants hold
  /// everywhere reachable from the seed vertices.
  void rebalance(std::vector<vertex_t> dirty);

  LDSParams params_;
  DynamicGraph graph_;
  std::vector<level_t> level_;
  std::vector<std::uint32_t> queued_;  // work-list membership stamps
  std::uint32_t stamp_ = 0;
};

}  // namespace cpkcore
