// Parallel exact k-core peeling (Julienne-style rounds): for k = 0, 1, ...
// repeatedly remove, in parallel, all remaining vertices of induced degree
// <= k; vertices removed while the threshold is k have coreness exactly k.
// Matches the sequential oracle bit-for-bit; used when recomputing ground
// truth at batch boundaries would otherwise dominate experiment time.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace cpkcore {

std::vector<vertex_t> parallel_exact_coreness(const CsrGraph& g);

}  // namespace cpkcore
