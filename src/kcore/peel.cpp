#include "kcore/peel.hpp"

#include <algorithm>

#include "graph/dynamic_graph.hpp"

namespace cpkcore {

std::vector<vertex_t> exact_coreness(const CsrGraph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> deg(n);
  vertex_t max_deg = 0;
  for (vertex_t v = 0; v < n; ++v) {
    deg[v] = static_cast<vertex_t>(g.degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort vertices by degree: bucket_start[d] .. bucket_start[d+1].
  std::vector<vertex_t> bucket_start(max_deg + 2, 0);
  for (vertex_t v = 0; v < n; ++v) ++bucket_start[deg[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<vertex_t> order(n);       // vertices sorted by current degree
  std::vector<vertex_t> pos(n);         // position of v in `order`
  {
    std::vector<vertex_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (vertex_t v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      order[pos[v]] = v;
    }
  }
  // bucket_head[d] = index in `order` of the first vertex with degree d that
  // has not been peeled yet.
  std::vector<vertex_t> bucket_head(bucket_start.begin(),
                                    bucket_start.end() - 1);

  std::vector<vertex_t> coreness(n, 0);
  for (vertex_t i = 0; i < n; ++i) {
    const vertex_t v = order[i];
    coreness[v] = deg[v];
    for (vertex_t w : g.neighbors(v)) {
      if (deg[w] > deg[v]) {
        // Move w to the front of its bucket, then shrink its degree.
        const vertex_t dw = deg[w];
        const vertex_t head = bucket_head[dw];
        const vertex_t u = order[head];
        if (u != w) {
          std::swap(order[pos[w]], order[head]);
          std::swap(pos[w], pos[u]);
        }
        ++bucket_head[dw];
        --deg[w];
      }
    }
  }
  return coreness;
}

std::vector<vertex_t> exact_coreness(const DynamicGraph& g) {
  return exact_coreness(CsrGraph::from_dynamic(g));
}

vertex_t degeneracy(const CsrGraph& g) {
  const auto coreness = exact_coreness(g);
  vertex_t best = 0;
  for (vertex_t c : coreness) best = std::max(best, c);
  return best;
}

}  // namespace cpkcore
