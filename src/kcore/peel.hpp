// Exact k-core decomposition by sequential bucket peeling (Matula–Beck,
// O(n + m)). Used as the ground-truth oracle for the approximation-error
// experiments (Fig. 6) and for Table 1's "largest value of k".
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace cpkcore {

class DynamicGraph;

/// coreness[v] = largest k such that v belongs to a k-core.
std::vector<vertex_t> exact_coreness(const CsrGraph& g);

/// Convenience overload snapshotting a dynamic graph.
std::vector<vertex_t> exact_coreness(const DynamicGraph& g);

/// Largest coreness value in the graph (0 for empty graphs).
vertex_t degeneracy(const CsrGraph& g);

}  // namespace cpkcore
