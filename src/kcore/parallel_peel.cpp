#include "kcore/parallel_peel.hpp"

#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"

namespace cpkcore {

std::vector<vertex_t> parallel_exact_coreness(const CsrGraph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::atomic<std::int64_t>> deg(n);
  parallel_for(0, n, [&](std::size_t v) {
    deg[v].store(static_cast<std::int64_t>(
                     g.degree(static_cast<vertex_t>(v))),
                 std::memory_order_relaxed);
  });
  std::vector<std::atomic<std::uint8_t>> peeled(n);
  parallel_for(0, n,
               [&](std::size_t v) { peeled[v].store(0, std::memory_order_relaxed); });
  std::vector<vertex_t> coreness(n, 0);

  std::size_t remaining = n;
  vertex_t k = 0;
  // Current frontier: vertices to peel at threshold k. `next` is a reusable
  // buffer sized n: every vertex is enqueued at most once per lifetime (its
  // degree crosses k exactly once before it is peeled), so n never
  // overflows.
  std::vector<vertex_t> frontier;
  std::vector<vertex_t> next(n);
  while (remaining > 0) {
    // Collect all unpeeled vertices with degree <= k.
    frontier = parallel_pack<vertex_t>(
        n,
        [&](std::size_t v) {
          return peeled[v].load(std::memory_order_relaxed) == 0 &&
                 deg[v].load(std::memory_order_relaxed) <=
                     static_cast<std::int64_t>(k);
        },
        [](std::size_t v) { return static_cast<vertex_t>(v); });
    if (frontier.empty()) {
      ++k;
      continue;
    }
    while (!frontier.empty()) {
      // Claim frontier vertices (exactly-once peel via CAS on the flag).
      parallel_for(0, frontier.size(), [&](std::size_t i) {
        coreness[frontier[i]] = k;
        peeled[frontier[i]].store(1, std::memory_order_relaxed);
      });
      remaining -= frontier.size();
      // Decrement neighbor degrees; vertices that drop to <= k and are
      // unpeeled join the next sub-round. A vertex may be decremented by
      // several peeled neighbors; claim it with a CAS from 0 -> 2 so it is
      // enqueued once ("2" marks enqueued-but-unpeeled, treated as peeled=0
      // for claiming purposes only here).
      std::atomic<std::size_t> next_size{0};
      // Grain 8: per-iteration work is the vertex degree, which is heavily
      // skewed; small stealable leaves keep hubs from serializing a round.
      parallel_for(
          0, frontier.size(),
          [&](std::size_t i) {
            for (vertex_t w : g.neighbors(frontier[i])) {
              if (peeled[w].load(std::memory_order_relaxed) != 0) continue;
              const std::int64_t old =
                  deg[w].fetch_sub(1, std::memory_order_relaxed);
              if (old - 1 == static_cast<std::int64_t>(k)) {
                // Exactly one decrementer observes the k crossing (fetch_sub
                // hands out distinct descending old values), so w is
                // enqueued exactly once.
                const std::size_t pos =
                    next_size.fetch_add(1, std::memory_order_relaxed);
                next[pos] = w;
              }
            }
          },
          /*grain=*/8);
      const std::size_t sz = next_size.load(std::memory_order_relaxed);
      frontier.assign(next.begin(),
                      next.begin() + static_cast<std::ptrdiff_t>(sz));
    }
    ++k;
  }
  return coreness;
}

}  // namespace cpkcore
