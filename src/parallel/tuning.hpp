// Runtime-tunable serial cutoffs for the parallel layer.
//
// The primitives (reduce/scan/pack) fall back to serial code below
// serial_cutoff() elements, and parallel_sort below sort_serial_cutoff().
// Both default to values tuned for release builds but can be lowered via
// environment variables so tests and sanitizer runs exercise the parallel
// paths on small inputs:
//
//   CPKC_GRAIN       serial cutoff for the primitives   (default 2048)
//   CPKC_SORT_GRAIN  serial cutoff for parallel_sort    (default 8 x grain,
//                                                        16384 when unset)
//
// The environment is read once on first use; tests can override within a
// process via the setters (0 restores the env/default value).
#pragma once

#include <cstddef>

namespace cpkcore {

/// Inputs smaller than this run serially in the data-parallel primitives.
std::size_t serial_cutoff();

/// Inputs smaller than this use std::sort in parallel_sort; also the leaf
/// size of the nested per-bucket sorts.
std::size_t sort_serial_cutoff();

/// Overrides serial_cutoff() for this process (0 = back to env/default).
void set_serial_cutoff(std::size_t cutoff);

/// Overrides sort_serial_cutoff() for this process (0 = back to env/default).
void set_sort_serial_cutoff(std::size_t cutoff);

}  // namespace cpkcore
