// Data-parallel building blocks on top of the scheduler: reduce, exclusive
// scan, pack/filter, map, and counting utilities. All functions fall back to
// tuned serial code below a size threshold.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "parallel/scheduler.hpp"

namespace cpkcore {

inline constexpr std::size_t kSerialCutoff = 2048;

namespace detail {
/// Splits [0, n) into `blocks` near-equal ranges; returns boundaries of size
/// blocks + 1.
inline std::vector<std::size_t> block_bounds(std::size_t n,
                                             std::size_t blocks) {
  std::vector<std::size_t> b(blocks + 1);
  for (std::size_t i = 0; i <= blocks; ++i) {
    b[i] = (n * i) / blocks;
  }
  return b;
}

inline std::size_t default_blocks(std::size_t n) {
  const std::size_t w = num_workers();
  const std::size_t blocks = std::min(n, w * 8);
  return blocks == 0 ? 1 : blocks;
}
}  // namespace detail

/// Sum-type reduction: returns init + f(0) + f(1) + ... + f(n-1) where `+`
/// is the provided associative combine.
template <class T, class F, class Combine>
T parallel_reduce(std::size_t n, T init, F&& f, Combine&& combine) {
  if (n < kSerialCutoff) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const std::size_t blocks = detail::default_blocks(n);
  const auto bounds = detail::block_bounds(n, blocks);
  std::vector<T> partial(blocks, init);
  parallel_for(0, blocks, [&](std::size_t b) {
    T acc = init;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      acc = combine(acc, f(i));
    }
    partial[b] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Convenience: parallel sum of f(i).
template <class T, class F>
T parallel_sum(std::size_t n, F&& f) {
  return parallel_reduce(
      n, T{}, std::forward<F>(f), [](T a, T b) { return a + b; });
}

/// Exclusive prefix sum of `values` in place; returns the total.
template <class T>
T parallel_scan_exclusive(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n < kSerialCutoff) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return acc;
  }
  const std::size_t blocks = detail::default_blocks(n);
  const auto bounds = detail::block_bounds(n, blocks);
  std::vector<T> block_sum(blocks);
  parallel_for(0, blocks, [&](std::size_t b) {
    T acc{};
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) acc += values[i];
    block_sum[b] = acc;
  });
  T total{};
  for (std::size_t b = 0; b < blocks; ++b) {
    T v = block_sum[b];
    block_sum[b] = total;
    total += v;
  }
  parallel_for(0, blocks, [&](std::size_t b) {
    T acc = block_sum[b];
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
  });
  return total;
}

/// Returns the elements produced by gen(i) for indices where pred(i) holds,
/// preserving index order.
template <class T, class Pred, class Gen>
std::vector<T> parallel_pack(std::size_t n, Pred&& pred, Gen&& gen) {
  if (n < kSerialCutoff) {
    std::vector<T> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(gen(i));
    }
    return out;
  }
  const std::size_t blocks = detail::default_blocks(n);
  const auto bounds = detail::block_bounds(n, blocks);
  std::vector<std::size_t> counts(blocks);
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t c = 0;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      c += pred(i) ? 1 : 0;
    }
    counts[b] = c;
  });
  const std::size_t total = parallel_scan_exclusive(counts);
  std::vector<T> out(total);
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t pos = counts[b];
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      if (pred(i)) out[pos++] = gen(i);
    }
  });
  return out;
}

/// Filters a vector by predicate on elements.
template <class T, class Pred>
std::vector<T> parallel_filter(const std::vector<T>& in, Pred&& pred) {
  return parallel_pack<T>(
      in.size(), [&](std::size_t i) { return pred(in[i]); },
      [&](std::size_t i) { return in[i]; });
}

/// out[i] = f(i) for i in [0, n).
template <class T, class F>
std::vector<T> parallel_tabulate(std::size_t n, F&& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

/// Counts indices where pred holds.
template <class Pred>
std::size_t parallel_count(std::size_t n, Pred&& pred) {
  return parallel_sum<std::size_t>(
      n, [&](std::size_t i) { return pred(i) ? std::size_t{1} : 0; });
}

}  // namespace cpkcore
