// Data-parallel building blocks on top of the fork-join scheduler: reduce,
// exclusive scan, pack/filter, map, and counting utilities. Reduce, scan,
// and pack are divide-and-conquer over fork2 — the recursion tree's subtasks
// are stealable, so these primitives parallelize even when invoked from
// inside another parallel loop. All functions fall back to tuned serial code
// below serial_cutoff() (CPKC_GRAIN env override; see parallel/tuning.hpp).
//
// `init` passed to parallel_reduce must be an identity of `combine`: it
// seeds every leaf of the reduction tree, not just the root.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <numeric>
#include <vector>

#include "parallel/scheduler.hpp"
#include "parallel/tuning.hpp"

namespace cpkcore {

namespace detail {
/// First index of block i when [0, n) is split into `blocks` near-equal
/// ranges. Computed as i*(n/blocks) + min(i, n%blocks) — the naive
/// (n * i) / blocks wraps std::size_t for very large n.
inline std::size_t block_lo(std::size_t n, std::size_t blocks,
                            std::size_t i) {
  return i * (n / blocks) + std::min(i, n % blocks);
}

/// Splits [0, n) into `blocks` near-equal ranges; returns boundaries of size
/// blocks + 1.
inline std::vector<std::size_t> block_bounds(std::size_t n,
                                             std::size_t blocks) {
  std::vector<std::size_t> b(blocks + 1);
  for (std::size_t i = 0; i <= blocks; ++i) {
    b[i] = block_lo(n, blocks, i);
  }
  return b;
}

inline std::size_t default_blocks(std::size_t n) {
  const std::size_t w = num_workers();
  const std::size_t blocks = std::min(n, w * 8);
  return blocks == 0 ? 1 : blocks;
}

/// Power-of-two leaf count for the scan/pack recursion trees (heap-indexed
/// with 2 * blocks - 1 nodes).
inline std::size_t tree_blocks(std::size_t n) {
  return std::bit_ceil(default_blocks(n));
}

template <class T, class F, class Combine>
T reduce_split(std::size_t lo, std::size_t hi, std::size_t grain,
               const T& init, F& f, Combine& combine) {
  if (hi - lo <= grain) {
    T acc = init;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  T left = init;
  T right = init;
  fork2([&] { left = reduce_split(lo, mid, grain, init, f, combine); },
        [&] { right = reduce_split(mid, hi, grain, init, f, combine); });
  return combine(left, right);
}

// Scan recursion tree: node `node` covers block range [b0, b1) (heap
// layout, children 2*node+1 / 2*node+2). Pass 1 fills sums[node] with the
// node's total; pass 2 descends with the running prefix.
template <class T>
void scan_sum_pass(std::vector<T>& values, std::size_t node, std::size_t b0,
                   std::size_t b1, std::size_t n, std::size_t blocks,
                   std::vector<T>& sums) {
  if (b1 - b0 == 1) {
    const std::size_t lo = block_lo(n, blocks, b0);
    const std::size_t hi = block_lo(n, blocks, b0 + 1);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += values[i];
    sums[node] = acc;
    return;
  }
  const std::size_t bm = b0 + (b1 - b0) / 2;
  fork2([&] { scan_sum_pass(values, 2 * node + 1, b0, bm, n, blocks, sums); },
        [&] { scan_sum_pass(values, 2 * node + 2, bm, b1, n, blocks, sums); });
  sums[node] = sums[2 * node + 1];
  sums[node] += sums[2 * node + 2];
}

template <class T>
void scan_prefix_pass(std::vector<T>& values, std::size_t node,
                      std::size_t b0, std::size_t b1, std::size_t n,
                      std::size_t blocks, const std::vector<T>& sums,
                      T prefix) {
  if (b1 - b0 == 1) {
    const std::size_t lo = block_lo(n, blocks, b0);
    const std::size_t hi = block_lo(n, blocks, b0 + 1);
    T acc = std::move(prefix);
    for (std::size_t i = lo; i < hi; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return;
  }
  const std::size_t bm = b0 + (b1 - b0) / 2;
  T right_prefix = prefix;
  right_prefix += sums[2 * node + 1];
  fork2(
      [&] {
        scan_prefix_pass(values, 2 * node + 1, b0, bm, n, blocks, sums,
                         std::move(prefix));
      },
      [&] {
        scan_prefix_pass(values, 2 * node + 2, bm, b1, n, blocks, sums,
                         std::move(right_prefix));
      });
}

// Pack recursion tree: pass 1 counts matches per node, pass 2 writes each
// leaf's matches at its exclusive prefix offset.
template <class Pred>
void pack_count_pass(std::size_t node, std::size_t b0, std::size_t b1,
                     std::size_t n, std::size_t blocks, Pred& pred,
                     std::vector<std::size_t>& counts) {
  if (b1 - b0 == 1) {
    const std::size_t lo = block_lo(n, blocks, b0);
    const std::size_t hi = block_lo(n, blocks, b0 + 1);
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
    counts[node] = c;
    return;
  }
  const std::size_t bm = b0 + (b1 - b0) / 2;
  fork2([&] { pack_count_pass(2 * node + 1, b0, bm, n, blocks, pred, counts); },
        [&] {
          pack_count_pass(2 * node + 2, bm, b1, n, blocks, pred, counts);
        });
  counts[node] = counts[2 * node + 1] + counts[2 * node + 2];
}

template <class T, class Pred, class Gen>
void pack_fill_pass(std::size_t node, std::size_t b0, std::size_t b1,
                    std::size_t n, std::size_t blocks, Pred& pred, Gen& gen,
                    const std::vector<std::size_t>& counts,
                    std::size_t prefix, std::vector<T>& out) {
  if (b1 - b0 == 1) {
    const std::size_t lo = block_lo(n, blocks, b0);
    const std::size_t hi = block_lo(n, blocks, b0 + 1);
    std::size_t pos = prefix;
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) out[pos++] = gen(i);
    }
    return;
  }
  const std::size_t bm = b0 + (b1 - b0) / 2;
  fork2(
      [&] {
        pack_fill_pass(2 * node + 1, b0, bm, n, blocks, pred, gen, counts,
                       prefix, out);
      },
      [&] {
        pack_fill_pass(2 * node + 2, bm, b1, n, blocks, pred, gen, counts,
                       prefix + counts[2 * node + 1], out);
      });
}
}  // namespace detail

/// Sum-type reduction: returns init + f(0) + f(1) + ... + f(n-1) where `+`
/// is the provided associative combine and init is its identity.
template <class T, class F, class Combine>
T parallel_reduce(std::size_t n, T init, F&& f, Combine&& combine) {
  if (n < serial_cutoff()) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const std::size_t grain =
      std::max<std::size_t>(1, n / detail::default_blocks(n));
  return detail::reduce_split(0, n, grain, init, f, combine);
}

/// Convenience: parallel sum of f(i).
template <class T, class F>
T parallel_sum(std::size_t n, F&& f) {
  return parallel_reduce(
      n, T{}, std::forward<F>(f), [](T a, T b) { return a + b; });
}

/// Exclusive prefix sum of `values` in place; returns the total.
template <class T>
T parallel_scan_exclusive(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n < serial_cutoff()) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return acc;
  }
  const std::size_t blocks = detail::tree_blocks(n);
  std::vector<T> sums(2 * blocks - 1);
  detail::scan_sum_pass(values, 0, 0, blocks, n, blocks, sums);
  T total = sums[0];
  detail::scan_prefix_pass(values, 0, 0, blocks, n, blocks, sums, T{});
  return total;
}

/// Returns the elements produced by gen(i) for indices where pred(i) holds,
/// preserving index order. pred is evaluated twice per index (count + fill).
template <class T, class Pred, class Gen>
std::vector<T> parallel_pack(std::size_t n, Pred&& pred, Gen&& gen) {
  if (n < serial_cutoff()) {
    std::vector<T> out;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(gen(i));
    }
    return out;
  }
  const std::size_t blocks = detail::tree_blocks(n);
  std::vector<std::size_t> counts(2 * blocks - 1);
  detail::pack_count_pass(0, 0, blocks, n, blocks, pred, counts);
  std::vector<T> out(counts[0]);
  detail::pack_fill_pass(0, 0, blocks, n, blocks, pred, gen, counts, 0, out);
  return out;
}

/// Filters a vector by predicate on elements.
template <class T, class Pred>
std::vector<T> parallel_filter(const std::vector<T>& in, Pred&& pred) {
  return parallel_pack<T>(
      in.size(), [&](std::size_t i) { return pred(in[i]); },
      [&](std::size_t i) { return in[i]; });
}

/// out[i] = f(i) for i in [0, n).
template <class T, class F>
std::vector<T> parallel_tabulate(std::size_t n, F&& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

/// Counts indices where pred holds.
template <class Pred>
std::size_t parallel_count(std::size_t n, Pred&& pred) {
  return parallel_sum<std::size_t>(
      n, [&](std::size_t i) { return pred(i) ? std::size_t{1} : 0; });
}

}  // namespace cpkcore
