#include "parallel/tuning.hpp"

#include <atomic>
#include <cstdlib>

namespace cpkcore {

namespace {

std::size_t env_cutoff(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// 0 means "not yet resolved"; resolved values are always >= 1.
std::atomic<std::size_t> g_serial_cutoff{0};
std::atomic<std::size_t> g_sort_cutoff{0};

}  // namespace

std::size_t serial_cutoff() {
  std::size_t v = g_serial_cutoff.load(std::memory_order_relaxed);
  if (v == 0) {
    v = env_cutoff("CPKC_GRAIN", 2048);
    if (v == 0) v = 1;
    g_serial_cutoff.store(v, std::memory_order_relaxed);
  }
  return v;
}

std::size_t sort_serial_cutoff() {
  std::size_t v = g_sort_cutoff.load(std::memory_order_relaxed);
  if (v == 0) {
    // CPKC_SORT_GRAIN wins; otherwise scale with CPKC_GRAIN when that is
    // set (so one knob shrinks every cutoff), else the historical 1 << 14.
    std::size_t fallback = std::size_t{1} << 14;
    if (std::getenv("CPKC_GRAIN") != nullptr) fallback = 8 * serial_cutoff();
    v = env_cutoff("CPKC_SORT_GRAIN", fallback);
    if (v == 0) v = 1;
    g_sort_cutoff.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_serial_cutoff(std::size_t cutoff) {
  g_serial_cutoff.store(cutoff, std::memory_order_relaxed);
}

void set_sort_serial_cutoff(std::size_t cutoff) {
  g_sort_cutoff.store(cutoff, std::memory_order_relaxed);
}

}  // namespace cpkcore
