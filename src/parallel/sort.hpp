// Parallel sample sort and key-grouping (semisort substitute).
//
// Sample sort: oversample to pick bucket pivots, histogram each block,
// scatter into bucket-contiguous positions, sort buckets in parallel. This
// is the standard shared-memory formulation (e.g., ParlayLib's sample_sort)
// without in-place transposition — we trade one temporary array for clarity.
//
// Bucket sorting exploits the fork-join runtime's nested parallelism: each
// bucket is a stealable task (grain 1), and a bucket larger than the serial
// cutoff recursively forks a three-way-partition quicksort, so one skewed
// bucket cannot serialize the tail of the sort.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/tuning.hpp"
#include "util/rng.hpp"

namespace cpkcore {

namespace detail {
/// Fork-join three-way quicksort for oversized buckets. `depth` bounds the
/// recursion against adversarial pivots; at 0 (or below the cutoff) it
/// finishes with std::sort.
template <class It, class Less>
void sort_subtask(It lo, It hi, Less& less, int depth) {
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  if (n <= sort_serial_cutoff() || depth == 0) {
    std::sort(lo, hi, less);
    return;
  }
  // Median-of-three pivot.
  auto mid = lo + static_cast<std::ptrdiff_t>(n / 2);
  auto med3 = [&](It a, It b, It c) {
    if (less(*b, *a)) std::swap(a, b);
    if (less(*c, *b)) {
      b = c;
      if (less(*b, *a)) b = a;
    }
    return b;
  };
  const auto pivot = *med3(lo, mid, hi - 1);
  It m1 = std::partition(lo, hi, [&](const auto& x) { return less(x, pivot); });
  It m2 =
      std::partition(m1, hi, [&](const auto& x) { return !less(pivot, x); });
  fork2([&] { sort_subtask(lo, m1, less, depth - 1); },
        [&] { sort_subtask(m2, hi, less, depth - 1); });
}
}  // namespace detail

template <class T, class Less = std::less<T>>
void parallel_sort(std::vector<T>& data, Less less = Less{}) {
  const std::size_t n = data.size();
  if (n < sort_serial_cutoff()) {
    std::sort(data.begin(), data.end(), less);
    return;
  }
  const std::size_t num_buckets =
      std::min<std::size_t>(256, std::max<std::size_t>(2, num_workers() * 4));
  const std::size_t oversample = 8;

  // 1. Choose pivots from a random sample.
  Xoshiro256 rng(0xC0FFEE123ULL + n);
  std::vector<T> sample(num_buckets * oversample);
  for (auto& s : sample) s = data[rng.next_below(n)];
  std::sort(sample.begin(), sample.end(), less);
  std::vector<T> pivots(num_buckets - 1);
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    pivots[i] = sample[(i + 1) * oversample];
  }

  auto bucket_of = [&](const T& x) -> std::size_t {
    return static_cast<std::size_t>(
        std::upper_bound(pivots.begin(), pivots.end(), x, less) -
        pivots.begin());
  };

  // 2. Per-block histograms.
  const std::size_t blocks = detail::default_blocks(n);
  const auto bounds = detail::block_bounds(n, blocks);
  std::vector<std::uint16_t> bucket_id(n);
  std::vector<std::size_t> hist(blocks * num_buckets, 0);
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t* h = hist.data() + b * num_buckets;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      const std::size_t k = bucket_of(data[i]);
      bucket_id[i] = static_cast<std::uint16_t>(k);
      ++h[k];
    }
  });

  // 3. Column-major exclusive scan of the (blocks x buckets) matrix so each
  // bucket's output region is contiguous.
  std::vector<std::size_t> offsets(blocks * num_buckets);
  std::size_t total = 0;
  std::vector<std::size_t> bucket_start(num_buckets + 1);
  for (std::size_t k = 0; k < num_buckets; ++k) {
    bucket_start[k] = total;
    for (std::size_t b = 0; b < blocks; ++b) {
      offsets[b * num_buckets + k] = total;
      total += hist[b * num_buckets + k];
    }
  }
  bucket_start[num_buckets] = total;

  // 4. Scatter.
  std::vector<T> out(n);
  parallel_for(0, blocks, [&](std::size_t b) {
    std::size_t* off = offsets.data() + b * num_buckets;
    for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
      out[off[bucket_id[i]]++] = data[i];
    }
  });

  // 5. Sort each bucket. Grain 1 makes every bucket its own stealable task,
  // and oversized buckets fork further inside sort_subtask.
  parallel_for(
      0, num_buckets,
      [&](std::size_t k) {
        detail::sort_subtask(
            out.begin() + static_cast<std::ptrdiff_t>(bucket_start[k]),
            out.begin() + static_cast<std::ptrdiff_t>(bucket_start[k + 1]),
            less, /*depth=*/48);
      },
      /*grain=*/1);

  data = std::move(out);
}

/// Contiguous range [begin, end) of equal-key elements after grouping.
struct GroupRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const GroupRange&, const GroupRange&) = default;
};

/// Sorts `data` by key(x) and returns one range per distinct key, in key
/// order. This is the semisort work-horse used to aggregate per-vertex
/// updates so each vertex's state is mutated by exactly one task.
template <class T, class KeyFn>
std::vector<GroupRange> group_by_key(std::vector<T>& data, KeyFn key) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  parallel_sort(data, [&](const T& a, const T& b) { return key(a) < key(b); });
  // Boundary detection: index i starts a group iff i == 0 or key changes.
  auto starts = parallel_pack<std::size_t>(
      n,
      [&](std::size_t i) { return i == 0 || key(data[i]) != key(data[i - 1]); },
      [](std::size_t i) { return i; });
  std::vector<GroupRange> groups(starts.size());
  parallel_for(0, starts.size(), [&](std::size_t g) {
    groups[g].begin = starts[g];
    groups[g].end = g + 1 < starts.size() ? starts[g + 1] : n;
  });
  return groups;
}

}  // namespace cpkcore
