#include "parallel/scheduler.hpp"

#include <chrono>
#include <cstdlib>

namespace cpkcore {

namespace {

// Deque capacity (power of two). Outstanding tasks per thread are bounded by
// the fork recursion depth (~log2(n) per loop nesting level), so 4096 is far
// above anything reachable; overflow degrades to inline execution anyway.
constexpr std::size_t kDequeCapacity = 4096;

// Extra slots for external (non-pool) submitting threads. Submitters beyond
// this run their root call serially, which is correct but unaccelerated.
constexpr std::size_t kExternalSlots = 16;

// A thread joining a stolen task may steal and run other tasks while it
// waits; this caps how deep those help-out frames nest so the stack stays
// bounded even under adversarial steal patterns.
constexpr int kMaxWaitStealDepth = 4;

// Failed steal attempts before an idle worker naps on the condition
// variable (with a timeout, so missed wakeups only cost latency).
constexpr int kStealFailsBeforeSleep = 64;

std::size_t default_workers() {
  if (const char* env = std::getenv("CPKC_NUM_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : hc;
}

std::uint64_t next_rand(std::uint64_t& state) {
  // xorshift64*; only used for steal victim selection.
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models"), strengthened to use seq_cst
// operations on top/bottom instead of standalone fences so TSan understands
// the synchronization. The owner pushes/pops at the bottom; thieves steal
// from the top; the single-element race is arbitrated by a CAS on top.
struct Scheduler::Slot {
  std::atomic<std::int64_t> top{0};
  std::atomic<std::int64_t> bottom{0};
  std::unique_ptr<std::atomic<Task*>[]> buffer{
      new std::atomic<Task*>[kDequeCapacity]};
  std::atomic<bool> claimed{false};  // external-slot ownership
  // Separate hot atomics from the next slot in the array.
  char pad[64] = {};

  bool push(Task* task) {
    const std::int64_t b = bottom.load(std::memory_order_relaxed);
    const std::int64_t t = top.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kDequeCapacity)) return false;
    buffer[static_cast<std::size_t>(b) & (kDequeCapacity - 1)].store(
        task, std::memory_order_relaxed);
    bottom.store(b + 1, std::memory_order_release);
    return true;
  }

  Task* pop() {
    const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_seq_cst);
    std::int64_t t = top.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = buffer[static_cast<std::size_t>(b) & (kDequeCapacity - 1)]
                     .load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race with thieves for it.
      if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        task = nullptr;  // a thief won
      }
      bottom.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  Task* steal() {
    std::int64_t t = top.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = buffer[static_cast<std::size_t>(t) & (kDequeCapacity - 1)]
                     .load(std::memory_order_relaxed);
    if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return task;
  }
};

thread_local Scheduler::Binding Scheduler::tl_binding_;
thread_local int Scheduler::tl_task_depth_ = 0;

bool Scheduler::in_task() { return tl_task_depth_ > 0; }

Scheduler::TaskScope::TaskScope() { ++tl_task_depth_; }

Scheduler::TaskScope::~TaskScope() { --tl_task_depth_; }

Scheduler::ExternalScope::ExternalScope(Scheduler& sched)
    : sched_(sched), prev_(tl_binding_) {
  tl_binding_ = Binding{&sched, sched.claim_external_slot()};
  sched.external_roots_.add();
}

Scheduler::ExternalScope::~ExternalScope() {
  if (tl_binding_.slot != nullptr) {
    sched_.release_external_slot(tl_binding_.slot);
  }
  tl_binding_ = prev_;
}

Scheduler& Scheduler::instance() {
  static Scheduler sched(default_workers());
  return sched;
}

Scheduler::Scheduler(std::size_t num_workers) {
  start(num_workers);
  metrics_ = obs::MetricsGroup(&obs::MetricsRegistry::instance(), "sched.");
  metrics_.collect([this](obs::MetricsSink& sink) {
    sink.gauge("workers", static_cast<double>(num_workers_));
    sink.counter("spawns", spawns_);
    sink.counter("steals", steals_);
    sink.counter("helped_joins", helped_joins_);
    sink.counter("external_roots", external_roots_);
  });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::set_num_workers(std::size_t num_workers) {
  stop();
  start(num_workers);
}

void Scheduler::start(std::size_t num_workers) {
  num_workers_ = num_workers == 0 ? 1 : num_workers;
  // The submitting thread also works, so (num_workers - 1) pool threads
  // yield num_workers-way parallelism.
  const std::size_t pool_threads = num_workers_ - 1;
  num_slots_ = pool_threads + kExternalSlots;
  slots_ = std::make_unique<Slot[]>(num_slots_);
  shutdown_.store(false, std::memory_order_relaxed);
  pool_.reserve(pool_threads);
  for (std::size_t i = 0; i < pool_threads; ++i) {
    pool_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Scheduler::stop() {
  {
    std::lock_guard lock(mu_);
    shutdown_.store(true, std::memory_order_seq_cst);
  }
  cv_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
  slots_.reset();
  num_slots_ = 0;
}

bool Scheduler::push_task(Task* task) {
  Slot* slot = tl_binding_.slot;
  if (slot == nullptr || !slot->push(task)) return false;
  spawns_.add();
  if (sleepers_.load(std::memory_order_relaxed) > 0) cv_.notify_one();
  return true;
}

bool Scheduler::pop_task(Task* task) {
  Slot* slot = tl_binding_.slot;
  Task* popped = slot->pop();
  if (popped == task) return true;
  if (popped != nullptr) {
    // `task` was pushed after `popped`, so finding `popped` at the bottom
    // proves `task` was stolen. This interleaving arises from help-out
    // stealing: a task run while waiting forks on this deque, its fork gets
    // stolen, and its join lands on an ancestor frame's entry. Put the
    // ancestor's task back (there is room — we just popped) for its own
    // join to claim.
    slot->push(popped);
  }
  return false;
}

void Scheduler::run_task(Task* task) {
  TaskScope scope;
  task->invoke(task);
  task->done.store(true, std::memory_order_release);
}

Scheduler::Task* Scheduler::try_steal(const Slot* self,
                                      std::uint64_t& rng_state) {
  const std::size_t start =
      static_cast<std::size_t>(next_rand(rng_state) % num_slots_);
  for (std::size_t k = 0; k < num_slots_; ++k) {
    Slot* victim = &slots_[(start + k) % num_slots_];
    if (victim == self) continue;
    if (Task* task = victim->steal()) {
      steals_.add();
      return task;
    }
  }
  return nullptr;
}

void Scheduler::wait_task(Task& task) {
  std::uint64_t rng_state =
      reinterpret_cast<std::uintptr_t>(&task) | 1;
  int fails = 0;
  while (!task.done.load(std::memory_order_acquire)) {
    if (tl_binding_.wait_steal_depth < kMaxWaitStealDepth) {
      if (Task* other = try_steal(tl_binding_.slot, rng_state)) {
        helped_joins_.add();
        ++tl_binding_.wait_steal_depth;
        run_task(other);
        --tl_binding_.wait_steal_depth;
        fails = 0;
        continue;
      }
    }
    if (++fails >= kStealFailsBeforeSleep) std::this_thread::yield();
  }
}

Scheduler::Slot* Scheduler::claim_external_slot() {
  const std::size_t pool_threads = pool_.size();
  for (std::size_t i = pool_threads; i < num_slots_; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acquire,
            std::memory_order_relaxed)) {
      return &slots_[i];
    }
  }
  return nullptr;
}

void Scheduler::release_external_slot(Slot* slot) {
  slot->claimed.store(false, std::memory_order_release);
}

void Scheduler::worker_loop(std::size_t slot_index) {
  tl_binding_ = Binding{this, &slots_[slot_index]};
  std::uint64_t rng_state = (slot_index + 1) * 0x9E3779B97F4A7C15ULL;
  int fails = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Task* task = try_steal(tl_binding_.slot, rng_state)) {
      run_task(task);
      fails = 0;
      continue;
    }
    if (++fails < kStealFailsBeforeSleep) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(mu_);
    if (shutdown_.load(std::memory_order_relaxed)) break;
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lock, std::chrono::microseconds(500));
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    fails = 0;
  }
}

}  // namespace cpkcore
