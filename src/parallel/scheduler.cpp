#include "parallel/scheduler.hpp"

#include <algorithm>
#include <cstdlib>

namespace cpkcore {

namespace {
thread_local int t_chunk_depth = 0;

std::size_t default_workers() {
  if (const char* env = std::getenv("CPKC_NUM_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : hc;
}
}  // namespace

bool Scheduler::in_chunk() { return t_chunk_depth > 0; }

Scheduler::ChunkScope::ChunkScope() { ++t_chunk_depth; }

Scheduler::ChunkScope::~ChunkScope() { --t_chunk_depth; }

Scheduler& Scheduler::instance() {
  static Scheduler sched(default_workers());
  return sched;
}

Scheduler::Scheduler(std::size_t num_workers) { start(num_workers); }

Scheduler::~Scheduler() { stop(); }

void Scheduler::set_num_workers(std::size_t num_workers) {
  stop();
  start(num_workers);
}

void Scheduler::start(std::size_t num_workers) {
  {
    std::lock_guard lock(mu_);
    shutdown_ = false;
  }
  // The submitting thread also works, so a pool of (num_workers - 1)
  // threads yields num_workers-way parallelism.
  const std::size_t extra = num_workers > 1 ? num_workers - 1 : 0;
  threads_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void Scheduler::stop() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  queue_.clear();
}

std::size_t Scheduler::work_on(Job& job) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t chunk =
        job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    {
      ChunkScope scope;
      job.body(chunk);
    }
    job.finished.fetch_add(1, std::memory_order_release);
    ++executed;
  }
  return executed;
}

void Scheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      job = queue_.front();
      // Drop jobs whose chunks are all claimed; they finish on their own.
      if (job->cursor.load(std::memory_order_relaxed) >= job->num_chunks) {
        queue_.pop_front();
        continue;
      }
    }
    work_on(*job);
  }
}

void Scheduler::run_job(std::size_t num_chunks,
                        const std::function<void(std::size_t)>& body) {
  auto job = std::make_shared<Job>();
  job->body = body;
  job->num_chunks = num_chunks;
  {
    std::lock_guard lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_all();
  work_on(*job);
  // Wait for stragglers still running claimed chunks.
  while (job->finished.load(std::memory_order_acquire) < num_chunks) {
    std::this_thread::yield();
  }
  // Remove the (exhausted) job from the queue if still present.
  std::lock_guard lock(mu_);
  std::erase(queue_, job);
}

}  // namespace cpkcore
