// Shared-memory data-parallel scheduler: a fixed pool of workers executing
// chunked loop jobs (dynamic chunk stealing via an atomic cursor). This is
// the cpkcore stand-in for the ParlayLib/GBBS work-stealing scheduler: the
// algorithms in this repo only need flat fork-join data parallelism
// (parallel_for / reduce / scan / sort over batches), so a chunk-queue design
// is simpler and performs comparably for those shapes.
//
// Concurrency contract:
//  * Any thread (pool worker or external) may submit jobs; submissions from
//    different threads run concurrently.
//  * parallel_for calls nested inside a running chunk execute sequentially
//    (no deadlock, bounded stack).
//  * The submitting thread participates in its own job and returns only when
//    every chunk has finished.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpkcore {

class Scheduler {
 public:
  /// Global scheduler. Created on first use with hardware_concurrency
  /// workers (or CPKC_NUM_WORKERS env override).
  static Scheduler& instance();

  explicit Scheduler(std::size_t num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t num_workers() const { return threads_.size(); }

  /// Stops and restarts the pool with a new worker count. Must not be called
  /// concurrently with job submission.
  void set_num_workers(std::size_t num_workers);

  /// Runs f(i) for i in [begin, end) in parallel. `grain` is the minimum
  /// number of iterations per chunk (0 = heuristic).
  template <class F>
  void parallel_for(std::size_t begin, std::size_t end, F&& f,
                    std::size_t grain = 0) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    // Serial fast paths: tiny loops, no workers, or nested inside a chunk.
    // Every path that executes user code establishes a chunk scope, so
    // in_chunk() is true inside any running loop body and nested
    // parallel_for calls always collapse to serial.
    if (n == 1 || threads_.empty() || in_chunk()) {
      ChunkScope scope;
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    std::size_t g = grain;
    if (g == 0) {
      // Aim for ~8 chunks per worker, at least 1 iteration each.
      const std::size_t target = (threads_.size() + 1) * 8;
      g = (n + target - 1) / target;
      if (g == 0) g = 1;
    }
    const std::size_t num_chunks = (n + g - 1) / g;
    if (num_chunks <= 1) {
      ChunkScope scope;
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    auto body = [begin, end, g, &f](std::size_t chunk) {
      const std::size_t lo = begin + chunk * g;
      const std::size_t hi = std::min(end, lo + g);
      for (std::size_t i = lo; i < hi; ++i) f(i);
    };
    run_job(num_chunks, body);
  }

  /// True when the calling thread is currently executing a chunk (nested
  /// parallelism collapses to serial).
  static bool in_chunk();

 private:
  /// RAII marker for "this thread is executing user loop code". Entered by
  /// pool workers around each stolen chunk and by the serial fast paths in
  /// parallel_for, so in_chunk() holds on every path that runs f(i).
  class ChunkScope {
   public:
    ChunkScope();
    ~ChunkScope();
    ChunkScope(const ChunkScope&) = delete;
    ChunkScope& operator=(const ChunkScope&) = delete;
  };

  struct Job {
    std::function<void(std::size_t)> body;  // receives chunk index
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> finished{0};
  };

  void run_job(std::size_t num_chunks,
               const std::function<void(std::size_t)>& body);

  /// Executes available chunks of `job`; returns number executed.
  static std::size_t work_on(Job& job);

  void worker_loop();
  void start(std::size_t num_workers);
  void stop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool shutdown_ = false;
};

/// Convenience wrappers over the global scheduler.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& f,
                  std::size_t grain = 0) {
  Scheduler::instance().parallel_for(begin, end, std::forward<F>(f), grain);
}

inline std::size_t num_workers() { return Scheduler::instance().num_workers(); }

}  // namespace cpkcore
