// Work-stealing fork-join scheduler: a fixed pool of workers, each owning a
// Chase-Lev deque of fork-join tasks. This is the cpkcore equivalent of the
// ParlayLib/GBBS scheduler: `fork2` spawns a pair of tasks (the right child
// is pushed onto the forking thread's deque where idle workers steal it),
// and `parallel_for` is built on top as eager binary splitting down to a
// grain-sized serial leaf. Nested parallelism is genuine: a worker executing
// a stolen task can fork subtasks that other workers steal, so an inner
// `parallel_for` spreads across the pool instead of collapsing to serial as
// the old chunk-queue design did.
//
// Concurrency contract:
//  * Any thread (pool worker or external) may call parallel_for / fork2;
//    concurrent submissions from different threads proceed in parallel.
//    External threads temporarily claim one of a small set of extra deque
//    slots; if all are taken, the call degrades to serial execution.
//  * The calling thread participates in its own work and returns only when
//    every forked task has finished.
//  * Joins never block the thread outright: a thread waiting on a stolen
//    task steals other work (bounded depth, so the stack stays bounded),
//    then spins/yields.
//  * With no pool threads (num_workers <= 1), everything runs serially on
//    the calling thread — the serial fallback the tests pin down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace cpkcore {

class Scheduler {
 public:
  /// Global scheduler. Created on first use with hardware_concurrency
  /// workers (or CPKC_NUM_WORKERS env override).
  static Scheduler& instance();

  explicit Scheduler(std::size_t num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Total parallelism: pool threads + the participating submitter.
  [[nodiscard]] std::size_t num_workers() const { return num_workers_; }

  /// Stops and restarts the pool with a new worker count. Must not be called
  /// concurrently with job submission.
  void set_num_workers(std::size_t num_workers);

  /// Runs f(i) for i in [begin, end) in parallel via binary splitting.
  /// `grain` is the target number of iterations per serial leaf (0 = aim
  /// for ~8 leaves per worker). Leaves become stealable tasks, so loops
  /// with irregular per-iteration work balance across the pool.
  template <class F>
  void parallel_for(std::size_t begin, std::size_t end, F&& f,
                    std::size_t grain = 0) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    std::size_t g = grain;
    if (g == 0) {
      const std::size_t target = num_workers_ * 8;
      g = (n + target - 1) / target;
      if (g == 0) g = 1;
    }
    if (n <= g || !has_pool()) {
      TaskScope scope;
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    run_root([&] { for_split(begin, end, f, g); });
  }

  /// Runs fa() and fb(), potentially in parallel (fb is made stealable
  /// while the calling thread runs fa), and returns when both are done.
  /// This is the one fork-join primitive; everything else is sugar.
  template <class Fa, class Fb>
  void fork2(Fa&& fa, Fb&& fb) {
    if (!has_pool()) {
      TaskScope scope;
      fa();
      fb();
      return;
    }
    run_root([&] { fork2_impl(fa, fb); });
  }

  /// True when the calling thread is executing inside scheduler-run code
  /// (a loop body, a fork2 branch, or a stolen task).
  static bool in_task();

  /// Legacy name from the chunk-queue scheduler; same meaning as in_task().
  static bool in_chunk() { return in_task(); }

  /// Work-stealing counters, exported to the metrics registry under
  /// "sched." (steal/spawn rates are the first thing to look at when a
  /// parallel phase stops scaling).
  struct SchedulerCounters {
    std::uint64_t spawns = 0;       ///< tasks pushed onto a deque
    std::uint64_t steals = 0;       ///< tasks stolen by another thread
    std::uint64_t helped_joins = 0;  ///< tasks run while waiting on a join
    std::uint64_t external_roots = 0;  ///< root calls from non-pool threads
  };
  [[nodiscard]] SchedulerCounters counters() const {
    return SchedulerCounters{spawns_.value(), steals_.value(),
                             helped_joins_.value(), external_roots_.value()};
  }

 private:
  /// A fork-join task. Lives on the forking thread's stack; `done` is set
  /// (release) by whoever executes it, and the forker joins on that flag.
  struct Task {
    void (*invoke)(Task*) = nullptr;
    std::atomic<bool> done{false};
  };

  template <class F>
  struct ClosureTask final : Task {
    F* fn;
    explicit ClosureTask(F& f) : fn(&f) {
      invoke = [](Task* t) { (*static_cast<ClosureTask*>(t)->fn)(); };
    }
  };

  /// RAII marker for "this thread is executing scheduler-run user code".
  class TaskScope {
   public:
    TaskScope();
    ~TaskScope();
    TaskScope(const TaskScope&) = delete;
    TaskScope& operator=(const TaskScope&) = delete;
  };

  struct Slot;  // Chase-Lev deque + ownership flag (defined in the .cpp)

  /// Which scheduler/deque the current thread works for, if any.
  struct Binding {
    Scheduler* sched = nullptr;
    Slot* slot = nullptr;  // null: bound but slotless -> forks run serial
    int wait_steal_depth = 0;
  };

  /// Binds an external (non-worker) thread to this scheduler for the
  /// duration of a root call, claiming an external deque slot when one is
  /// free. Also enters a TaskScope so in_task() holds under the root.
  class ExternalScope {
   public:
    explicit ExternalScope(Scheduler& sched);
    ~ExternalScope();
    ExternalScope(const ExternalScope&) = delete;
    ExternalScope& operator=(const ExternalScope&) = delete;

   private:
    Scheduler& sched_;
    Binding prev_;
    TaskScope task_scope_;
  };

  template <class F>
  void run_root(F&& f) {
    if (tl_binding_.sched == this) {
      // Already inside this scheduler (nested call from a task): fork on
      // the current slot directly.
      f();
      return;
    }
    ExternalScope scope(*this);
    f();
  }

  template <class Fa, class Fb>
  void fork2_impl(Fa&& fa, Fb&& fb) {
    ClosureTask<std::remove_reference_t<Fb>> task(fb);
    if (!push_task(&task)) {  // slotless binding or deque full
      fa();
      fb();
      return;
    }
    fa();
    if (pop_task(&task)) {
      fb();  // nobody stole it; run inline
    } else {
      wait_task(task);  // stolen: steal other work until it completes
    }
  }

  template <class F>
  void for_split(std::size_t lo, std::size_t hi, F& f, std::size_t g) {
    if (hi - lo <= g) {
      for (std::size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    fork2_impl([this, lo, mid, &f, g] { for_split(lo, mid, f, g); },
               [this, mid, hi, &f, g] { for_split(mid, hi, f, g); });
  }

  [[nodiscard]] bool has_pool() const { return !pool_.empty(); }

  /// Pushes onto the calling thread's deque; false if the thread has no
  /// slot or the deque is full (callers then run the task inline).
  bool push_task(Task* task);

  /// Pops the calling thread's deque bottom. True iff `task` came back
  /// (i.e. it was not stolen).
  bool pop_task(Task* task);

  /// Waits for a stolen task, stealing and running other tasks meanwhile
  /// (bounded recursion depth), then spinning/yielding.
  void wait_task(Task& task);

  /// Executes a stolen task inside a TaskScope and publishes `done`.
  void run_task(Task* task);

  /// One steal attempt across all slots, starting at a rng-chosen victim.
  Task* try_steal(const Slot* self, std::uint64_t& rng_state);

  Slot* claim_external_slot();
  void release_external_slot(Slot* slot);

  void worker_loop(std::size_t slot_index);
  void start(std::size_t num_workers);
  void stop();

  static thread_local Binding tl_binding_;
  static thread_local int tl_task_depth_;

  std::size_t num_workers_ = 1;
  std::size_t num_slots_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> shutdown_{false};

  obs::Counter spawns_;
  obs::Counter steals_;
  obs::Counter helped_joins_;
  obs::Counter external_roots_;
  // Declared last: deregisters first on destruction, so a collect callback
  // can never observe a partially destroyed scheduler.
  obs::MetricsGroup metrics_;
};

/// Convenience wrappers over the global scheduler.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& f,
                  std::size_t grain = 0) {
  Scheduler::instance().parallel_for(begin, end, std::forward<F>(f), grain);
}

template <class Fa, class Fb>
void fork2(Fa&& fa, Fb&& fb) {
  Scheduler::instance().fork2(std::forward<Fa>(fa), std::forward<Fb>(fb));
}

inline std::size_t num_workers() { return Scheduler::instance().num_workers(); }

}  // namespace cpkcore
