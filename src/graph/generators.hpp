// Synthetic graph generators. These stand in for the SNAP/DIMACS datasets of
// the paper's evaluation (Table 1): Barabási–Albert and RMAT reproduce the
// heavy-tailed degree / coreness structure of social graphs (dblp, lj,
// orkut, twitter), Erdős–Rényi gives a flat-core control, and 2-D grids
// reproduce the road networks (usa, ctr), whose maximum coreness is tiny
// (the paper reports k_max = 3 for both; a grid with diagonals has k_max 3).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace cpkcore::gen {

/// G(n, m): m distinct uniform random edges.
std::vector<Edge> erdos_renyi(vertex_t n, std::size_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
std::vector<Edge> barabasi_albert(vertex_t n, std::size_t edges_per_vertex,
                                  std::uint64_t seed);

/// RMAT power-law generator (Chakrabarti et al.), n = 2^log_n vertices,
/// default partition probabilities (0.57, 0.19, 0.19, 0.05).
std::vector<Edge> rmat(std::uint32_t log_n, std::size_t m, std::uint64_t seed,
                       double a = 0.57, double b = 0.19, double c = 0.19);

/// rows x cols 4-neighbor grid; with_diagonals adds one diagonal per cell
/// (triangulated grid, raising max coreness from 2 to 3 — matching the road
/// datasets, whose largest k is 3 in the paper's Table 1).
std::vector<Edge> grid_2d(vertex_t rows, vertex_t cols,
                          bool with_diagonals = true);

/// Watts–Strogatz small world: ring of n vertices, each joined to k nearest
/// neighbors, each edge rewired with probability beta.
std::vector<Edge> watts_strogatz(vertex_t n, std::uint32_t k, double beta,
                                 std::uint64_t seed);

/// Complete graph on n vertices (coreness n-1 everywhere).
std::vector<Edge> complete(vertex_t n);

/// Cycle on n vertices (coreness 2 everywhere).
std::vector<Edge> cycle(vertex_t n);

/// Star: vertex 0 joined to 1..n-1 (coreness 1 everywhere).
std::vector<Edge> star(vertex_t n);

/// Uniform random tree on n vertices (coreness 1 everywhere).
std::vector<Edge> random_tree(vertex_t n, std::uint64_t seed);

/// Social-network stand-in: Barabási–Albert backbone plus `num_communities`
/// planted dense communities of `community_size` random members (each pair
/// joined with probability `density`). Real social graphs pair a
/// heavy-tailed degree distribution with small dense cores (k_max far above
/// the degeneracy a pure BA graph can produce); the planted communities
/// supply those cores.
std::vector<Edge> social(vertex_t n, std::size_t edges_per_vertex,
                         std::size_t num_communities,
                         vertex_t community_size, double density,
                         std::uint64_t seed);

/// Disjoint cliques of size `clique_size` covering n vertices: a graph with
/// exactly known coreness (clique_size - 1) for every vertex.
std::vector<Edge> disjoint_cliques(vertex_t n, vertex_t clique_size);

}  // namespace cpkcore::gen
