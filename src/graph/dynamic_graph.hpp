// Dynamic undirected graph with batch-parallel edge insertion/deletion.
// Adjacency lists are sorted vectors; batches are applied by grouping the
// directed half-edges by endpoint and merging per vertex in parallel, so
// each adjacency list is written by exactly one task.
//
// This structure is the plain-graph substrate: the exact k-core oracle and
// tests read it. The PLDS/CPLDS maintain their own level-bucketed adjacency.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(vertex_t num_vertices) : adj_(num_vertices) {}

  [[nodiscard]] vertex_t num_vertices() const {
    return static_cast<vertex_t>(adj_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] std::size_t degree(vertex_t v) const {
    return adj_[v].size();
  }

  /// Sorted neighbor list of v; invalidated by updates.
  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return adj_[v];
  }

  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const;

  /// Inserts one edge; returns false for self loops / duplicates.
  bool insert_edge(Edge e);

  /// Deletes one edge; returns false if absent.
  bool delete_edge(Edge e);

  /// Batch-inserts edges. Self loops, in-batch duplicates, and edges already
  /// present are dropped; returns the edges actually inserted (canonical,
  /// sorted by key).
  std::vector<Edge> insert_batch(std::vector<Edge> edges);

  /// Batch-deletes edges. In-batch duplicates and absent edges are dropped;
  /// returns the edges actually deleted (canonical, sorted by key).
  std::vector<Edge> delete_batch(std::vector<Edge> edges);

  /// All edges in canonical form (u < v), sorted. O(m).
  [[nodiscard]] std::vector<Edge> edges() const;

 private:
  /// Canonicalizes, drops self loops, sorts, and dedups a batch.
  static std::vector<Edge> normalize(std::vector<Edge> edges);

  std::vector<std::vector<vertex_t>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace cpkcore
