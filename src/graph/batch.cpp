#include "graph/batch.hpp"

#include <algorithm>

#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"
#include "util/rng.hpp"

namespace cpkcore {

namespace {
void shuffle_edges(std::vector<Edge>& edges, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.next_below(i)]);
  }
}

/// Slices `edges` into batches of `batch_size` edges of the given kind.
/// One slice copy per batch, grain 1, so the copies run as stealable tasks.
std::vector<UpdateBatch> slice_stream(const std::vector<Edge>& edges,
                                      std::size_t batch_size,
                                      UpdateKind kind) {
  const std::size_t nb = (edges.size() + batch_size - 1) / batch_size;
  std::vector<UpdateBatch> out(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * batch_size;
        const std::size_t hi = std::min(edges.size(), lo + batch_size);
        out[b].kind = kind;
        out[b].edges.assign(
            edges.begin() + static_cast<std::ptrdiff_t>(lo),
            edges.begin() + static_cast<std::ptrdiff_t>(hi));
      },
      /*grain=*/1);
  return out;
}
}  // namespace

std::vector<UpdateBatch> split_batches(const std::vector<Update>& updates) {
  std::vector<UpdateBatch> out;
  for (const Update& u : updates) {
    if (out.empty() || out.back().kind != u.kind) {
      out.push_back(UpdateBatch{u.kind, {}});
    }
    out.back().edges.push_back(u.edge);
  }
  return out;
}

void normalize_edges(std::vector<Edge>& edges) {
  for (Edge& e : edges) e = e.canonical();
  std::erase_if(edges, [](const Edge& e) { return e.is_self_loop(); });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

std::vector<UpdateBatch> insertion_stream(std::vector<Edge> edges,
                                          std::size_t batch_size,
                                          std::uint64_t seed) {
  shuffle_edges(edges, seed);
  return slice_stream(edges, batch_size, UpdateKind::kInsert);
}

std::vector<UpdateBatch> deletion_stream(std::vector<Edge> edges,
                                         std::size_t batch_size,
                                         std::uint64_t seed) {
  shuffle_edges(edges, seed);
  std::reverse(edges.begin(), edges.end());
  return slice_stream(edges, batch_size, UpdateKind::kDelete);
}

std::vector<UpdateBatch> sliding_window_stream(std::vector<Edge> edges,
                                               std::size_t window,
                                               std::size_t batch_size,
                                               std::uint64_t seed) {
  shuffle_edges(edges, seed);
  std::vector<UpdateBatch> out;
  const std::size_t initial = std::min(window, edges.size());
  {
    UpdateBatch b;
    b.kind = UpdateKind::kInsert;
    b.edges.assign(edges.begin(),
                   edges.begin() + static_cast<std::ptrdiff_t>(initial));
    out.push_back(std::move(b));
  }
  std::size_t head = initial;   // next edge to insert
  std::size_t tail = 0;         // next edge to delete
  while (head < edges.size()) {
    const std::size_t ins = std::min(batch_size, edges.size() - head);
    UpdateBatch del;
    del.kind = UpdateKind::kDelete;
    del.edges.assign(edges.begin() + static_cast<std::ptrdiff_t>(tail),
                     edges.begin() + static_cast<std::ptrdiff_t>(tail + ins));
    out.push_back(std::move(del));
    UpdateBatch insb;
    insb.kind = UpdateKind::kInsert;
    insb.edges.assign(edges.begin() + static_cast<std::ptrdiff_t>(head),
                      edges.begin() + static_cast<std::ptrdiff_t>(head + ins));
    out.push_back(std::move(insb));
    head += ins;
    tail += ins;
  }
  return out;
}

}  // namespace cpkcore
