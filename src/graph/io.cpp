#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/flat_map.hpp"

namespace cpkcore {

EdgeListFile read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  EdgeListFile out;
  IntMap<std::uint64_t, vertex_t> remap;
  auto intern = [&](std::uint64_t raw) -> vertex_t {
    if (vertex_t* v = remap.find(raw)) return *v;
    const vertex_t id = out.num_vertices++;
    remap.insert_or_assign(raw, id);
    return id;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!(ls >> a >> b)) continue;
    out.edges.push_back(Edge{intern(a), intern(b)}.canonical());
  }
  return out;
}

void write_edge_list(const std::string& path,
                     const std::vector<Edge>& edges) {
  std::ofstream outf(path);
  if (!outf) throw std::runtime_error("cannot open for write: " + path);
  for (const Edge& e : edges) {
    outf << e.u << ' ' << e.v << '\n';
  }
}

}  // namespace cpkcore
