// Edge-list file IO: SNAP-style whitespace-separated text ("# ..." comments
// ignored) so externally downloaded datasets drop in directly.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

/// Parses an edge list; vertex ids are remapped densely to [0, n) in order
/// of first appearance. Throws std::runtime_error on unreadable files.
struct EdgeListFile {
  vertex_t num_vertices = 0;
  std::vector<Edge> edges;
};

EdgeListFile read_edge_list(const std::string& path);

/// Writes "u v" lines (canonical edges).
void write_edge_list(const std::string& path, const std::vector<Edge>& edges);

}  // namespace cpkcore
