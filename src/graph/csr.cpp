#include "graph/csr.hpp"

#include <algorithm>

#include "graph/dynamic_graph.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace cpkcore {

CsrGraph CsrGraph::from_edges(vertex_t num_vertices,
                              std::vector<Edge> edges) {
  for (auto& e : edges) e = e.canonical();
  std::erase_if(edges, [](const Edge& e) { return e.is_self_loop(); });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  CsrGraph g;
  std::vector<std::size_t> deg(num_vertices, 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(num_vertices + 1, 0);
  for (vertex_t v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  }
  g.neighbors_.resize(g.offsets_[num_vertices]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.neighbors_[cursor[e.u]++] = e.v;
    g.neighbors_[cursor[e.v]++] = e.u;
  }
  parallel_for(0, num_vertices, [&](std::size_t v) {
    std::sort(g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.neighbors_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  });
  return g;
}

CsrGraph CsrGraph::from_dynamic(const DynamicGraph& dyn) {
  const vertex_t n = dyn.num_vertices();
  CsrGraph g;
  g.offsets_.assign(n + 1, 0);
  for (vertex_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + dyn.degree(v);
  }
  g.neighbors_.resize(g.offsets_[n]);
  parallel_for(0, n, [&](std::size_t v) {
    const auto nbrs = dyn.neighbors(static_cast<vertex_t>(v));
    std::copy(nbrs.begin(), nbrs.end(), g.neighbors_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                g.offsets_[v]));
  });
  return g;
}

}  // namespace cpkcore
