// Immutable compressed-sparse-row graph snapshot: the input format for the
// static exact k-core peeling oracle.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

class DynamicGraph;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an undirected edge list (canonicalized and deduped
  /// internally).
  static CsrGraph from_edges(vertex_t num_vertices, std::vector<Edge> edges);

  /// Snapshot of a dynamic graph.
  static CsrGraph from_dynamic(const DynamicGraph& g);

  [[nodiscard]] vertex_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vertex_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const { return neighbors_.size() / 2; }

  [[nodiscard]] std::size_t degree(vertex_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return {neighbors_.data() + offsets_[v], degree(v)};
  }

 private:
  std::vector<std::size_t> offsets_;   // size n + 1
  std::vector<vertex_t> neighbors_;    // size 2m, sorted within each vertex
};

}  // namespace cpkcore
