#include "graph/dynamic_graph.hpp"

#include <algorithm>

#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace cpkcore {

namespace {
bool sorted_contains(const std::vector<vertex_t>& list, vertex_t v) {
  return std::binary_search(list.begin(), list.end(), v);
}

void sorted_insert(std::vector<vertex_t>& list, vertex_t v) {
  list.insert(std::lower_bound(list.begin(), list.end(), v), v);
}

void sorted_erase(std::vector<vertex_t>& list, vertex_t v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) list.erase(it);
}

/// Directed half-edge used for per-endpoint grouping.
struct Half {
  vertex_t at;     // vertex whose adjacency list changes
  vertex_t other;  // the neighbor being added/removed
};
}  // namespace

bool DynamicGraph::has_edge(vertex_t u, vertex_t v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  // Probe the smaller list.
  if (adj_[u].size() > adj_[v].size()) std::swap(u, v);
  return sorted_contains(adj_[u], v);
}

bool DynamicGraph::insert_edge(Edge e) {
  e = e.canonical();
  if (e.is_self_loop() || has_edge(e.u, e.v)) return false;
  sorted_insert(adj_[e.u], e.v);
  sorted_insert(adj_[e.v], e.u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::delete_edge(Edge e) {
  e = e.canonical();
  if (e.is_self_loop() || !has_edge(e.u, e.v)) return false;
  sorted_erase(adj_[e.u], e.v);
  sorted_erase(adj_[e.v], e.u);
  --num_edges_;
  return true;
}

std::vector<Edge> DynamicGraph::normalize(std::vector<Edge> edges) {
  for (auto& e : edges) e = e.canonical();
  std::erase_if(edges, [](const Edge& e) { return e.is_self_loop(); });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<Edge> DynamicGraph::insert_batch(std::vector<Edge> edges) {
  edges = normalize(std::move(edges));
  auto applied = parallel_filter(
      edges, [&](const Edge& e) { return !has_edge(e.u, e.v); });
  if (applied.empty()) return applied;

  std::vector<Half> halves(applied.size() * 2);
  parallel_for(0, applied.size(), [&](std::size_t i) {
    halves[2 * i] = Half{applied[i].u, applied[i].v};
    halves[2 * i + 1] = Half{applied[i].v, applied[i].u};
  });
  auto groups = group_by_key(halves, [](const Half& h) { return h.at; });
  // Grain 1: group sizes follow the degree distribution; per-group tasks
  // let the pool steal around hub vertices.
  parallel_for(
      0, groups.size(),
      [&](std::size_t g) {
        const vertex_t at = halves[groups[g].begin].at;
        auto& list = adj_[at];
        for (std::size_t i = groups[g].begin; i < groups[g].end; ++i) {
          sorted_insert(list, halves[i].other);
        }
      },
      /*grain=*/1);
  num_edges_ += applied.size();
  return applied;
}

std::vector<Edge> DynamicGraph::delete_batch(std::vector<Edge> edges) {
  edges = normalize(std::move(edges));
  auto applied = parallel_filter(
      edges, [&](const Edge& e) { return has_edge(e.u, e.v); });
  if (applied.empty()) return applied;

  std::vector<Half> halves(applied.size() * 2);
  parallel_for(0, applied.size(), [&](std::size_t i) {
    halves[2 * i] = Half{applied[i].u, applied[i].v};
    halves[2 * i + 1] = Half{applied[i].v, applied[i].u};
  });
  auto groups = group_by_key(halves, [](const Half& h) { return h.at; });
  parallel_for(
      0, groups.size(),
      [&](std::size_t g) {
        const vertex_t at = halves[groups[g].begin].at;
        auto& list = adj_[at];
        for (std::size_t i = groups[g].begin; i < groups[g].end; ++i) {
          sorted_erase(list, halves[i].other);
        }
      },
      /*grain=*/1);
  num_edges_ -= applied.size();
  return applied;
}

std::vector<Edge> DynamicGraph::edges() const {
  std::vector<std::size_t> counts(num_vertices());
  parallel_for(0, num_vertices(), [&](std::size_t v) {
    const auto& list = adj_[v];
    counts[v] = static_cast<std::size_t>(
        std::lower_bound(list.begin(), list.end(), static_cast<vertex_t>(v)) -
        list.begin());
    // Neighbors smaller than v produce canonical edges (w, v) counted at w;
    // we emit edges (v, w) with w > v here.
    counts[v] = list.size() - counts[v];
  });
  std::vector<std::size_t> offsets = counts;
  const std::size_t total = parallel_scan_exclusive(offsets);
  std::vector<Edge> out(total);
  parallel_for(0, num_vertices(), [&](std::size_t v) {
    std::size_t pos = offsets[v];
    for (vertex_t w : adj_[v]) {
      if (w > v) out[pos++] = Edge{static_cast<vertex_t>(v), w};
    }
  });
  return out;
}

}  // namespace cpkcore
