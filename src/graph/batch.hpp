// Update-batch preprocessing, mirroring the paper's model (§2): batches
// contain a single operation kind; mixed streams are split into insertion
// and deletion sub-batches. Also provides stream builders that slice an edge
// list into a reproducible sequence of batches for the experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace cpkcore {

/// One homogeneous batch.
struct UpdateBatch {
  UpdateKind kind = UpdateKind::kInsert;
  std::vector<Edge> edges;
};

/// Splits a mixed update stream into homogeneous sub-batches, preserving
/// relative order of kinds (run-length segmentation: consecutive updates of
/// the same kind form one sub-batch).
std::vector<UpdateBatch> split_batches(const std::vector<Update>& updates);

/// In-place normalization of one homogeneous batch's edge list, shared by
/// the CPLDS update path and the serving layer's coalescer/WAL: endpoints
/// canonicalized, self-loops dropped, sorted, deduplicated.
void normalize_edges(std::vector<Edge>& edges);

/// Shuffles `edges` deterministically and slices them into insertion batches
/// of `batch_size` (the last batch may be smaller).
std::vector<UpdateBatch> insertion_stream(std::vector<Edge> edges,
                                          std::size_t batch_size,
                                          std::uint64_t seed);

/// Deletion stream over the same edges (reverse order of the shuffled
/// insertion stream, so prefixes remain consistent).
std::vector<UpdateBatch> deletion_stream(std::vector<Edge> edges,
                                         std::size_t batch_size,
                                         std::uint64_t seed);

/// Sliding-window stream: first `window` edges are inserted, then each batch
/// inserts `batch_size` new edges and deletes the `batch_size` oldest,
/// alternating delete/insert sub-batches.
std::vector<UpdateBatch> sliding_window_stream(std::vector<Edge> edges,
                                               std::size_t window,
                                               std::size_t batch_size,
                                               std::uint64_t seed);

}  // namespace cpkcore
