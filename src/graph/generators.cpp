#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/sort.hpp"
#include "util/flat_set.hpp"
#include "util/rng.hpp"

namespace cpkcore::gen {

namespace {
/// Canonicalize + dedup + drop self loops.
std::vector<Edge> finalize(std::vector<Edge> edges) {
  for (auto& e : edges) e = e.canonical();
  std::erase_if(edges, [](const Edge& e) { return e.is_self_loop(); });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}
}  // namespace

std::vector<Edge> erdos_renyi(vertex_t n, std::size_t m, std::uint64_t seed) {
  assert(n >= 2);
  Xoshiro256 rng(seed);
  FlatSet<std::uint64_t, ~std::uint64_t{0}> seen;
  std::vector<Edge> edges;
  edges.reserve(m);
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  const std::size_t target = std::min(m, max_edges);
  while (edges.size() < target) {
    const auto u = static_cast<vertex_t>(rng.next_below(n));
    const auto v = static_cast<vertex_t>(rng.next_below(n));
    if (u == v) continue;
    const Edge e = Edge{u, v}.canonical();
    if (seen.insert(e.key())) edges.push_back(e);
  }
  return finalize(std::move(edges));
}

std::vector<Edge> barabasi_albert(vertex_t n, std::size_t edges_per_vertex,
                                  std::uint64_t seed) {
  assert(n > edges_per_vertex && edges_per_vertex >= 1);
  Xoshiro256 rng(seed);
  // `targets` holds one entry per half-edge endpoint; sampling uniformly
  // from it is sampling proportional to degree.
  std::vector<vertex_t> targets;
  targets.reserve(2 * n * edges_per_vertex);
  std::vector<Edge> edges;
  edges.reserve(n * edges_per_vertex);

  // Seed clique over the first edges_per_vertex + 1 vertices.
  const auto seed_sz = static_cast<vertex_t>(edges_per_vertex + 1);
  for (vertex_t u = 0; u < seed_sz; ++u) {
    for (vertex_t v = u + 1; v < seed_sz; ++v) {
      edges.push_back({u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (vertex_t v = seed_sz; v < n; ++v) {
    IntSet<vertex_t> chosen;
    while (chosen.size() < edges_per_vertex) {
      const vertex_t t = targets[rng.next_below(targets.size())];
      chosen.insert(t);
    }
    chosen.for_each([&](vertex_t t) {
      edges.push_back({v, t});
      targets.push_back(v);
      targets.push_back(t);
    });
  }
  return finalize(std::move(edges));
}

std::vector<Edge> rmat(std::uint32_t log_n, std::size_t m, std::uint64_t seed,
                       double a, double b, double c) {
  Xoshiro256 rng(seed);
  const vertex_t n = vertex_t{1} << log_n;
  std::vector<Edge> edges;
  edges.reserve(m);
  FlatSet<std::uint64_t, ~std::uint64_t{0}> seen;
  std::size_t attempts = 0;
  const std::size_t max_attempts = m * 20 + 1000;
  while (edges.size() < m && attempts++ < max_attempts) {
    vertex_t u = 0;
    vertex_t v = 0;
    for (std::uint32_t bit = 0; bit < log_n; ++bit) {
      const double r = rng.next_double();
      // Quadrant probabilities with a little noise to avoid strict
      // self-similarity artifacts.
      if (r < a) {
        // top-left: nothing set
      } else if (r < a + b) {
        v |= vertex_t{1} << bit;
      } else if (r < a + b + c) {
        u |= vertex_t{1} << bit;
      } else {
        u |= vertex_t{1} << bit;
        v |= vertex_t{1} << bit;
      }
    }
    if (u == v || u >= n || v >= n) continue;
    const Edge e = Edge{u, v}.canonical();
    if (seen.insert(e.key())) edges.push_back(e);
  }
  return finalize(std::move(edges));
}

std::vector<Edge> grid_2d(vertex_t rows, vertex_t cols, bool with_diagonals) {
  std::vector<Edge> edges;
  auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
      // One diagonal per cell: triangulated grid with degeneracy exactly 3
      // (both diagonals would give the king graph, degeneracy 4).
      if (with_diagonals && r + 1 < rows && c + 1 < cols) {
        edges.push_back({id(r, c), id(r + 1, c + 1)});
      }
    }
  }
  return finalize(std::move(edges));
}

std::vector<Edge> watts_strogatz(vertex_t n, std::uint32_t k, double beta,
                                 std::uint64_t seed) {
  assert(k % 2 == 0 && n > k);
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);
  for (vertex_t u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      vertex_t v = (u + j) % n;
      if (rng.next_double() < beta) {
        v = static_cast<vertex_t>(rng.next_below(n));
      }
      if (u != v) edges.push_back({u, v});
    }
  }
  return finalize(std::move(edges));
}

std::vector<Edge> complete(vertex_t n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (vertex_t u = 0; u < n; ++u) {
    for (vertex_t v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return edges;
}

std::vector<Edge> cycle(vertex_t n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (vertex_t u = 0; u < n; ++u) {
    edges.push_back(Edge{u, (u + 1) % n}.canonical());
  }
  return finalize(std::move(edges));
}

std::vector<Edge> star(vertex_t n) {
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (vertex_t v = 1; v < n; ++v) edges.push_back({0, v});
  return edges;
}

std::vector<Edge> random_tree(vertex_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (vertex_t v = 1; v < n; ++v) {
    const auto parent = static_cast<vertex_t>(rng.next_below(v));
    edges.push_back({parent, v});
  }
  return edges;
}

std::vector<Edge> social(vertex_t n, std::size_t edges_per_vertex,
                         std::size_t num_communities,
                         vertex_t community_size, double density,
                         std::uint64_t seed) {
  auto edges = barabasi_albert(n, edges_per_vertex, seed);
  Xoshiro256 rng(seed ^ 0xC0AA11E5ULL);
  std::vector<vertex_t> members(community_size);
  for (std::size_t c = 0; c < num_communities; ++c) {
    for (auto& m : members) {
      m = static_cast<vertex_t>(rng.next_below(n));
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j] && rng.next_double() < density) {
          edges.push_back({members[i], members[j]});
        }
      }
    }
  }
  return finalize(std::move(edges));
}

std::vector<Edge> disjoint_cliques(vertex_t n, vertex_t clique_size) {
  assert(clique_size >= 2);
  std::vector<Edge> edges;
  for (vertex_t base = 0; base + clique_size <= n; base += clique_size) {
    for (vertex_t i = 0; i < clique_size; ++i) {
      for (vertex_t j = i + 1; j < clique_size; ++j) {
        edges.push_back({base + i, base + j});
      }
    }
  }
  return edges;
}

}  // namespace cpkcore::gen
