#include "service/kcore_service.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cpkcore::service {

namespace {

/// Event-journal component label: "<health_prefix><what>", so per-partition
/// services get their own rate-limit budgets and self-identifying events.
std::string event_component(const ServiceConfig& config, const char* what) {
  std::string comp = config.health_prefix;
  comp += what;
  return comp;
}

}  // namespace

KCoreService::KCoreService(ServiceConfig config)
    : config_(std::move(config)),
      sizer_(config_.min_ops_per_cycle, config_.max_ops_per_cycle,
             config_.target_apply_ns,
             AdaptiveBatchSizer::Feedback{config_.max_replica_lag,
                                          config_.target_read_p99_ns}) {
  namespace fs = std::filesystem;
  // Per-service reclaimer behind the wait-free read path; wired into the
  // CPLDS options so both the warm (snapshot) and cold paths use it.
  reclaimer_ = concurrent::make_reclaimer(config_.reclaimer);
  config_.cplds.reclaimer = reclaimer_.get();
  const bool warm = !config_.snapshot_path.empty() &&
                    fs::exists(config_.snapshot_path);
  if (warm) {
    SnapshotLoadOptions opts;
    opts.delta = config_.delta;
    opts.lambda = config_.lambda;
    opts.levels_per_group_cap = config_.levels_per_group_cap;
    opts.cplds = config_.cplds;
    ds_ = load_snapshot(config_.snapshot_path, opts);
  } else {
    if (config_.num_vertices < 2) {
      throw std::invalid_argument(
          "ServiceConfig::num_vertices must be >= 2 (no snapshot to restart "
          "from)");
    }
    ds_ = std::make_unique<CPLDS>(
        config_.num_vertices,
        LDSParams::create(config_.num_vertices, config_.delta,
                          config_.lambda, config_.levels_per_group_cap),
        config_.cplds);
  }
  if (!config_.wal_path.empty()) {
    // Warm restart part 2: re-apply the committed WAL suffix. Replay runs on
    // this thread before the apply thread exists, satisfying the CPLDS
    // single-driver contract.
    WalOptions wal_options;
    wal_options.durability = config_.wal_durability;
    wal_options.format = config_.wal_format;
    wal_options.engine = config_.wal_engine;
    wal_options.health = config_.health;
    wal_options.health_prefix = config_.health_prefix;
    wal_options.health_partition = config_.health_partition;
    const WalOpenInfo info = wal_.open(
        config_.wal_path, ds_->num_vertices(),
        [&](std::uint64_t, const UpdateBatch& batch) { ds_->apply(batch); },
        wal_options);
    stats_.replayed_batches = info.replayed;
    wal_engine_kind_ = info.engine;
    if (info.migrated) {
      obs::EventLog::instance().emit(
          obs::Severity::kInfo, event_component(config_, "wal"),
          "wal_migrated",
          {{"format", "v4"},
           {"replayed", std::to_string(info.replayed)},
           {"last_lsn", std::to_string(info.last_lsn)}});
    }
    // The engine the config asked for vs the one that actually runs: a
    // kIoUring/kAuto intent landing on the flusher means the io_uring
    // probe failed (kernel too old, seccomp, RLIMIT) — operationally
    // interesting, so it goes in the journal, not just a stats label.
    if (const WalEngineKind intent = resolve_wal_engine(config_.wal_engine);
        intent != info.engine) {
      obs::EventLog::instance().emit(
          obs::Severity::kWarn, event_component(config_, "wal"),
          "wal_engine_degraded",
          {{"requested", wal_engine_name(intent)},
           {"resolved", wal_engine_name(info.engine)}});
    }
    // Resume LSN numbering where the committed log ends; the replayed
    // prefix is both committed and applied (and shipped: it predates any
    // listener).
    next_lsn_ = info.last_lsn;
    commit_lsn_.store(info.last_lsn, std::memory_order_relaxed);
    applied_lsn_.store(info.last_lsn, std::memory_order_relaxed);
    shipped_lsn_ = info.last_lsn;
    // Hooked up before the apply thread exists, so no completion can fire
    // into a half-constructed service.
    wal_.set_durable_callback(
        [this](std::uint64_t lsn, const std::string* error) {
          on_durable(lsn, error);
        });
  }
  num_shards_ = std::max<std::size_t>(1, config_.num_shards);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  stats_.batch_budget = sizer_.budget();
  // Health registration precedes the apply thread: the thread stamps
  // apply_heartbeat_ unconditionally once it sees it non-null, so the
  // pointer must be final before the thread can read it.
  if (config_.health != nullptr) {
    std::string name = config_.health_prefix;
    name += "apply";
    apply_heartbeat_ = config_.health->register_thread(
        std::move(name), config_.health_partition);
    if (!config_.wal_path.empty() &&
        (config_.divergence_degraded > 0 || config_.divergence_stalled > 0)) {
      std::string probe_name = config_.health_prefix;
      probe_name += "wal_divergence";
      // Samples on the watchdog thread: both cursors are atomics, and the
      // probe is tombstoned in stop() before wal_.close() tears the
      // engine down.
      divergence_probe_ = config_.health->register_probe(
          std::move(probe_name), config_.health_partition,
          [this]() -> double {
            const std::uint64_t applied =
                applied_lsn_.load(std::memory_order_acquire);
            const std::uint64_t durable = wal_.durable_lsn();
            return applied > durable
                       ? static_cast<double>(applied - durable)
                       : 0.0;
          },
          static_cast<double>(config_.divergence_degraded),
          static_cast<double>(config_.divergence_stalled));
    }
  }
  apply_thread_ = std::thread([this] { apply_loop(); });
  // Registered after the service is fully constructed; stats() is
  // thread-safe, so the collect callback can fire from any snapshot.
  if (config_.metrics != nullptr) {
    metrics_ = obs::MetricsGroup(config_.metrics, config_.metrics_prefix);
    metrics_.collect([this](obs::MetricsSink& sink) {
      const ServiceStats st = stats();
      sink.counter("submitted_ops", static_cast<double>(st.submitted_ops));
      sink.counter("acked_ops", static_cast<double>(st.acked_ops));
      sink.counter("applied_edges", static_cast<double>(st.applied_edges));
      sink.counter("batches", static_cast<double>(st.batches));
      sink.counter("cycles", static_cast<double>(st.cycles));
      sink.counter("rejected_ops", static_cast<double>(st.rejected_ops));
      sink.counter("blocked_submits",
                   static_cast<double>(st.blocked_submits));
      sink.counter("wal_flushes", static_cast<double>(st.wal_flushes));
      sink.counter("wal_flush_bytes",
                   static_cast<double>(st.wal_flush_bytes));
      sink.gauge("commit_lsn", static_cast<double>(st.commit_lsn));
      sink.gauge("applied_lsn", static_cast<double>(st.applied_lsn));
      sink.gauge("durable_lsn", static_cast<double>(st.durable_lsn));
      sink.gauge("batch_budget", static_cast<double>(st.batch_budget));
      sink.gauge("wal_flush_depth",
                 static_cast<double>(st.wal_flush_depth));
      sink.gauge("wal_inflight_bytes",
                 static_cast<double>(st.wal_inflight_bytes));
      sink.gauge("pending_ops", static_cast<double>(pending_ops()));
      std::size_t max_depth = 0;
      for (const std::size_t d : st.shard_depths) {
        max_depth = std::max(max_depth, d);
      }
      sink.gauge("shard_depth_max", static_cast<double>(max_depth));
      sink.histogram("ack_latency_ns", st.ack_latency);
      sink.histogram("apply_latency_ns", st.apply_latency);
      sink.histogram("applied_latency_ns", st.applied_latency);
      sink.histogram("durable_lag_ns", st.durable_lag);
      const concurrent::Reclaimer::Stats rs = reclaimer_->stats();
      sink.counter("reclaim.epoch_advances",
                   static_cast<double>(rs.epoch_advances));
      sink.counter("reclaim.retired", static_cast<double>(rs.retired));
      sink.counter("reclaim.freed", static_cast<double>(rs.freed));
      sink.counter("reclaim.lagging_readers",
                   static_cast<double>(rs.lagging_readers));
      sink.gauge("reclaim.limbo", static_cast<double>(rs.limbo));
    });
  }
}

KCoreService::~KCoreService() { stop(/*drain_first=*/true); }

std::size_t KCoreService::shard_of(const Edge& e) const {
  return hash64(e.canonical().key()) % num_shards_;
}

Ticket KCoreService::submit(Update op) {
  if (stopped_.load(std::memory_order_relaxed)) {
    throw std::runtime_error("KCoreService: submit after shutdown");
  }
  const vertex_t n = ds_->num_vertices();
  if (op.edge.u >= n || op.edge.v >= n) {
    throw std::out_of_range("KCoreService: vertex id out of range");
  }
  const std::size_t s = shard_of(op.edge);
  Shard& shard = shards_[s];
  const std::uint64_t t0 = now_ns();
  std::uint64_t seq = 0;
  {
    std::unique_lock lock(shard.mu);
    if (const std::size_t bound = config_.max_pending_per_shard;
        bound > 0 && shard.pending.size() >= bound) {
      if (config_.admission == AdmissionPolicy::kReject) {
        rejected_ops_.fetch_add(1, std::memory_order_relaxed);
        // Journaled (rate-limited per component by the EventLog — a
        // rejection storm costs at most the burst per window, and the
        // next admitted event carries the suppressed count).
        obs::EventLog::instance().emit(
            obs::Severity::kWarn, event_component(config_, "service"),
            "backpressure_reject",
            {{"shard", std::to_string(s)},
             {"depth", std::to_string(shard.pending.size())}});
        throw QueueFullError("KCoreService: ingest shard full");
      }
      blocked_submits_.fetch_add(1, std::memory_order_relaxed);
      obs::EventLog::instance().emit(
          obs::Severity::kInfo, event_component(config_, "service"),
          "backpressure_block",
          {{"shard", std::to_string(s)},
           {"depth", std::to_string(shard.pending.size())}});
      shard.space_cv.wait(lock, [&] {
        return shard.pending.size() < bound ||
               stopped_.load(std::memory_order_seq_cst);
      });
      if (stopped_.load(std::memory_order_seq_cst)) {
        throw std::runtime_error("KCoreService: submit after shutdown");
      }
    }
    seq = ++shard.submitted;
    shard.pending.push_back(PendingOp{op, t0});
    // Inside shard.mu so a drain (which takes the same mutex) can never
    // observe the op before its count: pending_ops_ stays >= the ops
    // actually sitting in the shards, and run_cycle's fetch_sub cannot
    // underflow.
    pending_ops_.fetch_add(1, std::memory_order_seq_cst);
    // Recheck after the op is published: if the stop flag was set first,
    // the apply loop's final drain may already have passed this shard, so
    // undo and throw rather than hand back a ticket that silently never
    // acks. (Seq-cst total order: if this load is false, the increment
    // above precedes the stop flag, and the final pending_ops_ check -
    // which happens after the flag is set - sees the op and drains it.)
    if (stopped_.load(std::memory_order_seq_cst)) {
      shard.pending.pop_back();
      --shard.submitted;
      pending_ops_.fetch_sub(1, std::memory_order_seq_cst);
      throw std::runtime_error("KCoreService: submit after shutdown");
    }
    // Counted while the op is still unpublishable (shard.mu held), so an
    // op can never appear in acked_ops before submitted_ops.
    submitted_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  // Dekker pairing with apply_loop: the seq_cst increment above and the
  // seq_cst sleep-flag store/read guarantee at least one side sees the
  // other, so the apply thread never parks with this op unseen.
  if (apply_sleeping_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(ingest_mu_);
    ingest_cv_.notify_one();
  }
  return Ticket{static_cast<std::uint32_t>(s), seq};
}

bool KCoreService::wait(const Ticket& ticket, std::uint64_t* acked_lsn) {
  Shard& shard = shards_[ticket.shard];
  if (shard.applied.load(std::memory_order_acquire) >= ticket.seq) {
    if (acked_lsn) {
      *acked_lsn = shard.acked_lsn.load(std::memory_order_relaxed);
    }
    return true;
  }
  std::unique_lock lock(shard.mu);
  shard.ack_cv.wait(lock, [&] {
    return shard.applied.load(std::memory_order_relaxed) >= ticket.seq ||
           dead_.load(std::memory_order_relaxed);
  });
  if (shard.applied.load(std::memory_order_relaxed) < ticket.seq) {
    return false;
  }
  if (acked_lsn) {
    *acked_lsn = shard.acked_lsn.load(std::memory_order_relaxed);
  }
  return true;
}

bool KCoreService::is_applied(const Ticket& ticket) const {
  return shards_[ticket.shard].applied.load(std::memory_order_acquire) >=
         ticket.seq;
}

void KCoreService::drain() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::uint64_t target = 0;
    {
      std::lock_guard lock(shard.mu);
      target = shard.submitted;
    }
    if (target > 0) wait(Ticket{static_cast<std::uint32_t>(s), target});
  }
}

std::uint64_t KCoreService::set_commit_listener(CommitListener listener) {
  // apply_mu_ excludes a running cycle and ship_mu_ excludes the
  // completion thread's ship-at-durable deliveries, so the returned cursor
  // is exact: no frame can ship between reading it and the listener taking
  // effect.
  std::lock_guard alock(apply_mu_);
  std::lock_guard slock(ship_mu_);
  commit_listener_ = std::move(listener);
  return shipped_lsn_;
}

std::uint64_t KCoreService::durable_lsn() const {
  return config_.wal_path.empty() ? commit_lsn() : wal_.durable_lsn();
}

bool KCoreService::wait_wal_durable(std::uint64_t lsn) {
  if (config_.wal_path.empty()) return true;
  try {
    wal_.wait_durable(lsn);
  } catch (const std::exception&) {
    return false;
  }
  return wal_.durable_lsn() >= lsn;
}

void KCoreService::apply_loop() {
  CPKC_TRACE_THREAD_NAME("apply/" + config_.metrics_prefix);
  for (;;) {
    {
      std::unique_lock lock(ingest_mu_);
      apply_sleeping_.store(true, std::memory_order_seq_cst);
      // Parked is healthy: an idle mark stops the heartbeat age from
      // counting while the queue is empty (or a pause holds the thread).
      if (apply_heartbeat_ != nullptr) apply_heartbeat_->idle();
      ingest_cv_.wait(lock, [&] {
        return stop_requested_ ||
               (!paused_.load(std::memory_order_relaxed) &&
                pending_ops_.load(std::memory_order_seq_cst) > 0);
      });
      apply_sleeping_.store(false, std::memory_order_seq_cst);
      if (apply_heartbeat_ != nullptr) apply_heartbeat_->busy();
      if (crash_requested_) break;
      if (stop_requested_ &&
          pending_ops_.load(std::memory_order_seq_cst) == 0) {
        break;
      }
    }
    try {
      run_cycle();
    } catch (const std::exception& e) {
      // A throwing cycle (WAL I/O failure, allocation failure) must not
      // escape the thread - that would std::terminate the process. Fail
      // the service instead: stop accepting, release waiters (their
      // wait() returns false), record the error, and keep reads serving.
      {
        std::lock_guard lock(stats_mu_);
        stats_.apply_error = e.what();
      }
      obs::EventLog::instance().emit(
          obs::Severity::kError, event_component(config_, "service"),
          "apply_error", {{"error", e.what()}});
      std::fprintf(stderr, "KCoreService: apply thread failed: %s\n",
                   e.what());
      {
        std::lock_guard lock(ingest_mu_);
        stopped_.store(true, std::memory_order_seq_cst);
        stop_requested_ = true;
      }
      dead_.store(true, std::memory_order_relaxed);
      for (std::size_t s = 0; s < num_shards_; ++s) {
        std::lock_guard lock(shards_[s].mu);
        shards_[s].ack_cv.notify_all();
        shards_[s].space_cv.notify_all();
      }
      return;
    }
  }
}

std::size_t KCoreService::run_cycle() {
  std::lock_guard apply_lock(apply_mu_);
  // Checked under apply_mu_, so once pause_applies() (which passes through
  // this mutex) returns, no further cycle can drain ops.
  if (paused_.load(std::memory_order_acquire)) return 0;
  if (apply_heartbeat_ != nullptr) apply_heartbeat_->beat();
  // Fault injection (debug_inject_apply_stall): sleep with the heartbeat
  // marked busy — the beat above ages through the sleep, which is what a
  // genuinely wedged apply thread looks like to the watchdog.
  if (const std::uint64_t stall_ms =
          inject_stall_ms_.exchange(0, std::memory_order_relaxed);
      stall_ms > 0) {
    obs::EventLog::instance().emit(
        obs::Severity::kWarn, event_component(config_, "service"),
        "apply_stall_injected", {{"ms", std::to_string(stall_ms)}});
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }

  // Drain: take up to the adaptive budget, preserving per-shard FIFO (and
  // therefore per-edge order, since an edge's ops always share a shard).
  std::vector<PendingOp> ops;
  std::vector<PendingCycle::ShardCut> drains;
  std::size_t budget = sizer_.budget();
  // Rotate the starting shard so a budget-exhausting backlog on low-index
  // shards cannot starve high-index shards (and their waiters) forever.
  const std::size_t start = drain_start_;
  drain_start_ = (drain_start_ + 1) % num_shards_;
  for (std::size_t i = 0; i < num_shards_ && budget > 0; ++i) {
    const std::size_t s = (start + i) % num_shards_;
    Shard& shard = shards_[s];
    std::lock_guard lock(shard.mu);
    const std::size_t take = std::min(shard.pending.size(), budget);
    if (take == 0) continue;
    ops.insert(ops.end(), shard.pending.begin(),
               shard.pending.begin() + static_cast<std::ptrdiff_t>(take));
    shard.pending.erase(
        shard.pending.begin(),
        shard.pending.begin() + static_cast<std::ptrdiff_t>(take));
    shard.drained += take;
    drains.push_back(PendingCycle::ShardCut{s, shard.drained});
    budget -= take;
    if (config_.max_pending_per_shard > 0) shard.space_cv.notify_all();
  }
  if (ops.empty()) return 0;
  pending_ops_.fetch_sub(ops.size(), std::memory_order_seq_cst);
  // Spans the rest of the cycle: coalesce + WAL staging + apply + ack/queue.
  CPKC_TRACE_SPAN(cycle_span, "cycle", 0, ops.size());

  // Coalesce into homogeneous batches — canonical + deduplicated only when
  // they are about to be logged or shipped (the CPLDS re-normalizes on
  // apply anyway, so without a WAL or a listener the pass would be pure
  // duplicate work on the apply thread).
  std::vector<Update> stream;
  stream.reserve(ops.size());
  for (const PendingOp& p : ops) stream.push_back(p.op);
  std::vector<UpdateBatch> batches = coalesce_updates(
      std::move(stream),
      /*normalize=*/wal_.is_open() || commit_listener_ != nullptr);

  // Assign LSNs and group-commit: log every batch of the cycle, one flush.
  std::vector<std::uint64_t> lsns;
  lsns.reserve(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) lsns.push_back(++next_lsn_);
  // Encode-once: each committed batch becomes one WalFrame here, and those
  // exact bytes serve both the WAL append below and the commit listener —
  // no consumer re-serializes. (A text WAL is the one exception: it writes
  // its own line format, and frames are built only if a listener needs
  // them.)
  const bool binary_wal =
      wal_.is_open() && wal_.format() == WalFormat::kBinaryV4;
  std::vector<WalFramePtr> frames;
  if (binary_wal || commit_listener_ != nullptr) {
    frames.reserve(batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
      frames.push_back(WalFrame::encode(lsns[i], batches[i]));
    }
  }
  // Group commit. With an async engine the staged bytes go to the engine
  // and this thread moves straight on to apply — the pipelined path; the
  // sync engine pays the write+sync here as before. `defer` is whether the
  // *ack* must wait for the durable watermark: only at the sync durability
  // levels (kOsCache acks at applied by definition — the bytes reaching
  // the OS cache is not something a process crash can undo earlier than a
  // sync-mode buffered write could).
  const bool async_wal = wal_.is_open() && wal_.async_active();
  const bool defer = async_wal && !lsns.empty() &&
                     config_.wal_durability != WalDurability::kOsCache;
  if (wal_.is_open()) {
    // The cross-thread commit span: begins here on the apply thread, ends
    // in deliver_cycle — on the engine's completion thread when the ack is
    // deferred to the durable watermark.
    if (!lsns.empty()) {
      CPKC_TRACE_ASYNC_BEGIN("commit", lsns.back(), ops.size());
    }
    {
      CPKC_TRACE_SPAN(wal_span, "wal_submit",
                      lsns.empty() ? 0 : lsns.back(), batches.size());
      if (binary_wal) {
        for (const WalFramePtr& frame : frames) wal_.append(*frame);
      } else {
        for (std::size_t i = 0; i < batches.size(); ++i) {
          wal_.append(lsns[i], batches[i]);
        }
      }
      if (async_wal) {
        wal_.commit_async();
      } else {
        wal_.flush();
      }
    }
  }
  if (!lsns.empty() && !defer) {
    // Deferred cycles advance commit_lsn_ in on_durable instead: at a sync
    // level "committed" means the durability point was reached.
    commit_lsn_.store(lsns.back(), std::memory_order_release);
  }
  // Ops that coalesced into nothing (all self-loops) ack at the current
  // commit LSN: there is no new state for a session to wait for.
  const std::uint64_t cycle_lsn =
      lsns.empty() ? commit_lsn_.load(std::memory_order_relaxed)
                   : lsns.back();

  // Ship to the replication subscriber (staged, not yet applied — a
  // replica may briefly run ahead of the primary's apply, which only makes
  // reads fresher, never staler than an acked write). The listener shares
  // the frame; no bytes are copied. At ShipPoint::kDurable the frames ride
  // in the pending cycle instead and ship from deliver_cycle.
  const bool ship_at_applied = config_.ship_at == ShipPoint::kApplied;
  if (ship_at_applied) {
    std::lock_guard slock(ship_mu_);
    if (commit_listener_) {
      for (const WalFramePtr& frame : frames) commit_listener_(frame);
    }
    if (!lsns.empty()) shipped_lsn_ = lsns.back();
  }

  // Apply — overlapped with the previous cycle's flush when async.
  std::uint64_t cycle_apply_ns = 0;
  std::size_t cycle_applied_edges = 0;
  std::vector<std::uint64_t> batch_ns;
  batch_ns.reserve(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    CPKC_TRACE_SPAN(apply_span, "apply", lsns[i], batches[i].edges.size());
    Timer timer;
    cycle_applied_edges += ds_->apply(batches[i]).size();
    const std::uint64_t ns = timer.elapsed_ns();
    cycle_apply_ns += ns;
    batch_ns.push_back(ns);
  }
  // Feed the sizer every cost signal: the cycle's apply time, the most
  // recent applied->acked lag, and the cluster feedback (replica lag /
  // read p99, via observe_cluster_feedback), so the budget backs off when
  // the durability pipeline, the replicas, or the readers — not the apply —
  // are the bottleneck.
  sizer_.observe(ops.size(), cycle_apply_ns,
                 last_ack_lag_ns_.load(std::memory_order_relaxed),
                 replica_lag_signal_.load(std::memory_order_relaxed),
                 read_p99_signal_.load(std::memory_order_relaxed));
  if (!lsns.empty()) {
    applied_lsn_.store(lsns.back(), std::memory_order_release);
  }

  // Applied-side stats (the ack-side stats land in deliver_cycle, which
  // for inline acks runs before this function returns). Stats before acks:
  // a client that returns from wait()/drain() and immediately reads
  // stats() must already see this cycle counted.
  const std::uint64_t applied_at = now_ns();
  {
    std::lock_guard lock(stats_mu_);
    stats_.applied_edges += cycle_applied_edges;
    stats_.batches += batches.size();
    stats_.cycles += 1;
    stats_.apply_seconds += static_cast<double>(cycle_apply_ns) * 1e-9;
    stats_.batch_budget = sizer_.budget();
    for (std::uint64_t ns : batch_ns) stats_.apply_latency.record(ns);
    for (const PendingOp& p : ops) {
      stats_.applied_latency.record(applied_at - p.submit_ns);
    }
  }

  PendingCycle cycle;
  cycle.upto_lsn = lsns.empty() ? cycle_lsn : lsns.back();
  cycle.cycle_lsn = cycle_lsn;
  cycle.applied_ns = applied_at;
  cycle.drains = std::move(drains);
  cycle.submit_ns.reserve(ops.size());
  for (const PendingOp& p : ops) cycle.submit_ns.push_back(p.submit_ns);
  if (!ship_at_applied) cycle.frames = std::move(frames);

  {
    std::unique_lock plock(pending_mu_);
    // Inline ack only when nothing older is still waiting on the disk
    // (acking out of order would move a shard's `applied` frontier past an
    // older not-yet-durable op) and this cycle's own bytes are already
    // covered by the watermark. The engine's callback stores the WAL
    // watermark *before* it runs on_durable, so reading it under
    // pending_mu_ here cannot miss a completion that already popped the
    // queue: either the watermark covers us (ack inline) or on_durable for
    // our LSN has not popped yet (queue; it will be delivered).
    const bool inline_ack =
        pending_.empty() &&
        (!defer || wal_.durable_lsn() >= cycle.upto_lsn);
    if (inline_ack) {
      deliver_cycle(cycle, now_ns());
    } else {
      pending_.push_back(std::move(cycle));
    }
  }
  return ops.size();
}

void KCoreService::deliver_cycle(PendingCycle& cycle,
                                 std::uint64_t acked_at) {
  // Caller holds pending_mu_ (see header): acks serialize here. Closes the
  // cross-thread commit span opened at WAL staging — on the engine's
  // completion thread when the ack was deferred to the durable watermark.
  if (wal_.is_open()) {
    CPKC_TRACE_ASYNC_END("commit", cycle.upto_lsn, cycle.submit_ns.size());
  }
  CPKC_TRACE_INSTANT("ack", cycle.cycle_lsn, cycle.submit_ns.size());
  if (config_.ship_at == ShipPoint::kDurable) {
    std::lock_guard slock(ship_mu_);
    if (commit_listener_) {
      for (const WalFramePtr& frame : cycle.frames) commit_listener_(frame);
    }
    if (shipped_lsn_ < cycle.upto_lsn) shipped_lsn_ = cycle.upto_lsn;
  }
  const std::uint64_t lag =
      acked_at > cycle.applied_ns ? acked_at - cycle.applied_ns : 0;
  last_ack_lag_ns_.store(lag, std::memory_order_relaxed);
  {
    std::lock_guard lock(stats_mu_);
    stats_.acked_ops += cycle.submit_ns.size();
    for (const std::uint64_t t : cycle.submit_ns) {
      stats_.ack_latency.record(acked_at - t);
    }
    stats_.durable_lag.record(lag);
  }
  // Acknowledge: per-shard acks are monotone in submission order, and the
  // ack LSN is published before `applied`'s release store so waiters see it.
  for (const PendingCycle::ShardCut& d : cycle.drains) {
    Shard& shard = shards_[d.shard];
    {
      std::lock_guard lock(shard.mu);
      // Monotone: a queued no-op cycle can carry a lower cycle_lsn than
      // the durable cycle delivered just before it; a waiter of the
      // earlier op must never observe its ack LSN regress.
      if (shard.acked_lsn.load(std::memory_order_relaxed) <
          cycle.cycle_lsn) {
        shard.acked_lsn.store(cycle.cycle_lsn, std::memory_order_relaxed);
      }
      shard.applied.store(d.upto, std::memory_order_release);
    }
    shard.ack_cv.notify_all();
  }
}

void KCoreService::on_durable(std::uint64_t lsn, const std::string* error) {
  if (error != nullptr) {
    fail_from_durability(*error);
    return;
  }
  CPKC_TRACE_INSTANT("durable", lsn, 0);
  if (config_.wal_durability != WalDurability::kOsCache) {
    // Monotone max: at the sync levels "committed" is the watermark.
    std::uint64_t cur = commit_lsn_.load(std::memory_order_relaxed);
    while (cur < lsn &&
           !commit_lsn_.compare_exchange_weak(cur, lsn,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
    }
  }
  const std::uint64_t acked_at = now_ns();
  std::lock_guard plock(pending_mu_);
  while (!pending_.empty() && pending_.front().upto_lsn <= lsn) {
    deliver_cycle(pending_.front(), acked_at);
    pending_.pop_front();
  }
}

void KCoreService::fail_from_durability(const std::string& what) {
  // Mirror of the apply-thread error containment, but running on the
  // engine's completion thread: stop accepting, drop undeliverable pending
  // cycles (their acks can never be correct), release waiters with
  // wait() == false, keep reads serving. The apply thread itself hits the
  // failed engine on its next commit and lands in the same stopped state.
  {
    std::lock_guard lock(stats_mu_);
    if (stats_.apply_error.empty()) {
      stats_.apply_error = "WAL durability engine failed: " + what;
    }
  }
  obs::EventLog::instance().emit(
      obs::Severity::kError, event_component(config_, "wal"),
      "durability_failed", {{"error", what}});
  std::fprintf(stderr, "KCoreService: WAL durability engine failed: %s\n",
               what.c_str());
  {
    std::lock_guard lock(ingest_mu_);
    stopped_.store(true, std::memory_order_seq_cst);
    stop_requested_ = true;
    ingest_cv_.notify_all();
  }
  {
    std::lock_guard plock(pending_mu_);
    pending_.clear();
  }
  dead_.store(true, std::memory_order_relaxed);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].ack_cv.notify_all();
    shards_[s].space_cv.notify_all();
  }
}

void KCoreService::checkpoint() {
  if (config_.snapshot_path.empty()) {
    throw std::logic_error(
        "KCoreService::checkpoint requires ServiceConfig::snapshot_path");
  }
  // Phase 1 — capture the cut (bounded pause): with drain cycles excluded
  // the CPLDS is update-quiescent; copy its edge list and the LSN the cut
  // covers. Memory-bound — no disk IO under the lock.
  vertex_t num_vertices = 0;
  std::vector<Edge> edges;
  std::uint64_t cut_lsn = 0;
  {
    std::lock_guard lock(apply_mu_);
    num_vertices = ds_->num_vertices();
    edges = collect_snapshot_edges(*ds_);
    cut_lsn = next_lsn_;
  }
  obs::EventLog::instance().emit(
      obs::Severity::kInfo, event_component(config_, "service"),
      "checkpoint_begin",
      {{"cut_lsn", std::to_string(cut_lsn)},
       {"edges", std::to_string(edges.size())}});
  // Phase 2 — stream (no lock): write the snapshot while updates keep
  // committing past the cut. A crash mid-save cannot destroy the previous
  // snapshot: until the rename below, the old snapshot + full WAL still
  // reconstruct every acked op.
  const std::string tmp = config_.snapshot_path + ".tmp";
  save_snapshot(num_vertices, edges, tmp);
  // Phase 3 — publish (bounded pause): swap in the snapshot and compact
  // the WAL down to the records committed since the cut, in the same
  // critical section so no cycle commits between the two. The pause is
  // proportional to that suffix, not to the structure size.
  {
    std::lock_guard lock(apply_mu_);
    std::filesystem::rename(tmp, config_.snapshot_path);
    if (wal_.is_open()) wal_.compact(cut_lsn);
  }
  if (!config_.wal_path.empty()) {
    obs::EventLog::instance().emit(
        obs::Severity::kInfo, event_component(config_, "wal"),
        "wal_compacted", {{"cut_lsn", std::to_string(cut_lsn)}});
  }
  obs::EventLog::instance().emit(
      obs::Severity::kInfo, event_component(config_, "service"),
      "checkpoint_end", {{"cut_lsn", std::to_string(cut_lsn)}});
}

void KCoreService::shutdown() { stop(/*drain_first=*/true); }

void KCoreService::simulate_crash() { stop(/*drain_first=*/false); }

void KCoreService::pause_applies() {
  paused_.store(true, std::memory_order_release);
  // Wait out any in-flight cycle; afterwards run_cycle()'s pause check
  // (under this same mutex) keeps the queues frozen.
  std::lock_guard lock(apply_mu_);
}

void KCoreService::resume_applies() {
  paused_.store(false, std::memory_order_release);
  std::lock_guard lock(ingest_mu_);
  ingest_cv_.notify_all();
}

void KCoreService::stop(bool drain_first) {
  // Shutdown overrides a pause: the final drain below must be able to run.
  paused_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(ingest_mu_);
    // stopped_ flips before the apply loop can make its final "pending ==
    // 0" exit check (that check runs under ingest_mu_), which is what the
    // submit() recheck relies on.
    stopped_.store(true, std::memory_order_seq_cst);
    stop_requested_ = true;
    if (!drain_first) crash_requested_ = true;
  }
  ingest_cv_.notify_all();
  // Submitters blocked on backpressure must wake to observe the stop (the
  // final drain also frees space, but a crash-stop drains nothing).
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].space_cv.notify_all();
  }
  if (apply_thread_.joinable()) apply_thread_.join();
  if (drain_first) {
    // Graceful shutdown must not set dead_ (releasing waiters with
    // wait() == false) while deferred acks are still riding the durability
    // engine: wait the watermark out — the engine fires every completion
    // callback *before* wait_durable returns, so once this passes, every
    // ackable op has acked. An engine failure already released waiters via
    // fail_from_durability; swallow it here.
    std::lock_guard lock(apply_mu_);
    if (wal_.is_open() && wal_.async_active()) {
      try {
        wal_.wait_durable(wal_.staged_lsn());
      } catch (const std::exception&) {
      }
    }
  }
  dead_.store(true, std::memory_order_relaxed);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard lock(shards_[s].mu);
    shards_[s].ack_cv.notify_all();
    shards_[s].space_cv.notify_all();
  }
  // Tombstone the health components before the WAL closes: the divergence
  // probe samples wal_.durable_lsn(), and unregister() excludes any
  // concurrent watchdog check before returning. (The apply thread is
  // already joined, so its heartbeat handle is quiescent.)
  if (config_.health != nullptr) {
    if (divergence_probe_ != nullptr) {
      config_.health->unregister(divergence_probe_);
      divergence_probe_ = nullptr;
    }
    if (apply_heartbeat_ != nullptr) {
      config_.health->unregister(apply_heartbeat_);
      apply_heartbeat_ = nullptr;
    }
  }
  // Under apply_mu_: a concurrent checkpoint() holds it while compacting
  // the WAL, and WriteAheadLog is not thread-safe. (close() also drains
  // and stops the engine — on the crash path any completions that still
  // fire may ack genuinely-durable ops, which is correct: wait() == false
  // means "outcome unknown", and these outcomes are known good.)
  std::lock_guard lock(apply_mu_);
  wal_.close();
}

ServiceStats KCoreService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(stats_mu_);
    out = stats_;
  }
  out.submitted_ops = submitted_ops_.load(std::memory_order_relaxed);
  out.rejected_ops = rejected_ops_.load(std::memory_order_relaxed);
  out.blocked_submits = blocked_submits_.load(std::memory_order_relaxed);
  out.commit_lsn = commit_lsn_.load(std::memory_order_acquire);
  out.applied_lsn = applied_lsn_.load(std::memory_order_acquire);
  out.durable_lsn = durable_lsn();
  out.wal_engine = wal_engine_name(wal_engine_kind_);
  {
    const WalFlushStats fs = wal_.flush_stats();
    out.wal_flushes =
        fs.flushes - flush_baseline_.load(std::memory_order_relaxed);
    out.wal_flush_bytes =
        fs.flushed_bytes -
        flush_bytes_baseline_.load(std::memory_order_relaxed);
    out.wal_flush_depth = fs.flush_depth;
    out.wal_inflight_bytes = fs.inflight_bytes;
  }
  out.shard_depths.resize(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard lock(shards_[s].mu);
    out.shard_depths[s] = shards_[s].pending.size();
  }
  return out;
}

void KCoreService::reset_stats() {
  std::lock_guard lock(stats_mu_);
  const std::size_t budget = stats_.batch_budget;
  stats_ = ServiceStats{};
  stats_.batch_budget = budget;
  submitted_ops_.store(0, std::memory_order_relaxed);
  rejected_ops_.store(0, std::memory_order_relaxed);
  blocked_submits_.store(0, std::memory_order_relaxed);
  const WalFlushStats fs = wal_.flush_stats();
  flush_baseline_.store(fs.flushes, std::memory_order_relaxed);
  flush_bytes_baseline_.store(fs.flushed_bytes, std::memory_order_relaxed);
}

}  // namespace cpkcore::service
