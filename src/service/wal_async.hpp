// Asynchronous WAL commit engines — the durability half of the pipelined
// group commit.
//
// PR 6 made every committed batch an immutable encoded WalFrame, but the
// apply thread still paid the syscall tail itself: one buffered write(2)
// plus (at the sync durability levels) an fdatasync/fsync per drain cycle,
// serializing apply, ack, and shipping behind the disk. A WalCommitEngine
// takes that tail off the apply thread: the WriteAheadLog hands it the
// cycle's already-encoded bytes (submit() — a move, no copy) and the engine
// completes them in the background, advancing a *durable-LSN watermark* and
// firing a completion callback the service uses to ack tickets and fire
// commit listeners. Cycle N+1 applies while cycle N's flush is in flight.
//
//   apply thread ──submit(bytes, upto_lsn)──▶ engine queue ──▶ disk
//        │                                        │
//        ▼                                        ▼  (completion thread)
//     applied (CPLDS mutated, frames shipped)   durable(upto_lsn) callback
//                                               → watermark, acks, listeners
//
// Two engines, selected at runtime (resolve_wal_engine):
//
//   kIoUring   a raw io_uring submission ring (no liburing dependency):
//              each commit is an IORING_OP_WRITEV SQE, linked
//              (IOSQE_IO_LINK) to an IORING_OP_FSYNC SQE at the sync
//              durability levels (IORING_FSYNC_DATASYNC for kFdatasync), so
//              the kernel orders write-then-sync per commit with zero
//              engine-side threads on the submission path. A reaper thread
//              blocks in io_uring_enter(GETEVENTS) and advances the
//              watermark over the *contiguous completed prefix* of commits
//              in submission order — independent chains may complete out of
//              order, and a watermark that skipped a hole would ack an op
//              whose bytes could vanish in a crash.
//   kFlusher   the portable fallback: a flusher thread swaps out the queue
//              of pending commits (double buffer), pwrite(2)s them, syncs
//              once per swap — so backlogged commits batch into one sync,
//              group commit compounding under load — and advances the
//              watermark.
//
// Both engines open their own non-O_APPEND fd on the log and write at
// explicit tracked offsets (Linux ignores pwrite offsets on O_APPEND fds,
// which would silently reorder concurrent tails), so they never interleave
// with the WriteAheadLog's synchronous fd: the log routes *all* appends
// through the engine while one is active, and stops it (draining) around
// reset()/compact()/close().
//
// Completion-callback ordering contract: the engine invokes the durable
// callback *before* it publishes the new watermark or wakes wait_durable
// waiters, so "wait_durable(L) returned" implies "every completion callback
// for LSNs <= L has finished" — the service relies on this to make
// shutdown's final drain leave no ack in flight. Errors (write/sync
// failure) surface once through the callback (error != nullptr) and then
// from every subsequent submit()/wait_durable()/wait_idle() as
// std::runtime_error; the watermark never advances past the failure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cpkcore::obs {
class HealthComponent;
}  // namespace cpkcore::obs

namespace cpkcore::service {

/// What a group commit pushes the cycle's records to (see wal.hpp header).
enum class WalDurability { kOsCache, kFdatasync, kFsync };

/// Requested commit engine (WalOptions / ServiceConfig knob).
enum class WalEngine {
  kAuto,     ///< probe: io_uring when the kernel has it, else flusher
  kSync,     ///< no engine: flush() on the caller (the pre-PR-7 path)
  kFlusher,  ///< flusher-thread double buffer
  kIoUring,  ///< io_uring ring (falls back to flusher if unavailable)
};

/// Resolved engine actually running (probe + env override applied).
enum class WalEngineKind { kSync, kFlusher, kIoUring };

/// "sync" / "flusher" / "io_uring" — stats labels, CI probe logging.
[[nodiscard]] const char* wal_engine_name(WalEngineKind kind);

/// Whether this kernel can run the io_uring engine (one io_uring_setup
/// probe, cached). Always false off Linux or without <linux/io_uring.h>.
[[nodiscard]] bool io_uring_engine_available();

/// Maps a requested engine to the one that will run. kAuto honors the
/// CPKC_WAL_ENGINE environment override ("sync" | "flusher" | "io_uring" |
/// "auto") — only kAuto, so a test or tool that pins an engine explicitly
/// stays pinned while CI forces, e.g., the flusher fallback fleet-wide.
/// kIoUring (requested or resolved) degrades to kFlusher when the probe
/// fails.
[[nodiscard]] WalEngineKind resolve_wal_engine(WalEngine requested);

/// Flush-pipeline counters and gauges (ServiceStats / bench surface them).
struct WalFlushStats {
  std::uint64_t flushes = 0;        ///< completed engine flushes (syncs)
  std::uint64_t flushed_bytes = 0;  ///< bytes made durable by those flushes
  std::size_t flush_depth = 0;      ///< gauge: commits submitted, not done
  std::size_t inflight_bytes = 0;   ///< gauge: bytes of those commits
};

/// Abstract async commit engine. Thread-safe: submit() is called by the
/// apply thread, wait_*/stats by any thread, the callback fires on the
/// engine's completion thread. stop() drains in-flight work and joins.
class WalCommitEngine {
 public:
  /// (new durable watermark, nullptr) on success; (last good watermark,
  /// &message) once on failure. Runs on the completion thread; see the
  /// ordering contract in the file header.
  using DurableFn =
      std::function<void(std::uint64_t durable_lsn, const std::string* error)>;

  virtual ~WalCommitEngine() = default;

  /// Replaces the completion callback (call before the first submit).
  virtual void set_durable_callback(DurableFn fn) = 0;

  /// Queues one commit: `bytes` (moved — the encode-once buffer, never
  /// copied again) covering every record up to and including `upto_lsn`.
  /// Submissions must carry non-decreasing upto_lsn. May block briefly when
  /// the engine's in-flight window is full (natural backpressure toward
  /// the apply thread). Throws std::runtime_error after a failure.
  virtual void submit(std::vector<unsigned char> bytes,
                      std::uint64_t upto_lsn) = 0;

  /// Blocks until the watermark reaches `lsn` (callbacks for it included —
  /// see header). Throws std::runtime_error if the engine failed first.
  virtual void wait_durable(std::uint64_t lsn) = 0;

  /// Blocks until nothing is in flight. Throws on engine failure.
  virtual void wait_idle() = 0;

  [[nodiscard]] virtual std::uint64_t durable_lsn() const = 0;
  [[nodiscard]] virtual WalFlushStats stats() const = 0;
  [[nodiscard]] virtual WalEngineKind kind() const = 0;

  /// Drains in-flight commits, joins the engine thread(s), closes the
  /// engine fd. With swallow_errors (destructor/crash paths) a failure is
  /// dropped; otherwise it rethrows. Idempotent.
  virtual void stop(bool swallow_errors) = 0;
};

/// Builds a running engine appending to `path` from byte `start_offset`,
/// with the watermark seeded at `start_lsn`. `kind` must be kFlusher or
/// kIoUring (kSync means "no engine"; callers just don't build one). Throws
/// std::runtime_error when the file can't be opened or the ring can't be
/// set up (callers may then fall back to kFlusher or kSync).
///
/// `heartbeat` (optional) is the engine thread's health-plane handle: the
/// flusher marks idle around its queue wait and beats per swap; the
/// io_uring reaper marks idle only when *nothing is in flight* before
/// blocking in GETEVENTS — blocked with work in flight is exactly the
/// hung-disk stall the watchdog exists to flag. The caller owns
/// registration/unregistration; the engine only stamps it.
std::unique_ptr<WalCommitEngine> make_wal_commit_engine(
    WalEngineKind kind, const std::string& path, WalDurability durability,
    std::uint64_t start_offset, std::uint64_t start_lsn,
    obs::HealthComponent* heartbeat = nullptr);

}  // namespace cpkcore::service
