// Binary WAL v4 frame codec — the single encoded form every consumer of a
// committed batch shares.
//
// PR 5 left the durability/replication pipeline paying one text
// serialization on the primary's group-commit path and a full re-parse in
// every consumer (WAL replay, scan_wal catch-up, each replica's apply
// thread). The WalFrame closes that: the apply thread encodes each
// committed batch exactly once, and the *same bytes* then flow to
//
//   - the primary's on-disk WAL (append is a buffered memcpy),
//   - the LogShipper's in-memory retention ring (shared_ptr, no copy),
//   - late-joiner catch-up (frames are lifted off disk without decoding),
//   - every replica, which decodes the payload exactly once on its own
//     apply thread.
//
// Frame wire layout (all integers little-endian):
//
//   offset  size       field
//   0       4          payload_len = 13 + 8 * count
//   4       8          lsn
//   12      1          kind        0 = insert, 1 = delete
//   13      4          count       number of edge pairs
//   17      8 * count  (u32 u, u32 v) per edge
//   17+8c   4          crc         CRC-32 over bytes [0, 17 + 8c)
//
// The length prefix makes the stream self-delimiting (and socket-framable —
// ROADMAP item 1); the CRC covers the prefix and the header, so a corrupted
// length that still lands in bounds is caught like any payload flip. A v4
// *file* is the 24-byte header below followed by frames:
//
//   "cpkc-wal-v4\n"  (12 bytes, newline-terminated so `head -1` and the v3
//                     text magic are distinguishable by the first line)
//   u32 num_vertices
//   u64 base_lsn
//
// Commit semantics are unchanged from v3: a frame is committed iff it parses
// completely AND its CRC matches AND its LSN is the predecessor's + 1; the
// first torn / corrupt / out-of-sequence frame ends the committed prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/batch.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

/// On-disk / on-wire WAL format variant. One narrow knob instead of a
/// hard-coded format so the two can be benchmarked against each other
/// (bench/service_throughput sweeps both); kTextV3 is the legacy
/// line-oriented format, kept readable and writable for migration and as
/// the measured baseline.
enum class WalFormat { kTextV3, kBinaryV4 };

inline constexpr char kWalMagicV4[] = "cpkc-wal-v4";
inline constexpr char kWalMagicV3[] = "cpkcore-wal-v3";

/// Codec work done since process start (or the last reset): how many times
/// a batch was encoded into a frame and how many times a frame's payload
/// was decoded back into a batch. The encode-once pipeline tests pin their
/// acceptance criterion on these: one encode per committed batch end to
/// end, one decode per (replica x record) / per replayed record — and zero
/// re-encodes anywhere between the primary WAL, the retention ring, disk
/// catch-up, and replica apply.
struct WalCodecCounters {
  std::uint64_t encoded_frames = 0;
  std::uint64_t decoded_batches = 0;
};

[[nodiscard]] WalCodecCounters wal_codec_counters();
void reset_wal_codec_counters();

class WalFrame;
/// How frames travel: one immutable encode fans out to the WAL buffer, the
/// ring, and every subscriber without copying the bytes.
using WalFramePtr = std::shared_ptr<const WalFrame>;

/// One encoded WAL record. Immutable after construction; bytes() is the
/// exact wire form (length prefix through CRC trailer).
class WalFrame {
 public:
  /// Encodes (lsn, batch) into wire form. The edges are written as given —
  /// callers pass canonical deduplicated batches. Counted in
  /// WalCodecCounters::encoded_frames.
  [[nodiscard]] static WalFramePtr encode(std::uint64_t lsn,
                                          const UpdateBatch& batch);

  /// Parses one frame from the front of `data` (e.g. a file scan or a
  /// socket buffer). Validates the length prefix, the CRC, the kind tag,
  /// and every vertex id against `num_vertices`; on success sets
  /// `*consumed` to the frame's total size and returns the frame, sharing
  /// no state with `data`. Returns nullptr on a torn, truncated, or
  /// corrupt front — the caller treats that as the end of the committed
  /// prefix. Not counted as a decode (the payload stays encoded).
  [[nodiscard]] static WalFramePtr try_parse(const unsigned char* data,
                                             std::size_t available,
                                             vertex_t num_vertices,
                                             std::size_t* consumed);

  /// Decodes the payload into a batch — the once-per-consumer step (replica
  /// apply, WAL replay). Counted in WalCodecCounters::decoded_batches.
  [[nodiscard]] UpdateBatch decode_batch() const;

  [[nodiscard]] std::uint64_t lsn() const { return lsn_; }
  [[nodiscard]] UpdateKind kind() const { return kind_; }
  [[nodiscard]] std::size_t edge_count() const { return count_; }
  /// The CRC-32 trailer value (walcat prints it next to each frame's byte
  /// offset so an on-disk frame can be cross-checked against the shipped
  /// copy without re-hashing).
  [[nodiscard]] std::uint32_t crc() const { return crc_; }
  /// The exact wire bytes (length prefix + header + edges + CRC).
  [[nodiscard]] const std::vector<unsigned char>& bytes() const {
    return bytes_;
  }

  /// Fixed per-frame overhead: length prefix + lsn + kind + count + CRC.
  static constexpr std::size_t kOverheadBytes = 4 + 8 + 1 + 4 + 4;
  /// Refuse length prefixes past this (either garbage or a frame no sane
  /// batch produces), so a corrupt prefix cannot make a scan allocate or
  /// seek gigabytes before the CRC check would fail anyway.
  static constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 30;

 private:
  WalFrame() = default;

  std::vector<unsigned char> bytes_;
  std::uint64_t lsn_ = 0;
  UpdateKind kind_ = UpdateKind::kInsert;
  std::size_t count_ = 0;
  std::uint32_t crc_ = 0;
};

/// Serialized size of the v4 file header (magic line + num_vertices +
/// base_lsn).
inline constexpr std::size_t kWalHeaderV4Bytes = 12 + 4 + 8;

/// Encodes the v4 file header into `out` (appended).
void append_wal_header_v4(std::vector<unsigned char>& out,
                          vertex_t num_vertices, std::uint64_t base_lsn);

}  // namespace cpkcore::service
