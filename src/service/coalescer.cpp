#include "service/coalescer.hpp"

#include <algorithm>

namespace cpkcore::service {

std::vector<UpdateBatch> coalesce_updates(std::vector<Update> ops,
                                          bool normalize) {
  std::vector<UpdateBatch> batches = split_batches(ops);
  if (normalize) {
    for (UpdateBatch& b : batches) normalize_edges(b.edges);
    // A run of nothing but self-loops normalizes to empty; don't spend a
    // CPLDS batch cycle or a WAL record on it.
    std::erase_if(batches,
                  [](const UpdateBatch& b) { return b.edges.empty(); });
  }
  return batches;
}

AdaptiveBatchSizer::AdaptiveBatchSizer(std::size_t min_ops,
                                       std::size_t max_ops,
                                       std::uint64_t target_apply_ns,
                                       Feedback feedback)
    : min_ops_(std::max<std::size_t>(1, min_ops)),
      max_ops_(std::max(max_ops, min_ops_)),
      target_ns_(static_cast<double>(std::max<std::uint64_t>(1, target_apply_ns))),
      feedback_(feedback),
      budget_(std::clamp<std::size_t>(1024, min_ops_, max_ops_)) {}

void AdaptiveBatchSizer::observe(std::size_t ops, std::uint64_t apply_ns,
                                 std::uint64_t ack_lag_ns,
                                 std::uint64_t replica_lag,
                                 std::uint64_t read_p99_ns) {
  if (ops == 0) return;
  // Feedback signals update unconditionally (including toward 0) so the
  // budget recovers once the pipeline / cluster catches back up.
  ewma_ack_lag_ns_ =
      0.7 * ewma_ack_lag_ns_ + 0.3 * static_cast<double>(ack_lag_ns);
  ewma_replica_lag_ =
      0.7 * ewma_replica_lag_ + 0.3 * static_cast<double>(replica_lag);
  ewma_read_p99_ns_ =
      0.7 * ewma_read_p99_ns_ + 0.3 * static_cast<double>(read_p99_ns);
  const double per_op =
      static_cast<double>(apply_ns) / static_cast<double>(ops);
  ewma_ns_per_op_ =
      ewma_ns_per_op_ <= 0.0 ? per_op
                             : 0.7 * ewma_ns_per_op_ + 0.3 * per_op;
  // The ack lag eats into the latency target: time a committed op spends
  // waiting on the flush pipeline is time the next cycle's apply cannot
  // spend. Floor at 10% of the target so a badly backed-up pipeline
  // shrinks cycles instead of zeroing them.
  double avail = std::max(target_ns_ * 0.1, target_ns_ - ewma_ack_lag_ns_);
  // Cluster backoff: when the slowest replica or the readers fall past
  // their thresholds, shrink the available budget proportionally to how
  // far past they are (threshold/actual), floored so the primary never
  // stops entirely.
  double scale = 1.0;
  if (feedback_.max_replica_lag > 0 &&
      ewma_replica_lag_ > static_cast<double>(feedback_.max_replica_lag)) {
    scale = std::min(
        scale, static_cast<double>(feedback_.max_replica_lag) / ewma_replica_lag_);
  }
  if (feedback_.target_read_p99_ns > 0 &&
      ewma_read_p99_ns_ > static_cast<double>(feedback_.target_read_p99_ns)) {
    scale = std::min(scale, static_cast<double>(feedback_.target_read_p99_ns) /
                                ewma_read_p99_ns_);
  }
  avail *= std::max(scale, 0.125);
  const double ideal = avail / std::max(ewma_ns_per_op_, 1e-3);
  const double capped =
      std::min(ideal, static_cast<double>(budget_) * 2.0);
  budget_ = std::clamp(static_cast<std::size_t>(std::max(capped, 1.0)),
                       min_ops_, max_ops_);
}

}  // namespace cpkcore::service
