#include "service/wal_codec.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace cpkcore::service {

namespace {

std::atomic<std::uint64_t> g_encoded{0};
std::atomic<std::uint64_t> g_decoded{0};

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 24));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

WalCodecCounters wal_codec_counters() {
  WalCodecCounters out;
  out.encoded_frames = g_encoded.load(std::memory_order_relaxed);
  out.decoded_batches = g_decoded.load(std::memory_order_relaxed);
  return out;
}

void reset_wal_codec_counters() {
  g_encoded.store(0, std::memory_order_relaxed);
  g_decoded.store(0, std::memory_order_relaxed);
}

WalFramePtr WalFrame::encode(std::uint64_t lsn, const UpdateBatch& batch) {
  auto frame = std::shared_ptr<WalFrame>(new WalFrame());
  const std::size_t count = batch.edges.size();
  const std::size_t payload = 13 + 8 * count;
  std::vector<unsigned char>& out = frame->bytes_;
  out.reserve(kOverheadBytes + 8 * count);
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u64(out, lsn);
  out.push_back(batch.kind == UpdateKind::kInsert ? 0 : 1);
  put_u32(out, static_cast<std::uint32_t>(count));
  for (const Edge& e : batch.edges) {
    put_u32(out, e.u);
    put_u32(out, e.v);
  }
  out.reserve(out.size() + 4);
  const std::uint32_t crc = crc32(out.data(), out.size());
  put_u32(out, crc);
  frame->lsn_ = lsn;
  frame->kind_ = batch.kind;
  frame->count_ = count;
  frame->crc_ = crc;
  g_encoded.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

WalFramePtr WalFrame::try_parse(const unsigned char* data,
                                std::size_t available, vertex_t num_vertices,
                                std::size_t* consumed) {
  if (available < kOverheadBytes) return nullptr;
  const std::size_t payload = get_u32(data);
  if (payload < 13 || payload > kMaxPayloadBytes || (payload - 13) % 8 != 0) {
    return nullptr;
  }
  const std::size_t total = 4 + payload + 4;
  if (available < total) return nullptr;
  const std::uint32_t stored_crc = get_u32(data + 4 + payload);
  if (crc32(data, 4 + payload) != stored_crc) return nullptr;
  const unsigned char kind = data[12];
  if (kind > 1) return nullptr;
  const std::size_t count = get_u32(data + 13);
  if (count != (payload - 13) / 8) return nullptr;
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned char* pair = data + 17 + 8 * i;
    if (get_u32(pair) >= num_vertices || get_u32(pair + 4) >= num_vertices) {
      return nullptr;
    }
  }
  auto frame = std::shared_ptr<WalFrame>(new WalFrame());
  frame->bytes_.assign(data, data + total);
  frame->lsn_ = get_u64(data + 4);
  frame->kind_ = kind == 0 ? UpdateKind::kInsert : UpdateKind::kDelete;
  frame->count_ = count;
  frame->crc_ = stored_crc;
  if (consumed != nullptr) *consumed = total;
  return frame;
}

UpdateBatch WalFrame::decode_batch() const {
  UpdateBatch batch;
  batch.kind = kind_;
  batch.edges.reserve(count_);
  const unsigned char* edges = bytes_.data() + 17;
  for (std::size_t i = 0; i < count_; ++i) {
    batch.edges.push_back(
        Edge{get_u32(edges + 8 * i), get_u32(edges + 8 * i + 4)});
  }
  g_decoded.fetch_add(1, std::memory_order_relaxed);
  return batch;
}

void append_wal_header_v4(std::vector<unsigned char>& out,
                          vertex_t num_vertices, std::uint64_t base_lsn) {
  out.insert(out.end(), kWalMagicV4, kWalMagicV4 + 11);
  out.push_back('\n');
  put_u32(out, num_vertices);
  put_u64(out, base_lsn);
}

}  // namespace cpkcore::service
