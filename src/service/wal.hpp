// Write-ahead log for the serving layer: every coalesced batch is appended
// (records + a per-batch commit marker) and the whole drain cycle is flushed
// once — group commit — *before* the batch is applied to the CPLDS, so a
// restart can replay exactly the committed prefix of accepted work.
//
// Every batch carries a log sequence number (LSN), assigned monotonically by
// the service. The LSN is the cluster layer's replication cursor: replicas
// track the last LSN they applied, and the router's read-your-writes
// sessions pin reads to "at or after my last acked LSN".
//
// Format (text, line-oriented, mirrors the snapshot format):
//   cpkcore-wal-v3
//   <num_vertices> <base_lsn>
//   B I <count> <lsn>    one record per batch: kind I(nsert)/D(elete) + size
//   <u> <v>              ... count edge lines ...
//   C <count> <lsn> <crc>   commit marker: redundant count/lsn plus a CRC32
//                           of the record (kind, count, lsn, every edge)
//
// `base_lsn` is the LSN as of the last compaction (reset()): the log holds
// exactly LSNs (base_lsn, last_lsn], consecutively. A batch is durable iff
// its full record *including the commit marker* parses on replay AND its
// CRC matches the recomputed record checksum; a truncated or marker-less
// tail (crash between append and group commit) and a checksum-mismatched
// tail (torn write, bit rot in the last records) are treated identically —
// discarded, and the file is truncated back to the last committed byte
// before appending resumes. The CRC covers the record's *values*, not its
// raw bytes: corruption that still parses yields different values and a
// mismatched checksum; corruption that no longer parses stops the scan on
// its own.
//
// Durability is configurable at the group-commit point (WalOptions):
//   kOsCache   stream flush only — survives process crashes (the default,
//              and what the crash tests simulate)
//   kFdatasync fdatasync(2) per group commit — survives power failure
//              (file length of an append-only log is data, so fdatasync
//              suffices for the record payload)
//   kFsync     fsync(2) per group commit — fdatasync plus metadata
// The parent directory is not fsynced on create/reset; a crash in that
// window loses the whole (empty) file, which restart treats as fresh.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "graph/batch.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

/// What a group commit pushes the cycle's records to. See file header.
enum class WalDurability { kOsCache, kFdatasync, kFsync };

struct WalOptions {
  WalDurability durability = WalDurability::kOsCache;
};

/// Replay/scan callback: (lsn, batch), in strictly increasing LSN order.
using WalReplayFn = std::function<void(std::uint64_t, const UpdateBatch&)>;

/// The checksum stored in a record's commit marker: CRC32 over the record's
/// logical content (kind, edge count, LSN, every edge's endpoints) in a
/// fixed byte order. Exposed so tests and external tooling can craft or
/// verify records.
std::uint32_t wal_record_crc(std::uint64_t lsn, const UpdateBatch& batch);

/// What open() found in an existing log.
struct WalOpenInfo {
  std::size_t replayed = 0;      ///< committed batches replayed
  std::uint64_t last_lsn = 0;    ///< last committed LSN (= base_lsn if none)
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens the log at `path` for an n-vertex structure. If the file exists,
  /// replays every committed batch through `on_batch` (in append order),
  /// truncates any uncommitted tail, and positions for appending; otherwise
  /// creates the file with a fresh header (base LSN 0). Throws
  /// std::runtime_error on IO errors or a vertex-count / magic mismatch.
  WalOpenInfo open(const std::string& path, vertex_t num_vertices,
                   const WalReplayFn& on_batch, WalOptions options = {});

  /// Appends one batch record under `lsn` (buffered — not committed until
  /// flush()). LSNs must be consecutive; edges are logged as given (callers
  /// pass canonical deduplicated batches).
  void append(std::uint64_t lsn, const UpdateBatch& batch);

  /// Group commit: pushes every appended record to the OS in one flush,
  /// then applies the configured durability level (fdatasync/fsync).
  /// Throws std::runtime_error if the stream or sync failed.
  void flush();

  /// Compaction: truncates the log to an empty header whose base LSN is
  /// `base_lsn` (the LSN up to which the logical state has been persisted
  /// elsewhere — core/snapshot). Subsequent appends start at base_lsn + 1.
  void reset(std::uint64_t base_lsn);

  void close();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t base_lsn() const { return base_lsn_; }

 private:
  void write_header();
  void open_sync_fd();

  std::string path_;
  vertex_t num_vertices_ = 0;
  std::uint64_t base_lsn_ = 0;
  WalOptions options_;
  std::ofstream out_;
  int sync_fd_ = -1;  ///< second fd on the same file, for f(data)sync
};

/// What scan_wal() found.
struct WalScanInfo {
  std::size_t records = 0;
  std::uint64_t base_lsn = 0;
  std::uint64_t last_lsn = 0;
};

/// Read-only scan of a WAL's committed prefix, safe to run while another
/// process/thread appends to the same file (a partially flushed tail simply
/// ends the scan). Used by the cluster layer's late-joiner catch-up. A
/// missing or empty file scans as zero records. Throws std::runtime_error
/// on a magic/vertex-count mismatch.
WalScanInfo scan_wal(const std::string& path, vertex_t num_vertices,
                     const WalReplayFn& on_batch);

}  // namespace cpkcore::service
