// Write-ahead log for the serving layer: every coalesced batch is appended
// (one self-delimiting record per batch) and the whole drain cycle is
// flushed once — group commit — *before* the batch is applied to the CPLDS,
// so a restart can replay exactly the committed prefix of accepted work.
//
// Every batch carries a log sequence number (LSN), assigned monotonically by
// the service. The LSN is the cluster layer's replication cursor: replicas
// track the last LSN they applied, and the router's read-your-writes
// sessions pin reads to "at or after my last acked LSN".
//
// Formats (WalOptions::format — see wal_codec.hpp for the frame layout):
//
//   kBinaryV4   the default: a 24-byte header (magic "cpkc-wal-v4\n",
//               num_vertices, base_lsn) followed by length-prefixed,
//               CRC32-trailered binary WalFrames. append(const WalFrame&)
//               is a buffered memcpy of bytes the apply thread encoded
//               exactly once — the same bytes the shipper ring retains and
//               replicas decode.
//   kTextV3     the legacy line-oriented format (PR 3-5), kept readable
//               *and* writable as the migration source and the benchmark
//               baseline:
//                 cpkcore-wal-v3
//                 <num_vertices> <base_lsn>
//                 B I <count> <lsn>   then <count> "<u> <v>" edge lines,
//                 C <count> <lsn> <crc>   the commit marker (value CRC32)
//
// `base_lsn` is the LSN as of the last compaction: the log holds exactly
// LSNs (base_lsn, last_lsn], consecutively. A batch is durable iff its full
// record parses on replay AND its checksum matches; a truncated tail (crash
// between append and group commit), a torn length prefix, and a
// bit-flipped payload are treated identically — discarded, and the file is
// truncated back to the last committed byte before appending resumes.
//
// Opening a v3 text log with kBinaryV4 configured replays it and atomically
// rewrites it in v4 (temp file + rename + parent-dir fsync), so old
// deployments migrate on their first restart; opening a v4 file always
// stays v4 regardless of the configured format.
//
// Durability is configurable at the group-commit point (WalOptions):
//   kOsCache   buffered write only — survives process crashes (the default,
//              and what the crash tests simulate)
//   kFdatasync fdatasync(2) per group commit — survives power failure
//              (file length of an append-only log is data, so fdatasync
//              suffices for the record payload)
//   kFsync     fsync(2) per group commit — fdatasync plus metadata
// At those two levels the parent directory is also fsynced on create,
// reset(), and compact(), so a freshly-created or just-compacted log's
// directory entry itself survives power failure (previously a documented
// gap: a crash in that window lost the whole file).
//
// The segment is preallocated ahead of the append frontier
// (fallocate FALLOC_FL_KEEP_SIZE, WalOptions::preallocate_bytes per step),
// so group commits extend into reserved extents instead of paying block
// allocation on the latency path; logical file size is unaffected.
//
// Commit engines (WalOptions::engine — see wal_async.hpp): with kSync the
// caller's flush() pays the write+sync itself (the pre-PR-7 path, still the
// default for standalone WriteAheadLog users); with an async engine
// (flusher thread or io_uring) commit_async() hands the buffered bytes to
// the engine and returns immediately — the *staged* LSN (everything
// appended) runs ahead of the *durable* LSN watermark (everything the
// engine completed), wait_durable() bridges the two, and the durable
// callback fires as the watermark advances. While an engine is active the
// log routes every byte through it (the engine owns its own non-O_APPEND
// fd and explicit offsets); reset()/compact()/close() drain and stop the
// engine around their exclusive rewrites and restart it after.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/batch.hpp"
#include "service/wal_async.hpp"
#include "service/wal_codec.hpp"
#include "util/types.hpp"

namespace cpkcore::obs {
class HealthMonitor;
}  // namespace cpkcore::obs

namespace cpkcore::service {

struct WalOptions {
  WalDurability durability = WalDurability::kOsCache;
  /// Format for fresh logs and reset(); an existing file's detected format
  /// wins for appends (v3 only until migration), see file header.
  WalFormat format = WalFormat::kBinaryV4;
  /// Preallocation step (bytes) ahead of the append frontier; 0 disables.
  std::size_t preallocate_bytes = std::size_t{4} << 20;
  /// Commit engine. kSync keeps flush() on the caller; kAuto/kFlusher/
  /// kIoUring run an async engine behind commit_async() (see wal_async.hpp
  /// for resolution and the CPKC_WAL_ENGINE override, kAuto only).
  WalEngine engine = WalEngine::kSync;

  /// Health plane (optional): with a monitor set, the log registers a
  /// heartbeat component for the engine's completion thread (named
  /// "<health_prefix>wal_flusher" / "...wal_reaper" after the resolved
  /// engine) each time an engine starts, and tombstones it when the engine
  /// stops — so a flusher wedged behind a hung disk classifies stalled.
  obs::HealthMonitor* health = nullptr;
  std::string health_prefix;  ///< usually "" or "p<p>."
  int health_partition = -1;  ///< partition id for rollups (-1 = none)
};

/// Replay/scan callback: (lsn, batch), in strictly increasing LSN order.
using WalReplayFn = std::function<void(std::uint64_t, const UpdateBatch&)>;
/// Frame-scan callback: encoded frames, no payload decode (v4 files).
using WalFrameFn = std::function<void(const WalFramePtr&)>;

/// The checksum stored in a *v3* record's commit marker: CRC32 over the
/// record's logical content (kind, edge count, LSN, every edge's endpoints)
/// in a fixed byte order. Exposed so tests and external tooling can craft
/// or verify legacy records. (v4 frames carry a CRC over their wire bytes
/// instead — see wal_codec.hpp.)
std::uint32_t wal_record_crc(std::uint64_t lsn, const UpdateBatch& batch);

/// What open() found in an existing log.
struct WalOpenInfo {
  std::size_t replayed = 0;      ///< committed batches replayed
  std::uint64_t last_lsn = 0;    ///< last committed LSN (= base_lsn if none)
  WalFormat format = WalFormat::kBinaryV4;  ///< format the log operates in
  bool migrated = false;         ///< v3 file was rewritten as v4
  WalEngineKind engine = WalEngineKind::kSync;  ///< resolved commit engine
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens the log at `path` for an n-vertex structure. If the file exists,
  /// replays every committed batch through `on_batch` (in append order),
  /// truncates any uncommitted tail, migrates v3 -> v4 when so configured,
  /// and positions for appending; otherwise creates the file with a fresh
  /// header (base LSN 0). Throws std::runtime_error on IO errors or a
  /// vertex-count / magic mismatch.
  WalOpenInfo open(const std::string& path, vertex_t num_vertices,
                   const WalReplayFn& on_batch, WalOptions options = {});

  /// Appends one pre-encoded frame (buffered — not committed until
  /// flush()). The encode-once path: the caller encoded the batch, and the
  /// identical bytes go to disk here and to the shipper ring. The log must
  /// be operating in kBinaryV4 (std::logic_error otherwise).
  void append(const WalFrame& frame);

  /// Appends one batch record under `lsn` in the log's operating format
  /// (buffered). For binary logs this encodes a frame internally —
  /// convenience for tests/tools; the service uses append(const WalFrame&).
  /// LSNs must be consecutive; edges are logged as given (callers pass
  /// canonical deduplicated batches).
  void append(std::uint64_t lsn, const UpdateBatch& batch);

  /// Group commit: pushes every appended record to the OS in one write,
  /// then applies the configured durability level (fdatasync/fsync).
  /// With an async engine active this degenerates to commit_async() +
  /// wait_durable(staged) — every appended record is durable on return
  /// either way. Throws std::runtime_error if the write or sync failed.
  void flush();

  /// Pipelined group commit: hands the buffered records to the async
  /// engine and returns without waiting for the disk — the durable-LSN
  /// watermark advances (and the durable callback fires) when the engine
  /// completes them. Falls back to flush() when no engine is active. May
  /// block briefly on engine backpressure; throws after an engine failure.
  void commit_async();

  /// Last LSN handed to append() (= durable_lsn() in sync mode after each
  /// flush; runs ahead of it while async commits are in flight).
  [[nodiscard]] std::uint64_t staged_lsn() const {
    return staged_lsn_.load(std::memory_order_acquire);
  }

  /// The durable watermark: every record with LSN <= this has completed
  /// its configured durability level (for kOsCache: reached the OS cache).
  [[nodiscard]] std::uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Blocks until durable_lsn() >= min(lsn, staged_lsn()) — the clamp
  /// makes "wait for everything appended so far" spelled wait_durable(~0)
  /// safe. Callable from any thread concurrently with commits. Throws
  /// std::runtime_error if the engine failed.
  void wait_durable(std::uint64_t lsn);

  /// Replaces the durable callback (fires on the engine's completion
  /// thread, *before* wait_durable waiters wake — see wal_async.hpp; never
  /// fires in sync mode). Call before the first commit_async().
  void set_durable_callback(WalCommitEngine::DurableFn fn);

  /// Flush-pipeline counters, accumulated across engine restarts
  /// (compact()/reset()) and including sync-mode flushes.
  [[nodiscard]] WalFlushStats flush_stats() const;

  /// True when an async engine owns the flush path.
  [[nodiscard]] bool async_active() const;

  /// The engine actually running (kSync when none).
  [[nodiscard]] WalEngineKind engine_kind() const;

  /// Compaction to empty: truncates the log to a header whose base LSN is
  /// `base_lsn` (the LSN up to which the logical state has been persisted
  /// elsewhere — core/snapshot). Subsequent appends start at base_lsn + 1.
  void reset(std::uint64_t base_lsn);

  /// Compaction preserving the suffix: atomically rewrites the log so it
  /// holds exactly the committed records with LSN > `base_lsn` over a
  /// header whose base LSN is `base_lsn`. This is the streaming-checkpoint
  /// primitive: the snapshot covers (…, base_lsn] while updates kept
  /// committing past it, and only the (small) suffix is rewritten — the
  /// pause is proportional to the records committed since the cut, not to
  /// the structure size. Buffered appends are flushed first. Exclusive use
  /// only (no concurrent append/flush).
  void compact(std::uint64_t base_lsn);

  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t base_lsn() const { return base_lsn_; }
  /// Format the open log is appending in.
  [[nodiscard]] WalFormat format() const { return format_; }

 private:
  void append_file_header();
  void write_out(const unsigned char* data, std::size_t len);
  void sync_data();
  void sync_parent_dir() const;
  void ensure_preallocated(std::size_t upcoming);
  /// Builds + starts the configured engine at the current append frontier
  /// (call only with no bytes in flight: right after open/reset/compact).
  void start_engine();
  /// Drains, detaches, and stops the engine, folding its counters into the
  /// accumulated totals. No-op when none is active.
  void stop_engine(bool swallow_errors);
  [[nodiscard]] std::shared_ptr<WalCommitEngine> engine_snapshot() const;

  std::string path_;
  vertex_t num_vertices_ = 0;
  std::uint64_t base_lsn_ = 0;
  WalOptions options_;
  WalFormat format_ = WalFormat::kBinaryV4;
  int fd_ = -1;
  std::vector<unsigned char> buf_;  ///< records awaiting the group commit
  std::uint64_t size_ = 0;  ///< logical file size (flushed + staged bytes)
  std::uint64_t prealloc_limit_ = 0;  ///< extent frontier already reserved

  WalEngineKind engine_kind_ = WalEngineKind::kSync;  ///< resolved at open
  /// Engine completion thread's health handle (tombstoned in stop_engine;
  /// a fresh one is registered per engine start so the name tracks the
  /// engine actually running).
  obs::HealthComponent* engine_heartbeat_ = nullptr;
  /// Active engine (null in sync mode / during exclusive rewrites). The
  /// pointer swap is under engine_mu_; cross-thread readers snapshot the
  /// shared_ptr and never hold engine_mu_ across an engine call that can
  /// block (stop() runs with engine_mu_ released — its completion thread
  /// takes engine_mu_ in the durable-callback wrapper).
  std::shared_ptr<WalCommitEngine> engine_;
  mutable std::mutex engine_mu_;
  WalCommitEngine::DurableFn durable_cb_;  ///< under engine_mu_
  std::atomic<std::uint64_t> staged_lsn_{0};
  std::atomic<std::uint64_t> durable_lsn_{0};
  /// Counters folded across engine restarts + sync-mode flushes (relaxed:
  /// monotone stats, read by flush_stats from any thread).
  std::atomic<std::uint64_t> acc_flushes_{0};
  std::atomic<std::uint64_t> acc_flushed_bytes_{0};
};

/// What scan_wal() / scan_wal_frames() found.
struct WalScanInfo {
  std::size_t records = 0;
  std::uint64_t base_lsn = 0;
  std::uint64_t last_lsn = 0;
  WalFormat format = WalFormat::kBinaryV4;
  /// Bytes of the committed prefix, header included. Anything past this is
  /// a torn or corrupt tail (walcat --verify compares against file size;
  /// v3 text logs may legitimately trail whitespace past it).
  std::uint64_t committed_bytes = 0;
};

/// Read-only scan of a WAL's committed prefix (either format), safe to run
/// while another process/thread appends to the same file (a partially
/// flushed tail simply ends the scan). A missing or empty file scans as
/// zero records. Throws std::runtime_error on a magic/vertex-count
/// mismatch.
WalScanInfo scan_wal(const std::string& path, vertex_t num_vertices,
                     const WalReplayFn& on_batch);

/// Like scan_wal, but delivers encoded frames: for a v4 file the bytes are
/// lifted straight off disk with no payload decode — the cluster layer's
/// late-joiner catch-up path, which ships the identical bytes the live
/// stream carries. A v3 file is parsed and re-encoded per record (the one
/// legacy seam where catch-up pays an encode).
WalScanInfo scan_wal_frames(const std::string& path, vertex_t num_vertices,
                            const WalFrameFn& on_frame);

/// A WAL file's identity, read without scanning records (walcat, tooling).
struct WalHeaderInfo {
  WalFormat format = WalFormat::kBinaryV4;
  vertex_t num_vertices = 0;
  std::uint64_t base_lsn = 0;
};

/// Reads a WAL's header. Throws std::runtime_error on a missing/empty file
/// or unrecognized magic.
WalHeaderInfo read_wal_header(const std::string& path);

}  // namespace cpkcore::service
