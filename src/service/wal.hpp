// Write-ahead log for the serving layer: every coalesced batch is appended
// (records + a per-batch commit marker) and the whole drain cycle is flushed
// once — group commit — *before* the batch is applied to the CPLDS, so a
// restart can replay exactly the committed prefix of accepted work.
//
// Format (text, line-oriented, mirrors the snapshot format):
//   cpkcore-wal-v1
//   <num_vertices>
//   B I <count>      one record per batch: kind I(nsert)/D(elete) + size
//   <u> <v>          ... count edge lines ...
//   C <count>        commit marker (redundant count, cross-checked)
//
// A batch is durable iff its full record *including the commit marker*
// parses on replay; a truncated or marker-less tail (crash between append
// and group commit) is discarded and the file is truncated back to the last
// committed byte before appending resumes.
//
// Durability is to the OS page cache (stream flush, no fsync): the log
// protects against process crashes, which is what the tests simulate.
// fsync levels for power-failure durability are a ROADMAP item.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "graph/batch.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens the log at `path` for an n-vertex structure. If the file exists,
  /// replays every committed batch through `on_batch` (in append order),
  /// truncates any uncommitted tail, and positions for appending; otherwise
  /// creates the file with a fresh header. Returns the number of batches
  /// replayed. Throws std::runtime_error on IO errors or a vertex-count /
  /// magic mismatch.
  std::size_t open(const std::string& path, vertex_t num_vertices,
                   const std::function<void(const UpdateBatch&)>& on_batch);

  /// Appends one batch record (buffered — not committed until flush()).
  /// Edges are logged as given; callers pass canonical deduplicated batches.
  void append(const UpdateBatch& batch);

  /// Group commit: pushes every appended record to the OS in one flush.
  /// Throws std::runtime_error if the stream failed.
  void flush();

  /// Compaction: truncates the log to an empty header. Called after the
  /// logical state has been persisted elsewhere (core/snapshot).
  void reset();

  void close();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_header();

  std::string path_;
  vertex_t num_vertices_ = 0;
  std::ofstream out_;
};

}  // namespace cpkcore::service
