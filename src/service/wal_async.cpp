#include "service/wal_async.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/health.hpp"
#include "obs/trace.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#define CPKC_HAS_IO_URING 1
#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#else
#define CPKC_HAS_IO_URING 0
#endif

namespace cpkcore::service {

namespace {

int open_engine_fd(const std::string& path) {
  // Deliberately NOT O_APPEND: both engines write at explicit tracked
  // offsets, and Linux ignores the pwrite offset on O_APPEND fds — every
  // write would silently land at the (racing) end of file instead.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("WAL engine: cannot open " + path);
  }
  return fd;
}

void pwrite_all(int fd, const unsigned char* data, std::size_t len,
                std::uint64_t offset, const std::string& path) {
  while (len > 0) {
    const ssize_t n =
        ::pwrite(fd, data, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WAL engine write failed: " + path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void sync_fd(int fd, WalDurability durability, const std::string& path) {
  if (durability == WalDurability::kFdatasync) {
    if (::fdatasync(fd) != 0) {
      throw std::runtime_error("WAL engine fdatasync failed: " + path);
    }
  } else if (durability == WalDurability::kFsync) {
    if (::fsync(fd) != 0) {
      throw std::runtime_error("WAL engine fsync failed: " + path);
    }
  }
}

// ------------------------------------------------------------- kFlusher

/// Flusher-thread double buffer: submit() appends to the pending queue; the
/// flusher swaps the whole queue out (the "other" buffer), pwrites every
/// commit, syncs ONCE for the swap, then fires the callback and advances
/// the watermark. Backlog therefore compounds into larger group commits:
/// the deeper the durability pipeline falls behind, the more commits each
/// sync covers.
class FlusherEngine final : public WalCommitEngine {
 public:
  FlusherEngine(const std::string& path, WalDurability durability,
                std::uint64_t start_offset, std::uint64_t start_lsn,
                obs::HealthComponent* heartbeat)
      : path_(path),
        durability_(durability),
        fd_(open_engine_fd(path)),
        heartbeat_(heartbeat),
        next_offset_(start_offset),
        durable_(start_lsn) {
    thread_ = std::thread([this] { run(); });
  }

  ~FlusherEngine() override { stop(/*swallow_errors=*/true); }

  void set_durable_callback(DurableFn fn) override {
    std::lock_guard lock(mu_);
    callback_ = std::move(fn);
  }

  void submit(std::vector<unsigned char> bytes,
              std::uint64_t upto_lsn) override {
    if (bytes.empty()) return;
    std::lock_guard lock(mu_);
    if (failed_) throw std::runtime_error(error_);
    if (stopping_) {
      throw std::runtime_error("WAL engine: submit after stop: " + path_);
    }
    Flight flight;
    flight.offset = next_offset_;
    flight.upto_lsn = upto_lsn;
    flight.bytes = std::move(bytes);
    next_offset_ += flight.bytes.size();
    inflight_bytes_ += flight.bytes.size();
    ++inflight_items_;
    queue_.push_back(std::move(flight));
    work_cv_.notify_one();
  }

  void wait_durable(std::uint64_t lsn) override {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] {
      return failed_ || durable_ >= lsn || (exited_ && queue_.empty());
    });
    if (failed_) throw std::runtime_error(error_);
  }

  void wait_idle() override {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return failed_ || inflight_items_ == 0; });
    if (failed_) throw std::runtime_error(error_);
  }

  [[nodiscard]] std::uint64_t durable_lsn() const override {
    std::lock_guard lock(mu_);
    return durable_;
  }

  [[nodiscard]] WalFlushStats stats() const override {
    std::lock_guard lock(mu_);
    WalFlushStats out;
    out.flushes = flushes_;
    out.flushed_bytes = flushed_bytes_;
    out.flush_depth = inflight_items_;
    out.inflight_bytes = inflight_bytes_;
    return out;
  }

  [[nodiscard]] WalEngineKind kind() const override {
    return WalEngineKind::kFlusher;
  }

  void stop(bool swallow_errors) override {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
      work_cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (!swallow_errors) {
      std::lock_guard lock(mu_);
      if (failed_) throw std::runtime_error(error_);
    }
  }

 private:
  struct Flight {
    std::uint64_t offset = 0;
    std::uint64_t upto_lsn = 0;
    std::vector<unsigned char> bytes;
  };

  void run() {
    CPKC_TRACE_THREAD_NAME("wal_flusher");
    for (;;) {
      std::deque<Flight> batch;
      {
        std::unique_lock lock(mu_);
        // Parked on an empty queue is healthy, however long it lasts;
        // stamped busy again the moment a swap starts.
        if (heartbeat_ != nullptr && queue_.empty()) heartbeat_->idle();
        work_cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) break;  // stopping_, fully drained
        batch.swap(queue_);
      }
      if (heartbeat_ != nullptr) heartbeat_->busy();
      std::uint64_t bytes_written = 0;
      CPKC_TRACE_SPAN(flush_span, "wal_flush", batch.back().upto_lsn,
                      batch.size());
      try {
        for (const Flight& f : batch) {
          pwrite_all(fd_, f.bytes.data(), f.bytes.size(), f.offset, path_);
          bytes_written += f.bytes.size();
        }
        sync_fd(fd_, durability_, path_);
      } catch (const std::exception& e) {
        fail(e.what());
        return;
      }
      const std::uint64_t upto = batch.back().upto_lsn;
      if (heartbeat_ != nullptr) heartbeat_->beat();
      DurableFn cb;
      {
        std::lock_guard lock(mu_);
        cb = callback_;
      }
      // Callback BEFORE the watermark/cv publish (see header contract).
      if (cb) cb(upto, nullptr);
      {
        std::lock_guard lock(mu_);
        durable_ = std::max(durable_, upto);
        flushes_ += 1;
        flushed_bytes_ += bytes_written;
        inflight_items_ -= batch.size();
        inflight_bytes_ -= bytes_written;
        done_cv_.notify_all();
      }
    }
    std::lock_guard lock(mu_);
    exited_ = true;
    done_cv_.notify_all();
  }

  void fail(const std::string& what) {
    DurableFn cb;
    std::uint64_t durable = 0;
    {
      std::lock_guard lock(mu_);
      failed_ = true;
      exited_ = true;
      error_ = what;
      cb = callback_;
      durable = durable_;
      done_cv_.notify_all();
    }
    if (cb) cb(durable, &error_);
  }

  const std::string path_;
  const WalDurability durability_;
  int fd_ = -1;
  obs::HealthComponent* const heartbeat_;  ///< owned by the caller

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Flight> queue_;       // under mu_ (the "front" buffer)
  DurableFn callback_;             // under mu_
  std::uint64_t next_offset_ = 0;  // under mu_ (submitter side)
  std::uint64_t durable_ = 0;      // under mu_
  std::uint64_t flushes_ = 0;      // under mu_
  std::uint64_t flushed_bytes_ = 0;   // under mu_
  std::size_t inflight_items_ = 0;    // under mu_
  std::size_t inflight_bytes_ = 0;    // under mu_
  bool stopping_ = false;  // under mu_
  bool exited_ = false;    // under mu_
  bool failed_ = false;    // under mu_
  std::string error_;      // under mu_

  std::thread thread_;
};

// ------------------------------------------------------------- kIoUring

#if CPKC_HAS_IO_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// Raw io_uring engine: per commit one IORING_OP_WRITEV SQE (linked to an
/// IORING_OP_FSYNC SQE at the sync durability levels), submitted from the
/// caller under mu_; a reaper thread blocks in io_uring_enter(GETEVENTS)
/// and advances the watermark over the contiguous completed prefix of
/// commits in submission order — independent linked chains may complete out
/// of order, and a hole in the prefix means an *earlier* commit's bytes are
/// not yet durable, so later completions must not move the watermark.
class IoUringEngine final : public WalCommitEngine {
 public:
  IoUringEngine(const std::string& path, WalDurability durability,
                std::uint64_t start_offset, std::uint64_t start_lsn,
                obs::HealthComponent* heartbeat)
      : path_(path),
        durability_(durability),
        fd_(open_engine_fd(path)),
        heartbeat_(heartbeat),
        next_offset_(start_offset),
        durable_(start_lsn) {
    io_uring_params params;
    std::memset(&params, 0, sizeof params);
    ring_fd_ = sys_io_uring_setup(kRingEntries, &params);
    if (ring_fd_ < 0) {
      ::close(fd_);
      throw std::runtime_error("io_uring_setup failed for WAL: " + path);
    }
    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                                 cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_SQ_RING);
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_mem_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED ||
        sqes_mem_ == MAP_FAILED) {
      cleanup();
      throw std::runtime_error("io_uring mmap failed for WAL: " + path);
    }
    auto* sq = static_cast<unsigned char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<unsigned char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    sqes_ = static_cast<io_uring_sqe*>(sqes_mem_);
    reaper_ = std::thread([this] { reap_loop(); });
  }

  ~IoUringEngine() override { stop(/*swallow_errors=*/true); }

  void set_durable_callback(DurableFn fn) override {
    std::lock_guard lock(mu_);
    callback_ = std::move(fn);
  }

  void submit(std::vector<unsigned char> bytes,
              std::uint64_t upto_lsn) override {
    if (bytes.empty()) return;
    std::unique_lock lock(mu_);
    if (failed_) throw std::runtime_error(error_);
    if (stopping_) {
      throw std::runtime_error("WAL engine: submit after stop: " + path_);
    }
    // The in-flight cap is the natural backpressure toward the apply
    // thread, and it bounds SQE/CQE usage well below the ring size.
    space_cv_.wait(lock, [&] {
      return flights_.size() < kMaxInflight || failed_;
    });
    if (failed_) throw std::runtime_error(error_);
    const std::uint64_t id = next_flight_id_++;
    Flight& flight = flights_[id];
    flight.upto_lsn = upto_lsn;
    flight.bytes = std::move(bytes);
    flight.size = flight.bytes.size();
    flight.needs_sync = durability_ != WalDurability::kOsCache;
    flight.iov.iov_base = flight.bytes.data();
    flight.iov.iov_len = flight.bytes.size();
    const std::uint64_t offset = next_offset_;
    next_offset_ += flight.size;
    inflight_bytes_ += flight.size;

    unsigned tail = *sq_tail_;  // submitters own the SQ tail, under mu_
    const unsigned mask = *sq_mask_;
    {
      io_uring_sqe* sqe = &sqes_[tail & mask];
      std::memset(sqe, 0, sizeof *sqe);
      sqe->opcode = IORING_OP_WRITEV;
      sqe->fd = fd_;
      sqe->addr = reinterpret_cast<std::uint64_t>(&flight.iov);
      sqe->len = 1;
      sqe->off = offset;
      sqe->user_data = (id << 1) | 0;
      // Link write -> fsync: the kernel runs the fsync only after this
      // write succeeded (a failed write cancels it with -ECANCELED).
      if (flight.needs_sync) sqe->flags = IOSQE_IO_LINK;
      sq_array_[tail & mask] = tail & mask;
      ++tail;
    }
    if (flight.needs_sync) {
      io_uring_sqe* sqe = &sqes_[tail & mask];
      std::memset(sqe, 0, sizeof *sqe);
      sqe->opcode = IORING_OP_FSYNC;
      sqe->fd = fd_;
      sqe->fsync_flags =
          durability_ == WalDurability::kFdatasync ? IORING_FSYNC_DATASYNC
                                                   : 0;
      sqe->user_data = (id << 1) | 1;
      sq_array_[tail & mask] = tail & mask;
      ++tail;
    }
    enter_submit(tail);
  }

  void wait_durable(std::uint64_t lsn) override {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] {
      return failed_ || durable_ >= lsn || (stopping_ && flights_.empty());
    });
    if (failed_) throw std::runtime_error(error_);
  }

  void wait_idle() override {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return failed_ || flights_.empty(); });
    if (failed_) throw std::runtime_error(error_);
  }

  [[nodiscard]] std::uint64_t durable_lsn() const override {
    std::lock_guard lock(mu_);
    return durable_;
  }

  [[nodiscard]] WalFlushStats stats() const override {
    std::lock_guard lock(mu_);
    WalFlushStats out;
    out.flushes = flushes_;
    out.flushed_bytes = flushed_bytes_;
    out.flush_depth = flights_.size();
    out.inflight_bytes = inflight_bytes_;
    return out;
  }

  [[nodiscard]] WalEngineKind kind() const override {
    return WalEngineKind::kIoUring;
  }

  void stop(bool swallow_errors) override {
    {
      std::unique_lock lock(mu_);
      if (!stopping_) {
        stopping_ = true;
        // A NOP completion wakes the reaper out of GETEVENTS so it can
        // observe the stop flag even with nothing in flight.
        unsigned tail = *sq_tail_;
        const unsigned mask = *sq_mask_;
        io_uring_sqe* sqe = &sqes_[tail & mask];
        std::memset(sqe, 0, sizeof *sqe);
        sqe->opcode = IORING_OP_NOP;
        sqe->user_data = kNopUserData;
        sq_array_[tail & mask] = tail & mask;
        enter_submit(tail + 1);
      }
      space_cv_.notify_all();
    }
    if (reaper_.joinable()) reaper_.join();
    cleanup();
    if (!swallow_errors) {
      std::lock_guard lock(mu_);
      if (failed_) throw std::runtime_error(error_);
    }
  }

 private:
  static constexpr unsigned kRingEntries = 128;
  static constexpr std::size_t kMaxInflight = 16;
  static constexpr std::uint64_t kNopUserData = ~std::uint64_t{0};

  struct Flight {
    std::uint64_t upto_lsn = 0;
    std::size_t size = 0;
    std::vector<unsigned char> bytes;  // map node: address-stable for iov
    struct iovec iov {};
    bool needs_sync = false;
    bool write_done = false;
    bool sync_done = false;
    bool failed = false;
  };

  /// Publishes the SQ tail and submits the new SQEs. Caller holds mu_.
  void enter_submit(unsigned new_tail) {
    const unsigned old_tail = *sq_tail_;
    __atomic_store_n(sq_tail_, new_tail, __ATOMIC_RELEASE);
    unsigned to_submit = new_tail - old_tail;
    while (to_submit > 0) {
      const int rc = sys_io_uring_enter(ring_fd_, to_submit, 0, 0);
      if (rc < 0) {
        if (errno == EINTR) continue;
        failed_ = true;
        error_ = "io_uring_enter failed for WAL: " + path_;
        done_cv_.notify_all();
        space_cv_.notify_all();
        throw std::runtime_error(error_);
      }
      to_submit -= static_cast<unsigned>(rc);
    }
  }

  void reap_loop() {
    CPKC_TRACE_THREAD_NAME("wal_uring_reaper");
    for (;;) {
      {
        std::lock_guard lock(mu_);
        if (stopping_ && flights_.empty()) break;
        // Idle ONLY with nothing in flight: blocked in GETEVENTS while
        // commits are pending is a hung disk — the stall the watchdog
        // must see, not a parked thread it should excuse.
        if (heartbeat_ != nullptr) {
          if (flights_.empty()) {
            heartbeat_->idle();
          } else {
            heartbeat_->busy();
          }
        }
      }
      const int rc =
          sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0 && errno != EINTR) {
        fail_from_reaper("io_uring_enter(GETEVENTS) failed for WAL: " +
                         path_);
        return;
      }
      drain_cqes();
    }
    std::lock_guard lock(mu_);
    done_cv_.notify_all();
  }

  void drain_cqes() {
    // Lift (user_data, res) pairs off the CQ ring first — the kernel owns
    // the tail (acquire pairs with its publish), we own the head.
    std::vector<std::pair<std::uint64_t, int>> events;
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    const unsigned mask = *cq_mask_;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & mask];
      events.emplace_back(cqe.user_data, cqe.res);
      ++head;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    if (events.empty()) return;

    std::uint64_t new_durable = 0;
    bool advanced = false;
    std::string first_error;
    std::uint64_t bytes_done = 0;
    std::uint64_t flushes_done = 0;
    DurableFn cb;
    {
      std::lock_guard lock(mu_);
      for (const auto& [user_data, res] : events) {
        if (user_data == kNopUserData) continue;
        const auto it = flights_.find(user_data >> 1);
        if (it == flights_.end()) continue;
        Flight& f = it->second;
        if ((user_data & 1) == 0) {
          f.write_done = true;
          // A short write leaves a hole exactly like a failed one.
          if (res < 0 || static_cast<std::size_t>(res) != f.size) {
            f.failed = true;
          }
        } else {
          f.sync_done = true;
          // -ECANCELED: the linked write failed first; that flight is
          // already marked. Any other error is a sync failure of its own.
          if (res < 0 && res != -ECANCELED) f.failed = true;
          if (res == -ECANCELED) f.failed = true;
        }
      }
      // Advance the watermark over the contiguous completed prefix (the
      // map is keyed by flight id = submission order).
      while (!flights_.empty()) {
        auto it = flights_.begin();
        Flight& f = it->second;
        const bool complete =
            f.write_done && (!f.needs_sync || f.sync_done);
        if (!complete) break;
        if (f.failed && first_error.empty() && !failed_) {
          first_error = "io_uring WAL write/sync failed: " + path_;
        }
        if (!f.failed && !failed_ && first_error.empty()) {
          new_durable = f.upto_lsn;
          advanced = true;
          bytes_done += f.size;
          ++flushes_done;
        }
        inflight_bytes_ -= f.size;
        flights_.erase(it);
      }
      cb = callback_;
      space_cv_.notify_all();
    }
    // Callbacks outside mu_, success before failure, watermark published
    // after the callback returns (see the header contract).
    if (advanced) {
      CPKC_TRACE_INSTANT("wal_reap", new_durable, bytes_done);
    }
    if (advanced && cb) cb(new_durable, nullptr);
    {
      std::lock_guard lock(mu_);
      if (advanced) {
        durable_ = std::max(durable_, new_durable);
        flushes_ += flushes_done;
        flushed_bytes_ += bytes_done;
      }
      done_cv_.notify_all();
    }
    if (!first_error.empty()) fail_from_reaper(first_error);
  }

  void fail_from_reaper(const std::string& what) {
    DurableFn cb;
    std::uint64_t durable = 0;
    {
      std::lock_guard lock(mu_);
      if (failed_) return;
      failed_ = true;
      error_ = what;
      cb = callback_;
      durable = durable_;
      done_cv_.notify_all();
      space_cv_.notify_all();
    }
    if (cb) cb(durable, &error_);
  }

  void cleanup() {
    if (cleaned_) return;
    cleaned_ = true;
    if (sqes_mem_ != nullptr && sqes_mem_ != MAP_FAILED) {
      ::munmap(sqes_mem_, sqes_bytes_);
    }
    if (cq_ring_ != nullptr && cq_ring_ != MAP_FAILED &&
        cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    sq_ring_ = cq_ring_ = sqes_mem_ = nullptr;
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  const std::string path_;
  const WalDurability durability_;
  int fd_ = -1;
  obs::HealthComponent* const heartbeat_;  ///< owned by the caller
  int ring_fd_ = -1;

  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_mem_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  bool cleaned_ = false;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::condition_variable space_cv_;
  std::map<std::uint64_t, Flight> flights_;  // under mu_, submission order
  std::uint64_t next_flight_id_ = 1;         // under mu_
  DurableFn callback_;                       // under mu_
  std::uint64_t next_offset_ = 0;            // under mu_
  std::uint64_t durable_ = 0;                // under mu_
  std::uint64_t flushes_ = 0;                // under mu_
  std::uint64_t flushed_bytes_ = 0;          // under mu_
  std::size_t inflight_bytes_ = 0;           // under mu_
  bool stopping_ = false;                    // under mu_
  bool failed_ = false;                      // under mu_
  std::string error_;                        // under mu_

  std::thread reaper_;
};

#endif  // CPKC_HAS_IO_URING

}  // namespace

const char* wal_engine_name(WalEngineKind kind) {
  switch (kind) {
    case WalEngineKind::kSync:
      return "sync";
    case WalEngineKind::kFlusher:
      return "flusher";
    case WalEngineKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

bool io_uring_engine_available() {
#if CPKC_HAS_IO_URING
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof params);
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;  // ENOSYS / EPERM / seccomp: no ring here
    ::close(fd);
    return true;
  }();
  return available;
#else
  return false;
#endif
}

WalEngineKind resolve_wal_engine(WalEngine requested) {
  if (requested == WalEngine::kAuto) {
    // The env override applies ONLY to kAuto: a caller that pinned an
    // engine explicitly (tests, tools) stays pinned while CI forces, e.g.,
    // CPKC_WAL_ENGINE=flusher across every auto-configured service.
    if (const char* env = std::getenv("CPKC_WAL_ENGINE")) {
      if (std::strcmp(env, "sync") == 0) return WalEngineKind::kSync;
      if (std::strcmp(env, "flusher") == 0) return WalEngineKind::kFlusher;
      if (std::strcmp(env, "io_uring") == 0 ||
          std::strcmp(env, "uring") == 0) {
        return io_uring_engine_available() ? WalEngineKind::kIoUring
                                           : WalEngineKind::kFlusher;
      }
      // "auto" (or anything unrecognized) falls through to the probe.
    }
    return io_uring_engine_available() ? WalEngineKind::kIoUring
                                       : WalEngineKind::kFlusher;
  }
  switch (requested) {
    case WalEngine::kSync:
      return WalEngineKind::kSync;
    case WalEngine::kFlusher:
      return WalEngineKind::kFlusher;
    case WalEngine::kIoUring:
      return io_uring_engine_available() ? WalEngineKind::kIoUring
                                         : WalEngineKind::kFlusher;
    case WalEngine::kAuto:
      break;  // handled above
  }
  return WalEngineKind::kFlusher;
}

std::unique_ptr<WalCommitEngine> make_wal_commit_engine(
    WalEngineKind kind, const std::string& path, WalDurability durability,
    std::uint64_t start_offset, std::uint64_t start_lsn,
    obs::HealthComponent* heartbeat) {
  if (kind == WalEngineKind::kIoUring) {
#if CPKC_HAS_IO_URING
    return std::make_unique<IoUringEngine>(path, durability, start_offset,
                                           start_lsn, heartbeat);
#else
    kind = WalEngineKind::kFlusher;
#endif
  }
  if (kind == WalEngineKind::kFlusher) {
    return std::make_unique<FlusherEngine>(path, durability, start_offset,
                                           start_lsn, heartbeat);
  }
  throw std::logic_error(
      "make_wal_commit_engine: kSync means no engine; do not build one");
}

}  // namespace cpkcore::service
