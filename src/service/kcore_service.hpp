// KCoreService — the ingest-and-query serving layer over the CPLDS.
//
// The CPLDS threading contract allows one driver thread to feed batches
// while any number of readers query. This facade turns that into a service:
//
//   clients ──submit──▶ sharded ingest buffers ──drain──▶ coalescer
//                                                            │
//   clients ◀─ticket ack─ apply thread ◀─apply batches─ WAL (group commit)
//                                │
//                                └──▶ commit listener (cluster log shipping)
//
//  * Ingest: any number of client threads submit individual insert/delete
//    edge ops; each op lands in a shard chosen by its edge key (so all ops
//    on one edge share a shard and keep their submission order) and returns
//    a Ticket that can be waited on for "applied" acknowledgment. Shards
//    may be bounded (max_pending_per_shard) with a block-or-reject
//    admission policy; per-shard queue depths are exposed in ServiceStats.
//  * Coalescing: a single background apply thread drains the shards —
//    bounded by an adaptive op budget targeting a configured apply latency —
//    and canonicalizes the stream into deduplicated homogeneous batches.
//  * LSNs: every committed batch gets the next log sequence number; the
//    per-cycle group commit publishes them to the WAL and then to the
//    registered commit listener (the cluster layer's log shipper). An op's
//    acknowledgment carries the LSN its cycle committed at, which is what
//    read-your-writes sessions pin their reads to.
//  * Durability: with a WAL configured, batches are appended and group-
//    committed (one commit per drain cycle, at the configured WalDurability
//    level); on construction the service warm-restarts from the snapshot
//    (if present) plus the committed WAL suffix, resuming LSN numbering
//    where the log left off. checkpoint() compacts by streaming a snapshot
//    from a consistent cut, pausing updates only to copy the edge set and
//    to swap in the compacted WAL.
//  * Pipelined commit (ServiceConfig::wal_engine): with an async WAL engine
//    the cycle splits into *applied* (CPLDS mutated, frame staged to the
//    engine and — at ShipPoint::kApplied — handed to the shipper) and
//    *durable* (the engine's watermark reached the cycle's last LSN). At
//    kOsCache tickets still ack at applied; at the sync levels the ack, the
//    commit-LSN advance, and (at ShipPoint::kDurable) the shipping are
//    deferred to the watermark via the engine's completion callback — so
//    cycle N+1 applies while cycle N's flush is in flight, and no ack ever
//    precedes its durability point. The committed-prefix replay guarantee
//    is unchanged: replay truncates to what actually hit the disk.
//  * Encode-once: with a binary WAL and/or a commit listener, the apply
//    thread encodes each committed batch into a WalFrame exactly once; the
//    WAL appends those bytes and the listener (the cluster layer's log
//    shipper) receives the same frame by shared_ptr.
//  * Acknowledgment: a ticket is acked once its drain cycle has been
//    logged and applied; ops that coalesce into no-ops (duplicates,
//    self-loops, already-present edges) ack like any other. Per-shard acks
//    are monotone in submission order.
//  * Reads: any thread, at any time, through all three ReadModes.
//
// Durability is one-way: acked ops always survive restart. An un-acked op
// usually does not (never logged), but one caught between the group commit
// and its ack IS replayed on restart even though wait() reported failure —
// so treat wait() == false as "outcome unknown", as with any durable
// system's in-doubt window, not as "safe to blindly resubmit".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/reclaim.hpp"
#include "core/read_modes.hpp"
#include "core/snapshot.hpp"
#include "obs/metrics.hpp"
#include "service/coalescer.hpp"
#include "service/wal.hpp"
#include "util/cacheline.hpp"
#include "util/latency_histogram.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

/// What submit() does when its shard is at max_pending_per_shard.
enum class AdmissionPolicy {
  kBlock,   ///< wait for the apply thread to drain space
  kReject,  ///< throw QueueFullError immediately
};

/// Thrown by submit() under AdmissionPolicy::kReject when the op's shard
/// queue is full. Callers may retry later; nothing was enqueued.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// When committed batches are handed to the commit listener (the cluster
/// layer's log shipper). kApplied (the default, PR 6 behavior) ships as
/// soon as the cycle is staged — replicas track the primary's apply and may
/// briefly run ahead of durability; kDurable ships only once the cycle's
/// WAL bytes reached their durability point, so a replica can never have
/// applied a record a primary crash could un-commit.
enum class ShipPoint { kApplied, kDurable };

struct ServiceConfig {
  /// Vertex-id space. Ignored (the snapshot's count wins) when warm-
  /// restarting from an existing snapshot file.
  vertex_t num_vertices = 0;

  /// CPLDS parameters (also used to rebuild from snapshot/WAL).
  double delta = kDefaultDelta;
  double lambda = kDefaultLambda;
  int levels_per_group_cap = kDefaultLevelsPerGroupCap;
  CPLDS::Options cplds{};

  /// Memory-reclamation scheme behind the wait-free read path. The service
  /// owns one Reclaimer per instance (never the process-global one) and
  /// wires it into the CPLDS. kAuto honors the CPKC_RECLAIMER env override
  /// ("epoch" / "ebr" / "qsbr") and defaults to epoch-based.
  concurrent::ReclaimerKind reclaimer = concurrent::ReclaimerKind::kAuto;

  /// Ingest shards. More shards = less submit contention.
  std::size_t num_shards = 8;

  /// Backpressure: max ops queued per ingest shard; 0 = unbounded.
  std::size_t max_pending_per_shard = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  /// Durability. Empty path = feature off.
  std::string wal_path;
  std::string snapshot_path;
  WalDurability wal_durability = WalDurability::kOsCache;
  /// WAL format for fresh logs; an existing v3 log is migrated to v4 on
  /// open when this is kBinaryV4 (the default), or kept text when kTextV3
  /// (the benchmark baseline).
  WalFormat wal_format = WalFormat::kBinaryV4;
  /// WAL commit engine. kAuto (the default) probes for io_uring and falls
  /// back to the flusher thread, honoring the CPKC_WAL_ENGINE env override
  /// (kAuto only — a pinned engine stays pinned); kSync restores the
  /// pre-PR-7 flush-on-the-apply-thread path, the benchmark baseline.
  WalEngine wal_engine = WalEngine::kAuto;
  /// Where committed batches are handed to the commit listener.
  ShipPoint ship_at = ShipPoint::kApplied;

  /// Adaptive drain budget: per-cycle op count is steered so one cycle's
  /// apply time lands near the target, within [min_ops, max_ops].
  std::uint64_t target_apply_ns = 5'000'000;  // 5 ms
  std::size_t min_ops_per_cycle = 64;
  std::size_t max_ops_per_cycle = 1u << 20;

  /// Cluster-feedback backoff thresholds for the drain budget (0 = trigger
  /// off). The signals themselves arrive via observe_cluster_feedback() —
  /// the cluster layer (or any periodic observer) computes max replica lag
  /// and read p99 and feeds them in; the sizer backs the budget off when
  /// either exceeds its threshold.
  std::uint64_t max_replica_lag = 0;     ///< records behind primary apply
  std::uint64_t target_read_p99_ns = 0;  ///< read-latency p99 ceiling, ns

  /// Flight-recorder metrics: when set, the service registers its stats as
  /// a collect source under `metrics_prefix` for the registry's lifetime
  /// overlap with the service (RAII-deregistered on destruction). Null =
  /// metrics off (the default keeps single-purpose tests quiet).
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "service.";

  /// Health plane (optional): with a monitor set, the service registers
  /// the apply thread's heartbeat as "<health_prefix>apply" (idle while
  /// parked on the ingest cv, beaten per drain cycle), passes the monitor
  /// through to the WAL for its engine-thread heartbeat, and — when the
  /// divergence thresholds below are nonzero — registers a value probe
  /// "<health_prefix>wal_divergence" sampling applied_lsn - durable_lsn
  /// (how far acked-side progress has run ahead of the disk). Null =
  /// health plane off.
  obs::HealthMonitor* health = nullptr;
  std::string health_prefix;  ///< usually "" or "p<p>."
  int health_partition = -1;  ///< partition id for rollups (-1 = none)
  /// Staged-vs-durable LSN divergence (records) past which the divergence
  /// probe classifies degraded / stalled; 0 disables that classification.
  std::uint64_t divergence_degraded = 0;
  std::uint64_t divergence_stalled = 0;
};

/// Handle for one submitted op: shard + 1-based per-shard sequence number.
struct Ticket {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
};

/// Counters and latency histograms, snapshot via KCoreService::stats().
struct ServiceStats {
  std::uint64_t submitted_ops = 0;   ///< ops accepted by submit()
  std::uint64_t acked_ops = 0;       ///< ops acknowledged (logged + applied)
  std::uint64_t applied_edges = 0;   ///< edges the CPLDS actually applied
  std::uint64_t batches = 0;         ///< homogeneous batches applied
  std::uint64_t cycles = 0;          ///< drain cycles (= group commits)
  std::uint64_t replayed_batches = 0;  ///< WAL batches replayed at startup
  std::uint64_t rejected_ops = 0;    ///< submits refused by kReject
  std::uint64_t blocked_submits = 0;  ///< submits that waited under kBlock
  std::uint64_t commit_lsn = 0;      ///< last group-committed LSN
  std::uint64_t applied_lsn = 0;     ///< last LSN applied to the CPLDS
  std::uint64_t durable_lsn = 0;     ///< WAL durable watermark
  double apply_seconds = 0.0;        ///< total time inside CPLDS::apply
  std::size_t batch_budget = 0;      ///< current adaptive per-cycle budget
  std::uint64_t wal_flushes = 0;     ///< completed WAL flushes (engine+sync)
  std::uint64_t wal_flush_bytes = 0;  ///< bytes those flushes made durable
  std::size_t wal_flush_depth = 0;   ///< gauge: commits in the engine queue
  std::size_t wal_inflight_bytes = 0;  ///< gauge: bytes of those commits
  std::string wal_engine = "sync";   ///< resolved engine (wal_engine_name)
  std::vector<std::size_t> shard_depths;  ///< queue-depth gauge per shard
  LatencyHistogram ack_latency;      ///< submit() -> acknowledgment, ns
  LatencyHistogram apply_latency;    ///< per-batch CPLDS::apply, ns
  /// submit() -> applied-to-the-CPLDS, ns: the ack-vs-apply split. With a
  /// sync WAL the two histograms coincide; with an async engine at a sync
  /// durability level the gap between them is the durability pipeline.
  LatencyHistogram applied_latency;
  /// applied -> acked per cycle, ns: how long acks trailed the apply while
  /// the flush was in flight (~0 when acks are inline).
  LatencyHistogram durable_lag;
  /// Non-empty iff the apply thread died on an error (e.g. WAL I/O
  /// failure): the service is stopped, un-acked waiters were released with
  /// wait() == false, and new submissions throw.
  std::string apply_error;
};

class KCoreService {
 public:
  /// Called by the apply thread for every committed batch, after the group
  /// commit and before the batch is applied/acked. The listener receives
  /// the encoded frame — the exact bytes the WAL just committed (the apply
  /// thread encodes each batch once and fans the frame out to both) — and
  /// shares ownership; it must not block. See set_commit_listener.
  using CommitListener = std::function<void(const WalFramePtr&)>;

  /// Builds the structure (cold start, or warm restart from
  /// config.snapshot_path + committed config.wal_path suffix) and starts
  /// the background apply thread. Throws std::runtime_error on IO errors,
  /// std::invalid_argument on a missing vertex count.
  explicit KCoreService(ServiceConfig config);
  ~KCoreService();

  KCoreService(const KCoreService&) = delete;
  KCoreService& operator=(const KCoreService&) = delete;

  // ---------------- ingest ----------------

  /// Thread-safe. Throws std::out_of_range for invalid vertex ids,
  /// std::runtime_error once the service has stopped, and QueueFullError
  /// when the op's shard is full under AdmissionPolicy::kReject (under
  /// kBlock it waits for space instead).
  Ticket submit(Update op);
  Ticket submit_insert(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kInsert});
  }
  Ticket submit_delete(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kDelete});
  }

  /// Blocks until the ticket's op is acknowledged; on success optionally
  /// reports the LSN the op was acknowledged at (the commit LSN of its
  /// drain cycle, or a later one — always a valid read-your-writes cursor
  /// for this op). Returns false iff the service stopped (crash) before
  /// the op was acknowledged — in which case the op's outcome is unknown:
  /// usually dropped, but replayed on restart if the crash landed between
  /// its group commit and its ack.
  bool wait(const Ticket& ticket, std::uint64_t* acked_lsn = nullptr);

  [[nodiscard]] bool is_applied(const Ticket& ticket) const;

  /// Blocks until every op submitted before the call is acknowledged.
  void drain();

  // ---------------- reads ----------------

  [[nodiscard]] double read_coreness(vertex_t v,
                                     ReadMode mode = ReadMode::kCplds) const {
    return read_with_mode(*ds_, v, mode);
  }
  [[nodiscard]] level_t read_level(vertex_t v,
                                   ReadMode mode = ReadMode::kCplds) const {
    return read_level_with_mode(*ds_, v, mode);
  }

  // ---------------- replication ----------------

  /// Registers the (single) committed-batch subscriber — the cluster
  /// layer's log shipper; pass nullptr to detach. Returns the last LSN
  /// already shipped as of registration: every batch with a higher LSN
  /// will be delivered, every batch at or below it will not. Depending on
  /// ServiceConfig::ship_at the listener runs on the apply thread (cycle
  /// lock held) or on the durability engine's completion thread: it must
  /// be fast and must not call back into this service.
  std::uint64_t set_commit_listener(CommitListener listener);

  /// Last group-committed / last applied LSN. On the primary, every acked
  /// write's LSN is <= applied_lsn() from the moment the ack is observable,
  /// so primary reads always satisfy read-your-writes. At the sync
  /// durability levels commit_lsn() advances at the durable watermark (an
  /// async engine may leave it trailing applied_lsn() while a flush is in
  /// flight); at kOsCache it advances when the cycle stages its bytes.
  [[nodiscard]] std::uint64_t commit_lsn() const {
    return commit_lsn_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }

  /// The WAL durable watermark: every record at or below it completed the
  /// configured durability level (= commit_lsn() without a WAL or at
  /// kOsCache).
  [[nodiscard]] std::uint64_t durable_lsn() const;

  /// Blocks until the WAL watermark covers `lsn` (clamped to what has been
  /// staged). Returns false when it cannot get there — engine failure or
  /// shutdown; callers treat that as "proceed and let the read-side error
  /// paths report the shortfall". Used by the cluster layer's disk
  /// catch-up, which must not scan the log for bytes still in flight.
  bool wait_wal_durable(std::uint64_t lsn);

  // ---------------- lifecycle ----------------

  /// Compaction, streaming from a consistent cut: briefly blocks updates to
  /// copy the live edge set and the cut LSN (a memory-bound pause), streams
  /// the snapshot to disk while updates keep committing, then briefly
  /// blocks again to publish the snapshot and rewrite the WAL down to the
  /// records past the cut. The update pause is proportional to the edge
  /// count (copy) plus the records committed during the stream (suffix
  /// rewrite) — never to the disk write of the snapshot itself. Readers are
  /// unaffected throughout. Throws std::logic_error when no snapshot path
  /// is configured.
  void checkpoint();

  /// Graceful shutdown: drains every pending op (logging + applying +
  /// acking it), then stops the apply thread. Idempotent.
  void shutdown();

  /// Test hook simulating a crash: stops the apply thread without draining.
  /// Pending (never-logged) ops are dropped; their wait() returns false.
  void simulate_crash();

  /// Fault-injection hook for the stall watchdog (tests, CLI `stall`):
  /// the next drain cycle sleeps `ms` on the apply thread *without*
  /// marking its heartbeat idle — exactly what a wedged apply (livelock,
  /// pathological batch, blocked syscall) looks like to the
  /// HealthMonitor. One-shot: the hook disarms as the cycle consumes it.
  void debug_inject_apply_stall(std::uint64_t ms) {
    inject_stall_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Maintenance/test hook: holds the apply thread between drain cycles
  /// (submits keep queueing, reads keep serving). When pause_applies()
  /// returns, no further ops will be drained until resume_applies();
  /// shutdown()/simulate_crash() override a pause. Used by the
  /// backpressure tests to make queue growth deterministic.
  void pause_applies();
  void resume_applies();

  // ---------------- inspection ----------------

  [[nodiscard]] vertex_t num_vertices() const { return ds_->num_vertices(); }
  [[nodiscard]] std::size_t num_edges() const { return ds_->num_edges(); }
  [[nodiscard]] std::size_t pending_ops() const {
    return pending_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Zeroes every counter and histogram (replayed_batches included), e.g.
  /// to measure a workload phase without a preload phase polluting the
  /// latency percentiles. Call at a quiescent point (after drain()). LSNs
  /// are cursors, not counters; they are unaffected.
  void reset_stats();

  /// Quiescent-only access (tests, validation).
  [[nodiscard]] const CPLDS& cplds() const { return *ds_; }

  // ---------------- cluster feedback ----------------

  /// Feeds the latest cluster health signals into the adaptive batch
  /// sizer: `replica_lag` is how many records the slowest replica trails
  /// this primary's applied LSN, `read_p99_ns` the current read-latency
  /// p99. Thread-safe (just stores atomics; the apply thread reads them
  /// each cycle). No-ops toward the budget unless the corresponding
  /// ServiceConfig threshold is nonzero.
  void observe_cluster_feedback(std::uint64_t replica_lag,
                                std::uint64_t read_p99_ns) {
    replica_lag_signal_.store(replica_lag, std::memory_order_relaxed);
    read_p99_signal_.store(read_p99_ns, std::memory_order_relaxed);
  }

 private:
  struct PendingOp {
    Update op;
    std::uint64_t submit_ns = 0;
  };

  struct alignas(kCacheLine) Shard {
    std::mutex mu;
    std::condition_variable ack_cv;
    std::condition_variable space_cv;  // backpressure: waits for drain space
    // Deque, not vector: drains erase a prefix each cycle, which must stay
    // O(taken) under backlog, not O(backlog).
    std::deque<PendingOp> pending;      // ops not yet drained (under mu)
    std::uint64_t submitted = 0;        // last issued seq (under mu)
    std::uint64_t drained = 0;          // last seq taken by the apply thread
    std::atomic<std::uint64_t> applied{0};  // last acked seq
    // LSN the acked prefix was committed at; written under mu before
    // `applied`'s release store, so a reader that observed its seq acked
    // reads an LSN at or after its op's cycle.
    std::atomic<std::uint64_t> acked_lsn{0};
  };

  /// One drained cycle's deferred-ack state, queued until the WAL durable
  /// watermark covers upto_lsn (sync durability levels with an async
  /// engine); acked inline otherwise.
  struct PendingCycle {
    std::uint64_t upto_lsn = 0;   ///< durable once the watermark reaches it
    std::uint64_t cycle_lsn = 0;  ///< LSN the cycle's ops ack at
    std::uint64_t applied_ns = 0;  ///< when the apply finished (lag split)
    struct ShardCut {
      std::size_t shard = 0;
      std::uint64_t upto = 0;
    };
    std::vector<ShardCut> drains;         ///< per-shard ack frontiers
    std::vector<std::uint64_t> submit_ns;  ///< per-op stamps (ack latency)
    std::vector<WalFramePtr> frames;  ///< ship-at-durable: held until then
  };

  [[nodiscard]] std::size_t shard_of(const Edge& e) const;

  void apply_loop();
  /// One drain-coalesce-log-apply-ack cycle; returns ops processed.
  std::size_t run_cycle();
  void stop(bool drain_first);
  /// Durability-engine completion callback (runs on its completion thread):
  /// advances commit_lsn_ at the sync levels and delivers every pending
  /// cycle the watermark now covers; an error fails the service like an
  /// apply-thread error.
  void on_durable(std::uint64_t lsn, const std::string* error);
  /// Ships (at ShipPoint::kDurable), records ack stats, and acks one
  /// cycle's shards. Caller holds pending_mu_ — every ack, inline or
  /// deferred, serializes through it, keeping per-shard acks monotone with
  /// two acker threads.
  void deliver_cycle(PendingCycle& cycle, std::uint64_t acked_at);
  void fail_from_durability(const std::string& what);

  ServiceConfig config_;
  /// Declared before ds_: the CPLDS destructor may still reference its
  /// reclaimer, and retired views are freed by the reclaimer's destructor.
  std::unique_ptr<concurrent::Reclaimer> reclaimer_;
  std::unique_ptr<CPLDS> ds_;
  WriteAheadLog wal_;
  std::unique_ptr<Shard[]> shards_;
  std::size_t num_shards_ = 0;

  // Ingest -> apply-thread signaling (Dekker-style sleep flag so submit()
  // skips the mutex unless the apply thread is actually parked).
  std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::atomic<std::size_t> pending_ops_{0};
  std::atomic<bool> apply_sleeping_{false};
  bool stop_requested_ = false;   // under ingest_mu_
  bool crash_requested_ = false;  // under ingest_mu_
  std::atomic<bool> stopped_{false};  ///< accepting no more submissions
  std::atomic<bool> dead_{false};     ///< apply thread exited
  std::atomic<bool> paused_{false};   ///< pause_applies() in effect

  // Serializes drain cycles against checkpoint() and listener swaps.
  // Lock order (outer to inner): apply_mu_ > pending_mu_ > ship_mu_ >
  // stats_mu_ > Shard::mu. The durability completion thread starts at
  // pending_mu_ and NEVER takes apply_mu_ (shutdown waits out the engine
  // while holding it).
  std::mutex apply_mu_;
  /// Written under apply_mu_ + ship_mu_ both; readable under either (the
  /// apply thread reads it under apply_mu_, the completion thread under
  /// ship_mu_).
  CommitListener commit_listener_;

  /// Cycles applied but not yet durable, in commit order (under
  /// pending_mu_). Non-empty only at the sync durability levels with an
  /// async engine.
  std::mutex pending_mu_;
  std::deque<PendingCycle> pending_;

  /// Shipping cursor: last LSN past the configured ship point (advances
  /// whether or not a listener is attached, so set_commit_listener's
  /// returned cursor is exact). Under ship_mu_.
  std::mutex ship_mu_;
  std::uint64_t shipped_lsn_ = 0;

  // LSN cursors. next_lsn_ is apply-thread-only (plus the constructor);
  // the atomics mirror it for cross-thread reads.
  std::uint64_t next_lsn_ = 0;
  std::atomic<std::uint64_t> commit_lsn_{0};
  std::atomic<std::uint64_t> applied_lsn_{0};

  AdaptiveBatchSizer sizer_;
  std::size_t drain_start_ = 0;  ///< rotating drain fairness (apply thread)
  /// Most recent applied->acked lag (ns), fed to the sizer so the batch
  /// budget backs off when the durability pipeline is the bottleneck.
  std::atomic<std::uint64_t> last_ack_lag_ns_{0};
  /// Latest cluster feedback (observe_cluster_feedback), read by the apply
  /// thread each cycle and fed to the sizer alongside the ack lag.
  std::atomic<std::uint64_t> replica_lag_signal_{0};
  std::atomic<std::uint64_t> read_p99_signal_{0};
  WalEngineKind wal_engine_kind_ = WalEngineKind::kSync;  ///< resolved

  /// Health plane (config_.health != nullptr): the apply thread's
  /// heartbeat and the staged-vs-durable divergence probe. Tombstoned in
  /// stop(); the monitor keeps the pointers valid after that.
  obs::HealthComponent* apply_heartbeat_ = nullptr;
  obs::HealthComponent* divergence_probe_ = nullptr;
  /// debug_inject_apply_stall: ms the next cycle busy-sleeps (one-shot).
  std::atomic<std::uint64_t> inject_stall_ms_{0};

  mutable std::mutex stats_mu_;
  ServiceStats stats_;  // guarded by stats_mu_ (atomic counters kept aside)
  std::atomic<std::uint64_t> submitted_ops_{0};
  std::atomic<std::uint64_t> rejected_ops_{0};
  std::atomic<std::uint64_t> blocked_submits_{0};
  /// flush_stats() totals as of the last reset_stats(), so stats() reports
  /// per-phase flush counts like every other counter.
  std::atomic<std::uint64_t> flush_baseline_{0};
  std::atomic<std::uint64_t> flush_bytes_baseline_{0};

  std::thread apply_thread_;

  // Declared last: deregisters before any member the collect callback
  // reads is destroyed.
  obs::MetricsGroup metrics_;
};

}  // namespace cpkcore::service
