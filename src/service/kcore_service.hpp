// KCoreService — the ingest-and-query serving layer over the CPLDS.
//
// The CPLDS threading contract allows one driver thread to feed batches
// while any number of readers query. This facade turns that into a service:
//
//   clients ──submit──▶ sharded ingest buffers ──drain──▶ coalescer
//                                                            │
//   clients ◀─ticket ack─ apply thread ◀─apply batches─ WAL (group commit)
//
//  * Ingest: any number of client threads submit individual insert/delete
//    edge ops; each op lands in a shard chosen by its edge key (so all ops
//    on one edge share a shard and keep their submission order) and returns
//    a Ticket that can be waited on for "applied" acknowledgment.
//  * Coalescing: a single background apply thread drains the shards —
//    bounded by an adaptive op budget targeting a configured apply latency —
//    and canonicalizes the stream into deduplicated homogeneous batches.
//  * Durability: with a WAL configured, batches are appended and group-
//    committed (one flush per drain cycle) before they are applied; on
//    construction the service warm-restarts from the snapshot (if present)
//    plus the committed WAL suffix. checkpoint() compacts: snapshot the
//    live edge set, then truncate the WAL.
//  * Acknowledgment: a ticket is acked once its drain cycle has been
//    logged and applied; ops that coalesce into no-ops (duplicates,
//    self-loops, already-present edges) ack like any other. Per-shard acks
//    are monotone in submission order.
//  * Reads: any thread, at any time, through all three ReadModes.
//
// Durability is one-way: acked ops always survive restart. An un-acked op
// usually does not (never logged), but one caught between the group commit
// and its ack IS replayed on restart even though wait() reported failure —
// so treat wait() == false as "outcome unknown", as with any durable
// system's in-doubt window, not as "safe to blindly resubmit".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/read_modes.hpp"
#include "core/snapshot.hpp"
#include "service/coalescer.hpp"
#include "service/wal.hpp"
#include "util/cacheline.hpp"
#include "util/latency_histogram.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

struct ServiceConfig {
  /// Vertex-id space. Ignored (the snapshot's count wins) when warm-
  /// restarting from an existing snapshot file.
  vertex_t num_vertices = 0;

  /// CPLDS parameters (also used to rebuild from snapshot/WAL).
  double delta = kDefaultDelta;
  double lambda = kDefaultLambda;
  int levels_per_group_cap = kDefaultLevelsPerGroupCap;
  CPLDS::Options cplds{};

  /// Ingest shards. More shards = less submit contention.
  std::size_t num_shards = 8;

  /// Durability. Empty path = feature off.
  std::string wal_path;
  std::string snapshot_path;

  /// Adaptive drain budget: per-cycle op count is steered so one cycle's
  /// apply time lands near the target, within [min_ops, max_ops].
  std::uint64_t target_apply_ns = 5'000'000;  // 5 ms
  std::size_t min_ops_per_cycle = 64;
  std::size_t max_ops_per_cycle = 1u << 20;
};

/// Handle for one submitted op: shard + 1-based per-shard sequence number.
struct Ticket {
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
};

/// Counters and latency histograms, snapshot via KCoreService::stats().
struct ServiceStats {
  std::uint64_t submitted_ops = 0;   ///< ops accepted by submit()
  std::uint64_t acked_ops = 0;       ///< ops acknowledged (logged + applied)
  std::uint64_t applied_edges = 0;   ///< edges the CPLDS actually applied
  std::uint64_t batches = 0;         ///< homogeneous batches applied
  std::uint64_t cycles = 0;          ///< drain cycles (= group commits)
  std::uint64_t replayed_batches = 0;  ///< WAL batches replayed at startup
  double apply_seconds = 0.0;        ///< total time inside CPLDS::apply
  std::size_t batch_budget = 0;      ///< current adaptive per-cycle budget
  LatencyHistogram ack_latency;      ///< submit() -> acknowledgment, ns
  LatencyHistogram apply_latency;    ///< per-batch CPLDS::apply, ns
  /// Non-empty iff the apply thread died on an error (e.g. WAL I/O
  /// failure): the service is stopped, un-acked waiters were released with
  /// wait() == false, and new submissions throw.
  std::string apply_error;
};

class KCoreService {
 public:
  /// Builds the structure (cold start, or warm restart from
  /// config.snapshot_path + committed config.wal_path suffix) and starts
  /// the background apply thread. Throws std::runtime_error on IO errors,
  /// std::invalid_argument on a missing vertex count.
  explicit KCoreService(ServiceConfig config);
  ~KCoreService();

  KCoreService(const KCoreService&) = delete;
  KCoreService& operator=(const KCoreService&) = delete;

  // ---------------- ingest ----------------

  /// Thread-safe. Throws std::out_of_range for invalid vertex ids and
  /// std::runtime_error once the service has stopped.
  Ticket submit(Update op);
  Ticket submit_insert(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kInsert});
  }
  Ticket submit_delete(vertex_t u, vertex_t v) {
    return submit({{u, v}, UpdateKind::kDelete});
  }

  /// Blocks until the ticket's op is acknowledged. Returns false iff the
  /// service stopped (crash) before the op was acknowledged — in which case
  /// the op's outcome is unknown: usually dropped, but replayed on restart
  /// if the crash landed between its group commit and its ack.
  bool wait(const Ticket& ticket);

  [[nodiscard]] bool is_applied(const Ticket& ticket) const;

  /// Blocks until every op submitted before the call is acknowledged.
  void drain();

  // ---------------- reads ----------------

  [[nodiscard]] double read_coreness(vertex_t v,
                                     ReadMode mode = ReadMode::kCplds) const {
    return read_with_mode(*ds_, v, mode);
  }
  [[nodiscard]] level_t read_level(vertex_t v,
                                   ReadMode mode = ReadMode::kCplds) const {
    return read_level_with_mode(*ds_, v, mode);
  }

  // ---------------- lifecycle ----------------

  /// Compaction: blocks updates, snapshots the live edge set to
  /// config.snapshot_path, truncates the WAL. Readers are unaffected.
  /// Throws std::logic_error when no snapshot path is configured.
  void checkpoint();

  /// Graceful shutdown: drains every pending op (logging + applying +
  /// acking it), then stops the apply thread. Idempotent.
  void shutdown();

  /// Test hook simulating a crash: stops the apply thread without draining.
  /// Pending (never-logged) ops are dropped; their wait() returns false.
  void simulate_crash();

  // ---------------- inspection ----------------

  [[nodiscard]] vertex_t num_vertices() const { return ds_->num_vertices(); }
  [[nodiscard]] std::size_t num_edges() const { return ds_->num_edges(); }
  [[nodiscard]] std::size_t pending_ops() const {
    return pending_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ServiceStats stats() const;

  /// Zeroes every counter and histogram (replayed_batches included), e.g.
  /// to measure a workload phase without a preload phase polluting the
  /// latency percentiles. Call at a quiescent point (after drain()).
  void reset_stats();

  /// Quiescent-only access (tests, validation).
  [[nodiscard]] const CPLDS& cplds() const { return *ds_; }

 private:
  struct PendingOp {
    Update op;
    std::uint64_t submit_ns = 0;
  };

  struct alignas(kCacheLine) Shard {
    std::mutex mu;
    std::condition_variable ack_cv;
    // Deque, not vector: drains erase a prefix each cycle, which must stay
    // O(taken) under backlog, not O(backlog).
    std::deque<PendingOp> pending;      // ops not yet drained (under mu)
    std::uint64_t submitted = 0;        // last issued seq (under mu)
    std::uint64_t drained = 0;          // last seq taken by the apply thread
    std::atomic<std::uint64_t> applied{0};  // last acked seq
  };

  [[nodiscard]] std::size_t shard_of(const Edge& e) const;

  void apply_loop();
  /// One drain-coalesce-log-apply-ack cycle; returns ops processed.
  std::size_t run_cycle();
  void stop(bool drain_first);

  ServiceConfig config_;
  std::unique_ptr<CPLDS> ds_;
  WriteAheadLog wal_;
  std::unique_ptr<Shard[]> shards_;
  std::size_t num_shards_ = 0;

  // Ingest -> apply-thread signaling (Dekker-style sleep flag so submit()
  // skips the mutex unless the apply thread is actually parked).
  std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::atomic<std::size_t> pending_ops_{0};
  std::atomic<bool> apply_sleeping_{false};
  bool stop_requested_ = false;   // under ingest_mu_
  bool crash_requested_ = false;  // under ingest_mu_
  std::atomic<bool> stopped_{false};  ///< accepting no more submissions
  std::atomic<bool> dead_{false};     ///< apply thread exited

  // Serializes drain cycles against checkpoint().
  std::mutex apply_mu_;

  AdaptiveBatchSizer sizer_;
  std::size_t drain_start_ = 0;  ///< rotating drain fairness (apply thread)

  mutable std::mutex stats_mu_;
  ServiceStats stats_;  // guarded by stats_mu_ (submitted_ops kept atomic)
  std::atomic<std::uint64_t> submitted_ops_{0};

  std::thread apply_thread_;
};

}  // namespace cpkcore::service
