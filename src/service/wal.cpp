#include "service/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/health.hpp"
#include "util/crc32.hpp"

namespace cpkcore::service {

namespace {

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool starts_with(const std::vector<unsigned char>& data, const char* magic) {
  const std::size_t len = std::strlen(magic);
  return data.size() > len &&
         std::memcmp(data.data(), magic, len) == 0 &&
         data[len] == '\n';
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open WAL: " + path);
  std::vector<unsigned char> out;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    out.insert(out.end(), buf, buf + in.gcount());
  }
  return out;
}

void write_all_fd(int fd, const unsigned char* data, std::size_t len,
                  const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WAL write failed: " + path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Atomically replaces `path` with `data`: temp file, fsync (replacing a
/// log is not a place to risk an empty rename target on power loss),
/// rename, parent-dir fsync.
void replace_file(const std::string& path,
                  const std::vector<unsigned char>& data) {
  const std::string tmp = path + ".rewrite";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) throw std::runtime_error("cannot create " + tmp);
  try {
    write_all_fd(fd, data.data(), data.size(), tmp);
    if (::fsync(fd) != 0) throw std::runtime_error("fsync failed: " + tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::filesystem::rename(tmp, path);
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

// ---------------------------------------------------------------- v3 text

struct ParsedLog {
  std::streampos committed_end{};
  std::size_t records = 0;
  std::uint64_t base_lsn = 0;
  std::uint64_t last_lsn = 0;
};

/// Parses header + committed batches of a v3 text log from an open stream;
/// the first malformed / unterminated / out-of-sequence record marks the
/// uncommitted tail and stops the parse. Throws on a bad header only.
ParsedLog parse_committed_v3(std::ifstream& in, const std::string& path,
                             vertex_t num_vertices,
                             const WalReplayFn& on_batch) {
  std::string magic;
  if (!std::getline(in, magic) || magic != kWalMagicV3) {
    throw std::runtime_error("bad WAL header in " + path);
  }
  vertex_t file_n = 0;
  std::uint64_t base = 0;
  if (!(in >> file_n >> base)) {
    throw std::runtime_error("bad WAL vertex count in " + path);
  }
  if (file_n != num_vertices) {
    throw std::runtime_error("WAL vertex count mismatch in " + path);
  }
  ParsedLog out;
  out.base_lsn = base;
  out.last_lsn = base;
  out.committed_end = in.tellg();
  for (;;) {
    char tag = 0;
    if (!(in >> tag) || tag != 'B') break;
    char kind = 0;
    std::size_t count = 0;
    std::uint64_t lsn = 0;
    if (!(in >> kind >> count >> lsn) || (kind != 'I' && kind != 'D')) break;
    // LSNs are consecutive from the base; a gap or regression means the
    // record was never fully committed (or the file is damaged past the
    // committed prefix) — stop here, like any other malformed tail.
    if (lsn != out.last_lsn + 1) break;
    UpdateBatch batch;
    batch.kind = kind == 'I' ? UpdateKind::kInsert : UpdateKind::kDelete;
    batch.edges.reserve(count);
    bool ok = true;
    for (std::size_t i = 0; i < count; ++i) {
      vertex_t u = 0;
      vertex_t v = 0;
      if (!(in >> u >> v) || u >= num_vertices || v >= num_vertices) {
        ok = false;
        break;
      }
      batch.edges.push_back({u, v});
    }
    if (!ok) break;
    char marker = 0;
    std::size_t marker_count = 0;
    std::uint64_t marker_lsn = 0;
    std::uint32_t marker_crc = 0;
    if (!(in >> marker >> marker_count >> marker_lsn >> marker_crc) ||
        marker != 'C' || marker_count != count || marker_lsn != lsn ||
        marker_crc != wal_record_crc(lsn, batch)) {
      break;
    }
    if (on_batch) on_batch(lsn, batch);
    ++out.records;
    out.last_lsn = lsn;
    out.committed_end = in.tellg();
  }
  return out;
}

void append_text_header(std::vector<unsigned char>& out,
                        vertex_t num_vertices, std::uint64_t base_lsn) {
  std::string s = kWalMagicV3;
  s += '\n';
  s += std::to_string(num_vertices);
  s += ' ';
  s += std::to_string(base_lsn);
  s += '\n';
  out.insert(out.end(), s.begin(), s.end());
}

void append_text_record(std::vector<unsigned char>& out, std::uint64_t lsn,
                        const UpdateBatch& batch) {
  std::string s = "B ";
  s += batch.kind == UpdateKind::kInsert ? 'I' : 'D';
  s += ' ';
  s += std::to_string(batch.edges.size());
  s += ' ';
  s += std::to_string(lsn);
  s += '\n';
  for (const Edge& e : batch.edges) {
    s += std::to_string(e.u);
    s += ' ';
    s += std::to_string(e.v);
    s += '\n';
  }
  s += "C ";
  s += std::to_string(batch.edges.size());
  s += ' ';
  s += std::to_string(lsn);
  s += ' ';
  s += std::to_string(wal_record_crc(lsn, batch));
  s += '\n';
  out.insert(out.end(), s.begin(), s.end());
}

// -------------------------------------------------------------- v4 binary

struct ParsedV4 {
  std::size_t committed_end = 0;
  std::size_t records = 0;
  std::uint64_t base_lsn = 0;
  std::uint64_t last_lsn = 0;
};

/// Walks the committed frames of a v4 image: header, then frames while each
/// parses, checksums, and continues the LSN sequence. The first torn /
/// corrupt / out-of-sequence frame ends the committed prefix. Throws on a
/// bad header only.
ParsedV4 parse_committed_v4(const unsigned char* data, std::size_t size,
                            const std::string& path, vertex_t num_vertices,
                            const WalFrameFn& on_frame) {
  if (size < kWalHeaderV4Bytes) {
    throw std::runtime_error("bad WAL header in " + path);
  }
  const vertex_t file_n = get_u32(data + 12);
  if (file_n != num_vertices) {
    throw std::runtime_error("WAL vertex count mismatch in " + path);
  }
  ParsedV4 out;
  out.base_lsn = get_u64(data + 16);
  out.last_lsn = out.base_lsn;
  out.committed_end = kWalHeaderV4Bytes;
  std::size_t off = kWalHeaderV4Bytes;
  for (;;) {
    std::size_t consumed = 0;
    const WalFramePtr frame =
        WalFrame::try_parse(data + off, size - off, num_vertices, &consumed);
    if (frame == nullptr || frame->lsn() != out.last_lsn + 1) break;
    if (on_frame) on_frame(frame);
    ++out.records;
    out.last_lsn = frame->lsn();
    off += consumed;
    out.committed_end = off;
  }
  return out;
}

}  // namespace

std::uint32_t wal_record_crc(std::uint64_t lsn, const UpdateBatch& batch) {
  Crc32 crc;
  crc.update_u8(batch.kind == UpdateKind::kInsert ? 'I' : 'D');
  crc.update_u64(batch.edges.size());
  crc.update_u64(lsn);
  for (const Edge& e : batch.edges) {
    crc.update_u32(e.u);
    crc.update_u32(e.v);
  }
  return crc.value();
}

WalOpenInfo WriteAheadLog::open(const std::string& path,
                                vertex_t num_vertices,
                                const WalReplayFn& on_batch,
                                WalOptions options) {
  close();
  path_ = path;
  num_vertices_ = num_vertices;
  base_lsn_ = 0;
  options_ = options;
  format_ = options.format;
  buf_.clear();
  size_ = 0;
  prealloc_limit_ = 0;
  staged_lsn_.store(0, std::memory_order_relaxed);
  durable_lsn_.store(0, std::memory_order_relaxed);
  acc_flushes_.store(0, std::memory_order_relaxed);
  acc_flushed_bytes_.store(0, std::memory_order_relaxed);

  namespace fs = std::filesystem;
  WalOpenInfo info;
  bool created = false;
  // A crash inside open()/reset()'s truncate-then-write-header window
  // leaves an existing zero-byte file; treat it as fresh rather than
  // bricking every subsequent restart. A *non-empty* file with a bad
  // header still throws — that is corruption (or the wrong file), and
  // silently overwriting it would destroy evidence.
  if (fs::exists(path) && fs::file_size(path) > 0) {
    const std::vector<unsigned char> contents = slurp(path);
    if (starts_with(contents, kWalMagicV4)) {
      // An existing v4 file stays v4 regardless of the configured format.
      format_ = WalFormat::kBinaryV4;
      const ParsedV4 parsed = parse_committed_v4(
          contents.data(), contents.size(), path, num_vertices,
          on_batch == nullptr
              ? WalFrameFn{}
              : WalFrameFn{[&](const WalFramePtr& f) {
                  on_batch(f->lsn(), f->decode_batch());
                }});
      base_lsn_ = parsed.base_lsn;
      info.replayed = parsed.records;
      info.last_lsn = parsed.last_lsn;
      if (parsed.committed_end < contents.size()) {
        fs::resize_file(path, parsed.committed_end);
      }
      size_ = parsed.committed_end;
    } else if (starts_with(contents, kWalMagicV3)) {
      const bool migrate = options_.format == WalFormat::kBinaryV4;
      std::vector<unsigned char> rebuilt;
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open WAL: " + path);
      const ParsedLog parsed = parse_committed_v3(
          in, path, num_vertices,
          [&](std::uint64_t lsn, const UpdateBatch& batch) {
            if (migrate) {
              const WalFramePtr f = WalFrame::encode(lsn, batch);
              rebuilt.insert(rebuilt.end(), f->bytes().begin(),
                             f->bytes().end());
            }
            if (on_batch) on_batch(lsn, batch);
          });
      in.close();
      base_lsn_ = parsed.base_lsn;
      info.replayed = parsed.records;
      info.last_lsn = parsed.last_lsn;
      if (migrate) {
        // Migration: atomically rewrite the replayed prefix as v4, so the
        // log's history survives even though no snapshot may cover it yet.
        std::vector<unsigned char> image;
        append_wal_header_v4(image, num_vertices_, base_lsn_);
        image.insert(image.end(), rebuilt.begin(), rebuilt.end());
        replace_file(path, image);
        format_ = WalFormat::kBinaryV4;
        info.migrated = true;
        size_ = image.size();
      } else {
        format_ = WalFormat::kTextV3;
        if (parsed.committed_end >= 0 &&
            static_cast<std::uintmax_t>(parsed.committed_end) <
                fs::file_size(path)) {
          fs::resize_file(path,
                          static_cast<std::uintmax_t>(parsed.committed_end));
        }
        size_ = static_cast<std::uint64_t>(
            std::max<std::streamoff>(0, parsed.committed_end));
        // The committed prefix may end mid-line (tellg stops before the
        // newline); records are whitespace-delimited, so one separator
        // keeps the stream parseable.
        buf_.push_back('\n');
      }
    } else {
      throw std::runtime_error("bad WAL header in " + path);
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) throw std::runtime_error("cannot append to WAL: " + path);
  } else {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) throw std::runtime_error("cannot create WAL: " + path);
    created = true;
    append_file_header();
  }
  info.format = format_;
  prealloc_limit_ = size_;
  const std::uint64_t start_lsn = info.replayed > 0 ? info.last_lsn : base_lsn_;
  staged_lsn_.store(start_lsn, std::memory_order_relaxed);
  // flush() below runs in sync mode (the engine starts after it), so the
  // header/truncation point is on disk before the engine takes the fd over.
  flush();
  // A freshly-created file only survives power failure once its directory
  // entry is durable too; at the sync durability levels, close that window
  // here (migration's replace_file already fsyncs the directory itself).
  if (created && options_.durability != WalDurability::kOsCache) {
    sync_parent_dir();
  }
  engine_kind_ = resolve_wal_engine(options_.engine);
  start_engine();
  info.engine = engine_kind_;
  return info;
}

void WriteAheadLog::start_engine() {
  if (engine_kind_ == WalEngineKind::kSync) return;
  if (options_.health != nullptr) {
    // One heartbeat per engine incarnation, named after what actually
    // runs; the old handle was tombstoned in stop_engine.
    std::string name = options_.health_prefix;
    name += engine_kind_ == WalEngineKind::kIoUring ? "wal_reaper"
                                                    : "wal_flusher";
    engine_heartbeat_ = options_.health->register_thread(
        std::move(name), options_.health_partition);
  }
  std::shared_ptr<WalCommitEngine> engine = make_wal_commit_engine(
      engine_kind_, path_, options_.durability, size_,
      staged_lsn_.load(std::memory_order_relaxed), engine_heartbeat_);
  engine->set_durable_callback(
      [this](std::uint64_t lsn, const std::string* error) {
        if (error == nullptr) {
          // Monotone max (a restarted engine re-seeds at the old staged
          // LSN, never below the published watermark).
          std::uint64_t cur = durable_lsn_.load(std::memory_order_relaxed);
          while (cur < lsn && !durable_lsn_.compare_exchange_weak(
                                  cur, lsn, std::memory_order_release,
                                  std::memory_order_relaxed)) {
          }
        }
        WalCommitEngine::DurableFn cb;
        {
          std::lock_guard lock(engine_mu_);
          cb = durable_cb_;
        }
        if (cb) cb(lsn, error);
      });
  std::lock_guard lock(engine_mu_);
  engine_ = std::move(engine);
}

void WriteAheadLog::stop_engine(bool swallow_errors) {
  std::shared_ptr<WalCommitEngine> engine;
  {
    std::lock_guard lock(engine_mu_);
    engine = std::move(engine_);
    engine_ = nullptr;
  }
  if (engine == nullptr) return;
  // stop() drains and joins with engine_mu_ released: the completion
  // thread's durable-callback wrapper takes engine_mu_. Fold the stopped
  // engine's counters + final watermark (its last *good* LSN even on a
  // failure — never past what actually hit the disk) either way.
  const auto fold = [&] {
    const WalFlushStats s = engine->stats();
    acc_flushes_.fetch_add(s.flushes, std::memory_order_relaxed);
    acc_flushed_bytes_.fetch_add(s.flushed_bytes, std::memory_order_relaxed);
    const std::uint64_t final_lsn = engine->durable_lsn();
    std::uint64_t cur = durable_lsn_.load(std::memory_order_relaxed);
    while (cur < final_lsn && !durable_lsn_.compare_exchange_weak(
                                  cur, final_lsn, std::memory_order_release,
                                  std::memory_order_relaxed)) {
    }
    // The engine thread is joined by stop() on every path (failure
    // included), so the heartbeat can be tombstoned here.
    if (engine_heartbeat_ != nullptr && options_.health != nullptr) {
      options_.health->unregister(engine_heartbeat_);
      engine_heartbeat_ = nullptr;
    }
  };
  try {
    engine->stop(swallow_errors);
  } catch (...) {
    fold();
    throw;
  }
  fold();
}

std::shared_ptr<WalCommitEngine> WriteAheadLog::engine_snapshot() const {
  std::lock_guard lock(engine_mu_);
  return engine_;
}

void WriteAheadLog::append_file_header() {
  if (format_ == WalFormat::kBinaryV4) {
    append_wal_header_v4(buf_, num_vertices_, base_lsn_);
  } else {
    append_text_header(buf_, num_vertices_, base_lsn_);
  }
}

void WriteAheadLog::append(const WalFrame& frame) {
  if (format_ != WalFormat::kBinaryV4) {
    throw std::logic_error(
        "WriteAheadLog::append(WalFrame): log is not in binary format");
  }
  buf_.insert(buf_.end(), frame.bytes().begin(), frame.bytes().end());
  staged_lsn_.store(frame.lsn(), std::memory_order_release);
}

void WriteAheadLog::append(std::uint64_t lsn, const UpdateBatch& batch) {
  if (format_ == WalFormat::kBinaryV4) {
    const WalFramePtr frame = WalFrame::encode(lsn, batch);
    buf_.insert(buf_.end(), frame->bytes().begin(), frame->bytes().end());
  } else {
    append_text_record(buf_, lsn, batch);
  }
  staged_lsn_.store(lsn, std::memory_order_release);
}

void WriteAheadLog::write_out(const unsigned char* data, std::size_t len) {
  write_all_fd(fd_, data, len, path_);
}

void WriteAheadLog::flush() {
  if (fd_ < 0) throw std::runtime_error("WAL flush failed: " + path_);
  const std::shared_ptr<WalCommitEngine> engine = engine_snapshot();
  if (engine != nullptr) {
    // Async mode never writes through fd_ (the engine owns the append
    // frontier): a full flush is submit-everything + wait-for-the-watermark.
    commit_async();
    engine->wait_durable(staged_lsn_.load(std::memory_order_acquire));
    return;
  }
  if (!buf_.empty()) {
    ensure_preallocated(buf_.size());
    const std::size_t bytes = buf_.size();
    write_out(buf_.data(), bytes);
    size_ += bytes;
    buf_.clear();
    acc_flushes_.fetch_add(1, std::memory_order_relaxed);
    acc_flushed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  sync_data();
  durable_lsn_.store(staged_lsn_.load(std::memory_order_relaxed),
                     std::memory_order_release);
}

void WriteAheadLog::commit_async() {
  if (fd_ < 0) throw std::runtime_error("WAL commit failed: " + path_);
  const std::shared_ptr<WalCommitEngine> engine = engine_snapshot();
  if (engine == nullptr) {
    flush();
    return;
  }
  if (buf_.empty()) return;
  // Preallocation goes through fd_ — same inode the engine writes to, so
  // its extents land ahead of the engine's append frontier all the same.
  ensure_preallocated(buf_.size());
  std::vector<unsigned char> bytes;
  bytes.swap(buf_);
  size_ += bytes.size();  // staged: the engine owns these offsets now
  engine->submit(std::move(bytes),
                 staged_lsn_.load(std::memory_order_relaxed));
}

void WriteAheadLog::wait_durable(std::uint64_t lsn) {
  const std::uint64_t staged = staged_lsn_.load(std::memory_order_acquire);
  if (lsn > staged) lsn = staged;
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return;
  const std::shared_ptr<WalCommitEngine> engine = engine_snapshot();
  if (engine != nullptr) engine->wait_durable(lsn);
  // Sync mode: the watermark tracks flush(), which the committer owns —
  // durable < lsn here just means bytes still buffered on their side.
}

void WriteAheadLog::set_durable_callback(WalCommitEngine::DurableFn fn) {
  std::lock_guard lock(engine_mu_);
  durable_cb_ = std::move(fn);
}

WalFlushStats WriteAheadLog::flush_stats() const {
  WalFlushStats out;
  out.flushes = acc_flushes_.load(std::memory_order_relaxed);
  out.flushed_bytes = acc_flushed_bytes_.load(std::memory_order_relaxed);
  const std::shared_ptr<WalCommitEngine> engine = engine_snapshot();
  if (engine != nullptr) {
    const WalFlushStats live = engine->stats();
    out.flushes += live.flushes;
    out.flushed_bytes += live.flushed_bytes;
    out.flush_depth = live.flush_depth;
    out.inflight_bytes = live.inflight_bytes;
  }
  return out;
}

bool WriteAheadLog::async_active() const {
  return engine_snapshot() != nullptr;
}

WalEngineKind WriteAheadLog::engine_kind() const {
  return async_active() ? engine_kind_ : WalEngineKind::kSync;
}

void WriteAheadLog::sync_data() {
  if (options_.durability == WalDurability::kFdatasync) {
    if (::fdatasync(fd_) != 0) {
      throw std::runtime_error("WAL fdatasync failed: " + path_);
    }
  } else if (options_.durability == WalDurability::kFsync) {
    if (::fsync(fd_) != 0) {
      throw std::runtime_error("WAL fsync failed: " + path_);
    }
  }
}

void WriteAheadLog::sync_parent_dir() const {
  const std::string dir =
      std::filesystem::path(path_).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    throw std::runtime_error("cannot fsync WAL directory for: " + path_);
  }
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) {
    throw std::runtime_error("WAL directory fsync failed for: " + path_);
  }
}

void WriteAheadLog::ensure_preallocated(std::size_t upcoming) {
#ifdef __linux__
  const std::size_t step = options_.preallocate_bytes;
  if (step == 0) return;
  const std::uint64_t needed = size_ + upcoming;
  if (needed <= prealloc_limit_) return;
  std::uint64_t target = prealloc_limit_;
  while (target < needed) target += step;
  // Best-effort (not every filesystem supports fallocate): reserving
  // extents ahead of the append frontier keeps block allocation off the
  // group-commit latency path; KEEP_SIZE leaves the logical size — and
  // therefore torn-tail truncation semantics — untouched.
  (void)::fallocate(fd_, FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(prealloc_limit_),
                    static_cast<off_t>(target - prealloc_limit_));
  prealloc_limit_ = target;
#else
  (void)upcoming;
#endif
}

void WriteAheadLog::reset(std::uint64_t base_lsn) {
  if (fd_ < 0) throw std::runtime_error("cannot reset WAL: " + path_);
  // Exclusive rewrite: drain + stop the engine so no in-flight write can
  // land past the truncation point, restart it at the new frontier below.
  stop_engine(/*swallow_errors=*/false);
  if (::ftruncate(fd_, 0) != 0) {
    throw std::runtime_error("cannot reset WAL: " + path_);
  }
  base_lsn_ = base_lsn;
  format_ = options_.format;
  buf_.clear();
  size_ = 0;
  prealloc_limit_ = 0;
  append_file_header();
  staged_lsn_.store(base_lsn, std::memory_order_relaxed);
  durable_lsn_.store(base_lsn, std::memory_order_relaxed);
  flush();
  if (options_.durability != WalDurability::kOsCache) sync_parent_dir();
  start_engine();
}

void WriteAheadLog::compact(std::uint64_t base_lsn) {
  // Exclusive rewrite (see reset()): drain + stop the engine so the slurp
  // below sees every submitted byte and replace_file swaps a quiet inode.
  stop_engine(/*swallow_errors=*/false);
  flush();  // the scan below must see every appended record
  std::vector<unsigned char> image;
  const std::vector<unsigned char> contents = slurp(path_);
  if (format_ == WalFormat::kBinaryV4) {
    append_wal_header_v4(image, num_vertices_, base_lsn);
    parse_committed_v4(contents.data(), contents.size(), path_,
                       num_vertices_, [&](const WalFramePtr& f) {
                         if (f->lsn() > base_lsn) {
                           image.insert(image.end(), f->bytes().begin(),
                                        f->bytes().end());
                         }
                       });
  } else {
    append_text_header(image, num_vertices_, base_lsn);
    std::ifstream in(path_);
    if (!in) throw std::runtime_error("cannot open WAL: " + path_);
    parse_committed_v3(in, path_, num_vertices_,
                       [&](std::uint64_t lsn, const UpdateBatch& batch) {
                         if (lsn > base_lsn) {
                           append_text_record(image, lsn, batch);
                         }
                       });
  }
  replace_file(path_, image);
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("cannot append to WAL: " + path_);
  }
  base_lsn_ = base_lsn;
  size_ = image.size();
  prealloc_limit_ = size_;
  start_engine();
}

void WriteAheadLog::close() {
  // Best-effort drain of the engine first (destructor path: errors are a
  // lost cause here; flush()/commit_async() are the throwing paths).
  stop_engine(/*swallow_errors=*/true);
  if (fd_ < 0) return;
  // Best-effort final push of buffered records; close() runs from the
  // destructor, so IO errors are swallowed here (flush() is the throwing
  // path and every group commit goes through it).
  if (!buf_.empty()) {
    const unsigned char* data = buf_.data();
    std::size_t len = buf_.size();
    while (len > 0) {
      const ssize_t n = ::write(fd_, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      data += n;
      len -= static_cast<std::size_t>(n);
    }
    buf_.clear();
  }
  ::close(fd_);
  fd_ = -1;
}

WalScanInfo scan_wal(const std::string& path, vertex_t num_vertices,
                     const WalReplayFn& on_batch) {
  return scan_wal_frames(
      path, num_vertices,
      on_batch == nullptr ? WalFrameFn{} : WalFrameFn{[&](const WalFramePtr& f) {
        on_batch(f->lsn(), f->decode_batch());
      }});
}

WalScanInfo scan_wal_frames(const std::string& path, vertex_t num_vertices,
                            const WalFrameFn& on_frame) {
  namespace fs = std::filesystem;
  WalScanInfo info;
  if (!fs::exists(path) || fs::file_size(path) == 0) return info;
  const std::vector<unsigned char> contents = slurp(path);
  if (starts_with(contents, kWalMagicV4)) {
    const ParsedV4 parsed = parse_committed_v4(
        contents.data(), contents.size(), path, num_vertices, on_frame);
    info.records = parsed.records;
    info.base_lsn = parsed.base_lsn;
    info.last_lsn = parsed.last_lsn;
    info.format = WalFormat::kBinaryV4;
    info.committed_bytes = parsed.committed_end;
  } else if (starts_with(contents, kWalMagicV3)) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open WAL: " + path);
    // The legacy seam: a v3 file has no frames on disk, so serving frames
    // from it costs one encode per record.
    const ParsedLog parsed = parse_committed_v3(
        in, path, num_vertices,
        on_frame == nullptr
            ? WalReplayFn{}
            : WalReplayFn{[&](std::uint64_t lsn, const UpdateBatch& batch) {
                on_frame(WalFrame::encode(lsn, batch));
              }});
    info.records = parsed.records;
    info.base_lsn = parsed.base_lsn;
    info.last_lsn = parsed.last_lsn;
    info.format = WalFormat::kTextV3;
    info.committed_bytes = static_cast<std::uint64_t>(
        std::max<std::streamoff>(0, parsed.committed_end));
  } else {
    throw std::runtime_error("bad WAL header in " + path);
  }
  return info;
}

WalHeaderInfo read_wal_header(const std::string& path) {
  namespace fs = std::filesystem;
  if (!fs::exists(path) || fs::file_size(path) == 0) {
    throw std::runtime_error("missing or empty WAL: " + path);
  }
  const std::vector<unsigned char> contents = slurp(path);
  WalHeaderInfo info;
  if (starts_with(contents, kWalMagicV4)) {
    if (contents.size() < kWalHeaderV4Bytes) {
      throw std::runtime_error("bad WAL header in " + path);
    }
    info.format = WalFormat::kBinaryV4;
    info.num_vertices = get_u32(contents.data() + 12);
    info.base_lsn = get_u64(contents.data() + 16);
  } else if (starts_with(contents, kWalMagicV3)) {
    std::ifstream in(path);
    std::string magic;
    std::getline(in, magic);
    vertex_t n = 0;
    std::uint64_t base = 0;
    if (!(in >> n >> base)) {
      throw std::runtime_error("bad WAL vertex count in " + path);
    }
    info.format = WalFormat::kTextV3;
    info.num_vertices = n;
    info.base_lsn = base;
  } else {
    throw std::runtime_error("bad WAL header in " + path);
  }
  return info;
}

}  // namespace cpkcore::service
