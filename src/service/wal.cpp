#include "service/wal.hpp"

#include <filesystem>
#include <stdexcept>

namespace cpkcore::service {

namespace {
constexpr char kMagic[] = "cpkcore-wal-v1";
}

std::size_t WriteAheadLog::open(
    const std::string& path, vertex_t num_vertices,
    const std::function<void(const UpdateBatch&)>& on_batch) {
  close();
  path_ = path;
  num_vertices_ = num_vertices;

  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  // A crash inside open()/reset()'s truncate-then-write-header window
  // leaves an existing zero-byte file; treat it as fresh rather than
  // bricking every subsequent restart. A *non-empty* file with a bad
  // header still throws — that is corruption (or the wrong file), and
  // silently overwriting it would destroy evidence.
  if (fs::exists(path) && fs::file_size(path) > 0) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open WAL: " + path);
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic) {
      throw std::runtime_error("bad WAL header in " + path);
    }
    vertex_t file_n = 0;
    if (!(in >> file_n)) {
      throw std::runtime_error("bad WAL vertex count in " + path);
    }
    if (file_n != num_vertices) {
      throw std::runtime_error("WAL vertex count mismatch in " + path);
    }
    // Parse committed batches; the first malformed / unterminated record
    // marks the uncommitted tail and stops the replay.
    std::streampos committed_end = in.tellg();
    for (;;) {
      char tag = 0;
      if (!(in >> tag) || tag != 'B') break;
      char kind = 0;
      std::size_t count = 0;
      if (!(in >> kind >> count) || (kind != 'I' && kind != 'D')) break;
      UpdateBatch batch;
      batch.kind = kind == 'I' ? UpdateKind::kInsert : UpdateKind::kDelete;
      batch.edges.reserve(count);
      bool ok = true;
      for (std::size_t i = 0; i < count; ++i) {
        vertex_t u = 0;
        vertex_t v = 0;
        if (!(in >> u >> v) || u >= num_vertices || v >= num_vertices) {
          ok = false;
          break;
        }
        batch.edges.push_back({u, v});
      }
      if (!ok) break;
      char marker = 0;
      std::size_t marker_count = 0;
      if (!(in >> marker >> marker_count) || marker != 'C' ||
          marker_count != count) {
        break;
      }
      if (on_batch) on_batch(batch);
      ++replayed;
      committed_end = in.tellg();
    }
    in.close();
    if (committed_end >= 0 &&
        static_cast<std::uintmax_t>(committed_end) < fs::file_size(path)) {
      fs::resize_file(path, static_cast<std::uintmax_t>(committed_end));
    }
    out_.open(path, std::ios::app);
    if (!out_) throw std::runtime_error("cannot append to WAL: " + path);
    // The committed prefix may end mid-line (tellg stops before the
    // newline); records are whitespace-delimited, so one separator keeps
    // the stream parseable.
    out_ << '\n';
  } else {
    out_.open(path, std::ios::trunc);
    if (!out_) throw std::runtime_error("cannot create WAL: " + path);
    write_header();
    flush();
  }
  return replayed;
}

void WriteAheadLog::write_header() {
  out_ << kMagic << '\n' << num_vertices_ << '\n';
}

void WriteAheadLog::append(const UpdateBatch& batch) {
  out_ << "B " << (batch.kind == UpdateKind::kInsert ? 'I' : 'D') << ' '
       << batch.edges.size() << '\n';
  for (const Edge& e : batch.edges) out_ << e.u << ' ' << e.v << '\n';
  out_ << "C " << batch.edges.size() << '\n';
}

void WriteAheadLog::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("WAL flush failed: " + path_);
}

void WriteAheadLog::reset() {
  out_.close();
  out_.open(path_, std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot reset WAL: " + path_);
  write_header();
  flush();
}

void WriteAheadLog::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

}  // namespace cpkcore::service
