#include "service/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <stdexcept>

#include "util/crc32.hpp"

namespace cpkcore::service {

namespace {

constexpr char kMagic[] = "cpkcore-wal-v3";

struct ParsedLog {
  std::streampos committed_end{};
  std::size_t records = 0;
  std::uint64_t base_lsn = 0;
  std::uint64_t last_lsn = 0;
};

/// Parses header + committed batches from an open stream; the first
/// malformed / unterminated / out-of-sequence record marks the uncommitted
/// tail and stops the parse. Throws on a bad header only.
ParsedLog parse_committed(std::ifstream& in, const std::string& path,
                          vertex_t num_vertices, const WalReplayFn& on_batch) {
  std::string magic;
  if (!std::getline(in, magic) || magic != kMagic) {
    throw std::runtime_error("bad WAL header in " + path);
  }
  vertex_t file_n = 0;
  std::uint64_t base = 0;
  if (!(in >> file_n >> base)) {
    throw std::runtime_error("bad WAL vertex count in " + path);
  }
  if (file_n != num_vertices) {
    throw std::runtime_error("WAL vertex count mismatch in " + path);
  }
  ParsedLog out;
  out.base_lsn = base;
  out.last_lsn = base;
  out.committed_end = in.tellg();
  for (;;) {
    char tag = 0;
    if (!(in >> tag) || tag != 'B') break;
    char kind = 0;
    std::size_t count = 0;
    std::uint64_t lsn = 0;
    if (!(in >> kind >> count >> lsn) || (kind != 'I' && kind != 'D')) break;
    // LSNs are consecutive from the base; a gap or regression means the
    // record was never fully committed (or the file is damaged past the
    // committed prefix) — stop here, like any other malformed tail.
    if (lsn != out.last_lsn + 1) break;
    UpdateBatch batch;
    batch.kind = kind == 'I' ? UpdateKind::kInsert : UpdateKind::kDelete;
    batch.edges.reserve(count);
    bool ok = true;
    for (std::size_t i = 0; i < count; ++i) {
      vertex_t u = 0;
      vertex_t v = 0;
      if (!(in >> u >> v) || u >= num_vertices || v >= num_vertices) {
        ok = false;
        break;
      }
      batch.edges.push_back({u, v});
    }
    if (!ok) break;
    char marker = 0;
    std::size_t marker_count = 0;
    std::uint64_t marker_lsn = 0;
    std::uint32_t marker_crc = 0;
    if (!(in >> marker >> marker_count >> marker_lsn >> marker_crc) ||
        marker != 'C' || marker_count != count || marker_lsn != lsn ||
        marker_crc != wal_record_crc(lsn, batch)) {
      break;
    }
    if (on_batch) on_batch(lsn, batch);
    ++out.records;
    out.last_lsn = lsn;
    out.committed_end = in.tellg();
  }
  return out;
}

}  // namespace

std::uint32_t wal_record_crc(std::uint64_t lsn, const UpdateBatch& batch) {
  Crc32 crc;
  crc.update_u8(batch.kind == UpdateKind::kInsert ? 'I' : 'D');
  crc.update_u64(batch.edges.size());
  crc.update_u64(lsn);
  for (const Edge& e : batch.edges) {
    crc.update_u32(e.u);
    crc.update_u32(e.v);
  }
  return crc.value();
}

WalOpenInfo WriteAheadLog::open(const std::string& path,
                                vertex_t num_vertices,
                                const WalReplayFn& on_batch,
                                WalOptions options) {
  close();
  path_ = path;
  num_vertices_ = num_vertices;
  base_lsn_ = 0;
  options_ = options;

  namespace fs = std::filesystem;
  WalOpenInfo info;
  // A crash inside open()/reset()'s truncate-then-write-header window
  // leaves an existing zero-byte file; treat it as fresh rather than
  // bricking every subsequent restart. A *non-empty* file with a bad
  // header still throws — that is corruption (or the wrong file), and
  // silently overwriting it would destroy evidence.
  if (fs::exists(path) && fs::file_size(path) > 0) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open WAL: " + path);
    const ParsedLog parsed = parse_committed(in, path, num_vertices, on_batch);
    in.close();
    base_lsn_ = parsed.base_lsn;
    info.replayed = parsed.records;
    info.last_lsn = parsed.last_lsn;
    if (parsed.committed_end >= 0 &&
        static_cast<std::uintmax_t>(parsed.committed_end) <
            fs::file_size(path)) {
      fs::resize_file(path,
                      static_cast<std::uintmax_t>(parsed.committed_end));
    }
    out_.open(path, std::ios::app);
    if (!out_) throw std::runtime_error("cannot append to WAL: " + path);
    // The committed prefix may end mid-line (tellg stops before the
    // newline); records are whitespace-delimited, so one separator keeps
    // the stream parseable.
    out_ << '\n';
  } else {
    out_.open(path, std::ios::trunc);
    if (!out_) throw std::runtime_error("cannot create WAL: " + path);
    write_header();
  }
  open_sync_fd();
  flush();
  return info;
}

void WriteAheadLog::open_sync_fd() {
  if (options_.durability == WalDurability::kOsCache) return;
  sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (sync_fd_ < 0) {
    throw std::runtime_error("cannot open WAL for fsync: " + path_);
  }
}

void WriteAheadLog::write_header() {
  out_ << kMagic << '\n' << num_vertices_ << ' ' << base_lsn_ << '\n';
}

void WriteAheadLog::append(std::uint64_t lsn, const UpdateBatch& batch) {
  out_ << "B " << (batch.kind == UpdateKind::kInsert ? 'I' : 'D') << ' '
       << batch.edges.size() << ' ' << lsn << '\n';
  for (const Edge& e : batch.edges) out_ << e.u << ' ' << e.v << '\n';
  out_ << "C " << batch.edges.size() << ' ' << lsn << ' '
       << wal_record_crc(lsn, batch) << '\n';
}

void WriteAheadLog::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("WAL flush failed: " + path_);
  // The sync fd addresses the same inode, so syncing it forces the bytes
  // the stream just pushed to the page cache down to storage.
  if (options_.durability == WalDurability::kFdatasync) {
    if (::fdatasync(sync_fd_) != 0) {
      throw std::runtime_error("WAL fdatasync failed: " + path_);
    }
  } else if (options_.durability == WalDurability::kFsync) {
    if (::fsync(sync_fd_) != 0) {
      throw std::runtime_error("WAL fsync failed: " + path_);
    }
  }
}

void WriteAheadLog::reset(std::uint64_t base_lsn) {
  out_.close();
  out_.open(path_, std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot reset WAL: " + path_);
  base_lsn_ = base_lsn;
  write_header();
  flush();
}

void WriteAheadLog::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
  if (sync_fd_ >= 0) {
    ::close(sync_fd_);
    sync_fd_ = -1;
  }
}

WalScanInfo scan_wal(const std::string& path, vertex_t num_vertices,
                     const WalReplayFn& on_batch) {
  namespace fs = std::filesystem;
  WalScanInfo info;
  if (!fs::exists(path) || fs::file_size(path) == 0) return info;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open WAL: " + path);
  const ParsedLog parsed = parse_committed(in, path, num_vertices, on_batch);
  info.records = parsed.records;
  info.base_lsn = parsed.base_lsn;
  info.last_lsn = parsed.last_lsn;
  return info;
}

}  // namespace cpkcore::service
