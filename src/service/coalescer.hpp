// Batch coalescing for the serving layer: turns the op stream drained from
// the ingest shards into the canonical deduplicated homogeneous batches the
// CPLDS update path consumes, and adapts how many ops each drain cycle may
// take so the apply latency tracks a target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/batch.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

/// Splits the stream into homogeneous runs (graph/batch run-length
/// segmentation, preserving the drained order). With `normalize` (the
/// default), additionally canonicalizes every op's edge, drops self-loops,
/// and sorts + dedups within each run — wanted ahead of a WAL append so the
/// log stores each batch once, canonically. Pass false when no WAL is
/// configured: the CPLDS update path re-normalizes anyway, so the pass
/// would be pure duplicate work on the apply thread. Insert/delete
/// interleavings of the same edge stay in separate runs either way, so
/// applying the result batch-by-batch is equivalent to applying `ops` one
/// at a time.
std::vector<UpdateBatch> coalesce_updates(std::vector<Update> ops,
                                          bool normalize = true);

/// Feedback controller for the drain-cycle op budget: observes each cycle's
/// (ops, apply time), keeps an EWMA of the per-op cost, and sizes the next
/// budget so one cycle's apply lands near the target latency. Growth is
/// capped at 2x per observation to damp oscillation; the budget stays in
/// [min_ops, max_ops].
///
/// The optional third observation is the applied->acked lag: when acks
/// trail the apply (an async WAL engine's flush pipeline is the
/// bottleneck), the lag EWMA eats into the latency target, so the budget
/// backs off even though the apply itself is fast — smaller cycles, more
/// frequent group commits, a shallower flush queue. A lag of 0 (sync
/// commits, or the pipeline caught up) decays the EWMA back toward full
/// budget.
class AdaptiveBatchSizer {
 public:
  AdaptiveBatchSizer(std::size_t min_ops, std::size_t max_ops,
                     std::uint64_t target_apply_ns);

  [[nodiscard]] std::size_t budget() const { return budget_; }

  void observe(std::size_t ops, std::uint64_t apply_ns,
               std::uint64_t ack_lag_ns = 0);

 private:
  std::size_t min_ops_;
  std::size_t max_ops_;
  double target_ns_;
  double ewma_ns_per_op_ = 0.0;  // 0 = no observation yet
  double ewma_ack_lag_ns_ = 0.0;
  std::size_t budget_;
};

}  // namespace cpkcore::service
