// Batch coalescing for the serving layer: turns the op stream drained from
// the ingest shards into the canonical deduplicated homogeneous batches the
// CPLDS update path consumes, and adapts how many ops each drain cycle may
// take so the apply latency tracks a target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/batch.hpp"
#include "util/types.hpp"

namespace cpkcore::service {

/// Splits the stream into homogeneous runs (graph/batch run-length
/// segmentation, preserving the drained order). With `normalize` (the
/// default), additionally canonicalizes every op's edge, drops self-loops,
/// and sorts + dedups within each run — wanted ahead of a WAL append so the
/// log stores each batch once, canonically. Pass false when no WAL is
/// configured: the CPLDS update path re-normalizes anyway, so the pass
/// would be pure duplicate work on the apply thread. Insert/delete
/// interleavings of the same edge stay in separate runs either way, so
/// applying the result batch-by-batch is equivalent to applying `ops` one
/// at a time.
std::vector<UpdateBatch> coalesce_updates(std::vector<Update> ops,
                                          bool normalize = true);

/// Feedback controller for the drain-cycle op budget: observes each cycle's
/// (ops, apply time), keeps an EWMA of the per-op cost, and sizes the next
/// budget so one cycle's apply lands near the target latency. Growth is
/// capped at 2x per observation to damp oscillation; the budget stays in
/// [min_ops, max_ops].
///
/// The optional third observation is the applied->acked lag: when acks
/// trail the apply (an async WAL engine's flush pipeline is the
/// bottleneck), the lag EWMA eats into the latency target, so the budget
/// backs off even though the apply itself is fast — smaller cycles, more
/// frequent group commits, a shallower flush queue. A lag of 0 (sync
/// commits, or the pipeline caught up) decays the EWMA back toward full
/// budget.
///
/// Two further backoff triggers close the auto-tuning loop against the
/// cluster (each enabled by a nonzero threshold):
///  * replica lag (records the slowest replica trails the primary's
///    applied LSN by): past max_replica_lag, the available latency budget
///    is scaled by threshold/lag — the primary stops outrunning its
///    replicas instead of growing their queues without bound;
///  * read p99 (ns, from the router's read-latency histogram): past
///    target_read_p99_ns, scaled by target/p99 — big apply batches hold
///    the CPLDS write side long enough to stall readers, so the budget
///    backs off when readers degrade.
/// Both signals are EWMA'd like the ack lag, so a recovered cluster grows
/// the budget back (2x growth cap per observation, as always); the
/// combined scale is floored at 1/8 so a melted-down cluster still makes
/// forward progress.
/// Cluster feedback thresholds for AdaptiveBatchSizer; 0 disables a
/// trigger. (Namespace-scope rather than nested so the constructor's `= {}`
/// default can use the member initializers — a nested class's initializers
/// are not parsed until the enclosing class is complete.)
struct SizerFeedback {
  std::uint64_t max_replica_lag = 0;     ///< records behind primary apply
  std::uint64_t target_read_p99_ns = 0;  ///< read p99 ceiling
};

class AdaptiveBatchSizer {
 public:
  using Feedback = SizerFeedback;

  AdaptiveBatchSizer(std::size_t min_ops, std::size_t max_ops,
                     std::uint64_t target_apply_ns, Feedback feedback = {});

  [[nodiscard]] std::size_t budget() const { return budget_; }

  void observe(std::size_t ops, std::uint64_t apply_ns,
               std::uint64_t ack_lag_ns = 0, std::uint64_t replica_lag = 0,
               std::uint64_t read_p99_ns = 0);

 private:
  std::size_t min_ops_;
  std::size_t max_ops_;
  double target_ns_;
  Feedback feedback_;
  double ewma_ns_per_op_ = 0.0;  // 0 = no observation yet
  double ewma_ack_lag_ns_ = 0.0;
  double ewma_replica_lag_ = 0.0;
  double ewma_read_p99_ns_ = 0.0;
  std::size_t budget_;
};

}  // namespace cpkcore::service
