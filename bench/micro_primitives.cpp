// google-benchmark micro suite: the hot primitives under the CPLDS — read
// path (quiescent and descriptor-marked), union-find operations, descriptor
// words, latency histogram recording, and the parallel runtime (fork2 /
// parallel_for overhead, nested vs flat loops, worker scaling).
//
// After the google-benchmark run, main() executes a scheduler-overhead
// sweep and emits machine-readable JSON lines (see bench_common.hpp's
// emit_json_line; CPKC_BENCH_JSON redirects them to a file) so future PRs
// have a perf trajectory to diff against.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.hpp"
#include "concurrent/descriptor_table.hpp"
#include "concurrent/union_find.hpp"
#include "core/cplds.hpp"
#include "graph/generators.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace cpkcore;

void BM_ReadCorenessQuiescent(benchmark::State& state) {
  static CPLDS* ds = [] {
    auto* d = new CPLDS(10000, LDSParams::create(10000));
    d->insert_batch(gen::barabasi_albert(10000, 6, 1));
    return d;
  }();
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds->read_coreness(static_cast<vertex_t>(rng.next_below(10000))));
  }
}
BENCHMARK(BM_ReadCorenessQuiescent);

void BM_ReadCorenessNonSync(benchmark::State& state) {
  static CPLDS* ds = [] {
    auto* d = new CPLDS(10000, LDSParams::create(10000));
    d->insert_batch(gen::barabasi_albert(10000, 6, 1));
    return d;
  }();
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds->read_coreness_nonsync(
        static_cast<vertex_t>(rng.next_below(10000))));
  }
}
BENCHMARK(BM_ReadCorenessNonSync);

void BM_UnionFindFind(benchmark::State& state) {
  ConcurrentUnionFind uf(100000);
  Xoshiro256 rng(2);
  for (int i = 0; i < 80000; ++i) {
    uf.unite(static_cast<vertex_t>(rng.next_below(100000)),
             static_cast<vertex_t>(rng.next_below(100000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uf.find(static_cast<vertex_t>(rng.next_below(100000))));
  }
}
BENCHMARK(BM_UnionFindFind);

void BM_UnionFindUnite(benchmark::State& state) {
  Xoshiro256 rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    ConcurrentUnionFind uf(4096);
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) {
      uf.unite(static_cast<vertex_t>(rng.next_below(4096)),
               static_cast<vertex_t>(rng.next_below(4096)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_UnionFindUnite);

void BM_DescriptorMarkUnmark(benchmark::State& state) {
  DescriptorTable desc(1024);
  vertex_t v = 0;
  for (auto _ : state) {
    desc.mark(v, 7, 1);
    desc.unmark(v);
    v = (v + 1) & 1023;
  }
}
BENCHMARK(BM_DescriptorMarkUnmark);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Xoshiro256 rng(4);
  for (auto _ : state) {
    hist.record(rng.next_below(1 << 20));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](std::size_t i) { out[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22);

void BM_ParallelSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> base(n);
  for (auto& b : base) b = rng.next();
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    parallel_sort(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_Fork2Overhead(benchmark::State& state) {
  // Cost of one fork/join pair with trivial branches — the unit overhead
  // every split in parallel_for / the primitives pays.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  for (auto _ : state) {
    fork2([&] { ++a; }, [&] { ++b; });
  }
  benchmark::DoNotOptimize(a + b);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Fork2Overhead);

void BM_ParallelForNested(benchmark::State& state) {
  // Same total work as BM_ParallelFor but issued as 64 inner loops nested
  // under an outer parallel_for. Under the chunk-queue scheduler the inner
  // loops collapsed to serial; under work stealing they spread.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t outer = 64;
  const std::size_t inner = n / outer;
  std::vector<std::uint64_t> out(outer * inner);
  for (auto _ : state) {
    parallel_for(
        0, outer,
        [&](std::size_t i) {
          parallel_for(0, inner, [&](std::size_t j) {
            out[i * inner + j] = (i * inner + j) * 2654435761u;
          });
        },
        /*grain=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(outer * inner));
}
BENCHMARK(BM_ParallelForNested)->Arg(1 << 18)->Arg(1 << 22);

void BM_NestedScalingWorkers(benchmark::State& state) {
  // Nested throughput as a function of scheduler width; compare against
  // the Arg to see whether nesting scales instead of flat-lining.
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  const std::size_t prev = num_workers();
  Scheduler::instance().set_num_workers(workers);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = (1 << 21) / kOuter;
  std::vector<std::uint64_t> out(kOuter * kInner);
  for (auto _ : state) {
    parallel_for(
        0, kOuter,
        [&](std::size_t i) {
          parallel_for(0, kInner, [&](std::size_t j) {
            out[i * kInner + j] = (i * kInner + j) * 0x9E3779B97F4A7C15ULL;
          });
        },
        /*grain=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kOuter * kInner));
  Scheduler::instance().set_num_workers(prev);
}
BENCHMARK(BM_NestedScalingWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_InsertBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  auto edges = gen::barabasi_albert(20000, 6, 6);
  for (auto _ : state) {
    state.PauseTiming();
    CPLDS ds(20000, LDSParams::create(20000));
    std::vector<Edge> slice(
        edges.begin(),
        edges.begin() + static_cast<std::ptrdiff_t>(
                            std::min(batch, edges.size())));
    state.ResumeTiming();
    ds.insert_batch(std::move(slice));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_InsertBatch)->Arg(1 << 10)->Arg(1 << 14)->Unit(
    benchmark::kMillisecond);

// Self-timed scheduler-overhead sweep, emitted as JSON lines: flat loop,
// nested loop, and fork2 reduction tree at several scheduler widths.
void run_scheduler_sweep() {
  constexpr std::size_t kN = 1 << 22;
  constexpr std::size_t kOuter = 64;
  std::vector<std::uint64_t> out(kN);

  auto flat = [&] {
    parallel_for(0, kN, [&](std::size_t i) { out[i] = i * 2654435761u; });
  };
  auto nested = [&] {
    parallel_for(
        0, kOuter,
        [&](std::size_t i) {
          const std::size_t inner = kN / kOuter;
          parallel_for(0, inner, [&](std::size_t j) {
            out[i * inner + j] = (i * inner + j) * 2654435761u;
          });
        },
        /*grain=*/1);
  };
  struct TreeSum {
    std::vector<std::uint64_t>& out;
    std::uint64_t operator()(std::size_t lo, std::size_t hi) const {
      if (hi - lo <= 4096) {
        std::uint64_t acc = 0;
        for (std::size_t i = lo; i < hi; ++i) acc += out[i] = i * 31;
        return acc;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      std::uint64_t l = 0;
      std::uint64_t r = 0;
      fork2([&] { l = (*this)(lo, mid); }, [&] { r = (*this)(mid, hi); });
      return l + r;
    }
  };
  auto tree = [&] { benchmark::DoNotOptimize(TreeSum{out}(0, kN)); };

  struct Shape {
    const char* name;
    std::function<void()> body;
  };
  const Shape shapes[] = {{"flat", flat}, {"nested", nested}, {"fork2_tree", tree}};

  const std::size_t prev = num_workers();
  std::vector<std::size_t> widths = {1, 2, 4, 8};
  const std::size_t hc = std::thread::hardware_concurrency();
  if (hc > 8) widths.push_back(hc);
  for (const auto& shape : shapes) {
    for (std::size_t w : widths) {
      Scheduler::instance().set_num_workers(w);
      shape.body();  // warm-up
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        shape.body();
        best = std::min(best, t.elapsed_s());
      }
      bench::emit_json_line(
          {{"bench", std::string("sched_overhead")},
           {"shape", std::string(shape.name)},
           {"workers", static_cast<std::int64_t>(w)},
           {"n", static_cast<std::int64_t>(kN)},
           {"seconds", best},
           {"mitems_per_s", static_cast<double>(kN) / best / 1e6}});
    }
  }
  Scheduler::instance().set_num_workers(prev);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_scheduler_sweep();
  return 0;
}
