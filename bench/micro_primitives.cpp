// google-benchmark micro suite: the hot primitives under the CPLDS — read
// path (quiescent and descriptor-marked), union-find operations, descriptor
// words, latency histogram recording, and the parallel runtime.
#include <benchmark/benchmark.h>

#include "concurrent/descriptor_table.hpp"
#include "concurrent/union_find.hpp"
#include "core/cplds.hpp"
#include "graph/generators.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"

namespace {

using namespace cpkcore;

void BM_ReadCorenessQuiescent(benchmark::State& state) {
  static CPLDS* ds = [] {
    auto* d = new CPLDS(10000, LDSParams::create(10000));
    d->insert_batch(gen::barabasi_albert(10000, 6, 1));
    return d;
  }();
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds->read_coreness(static_cast<vertex_t>(rng.next_below(10000))));
  }
}
BENCHMARK(BM_ReadCorenessQuiescent);

void BM_ReadCorenessNonSync(benchmark::State& state) {
  static CPLDS* ds = [] {
    auto* d = new CPLDS(10000, LDSParams::create(10000));
    d->insert_batch(gen::barabasi_albert(10000, 6, 1));
    return d;
  }();
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds->read_coreness_nonsync(
        static_cast<vertex_t>(rng.next_below(10000))));
  }
}
BENCHMARK(BM_ReadCorenessNonSync);

void BM_UnionFindFind(benchmark::State& state) {
  ConcurrentUnionFind uf(100000);
  Xoshiro256 rng(2);
  for (int i = 0; i < 80000; ++i) {
    uf.unite(static_cast<vertex_t>(rng.next_below(100000)),
             static_cast<vertex_t>(rng.next_below(100000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uf.find(static_cast<vertex_t>(rng.next_below(100000))));
  }
}
BENCHMARK(BM_UnionFindFind);

void BM_UnionFindUnite(benchmark::State& state) {
  Xoshiro256 rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    ConcurrentUnionFind uf(4096);
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) {
      uf.unite(static_cast<vertex_t>(rng.next_below(4096)),
               static_cast<vertex_t>(rng.next_below(4096)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_UnionFindUnite);

void BM_DescriptorMarkUnmark(benchmark::State& state) {
  DescriptorTable desc(1024);
  vertex_t v = 0;
  for (auto _ : state) {
    desc.mark(v, 7, 1);
    desc.unmark(v);
    v = (v + 1) & 1023;
  }
}
BENCHMARK(BM_DescriptorMarkUnmark);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Xoshiro256 rng(4);
  for (auto _ : state) {
    hist.record(rng.next_below(1 << 20));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](std::size_t i) { out[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22);

void BM_ParallelSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> base(n);
  for (auto& b : base) b = rng.next();
  for (auto _ : state) {
    state.PauseTiming();
    auto data = base;
    state.ResumeTiming();
    parallel_sort(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_InsertBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  auto edges = gen::barabasi_albert(20000, 6, 6);
  for (auto _ : state) {
    state.PauseTiming();
    CPLDS ds(20000, LDSParams::create(20000));
    std::vector<Edge> slice(
        edges.begin(),
        edges.begin() + static_cast<std::ptrdiff_t>(
                            std::min(batch, edges.size())));
    state.ResumeTiming();
    ds.insert_batch(std::move(slice));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(batch));
}
BENCHMARK(BM_InsertBatch)->Arg(1 << 10)->Arg(1 << 14)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
