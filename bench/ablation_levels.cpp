// Ablation: the level-cap optimization (the original PLDS code's "-opt"
// flag, our LDSParams::levels_per_group_cap). Fewer levels per group makes
// update batches cheaper (shorter cascades) but loosens the approximation.
// The paper runs its evaluation with -opt 20 and notes the accuracy cost.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/batch.hpp"
#include "harness/workload.hpp"

namespace {

using namespace cpkcore;
using namespace cpkcore::bench;

struct Row {
  int cap;
  double avg_batch_s;
  harness::AccuracyStats acc;
};

Row run(int cap) {
  auto data = harness::make_dataset("dblp");
  auto params = LDSParams::create(data.num_vertices, 0.2, 9.0, cap);
  CPLDS ds(data.num_vertices, params);

  auto stream = insertion_stream(data.edges, batch_size(), 3);
  if (stream.size() > max_batches()) stream.resize(max_batches());

  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = reader_threads();
  cfg.seed = 5;
  cfg.sample_stride = 16;
  cfg.record_boundary_exact = true;
  auto result = harness::run_workload(ds, stream, cfg);

  Row row;
  row.cap = cap;
  row.avg_batch_s = result.avg_batch_seconds();
  row.acc = harness::evaluate_accuracy(result.samples, result.boundary_exact,
                                       params, result.window_base);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: levels-per-group cap (PLDS \"-opt\") on dblp insertions "
      "(scale=%.2f, batch=%zu)\n\n",
      harness::scale_factor(), batch_size());
  harness::Table table({"Cap", "Levels/group", "Avg batch update",
                        "Avg read error", "Max read error"});
  for (int cap : {0, 64, 32, 20, 8}) {
    auto row = run(cap);
    const auto params = LDSParams::create(
        harness::make_dataset("dblp").num_vertices, 0.2, 9.0, cap);
    table.add_row({cap == 0 ? "theory" : std::to_string(cap),
                   std::to_string(params.levels_per_group()),
                   harness::fmt_seconds(row.avg_batch_s),
                   harness::fmt_double(row.acc.avg_error, 3),
                   harness::fmt_double(row.acc.max_error, 2)});
  }
  table.print();
  return 0;
}
