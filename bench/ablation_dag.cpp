// Ablation: the two read-path optimizations the paper calls out in §5.2/§5.3
// — path compression on DAG traversals and the check_DAG early exit — plus
// the cost of dependency tracking itself on the update path.
//
// Rows: full CPLDS, no path compression, no early exit, neither, and
// tracking disabled entirely (update-path floor; reads no longer
// linearizable, shown for the update-time delta only).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace cpkcore;
using namespace cpkcore::bench;

struct Variant {
  const char* name;
  bool track;
  bool compression;
  bool early_exit;
};

}  // namespace

int main() {
  std::printf(
      "Ablation: dependency-DAG read-path optimizations (dblp, insertions, "
      "scale=%.2f, batch=%zu)\n\n",
      harness::scale_factor(), batch_size());

  const Variant variants[] = {
      {"CPLDS (full)", true, true, true},
      {"no path compression", true, false, true},
      {"no early exit", true, true, false},
      {"neither optimization", true, false, false},
      {"no tracking (floor)", false, true, true},
  };

  harness::Table table({"Variant", "Avg read", "p99 read", "p99.99 read",
                        "Avg batch update"});
  for (const Variant& v : variants) {
    harness::ExperimentSpec spec =
        standard_spec("dblp", UpdateKind::kInsert,
                      v.track ? ReadMode::kCpldsDag : ReadMode::kNonSync);
    spec.cplds_options.track_dependencies = v.track;
    spec.cplds_options.path_compression = v.compression;
    spec.cplds_options.early_exit = v.early_exit;
    auto out = harness::run_experiment(spec);
    const auto& lat = out.result.latency;
    table.add_row(
        {v.name, harness::fmt_seconds(lat.mean_ns() * 1e-9),
         harness::fmt_seconds(static_cast<double>(lat.p99_ns()) * 1e-9),
         harness::fmt_seconds(static_cast<double>(lat.p9999_ns()) * 1e-9),
         harness::fmt_seconds(out.result.avg_batch_seconds())});
  }
  table.print();
  return 0;
}
