// Figure 6: average and maximum approximation error of concurrent reads vs
// exact coreness, for insertions and deletions, across the datasets the
// paper plots (it omits brain and twitter). Error per sampled read is
// min over {batch-begin, batch-end} ground truth of max(est/k, k/est).
//
// Paper's shape: CPLDS and SyncReads stay below the theoretical 2.8 bound
// for insertions (deletions can exceed it slightly with the level-cap
// optimization); NonSync's max error blows up (up to 52.7x worse) because
// unsynchronized reads observe vertices mid-cascade.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/batch.hpp"
#include "harness/workload.hpp"

namespace {

using namespace cpkcore;
using namespace cpkcore::bench;

struct Cell {
  harness::AccuracyStats stats;
};

/// Accuracy runs route every edge through measured batches (the mirror
/// graph reconstructs ground truth per boundary), so deletions first insert
/// everything in one batch whose samples are excluded by sampling from
/// batch window > 1.
Cell run_accuracy(const std::string& dataset, UpdateKind kind,
                  ReadMode mode) {
  auto data = harness::make_dataset(dataset);
  auto params = LDSParams::create(data.num_vertices, 0.2, 9.0, opt_cap());
  CPLDS::Options opt;
  opt.track_dependencies = (mode == ReadMode::kCpldsDag);
  CPLDS ds(data.num_vertices, params, opt);

  std::vector<UpdateBatch> stream;
  std::size_t skip_windows = 0;  // boundary windows to ignore in scoring
  if (kind == UpdateKind::kInsert) {
    stream = insertion_stream(data.edges, batch_size(), 7);
    if (stream.size() > max_batches()) stream.resize(max_batches());
  } else {
    stream.push_back(UpdateBatch{UpdateKind::kInsert, data.edges});
    auto dels = deletion_stream(data.edges, batch_size(), 7);
    if (dels.size() > max_batches()) dels.resize(max_batches());
    stream.insert(stream.end(), dels.begin(), dels.end());
    skip_windows = 1;  // ignore reads during the preload batch
  }

  harness::WorkloadConfig cfg;
  cfg.mode = mode;
  cfg.reader_threads = reader_threads();
  cfg.seed = 11;
  cfg.sample_stride = 16;
  cfg.record_boundary_exact = true;
  auto result = harness::run_workload(ds, stream, cfg);

  std::vector<harness::ReadSample> scored;
  for (const auto& s : result.samples) {
    if (s.window > skip_windows) scored.push_back(s);
  }
  Cell cell;
  cell.stats = harness::evaluate_accuracy(scored, result.boundary_exact,
                                          params, result.window_base);
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: read approximation error vs exact coreness "
      "(scale=%.2f, batch=%zu; theoretical max for insertions: %.2f)\n\n",
      harness::scale_factor(), batch_size(),
      LDSParams::create(1000).approx_factor());

  const std::vector<std::string> datasets = {"ctr", "dblp", "lj",  "orkut",
                                             "so",  "usa",  "wiki", "yt"};
  for (UpdateKind kind : {UpdateKind::kInsert, UpdateKind::kDelete}) {
    std::printf("-- %s --\n", kind_name(kind));
    harness::Table table(
        {"Graph", "Algorithm", "Avg error", "Max error", "Samples"});
    for (const auto& name : datasets) {
      for (ReadMode mode :
           {ReadMode::kCplds, ReadMode::kSyncReads, ReadMode::kNonSync}) {
        auto cell = run_accuracy(name, kind, mode);
        table.add_row({name, std::string(to_string(mode)),
                       harness::fmt_double(cell.stats.avg_error, 3),
                       harness::fmt_double(cell.stats.max_error, 2),
                       std::to_string(cell.stats.samples)});
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
