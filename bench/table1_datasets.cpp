// Table 1: graph sizes and largest value of k for k-core decomposition.
// Paper: 10 SNAP/DIMACS graphs; here: the synthetic stand-ins from the
// dataset registry (see DESIGN.md for the substitution rationale). The
// structural property that matters — road networks with k_max = 3, social
// graphs with k_max in the tens-to-hundreds, one dense outlier — is
// reproduced.
#include <cstdio>

#include "graph/csr.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "kcore/parallel_peel.hpp"

int main() {
  using namespace cpkcore;
  std::printf("Table 1: dataset sizes and largest k (scale=%.2f)\n\n",
              harness::scale_factor());
  harness::Table table({"Graph", "Family", "Num. Vertices", "Num. Edges",
                        "Largest k"});
  for (const auto& name : harness::dataset_names()) {
    auto d = harness::make_dataset(name);
    auto csr = CsrGraph::from_edges(d.num_vertices, d.edges);
    const auto coreness = parallel_exact_coreness(csr);
    vertex_t kmax = 0;
    for (vertex_t c : coreness) kmax = std::max(kmax, c);
    table.add_row({d.name, d.family, std::to_string(d.num_vertices),
                   std::to_string(csr.num_edges()), std::to_string(kmax)});
  }
  table.print();
  return 0;
}
