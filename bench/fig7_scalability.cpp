// Figure 7: reader and writer throughput scalability on dblp-like and
// lj-like graphs. Writer scalability fixes the reader count and sweeps
// scheduler workers; reader scalability fixes the workers and sweeps reader
// threads. Thread counts follow the paper: {1, 2, 4, 8, 15}.
//
// Paper's shape: NonSync has the highest read throughput (no DAG
// traversal), CPLDS within ~2.2x; writer throughput of CPLDS trails the
// baselines by the descriptor-maintenance overhead.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace cpkcore;
using namespace cpkcore::bench;

void sweep(const std::string& dataset, UpdateKind kind, bool sweep_readers) {
  const std::vector<std::size_t> counts = {1, 2, 4, 8, 15};
  harness::Table table({sweep_readers ? "Reader threads" : "Writer threads",
                        "Algorithm", "Read thpt (reads/s)",
                        "Write thpt (edges/s)"});
  for (std::size_t c : counts) {
    for (ReadMode mode :
         {ReadMode::kCplds, ReadMode::kSyncReads, ReadMode::kNonSync}) {
      auto spec = standard_spec(dataset, kind, mode);
      if (sweep_readers) {
        spec.workload.reader_threads = c;
        spec.writer_workers = 15;
      } else {
        spec.workload.reader_threads = 15;
        spec.writer_workers = c;
      }
      auto out = run_trials(spec);
      table.add_row({std::to_string(c), std::string(to_string(mode)),
                     harness::fmt_si(out.result.read_throughput()),
                     harness::fmt_si(out.result.write_throughput())});
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Figure 7: reader/writer throughput scalability "
      "(scale=%.2f, batch=%zu)\n\n",
      harness::scale_factor(), batch_size());
  for (const char* name : {"dblp", "lj"}) {
    for (UpdateKind kind : {UpdateKind::kInsert, UpdateKind::kDelete}) {
      std::printf("-- %s, %s, writer sweep (15 readers) --\n", name,
                  kind_name(kind));
      sweep(name, kind, /*sweep_readers=*/false);
      std::printf("-- %s, %s, reader sweep (15 writers) --\n", name,
                  kind_name(kind));
      sweep(name, kind, /*sweep_readers=*/true);
    }
  }
  return 0;
}
