// Shared plumbing for the figure/table bench binaries: environment knobs,
// default thread counts, and experiment shorthand.
//
// Environment variables:
//   CPKC_SCALE    dataset size multiplier (default 1.0)
//   CPKC_READERS  reader thread count     (default min(8, cores/3), >= 1)
//   CPKC_WRITERS  scheduler worker count  (default min(8, cores/3), >= 1)
//   CPKC_BATCH    update batch size       (default 50000)
//   CPKC_BATCHES  measured batches/run    (default 4)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "harness/driver.hpp"
#include "harness/report.hpp"

namespace cpkcore::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::strtoll(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline std::size_t default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min<std::size_t>(8, hc / 3));
}

inline std::size_t reader_threads() {
  return env_size("CPKC_READERS", default_threads());
}

inline std::size_t writer_workers() {
  return env_size("CPKC_WRITERS", default_threads());
}

inline std::size_t batch_size() { return env_size("CPKC_BATCH", 50000); }

inline std::size_t max_batches() { return env_size("CPKC_BATCHES", 4); }

/// Levels-per-group cap (CPKC_OPT, default 20 — the paper runs its entire
/// evaluation with the original PLDS code's "-opt 20"; 0 = theoretical
/// level geometry).
inline int opt_cap() {
  if (const char* v = std::getenv("CPKC_OPT")) {
    return static_cast<int>(std::strtol(v, nullptr, 10));
  }
  return 20;
}

/// Builds a standard spec for one dataset/kind/mode cell.
inline harness::ExperimentSpec standard_spec(const std::string& dataset,
                                             UpdateKind kind, ReadMode mode) {
  harness::ExperimentSpec spec;
  spec.dataset = dataset;
  spec.kind = kind;
  spec.batch_size = batch_size();
  spec.max_batches = max_batches();
  spec.writer_workers = writer_workers();
  spec.workload.mode = mode;
  spec.workload.reader_threads = reader_threads();
  spec.workload.seed = 7;
  spec.levels_per_group_cap = opt_cap();
  // Descriptor/DAG maintenance is needed only by the Algorithm 4 read
  // path; the wait-free view read (kCplds/kNonSync) and the baselines run
  // the original PLDS update path.
  spec.cplds_options.track_dependencies = (mode == ReadMode::kCpldsDag);
  return spec;
}

inline const char* kind_name(UpdateKind kind) {
  return kind == UpdateKind::kInsert ? "insertions" : "deletions";
}

/// Number of trials per cell (CPKC_TRIALS, default 1; the paper uses 11).
inline std::size_t num_trials() { return env_size("CPKC_TRIALS", 1); }

/// One field of a machine-readable result record: string, integer, or
/// floating-point value.
using JsonValue = std::variant<std::string, std::int64_t, double>;
using JsonField = std::pair<std::string, JsonValue>;

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Emits one result as a single JSON object line (JSON-lines format), so
/// future PRs can diff perf trajectories without parsing text tables.
/// Writes to stdout, or appends to the file named by CPKC_BENCH_JSON.
inline void emit_json_line(const std::vector<JsonField>& fields) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(key) + "\":";
    if (const auto* s = std::get_if<std::string>(&value)) {
      line += "\"" + json_escape(*s) + "\"";
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      line += std::to_string(*i);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(value));
      line += buf;
    }
  }
  line += "}";
  if (const char* path = std::getenv("CPKC_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      return;
    }
  }
  std::cout << line << "\n";
}

/// Runs `spec` num_trials() times with varied seeds and merges the results
/// (latencies pooled, batch times concatenated, reads/edges summed).
inline harness::ExperimentOutput run_trials(harness::ExperimentSpec spec) {
  harness::ExperimentOutput merged;
  const std::size_t trials = num_trials();
  for (std::size_t t = 0; t < trials; ++t) {
    spec.workload.seed = 7 + t;
    auto out = harness::run_experiment(spec);
    if (t == 0) {
      merged = std::move(out);
    } else {
      merged.result.latency.merge(out.result.latency);
      merged.result.total_reads += out.result.total_reads;
      merged.result.total_applied_edges += out.result.total_applied_edges;
      merged.result.batch_seconds.insert(merged.result.batch_seconds.end(),
                                         out.result.batch_seconds.begin(),
                                         out.result.batch_seconds.end());
      merged.last_stats = out.last_stats;
    }
  }
  return merged;
}

}  // namespace cpkcore::bench
