// Figure 5: average and maximum batch update time for insertions and
// deletions across datasets and read strategies.
//
// Paper's shape: NonSync is fastest (no descriptor maintenance), CPLDS at
// most ~1.48x slower, SyncReads sometimes slowest because queued reads
// execute inside the measured update window.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cpkcore;
  using namespace cpkcore::bench;
  std::printf(
      "Figure 5: batch update time (secs) "
      "(scale=%.2f, batch=%zu, %zu readers / %zu writers)\n\n",
      harness::scale_factor(), batch_size(), reader_threads(),
      writer_workers());

  for (UpdateKind kind : {UpdateKind::kInsert, UpdateKind::kDelete}) {
    std::printf("-- %s --\n", kind_name(kind));
    harness::Table table({"Graph", "Algorithm", "Avg batch", "Max batch",
                          "Marked vertices (last)"});
    for (const auto& name : harness::dataset_names()) {
      for (ReadMode mode :
           {ReadMode::kCplds, ReadMode::kSyncReads, ReadMode::kNonSync}) {
        auto spec = standard_spec(name, kind, mode);
        auto out = run_trials(spec);
        table.add_row(
            {name, std::string(to_string(mode)),
             harness::fmt_seconds(out.result.avg_batch_seconds()),
             harness::fmt_seconds(out.result.max_batch_seconds()),
             std::to_string(out.last_stats.marked_vertices)});
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
