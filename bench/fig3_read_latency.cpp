// Figure 3: average, 99th-percentile, and 99.99th-percentile read latency
// under batches of insertions and deletions, for CPLDS (wait-free view
// read) vs CPLDS-DAG (Algorithm 4) vs SyncReads vs NonSync across all
// datasets.
//
// Paper's headline: CPLDS cuts read latency by up to five orders of
// magnitude vs SyncReads (whose reads wait out the batch) while staying
// within a small constant factor of NonSync.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cpkcore;
  using namespace cpkcore::bench;
  std::printf(
      "Figure 3: read latency (secs) under update batches "
      "(scale=%.2f, batch=%zu, %zu reader / %zu writer threads)\n\n",
      harness::scale_factor(), batch_size(), reader_threads(),
      writer_workers());

  for (UpdateKind kind : {UpdateKind::kInsert, UpdateKind::kDelete}) {
    std::printf("-- %s --\n", kind_name(kind));
    harness::Table table({"Graph", "Algorithm", "Avg", "p99", "p99.99",
                          "Max", "Reads"});
    for (const auto& name : harness::dataset_names()) {
      for (ReadMode mode :
           {ReadMode::kCplds, ReadMode::kCpldsDag, ReadMode::kSyncReads,
            ReadMode::kNonSync}) {
        auto spec = standard_spec(name, kind, mode);
        auto out = run_trials(spec);
        const auto& lat = out.result.latency;
        table.add_row({name, std::string(to_string(mode)),
                       harness::fmt_seconds(lat.mean_ns() * 1e-9),
                       harness::fmt_seconds(
                           static_cast<double>(lat.p99_ns()) * 1e-9),
                       harness::fmt_seconds(
                           static_cast<double>(lat.p9999_ns()) * 1e-9),
                       harness::fmt_seconds(
                           static_cast<double>(lat.max_ns()) * 1e-9),
                       harness::fmt_si(
                           static_cast<double>(out.result.total_reads))});
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
