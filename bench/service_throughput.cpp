// Serving-layer throughput: sweeps client (submitter) thread counts and
// reports acked submit throughput and submit->ack latency percentiles, with
// CPKC_READERS reader threads running linearizable reads alongside. One
// JSON line per cell via emit_json_line, so the perf trajectory of the
// ingest -> coalesce -> WAL -> apply path is diffable across PRs.
//
// With --replicas N (or CPKC_SERVICE_REPLICAS=N) the bench instead sweeps
// the read-scaling *cluster* layer: 0..N read replicas behind the
// session-aware router (single write partition), reporting routed read
// throughput vs replica count, one JSON line per replica count.
//
// With --write-shards P (or CPKC_WRITE_SHARDS=P) it sweeps the *sharded
// write plane*: 1..P partition primaries behind a ShardGroup at a fixed
// client count, reporting aggregate submit throughput and merged ack p99
// vs P — the write-scaling curve. Combine with --replicas R to give every
// partition R replicas (R is then fixed, not swept).
//
// With --readers N,N,... (or CPKC_READER_SWEEP) it runs the *reader-scaling*
// sweep behind BENCH_read_path.json: at each reader count, a timed read
// window (CPKC_READ_SECONDS, default 2) under continuous ingest, A/B-ing
// the locked SyncReads baseline against the wait-free CPLDS view read with
// both reclamation schemes (epoch, qsbr). Reports read_ops_per_s /
// read_p50_ns / read_p99_ns plus acked_ops_per_s and reclaimer counters.
//
// Environment (on top of bench_common's knobs):
//   CPKC_SERVICE_OPS       ops per client thread        (default 50000)
//   CPKC_SERVICE_WAL       1 = log to a WAL in /tmp     (default 1)
//   CPKC_SERVICE_REPLICAS  max replica count to sweep   (default 0 = off)
//   CPKC_WRITE_SHARDS      max partition count to sweep (default 0 = off)
//   CPKC_CLUSTER_WRITERS   writer threads in the replica sweep (default 2)
//   CPKC_WAL_FORMAT        "binary" (default) or "text": WAL wire format.
//                          The --write-shards sweep ignores the default and
//                          runs BOTH formats per partition count (the
//                          BENCH_wal_v4 text-vs-binary comparison) unless
//                          this variable pins one.
//   CPKC_WAL_DURABILITY    "os_cache" | "fdatasync" | "fsync": per-commit
//                          durability level (default: ServiceConfig's).
//   CPKC_WAL_ENGINE        consumed by the service layer itself (see
//                          wal_async.hpp): "sync" pins the PR-6 synchronous
//                          commit path, "flusher"/"io_uring" pin an async
//                          engine, unset/"auto" probes. Every JSON line
//                          reports which engine actually ran (wal_engine)
//                          plus the flush-pipeline counters, so the
//                          sync-vs-async comparison is self-describing.
//
// Flight recorder (see src/obs/):
//   --sample PATH / CPKC_SAMPLE_JSON   stream MetricsRegistry snapshots to
//                          PATH as JSON lines while the sweep runs (the
//                          StatsSampler time series; final sample on exit).
//   CPKC_SAMPLE_MS         sampling interval (default 200)
//   CPKC_TRACE=1           record pipeline trace events (runtime gate)
//   CPKC_TRACE_FILE        write the Chrome trace-event JSON here on exit
//                          (load in Perfetto; implies nothing unless
//                          CPKC_TRACE is also set)
//   --http-port N / CPKC_HTTP_PORT   serve /metrics /vars /events (and a
//                          monitor-less /healthz) on 127.0.0.1:N for the
//                          duration of the sweep (0 = ephemeral; the bound
//                          port is printed to stderr) — curl the live
//                          registry mid-cell instead of waiting for the
//                          JSON lines
// Every JSON line additionally reports the scheduler's work-stealing
// activity over the cell (sched_spawns / sched_steals deltas).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/partition.hpp"
#include "concurrent/reclaim.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_group.hpp"
#include "graph/generators.hpp"
#include "harness/service_workload.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parallel/scheduler.hpp"
#include "service/kcore_service.hpp"

namespace {

using namespace cpkcore;

std::size_t ops_per_client() {
  return bench::env_size("CPKC_SERVICE_OPS", 50000);
}

// Not env_size: that helper ignores non-positive values, and 0 is exactly
// how this knob is turned off.
bool wal_enabled() {
  if (const char* v = std::getenv("CPKC_SERVICE_WAL")) {
    return std::strtol(v, nullptr, 10) != 0;
  }
  return true;
}

service::WalFormat wal_format() {
  if (const char* v = std::getenv("CPKC_WAL_FORMAT")) {
    if (std::strcmp(v, "text") == 0 || std::strcmp(v, "v3") == 0) {
      return service::WalFormat::kTextV3;
    }
  }
  return service::WalFormat::kBinaryV4;
}

std::string format_label(service::WalFormat format) {
  return format == service::WalFormat::kBinaryV4 ? "binary-v4" : "text-v3";
}

service::WalDurability wal_durability() {
  if (const char* v = std::getenv("CPKC_WAL_DURABILITY")) {
    if (std::strcmp(v, "fsync") == 0) return service::WalDurability::kFsync;
    if (std::strcmp(v, "fdatasync") == 0) {
      return service::WalDurability::kFdatasync;
    }
    if (std::strcmp(v, "os_cache") == 0) {
      return service::WalDurability::kOsCache;
    }
  }
  return service::ServiceConfig{}.wal_durability;
}

std::string durability_label(service::WalDurability level) {
  switch (level) {
    case service::WalDurability::kOsCache:
      return "os_cache";
    case service::WalDurability::kFdatasync:
      return "fdatasync";
    case service::WalDurability::kFsync:
      return "fsync";
  }
  return "unknown";
}

void remove_partition_wals(const std::string& stem, std::size_t partitions) {
  for (std::size_t p = 0; p < partitions; ++p) {
    std::filesystem::remove(cluster::partition_path(stem, p, partitions));
  }
}

/// Parses a comma-separated list of positive counts ("1,2,4,8,16").
std::vector<std::size_t> parse_count_list(const char* s) {
  std::vector<std::size_t> out;
  while (*s != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s) break;
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    s = (*end == ',') ? end + 1 : end;
  }
  return out;
}

/// Scheduler work-stealing activity over one cell: samples the process-wide
/// scheduler's counters at construction and reports the growth since.
struct SchedDelta {
  Scheduler::SchedulerCounters start = Scheduler::instance().counters();

  [[nodiscard]] std::int64_t spawns() const {
    return static_cast<std::int64_t>(Scheduler::instance().counters().spawns -
                                     start.spawns);
  }
  [[nodiscard]] std::int64_t steals() const {
    return static_cast<std::int64_t>(Scheduler::instance().counters().steals -
                                     start.steals);
  }
};

void run_cell(std::size_t clients) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_service_throughput.wal";
  std::filesystem::remove(wal_path);

  service::ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) cfg.wal_path = wal_path;
  cfg.wal_format = wal_format();
  cfg.wal_durability = wal_durability();
  cfg.metrics = &obs::MetricsRegistry::instance();
  service::KCoreService svc(cfg);

  // Preload half the edges so updates hit a nontrivial structure, then
  // zero the stats so the reported percentiles cover only the measured
  // workload, not ~2n single-threaded preload acks.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  svc.reset_stats();
  const SchedDelta sched;

  harness::ServiceWorkloadConfig wl;
  wl.submitter_threads = clients;
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client();
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_service_workload(svc, wl);
  const auto stats = svc.stats();
  const std::int64_t sched_spawns = sched.spawns();
  const std::int64_t sched_steals = sched.steals();
  svc.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("service_throughput")},
      {"clients", static_cast<std::int64_t>(clients)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"wal_format", format_label(wal_format())},
      {"wal_durability", durability_label(wal_durability())},
      {"wal_engine", stats.wal_engine},
      {"wal_flushes", static_cast<std::int64_t>(stats.wal_flushes)},
      {"wal_flush_bytes", static_cast<std::int64_t>(stats.wal_flush_bytes)},
      {"durable_lag_p99_ns",
       static_cast<std::int64_t>(stats.durable_lag.p99_ns())},
      {"ops", static_cast<std::int64_t>(result.ops_submitted)},
      {"wall_s", result.wall_seconds},
      {"submit_ops_per_s", result.submit_throughput()},
      {"ack_p50_ns", static_cast<std::int64_t>(stats.ack_latency.p50_ns())},
      {"ack_p99_ns", static_cast<std::int64_t>(stats.ack_latency.p99_ns())},
      {"ack_mean_ns", stats.ack_latency.mean_ns()},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"cycles", static_cast<std::int64_t>(stats.cycles)},
      {"batches", static_cast<std::int64_t>(stats.batches)},
      {"final_batch_budget", static_cast<std::int64_t>(stats.batch_budget)},
      {"sched_spawns", sched_spawns},
      {"sched_steals", sched_steals},
  });
}

/// One reader-scaling leg: a timed read window (CPKC_READ_SECONDS, default
/// 2 s) with continuous writer-thread ingest, at a fixed reader count,
/// read mode, and reclamation scheme. The A/B behind BENCH_read_path.json:
/// SyncReads is the locked baseline, CPLDS the wait-free view read.
void run_read_scaling_cell(std::size_t readers, ReadMode mode,
                           concurrent::ReclaimerKind reclaimer) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_read_scaling.wal";
  std::filesystem::remove(wal_path);

  service::ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) cfg.wal_path = wal_path;
  cfg.wal_format = wal_format();
  cfg.wal_durability = wal_durability();
  cfg.reclaimer = reclaimer;
  cfg.metrics = &obs::MetricsRegistry::instance();
  // The DAG cells reproduce the full pre-view default read path: Algorithm
  // 4 double-collect reads plus the write-side descriptor maintenance they
  // require.
  cfg.cplds.track_dependencies = (mode == ReadMode::kCpldsDag);
  // Open-loop writers run for the whole timed window; blocking admission
  // keeps their backlog (and thus the post-window drain) bounded instead
  // of letting 2 s of unthrottled submits queue minutes of apply work.
  cfg.max_pending_per_shard = 4096;
  cfg.admission = service::AdmissionPolicy::kBlock;
  service::KCoreService svc(cfg);

  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  svc.reset_stats();

  harness::ReadScalingConfig wl;
  wl.reader_threads = readers;
  wl.writer_threads = bench::env_size("CPKC_CLUSTER_WRITERS", 2);
  wl.mode = mode;
  wl.read_seconds =
      static_cast<double>(bench::env_size("CPKC_READ_SECONDS", 2));
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_read_scaling(svc, wl);
  const std::string reclaimer_name(svc.cplds().reclaimer().name());
  const auto rs = svc.cplds().reclaimer().stats();
  // Apply duty over the whole run (window + drain): the fraction of wall
  // time the level structure was mutating, i.e. the fraction SyncReads
  // readers spend blocked. The wait-free read's advantage scales with it.
  const double apply_s = svc.stats().apply_seconds;
  svc.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("read_scaling")},
      {"readers", static_cast<std::int64_t>(readers)},
      {"writers", static_cast<std::int64_t>(wl.writer_threads)},
      {"read_mode", std::string(to_string(mode))},
      {"reclaimer", reclaimer_name},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"window_s", result.read_seconds},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"read_ops_per_s", result.read_throughput()},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      // The deep tail is where the read paths actually differ: a SyncReads
      // reader that lands inside a batch apply stalls for the rest of it
      // (ms scale), a view reader never blocks at all.
      {"read_p9999_ns",
       static_cast<std::int64_t>(result.read_latency.p9999_ns())},
      {"read_max_ns",
       static_cast<std::int64_t>(result.read_latency.max_ns())},
      {"ops", static_cast<std::int64_t>(result.ops_submitted)},
      {"acked_ops_per_s", result.write_throughput()},
      {"apply_s", apply_s},
      {"drain_s", result.drain_seconds},
      {"reclaim_epoch_advances",
       static_cast<std::int64_t>(rs.epoch_advances)},
      {"reclaim_retired", static_cast<std::int64_t>(rs.retired)},
      {"reclaim_freed", static_cast<std::int64_t>(rs.freed)},
      {"reclaim_lagging_readers",
       static_cast<std::int64_t>(rs.lagging_readers)},
  });
}

void run_replicated_cell(std::size_t replicas) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_service_throughput.wal";
  std::filesystem::remove(wal_path);

  cluster::ClusterConfig ccfg;
  ccfg.partitions = 1;
  ccfg.replicas = replicas;
  // All replicas subscribe at construction and none joins later, so a
  // small retention ring suffices (no unbounded growth across the sweep).
  ccfg.retain_records = 1024;
  ccfg.base.num_vertices = n;
  ccfg.base.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) ccfg.base.wal_path = wal_path;
  ccfg.base.wal_format = wal_format();
  ccfg.base.wal_durability = wal_durability();
  ccfg.base.metrics = &obs::MetricsRegistry::instance();
  cluster::ShardGroup group(ccfg);
  cluster::Router router(group);
  router.register_metrics(&obs::MetricsRegistry::instance());

  // Preload half the edges (replicas follow along through the shipper),
  // then wait for every replica to catch up so the measured phase starts
  // from identical backends.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    group.submit_insert(e.u, e.v);
  }
  group.quiesce();
  group.primary(0).reset_stats();
  const SchedDelta sched;

  harness::ClusterWorkloadConfig wl;
  wl.writer_threads = bench::env_size("CPKC_CLUSTER_WRITERS", 2);
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client() / 10;  // writes are closed-loop here
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_cluster_workload(router, wl);
  const auto rstats = router.stats();
  const std::int64_t sched_spawns = sched.spawns();
  const std::int64_t sched_steals = sched.steals();
  group.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("cluster_read_throughput")},
      {"replicas", static_cast<std::int64_t>(replicas)},
      {"writers", static_cast<std::int64_t>(wl.writer_threads)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"writes", static_cast<std::int64_t>(result.ops_written)},
      {"wall_s", result.wall_seconds},
      {"reads_per_s", result.read_throughput()},
      {"writes_per_s", result.write_throughput()},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"primary_reads", static_cast<std::int64_t>(result.primary_reads)},
      {"replica_reads", static_cast<std::int64_t>(result.replica_reads)},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"router_writes", static_cast<std::int64_t>(rstats.writes)},
      {"sched_spawns", sched_spawns},
      {"sched_steals", sched_steals},
  });
}

void run_sharded_cell(std::size_t partitions, std::size_t replicas,
                      std::size_t clients, service::WalFormat format) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_stem = "/tmp/cpkc_sharded_throughput.wal";
  remove_partition_wals(wal_stem, partitions);

  cluster::ClusterConfig ccfg;
  ccfg.partitions = partitions;
  ccfg.replicas = replicas;
  ccfg.retain_records = 1024;
  ccfg.base.num_vertices = n;
  ccfg.base.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) ccfg.base.wal_path = wal_stem;
  ccfg.base.wal_format = format;
  ccfg.base.wal_durability = wal_durability();
  ccfg.base.metrics = &obs::MetricsRegistry::instance();
  cluster::ShardGroup group(ccfg);

  // Preload half the edges across the partitions, quiesce, zero every
  // partition's stats so the merged percentiles cover only the measured
  // phase.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    group.submit_insert(e.u, e.v);
  }
  group.quiesce();
  for (std::size_t p = 0; p < partitions; ++p) {
    group.primary(p).reset_stats();
  }
  const SchedDelta sched;

  harness::ShardedWorkloadConfig wl;
  wl.submitter_threads = clients;
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client();
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_sharded_workload(group, wl);

  // Merge the per-partition ack histograms: the sweep reports the
  // client-observed ack distribution across the whole write plane.
  LatencyHistogram ack;
  LatencyHistogram durable_lag;
  std::uint64_t cycles = 0;
  std::uint64_t batches = 0;
  std::uint64_t wal_flushes = 0;
  std::uint64_t wal_flush_bytes = 0;
  std::string wal_engine = "none";
  for (std::size_t p = 0; p < partitions; ++p) {
    const auto stats = group.primary(p).stats();
    ack.merge(stats.ack_latency);
    durable_lag.merge(stats.durable_lag);
    cycles += stats.cycles;
    batches += stats.batches;
    wal_flushes += stats.wal_flushes;
    wal_flush_bytes += stats.wal_flush_bytes;
    // The engine kind is uniform across partitions (same config, same
    // runtime probe); partition 0 speaks for the plane.
    if (p == 0) wal_engine = stats.wal_engine;
  }
  std::uint64_t min_part = ~std::uint64_t{0};
  std::uint64_t max_part = 0;
  for (std::uint64_t ops : result.ops_per_partition) {
    min_part = std::min(min_part, ops);
    max_part = std::max(max_part, ops);
  }
  const std::int64_t sched_spawns = sched.spawns();
  const std::int64_t sched_steals = sched.steals();
  group.shutdown();
  remove_partition_wals(wal_stem, partitions);

  bench::emit_json_line({
      {"bench", std::string("sharded_write_throughput")},
      {"write_shards", static_cast<std::int64_t>(partitions)},
      {"replicas", static_cast<std::int64_t>(replicas)},
      {"clients", static_cast<std::int64_t>(clients)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"wal_format", format_label(format)},
      {"wal_durability", durability_label(wal_durability())},
      {"wal_engine", wal_engine},
      {"wal_flushes", static_cast<std::int64_t>(wal_flushes)},
      {"wal_flush_bytes", static_cast<std::int64_t>(wal_flush_bytes)},
      {"durable_lag_p99_ns",
       static_cast<std::int64_t>(durable_lag.p99_ns())},
      {"ops", static_cast<std::int64_t>(result.ops_submitted)},
      {"wall_s", result.wall_seconds},
      {"submit_ops_per_s", result.submit_throughput()},
      {"ack_p50_ns", static_cast<std::int64_t>(ack.p50_ns())},
      {"ack_p99_ns", static_cast<std::int64_t>(ack.p99_ns())},
      {"ack_mean_ns", ack.mean_ns()},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"cycles", static_cast<std::int64_t>(cycles)},
      {"batches", static_cast<std::int64_t>(batches)},
      {"min_partition_ops", static_cast<std::int64_t>(min_part)},
      {"max_partition_ops", static_cast<std::int64_t>(max_part)},
      {"sched_spawns", sched_spawns},
      {"sched_steals", sched_steals},
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_replicas = bench::env_size("CPKC_SERVICE_REPLICAS", 0);
  std::size_t max_shards = bench::env_size("CPKC_WRITE_SHARDS", 0);
  std::vector<std::size_t> reader_sweep;
  if (const char* v = std::getenv("CPKC_READER_SWEEP")) {
    reader_sweep = parse_count_list(v);
  }
  std::string sample_path;
  if (const char* v = std::getenv("CPKC_SAMPLE_JSON")) sample_path = v;
  int http_port = -1;  // -1 = no exporter; 0 = ephemeral
  if (const char* v = std::getenv("CPKC_HTTP_PORT")) {
    http_port = static_cast<int>(std::strtoul(v, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      max_replicas = static_cast<std::size_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--write-shards") == 0 && i + 1 < argc) {
      max_shards = static_cast<std::size_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--readers") == 0 && i + 1 < argc) {
      reader_sweep = parse_count_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      sample_path = argv[++i];
    } else if (std::strcmp(argv[i], "--http-port") == 0 && i + 1 < argc) {
      http_port = static_cast<int>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--replicas N] [--write-shards P] "
                   "[--readers N,N,...] [--sample PATH] [--http-port N]\n",
                   argv[0]);
      return 2;
    }
  }
  // Health plane: expose the live registry and event journal over HTTP
  // while the sweep runs (curl 127.0.0.1:<port>/metrics mid-cell). The
  // per-cell services register and deregister their sources process-wide,
  // so a scrape sees whatever cell is running.
  std::unique_ptr<obs::HttpExporter> exporter;
  if (http_port >= 0) {
    obs::HttpExporterOptions hopts;
    hopts.port = static_cast<std::uint16_t>(http_port);
    exporter = std::make_unique<obs::HttpExporter>(hopts);
    std::fprintf(stderr, "# http exporter on 127.0.0.1:%u\n",
                 static_cast<unsigned>(exporter->port()));
  }
  // Flight recorder: stream registry snapshots for the whole sweep (the
  // per-cell services/groups register and deregister their sources as
  // cells come and go). Destroyed after the sweep — the final sample
  // captures the end state.
  std::unique_ptr<obs::StatsSampler> sampler;
  if (!sample_path.empty()) {
    obs::SamplerOptions opts;
    opts.path = sample_path;
    opts.interval_ms = bench::env_size("CPKC_SAMPLE_MS", 200);
    sampler = std::make_unique<obs::StatsSampler>(std::move(opts));
  }
  const auto finish = [&]() {
    sampler.reset();  // final sample + flush before the trace dump
    if (const char* path = std::getenv("CPKC_TRACE_FILE")) {
      const obs::TraceStats ts = obs::trace_stats();
      if (obs::trace_write_chrome_json(path)) {
        std::fprintf(stderr,
                     "# trace: %llu events (%llu dropped) -> %s\n",
                     static_cast<unsigned long long>(ts.retained),
                     static_cast<unsigned long long>(ts.dropped), path);
      } else {
        std::fprintf(stderr, "# trace: failed to write %s\n", path);
      }
    }
    return 0;
  };
  if (!reader_sweep.empty()) {
    // Reader-scaling A/B at each reader count: the two pre-view baselines
    // (locked SyncReads quiescence reads and the old default Algorithm 4
    // DAG read with its write-side dependency tracking) vs the wait-free
    // view read under both reclamation schemes.
    for (const std::size_t r : reader_sweep) {
      run_read_scaling_cell(r, ReadMode::kSyncReads,
                            concurrent::ReclaimerKind::kEpoch);
      run_read_scaling_cell(r, ReadMode::kCpldsDag,
                            concurrent::ReclaimerKind::kEpoch);
      run_read_scaling_cell(r, ReadMode::kCplds,
                            concurrent::ReclaimerKind::kEpoch);
      run_read_scaling_cell(r, ReadMode::kCplds,
                            concurrent::ReclaimerKind::kQsbr);
    }
    return finish();
  }
  if (max_shards > 0) {
    // Write-scaling sweep: 1..P partitions at a fixed client count; with
    // --replicas R alongside, every partition also drives R replicas.
    // Per partition count the sweep A/Bs the WAL wire format — text
    // baseline first, then binary v4 — unless CPKC_WAL_FORMAT pins one
    // (or the WAL is off, where the format is moot).
    const std::size_t clients = bench::writer_workers();
    std::vector<service::WalFormat> formats;
    if (!wal_enabled() || std::getenv("CPKC_WAL_FORMAT") != nullptr) {
      formats = {wal_format()};
    } else {
      formats = {service::WalFormat::kTextV3, service::WalFormat::kBinaryV4};
    }
    for (std::size_t p = 1; p <= max_shards; ++p) {
      for (const service::WalFormat format : formats) {
        run_sharded_cell(p, max_replicas, clients, format);
      }
    }
    return finish();
  }
  if (max_replicas > 0) {
    // Replicated read-throughput sweep: 0 (router straight to primary)
    // up to N replicas.
    for (std::size_t r = 0; r <= max_replicas; ++r) run_replicated_cell(r);
    return finish();
  }
  const std::size_t max_clients = bench::writer_workers();
  std::vector<std::size_t> sweep;
  for (std::size_t c = 1; c <= max_clients; c *= 2) sweep.push_back(c);
  if (sweep.empty() || sweep.back() != max_clients) {
    sweep.push_back(max_clients);
  }
  for (std::size_t clients : sweep) run_cell(clients);
  return finish();
}
