// Serving-layer throughput: sweeps client (submitter) thread counts and
// reports acked submit throughput and submit->ack latency percentiles, with
// CPKC_READERS reader threads running linearizable reads alongside. One
// JSON line per cell via emit_json_line, so the perf trajectory of the
// ingest -> coalesce -> WAL -> apply path is diffable across PRs.
//
// Environment (on top of bench_common's knobs):
//   CPKC_SERVICE_OPS   ops per client thread      (default 50000)
//   CPKC_SERVICE_WAL   1 = log to a WAL in /tmp   (default 1)
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/service_workload.hpp"
#include "service/kcore_service.hpp"

namespace {

using namespace cpkcore;

std::size_t ops_per_client() {
  return bench::env_size("CPKC_SERVICE_OPS", 50000);
}

// Not env_size: that helper ignores non-positive values, and 0 is exactly
// how this knob is turned off.
bool wal_enabled() {
  if (const char* v = std::getenv("CPKC_SERVICE_WAL")) {
    return std::strtol(v, nullptr, 10) != 0;
  }
  return true;
}

void run_cell(std::size_t clients) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_service_throughput.wal";
  std::filesystem::remove(wal_path);

  service::ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) cfg.wal_path = wal_path;
  service::KCoreService svc(cfg);

  // Preload half the edges so updates hit a nontrivial structure, then
  // zero the stats so the reported percentiles cover only the measured
  // workload, not ~2n single-threaded preload acks.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  svc.reset_stats();

  harness::ServiceWorkloadConfig wl;
  wl.submitter_threads = clients;
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client();
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_service_workload(svc, wl);
  const auto stats = svc.stats();
  svc.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("service_throughput")},
      {"clients", static_cast<std::int64_t>(clients)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"ops", static_cast<std::int64_t>(result.ops_submitted)},
      {"wall_s", result.wall_seconds},
      {"submit_ops_per_s", result.submit_throughput()},
      {"ack_p50_ns", static_cast<std::int64_t>(stats.ack_latency.p50_ns())},
      {"ack_p99_ns", static_cast<std::int64_t>(stats.ack_latency.p99_ns())},
      {"ack_mean_ns", stats.ack_latency.mean_ns()},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"cycles", static_cast<std::int64_t>(stats.cycles)},
      {"batches", static_cast<std::int64_t>(stats.batches)},
      {"final_batch_budget", static_cast<std::int64_t>(stats.batch_budget)},
  });
}

}  // namespace

int main() {
  const std::size_t max_clients = bench::writer_workers();
  std::vector<std::size_t> sweep;
  for (std::size_t c = 1; c <= max_clients; c *= 2) sweep.push_back(c);
  if (sweep.empty() || sweep.back() != max_clients) {
    sweep.push_back(max_clients);
  }
  for (std::size_t clients : sweep) run_cell(clients);
  return 0;
}
