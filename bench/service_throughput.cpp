// Serving-layer throughput: sweeps client (submitter) thread counts and
// reports acked submit throughput and submit->ack latency percentiles, with
// CPKC_READERS reader threads running linearizable reads alongside. One
// JSON line per cell via emit_json_line, so the perf trajectory of the
// ingest -> coalesce -> WAL -> apply path is diffable across PRs.
//
// With --replicas N (or CPKC_SERVICE_REPLICAS=N) the bench instead sweeps
// the *cluster* layer: 0..N read replicas behind the session-aware router,
// reporting routed read throughput vs replica count (the read-scaling
// curve of the replication subsystem), one JSON line per replica count.
//
// Environment (on top of bench_common's knobs):
//   CPKC_SERVICE_OPS       ops per client thread        (default 50000)
//   CPKC_SERVICE_WAL       1 = log to a WAL in /tmp     (default 1)
//   CPKC_SERVICE_REPLICAS  max replica count to sweep   (default 0 = off)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/log_ship.hpp"
#include "cluster/replica.hpp"
#include "cluster/router.hpp"
#include "graph/generators.hpp"
#include "harness/service_workload.hpp"
#include "service/kcore_service.hpp"

namespace {

using namespace cpkcore;

std::size_t ops_per_client() {
  return bench::env_size("CPKC_SERVICE_OPS", 50000);
}

// Not env_size: that helper ignores non-positive values, and 0 is exactly
// how this knob is turned off.
bool wal_enabled() {
  if (const char* v = std::getenv("CPKC_SERVICE_WAL")) {
    return std::strtol(v, nullptr, 10) != 0;
  }
  return true;
}

void run_cell(std::size_t clients) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_service_throughput.wal";
  std::filesystem::remove(wal_path);

  service::ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) cfg.wal_path = wal_path;
  service::KCoreService svc(cfg);

  // Preload half the edges so updates hit a nontrivial structure, then
  // zero the stats so the reported percentiles cover only the measured
  // workload, not ~2n single-threaded preload acks.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  svc.reset_stats();

  harness::ServiceWorkloadConfig wl;
  wl.submitter_threads = clients;
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client();
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_service_workload(svc, wl);
  const auto stats = svc.stats();
  svc.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("service_throughput")},
      {"clients", static_cast<std::int64_t>(clients)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"ops", static_cast<std::int64_t>(result.ops_submitted)},
      {"wall_s", result.wall_seconds},
      {"submit_ops_per_s", result.submit_throughput()},
      {"ack_p50_ns", static_cast<std::int64_t>(stats.ack_latency.p50_ns())},
      {"ack_p99_ns", static_cast<std::int64_t>(stats.ack_latency.p99_ns())},
      {"ack_mean_ns", stats.ack_latency.mean_ns()},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"cycles", static_cast<std::int64_t>(stats.cycles)},
      {"batches", static_cast<std::int64_t>(stats.batches)},
      {"final_batch_budget", static_cast<std::int64_t>(stats.batch_budget)},
  });
}

void run_replicated_cell(std::size_t replicas) {
  const auto n = static_cast<vertex_t>(
      100000 * bench::env_size("CPKC_SCALE", 1));
  const std::string wal_path = "/tmp/cpkc_service_throughput.wal";
  std::filesystem::remove(wal_path);

  service::ServiceConfig cfg;
  cfg.num_vertices = n;
  cfg.levels_per_group_cap = bench::opt_cap();
  if (wal_enabled()) cfg.wal_path = wal_path;
  service::KCoreService svc(cfg);
  // All replicas subscribe before the preload and none joins later, so a
  // small retention ring suffices (no unbounded growth across the sweep).
  cluster::LogShipper::Options ship_opts;
  ship_opts.retain_records = 1024;
  cluster::LogShipper shipper(svc, ship_opts);
  std::vector<std::unique_ptr<cluster::Replica>> replica_store;
  std::vector<cluster::Replica*> replica_ptrs;
  for (std::size_t r = 0; r < replicas; ++r) {
    replica_store.push_back(std::make_unique<cluster::Replica>(cfg));
    replica_store.back()->start(shipper);
    replica_ptrs.push_back(replica_store.back().get());
  }
  cluster::Router router(svc, replica_ptrs);

  // Preload half the edges (replicas follow along through the shipper),
  // then wait for every replica to catch up so the measured phase starts
  // from identical backends.
  for (const Edge& e : gen::barabasi_albert(n / 2, 4, 7)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  for (cluster::Replica* r : replica_ptrs) r->wait_for_lsn(svc.commit_lsn());
  svc.reset_stats();

  harness::ClusterWorkloadConfig wl;
  wl.writer_threads = bench::env_size("CPKC_CLUSTER_WRITERS", 2);
  wl.reader_threads = bench::reader_threads();
  wl.ops_per_thread = ops_per_client() / 10;  // writes are closed-loop here
  wl.delete_fraction = 0.2;
  wl.seed = 7;
  const auto result = harness::run_cluster_workload(router, wl);
  const auto rstats = router.stats();
  for (auto& r : replica_store) r->stop();
  svc.shutdown();
  std::filesystem::remove(wal_path);

  bench::emit_json_line({
      {"bench", std::string("cluster_read_throughput")},
      {"replicas", static_cast<std::int64_t>(replicas)},
      {"writers", static_cast<std::int64_t>(wl.writer_threads)},
      {"readers", static_cast<std::int64_t>(wl.reader_threads)},
      {"wal", static_cast<std::int64_t>(wal_enabled() ? 1 : 0)},
      {"writes", static_cast<std::int64_t>(result.ops_written)},
      {"wall_s", result.wall_seconds},
      {"reads_per_s", result.read_throughput()},
      {"writes_per_s", result.write_throughput()},
      {"reads", static_cast<std::int64_t>(result.total_reads)},
      {"primary_reads", static_cast<std::int64_t>(result.primary_reads)},
      {"replica_reads", static_cast<std::int64_t>(result.replica_reads)},
      {"read_p50_ns",
       static_cast<std::int64_t>(result.read_latency.p50_ns())},
      {"read_p99_ns",
       static_cast<std::int64_t>(result.read_latency.p99_ns())},
      {"router_writes", static_cast<std::int64_t>(rstats.writes)},
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_replicas = bench::env_size("CPKC_SERVICE_REPLICAS", 0);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      max_replicas = static_cast<std::size_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--replicas N]\n", argv[0]);
      return 2;
    }
  }
  if (max_replicas > 0) {
    // Replicated read-throughput sweep: 0 (router straight to primary)
    // up to N replicas.
    for (std::size_t r = 0; r <= max_replicas; ++r) run_replicated_cell(r);
    return 0;
  }
  const std::size_t max_clients = bench::writer_workers();
  std::vector<std::size_t> sweep;
  for (std::size_t c = 1; c <= max_clients; c *= 2) sweep.push_back(c);
  if (sweep.empty() || sweep.back() != max_clients) {
    sweep.push_back(max_clients);
  }
  for (std::size_t clients : sweep) run_cell(clients);
  return 0;
}
