// Figure 4: read latency (avg / p99 / p99.99) as a function of insertion
// batch size, on the dblp-like and yt-like datasets, for all three read
// strategies. The paper sweeps batch sizes 1e2..1e6; we sweep the same
// decades scaled to the synthetic dataset sizes.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace cpkcore;
  using namespace cpkcore::bench;

  std::vector<std::size_t> sizes = {100, 1000, 10000, 100000};
  std::printf(
      "Figure 4: read latency vs insertion batch size "
      "(scale=%.2f, %zu readers / %zu writers)\n\n",
      harness::scale_factor(), reader_threads(), writer_workers());

  for (const char* name : {"yt", "dblp"}) {
    std::printf("-- %s --\n", name);
    harness::Table table({"Batch size", "Algorithm", "Avg", "p99", "p99.99"});
    for (std::size_t bs : sizes) {
      for (ReadMode mode :
           {ReadMode::kCplds, ReadMode::kSyncReads, ReadMode::kNonSync}) {
        auto spec = standard_spec(name, UpdateKind::kInsert, mode);
        spec.batch_size = bs;
        // Keep total inserted edges comparable across batch sizes.
        spec.max_batches = std::max<std::size_t>(1, 40000 / bs);
        auto out = run_trials(spec);
        const auto& lat = out.result.latency;
        table.add_row({std::to_string(bs), std::string(to_string(mode)),
                       harness::fmt_seconds(lat.mean_ns() * 1e-9),
                       harness::fmt_seconds(
                           static_cast<double>(lat.p99_ns()) * 1e-9),
                       harness::fmt_seconds(
                           static_cast<double>(lat.p9999_ns()) * 1e-9)});
      }
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
