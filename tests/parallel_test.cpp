// Tests for the parallel runtime: work-stealing scheduler semantics
// (coverage, fork2, genuine nested parallelism, concurrent submitters,
// serial fallbacks), primitives (reduce/scan/pack), sample sort, and
// group_by.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"
#include "parallel/tuning.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

/// Restores the global scheduler width and the tuning cutoffs on scope exit.
class RuntimeConfigGuard {
 public:
  RuntimeConfigGuard() : workers_(Scheduler::instance().num_workers()) {}
  ~RuntimeConfigGuard() {
    Scheduler::instance().set_num_workers(workers_);
    set_serial_cutoff(0);
    set_sort_serial_cutoff(0);
  }

 private:
  std::size_t workers_;
};

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Scheduler, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, NestedParallelForMatchesSerial) {
  // Nested loops now execute in parallel (inner leaves are stealable
  // tasks); every (i, j) pair must still run exactly once.
  Scheduler pooled(4);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 256;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pooled.parallel_for(
      0, kOuter,
      [&](std::size_t i) {
        EXPECT_TRUE(Scheduler::in_task());
        pooled.parallel_for(0, kInner, [&](std::size_t j) {
          hits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
        });
      },
      /*grain=*/1);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Scheduler, NestedParallelForUsesMultipleWorkers) {
  // The acceptance test for the work-stealing refactor: inner loop bodies
  // must be observed on more than one thread. Retries make this robust on
  // heavily loaded or single-core hosts, where steals wait on preemption.
  Scheduler pooled(4);
  std::mutex mu;
  std::set<std::thread::id> inner_tids;
  std::atomic<std::uint64_t> sink{0};
  for (int attempt = 0; attempt < 50 && inner_tids.size() < 2; ++attempt) {
    pooled.parallel_for(
        0, 16,
        [&](std::size_t) {
          pooled.parallel_for(0, 1 << 15, [&](std::size_t j) {
            if (j % 2048 == 0) {
              std::lock_guard lock(mu);
              inner_tids.insert(std::this_thread::get_id());
            }
            std::uint64_t acc = j;
            for (int s = 0; s < 8; ++s) {
              acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
            }
            sink.fetch_add(acc & 1, std::memory_order_relaxed);
          });
        },
        /*grain=*/1);
  }
  EXPECT_GE(inner_tids.size(), 2u)
      << "no steals observed in nested loops across 50 attempts";
}

TEST(Scheduler, OneWorkerNestedStaysOnCallingThread) {
  // With no pool threads the serial fallback keeps everything — including
  // nested loops — on the calling thread, the 1-worker contract CI pins
  // with CPKC_NUM_WORKERS=1.
  Scheduler solo(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> escaped{0};
  solo.parallel_for(
      0, 8,
      [&](std::size_t) {
        ASSERT_TRUE(Scheduler::in_task());
        solo.parallel_for(0, 4096, [&](std::size_t) {
          if (std::this_thread::get_id() != caller) {
            escaped.fetch_add(1, std::memory_order_relaxed);
          }
        });
      },
      1);
  EXPECT_EQ(escaped.load(), 0);
}

TEST(Scheduler, InTaskOnPoollessFastPath) {
  // One total worker means no pool threads: every parallel_for takes the
  // serial inline path, which must still mark the task scope.
  Scheduler serial(1);
  std::atomic<int> bad{0};
  serial.parallel_for(0, 64, [&](std::size_t) {
    if (!Scheduler::in_task()) bad.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(bad.load(), 0);

  Scheduler zero(0);
  bad = 0;
  zero.parallel_for(0, 64, [&](std::size_t) {
    if (!Scheduler::in_chunk()) bad.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scheduler, InTaskOnSingletonAndLargeGrainFastPaths) {
  Scheduler pooled(4);
  // n == 1 inline path.
  bool in = false;
  pooled.parallel_for(0, 1, [&](std::size_t) { in = Scheduler::in_task(); });
  EXPECT_TRUE(in);
  // Grain >= n collapses to one serial leaf, also executed inline.
  std::atomic<int> bad{0};
  pooled.parallel_for(
      0, 128,
      [&](std::size_t) {
        if (!Scheduler::in_task()) bad.fetch_add(1, std::memory_order_relaxed);
      },
      1 << 20);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scheduler, Fork2ComputesBothBranches) {
  // External-thread fork2 (the test thread is not a pool worker).
  int a = 0;
  int b = 0;
  bool a_in_task = false;
  fork2(
      [&] {
        a = 41;
        a_in_task = Scheduler::in_task();
      },
      [&] { b = 1; });
  EXPECT_EQ(a + b, 42);
  EXPECT_TRUE(a_in_task);
}

TEST(Scheduler, Fork2RecursiveTreeSum) {
  // Divide-and-conquer sum over fork2 down to single elements exercises
  // deep fork nesting and join ordering.
  Scheduler pooled(4);
  constexpr std::uint64_t kN = 1 << 12;
  struct Summer {
    Scheduler& sched;
    std::uint64_t operator()(std::uint64_t lo, std::uint64_t hi) {
      if (hi - lo == 1) return lo;
      const std::uint64_t mid = lo + (hi - lo) / 2;
      std::uint64_t left = 0;
      std::uint64_t right = 0;
      sched.fork2([&] { left = (*this)(lo, mid); },
                  [&] { right = (*this)(mid, hi); });
      return left + right;
    }
  };
  Summer summer{pooled};
  EXPECT_EQ(summer(0, kN), kN * (kN - 1) / 2);
}

TEST(Scheduler, Fork2InsideParallelForBodies) {
  Scheduler pooled(4);
  constexpr std::size_t kN = 512;
  std::vector<std::uint64_t> out(kN, 0);
  pooled.parallel_for(
      0, kN,
      [&](std::size_t i) {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        pooled.fork2([&] { lo = i * i; }, [&] { hi = 3 * i; });
        out[i] = lo + hi;
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * i + 3 * i) << i;
  }
}

TEST(Scheduler, NestedPrimitivesStressMatchesSerial) {
  // Three-layer nesting: parallel_for over rows, each row running a
  // parallel_reduce whose leaves fork again. Checked against a serial
  // reference at several scheduler widths (1 = pure serial fallback).
  RuntimeConfigGuard guard;
  set_serial_cutoff(64);  // force the primitives onto their parallel paths
  constexpr std::size_t kRows = 48;
  constexpr std::size_t kCols = 3000;
  auto cell = [](std::size_t r, std::size_t c) {
    return static_cast<std::uint64_t>(r * 37 + c * 11 + (r * c) % 101);
  };
  std::vector<std::uint64_t> expect(kRows, 0);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) expect[r] += cell(r, c);
  }
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    Scheduler::instance().set_num_workers(workers);
    std::vector<std::uint64_t> rows(kRows, 0);
    parallel_for(
        0, kRows,
        [&](std::size_t r) {
          ASSERT_TRUE(Scheduler::in_task());
          rows[r] = parallel_sum<std::uint64_t>(
              kCols, [&](std::size_t c) { return cell(r, c); });
        },
        /*grain=*/1);
    EXPECT_EQ(rows, expect) << "workers=" << workers;
  }
}

TEST(Scheduler, ConcurrentSubmittersBothComplete) {
  std::atomic<std::uint64_t> sum_a{0};
  std::atomic<std::uint64_t> sum_b{0};
  std::thread ta([&] {
    parallel_for(0, 200000, [&](std::size_t i) {
      sum_a.fetch_add(i, std::memory_order_relaxed);
    });
  });
  std::thread tb([&] {
    parallel_for(0, 200000, [&](std::size_t i) {
      sum_b.fetch_add(i, std::memory_order_relaxed);
    });
  });
  ta.join();
  tb.join();
  const std::uint64_t expect = 200000ull * 199999 / 2;
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), expect);
}

TEST(Scheduler, MoreSubmittersThanExternalSlots) {
  // External threads beyond the scheduler's spare deque slots fall back to
  // serial execution; results must be identical either way.
  constexpr std::size_t kThreads = 24;
  constexpr std::size_t kN = 20000;
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<std::uint64_t> acc{0};
      parallel_for(0, kN, [&](std::size_t i) {
        acc.fetch_add(i, std::memory_order_relaxed);
      });
      sums[t] = acc.load();
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t expect = static_cast<std::uint64_t>(kN) * (kN - 1) / 2;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(sums[t], expect) << t;
  }
}

TEST(Scheduler, GrainControlsChunking) {
  std::atomic<std::size_t> count{0};
  parallel_for(
      0, 1000, [&](std::size_t) { count.fetch_add(1); }, 100);
  EXPECT_EQ(count.load(), 1000u);
}

TEST(Primitives, BlockBoundsNoOverflowForHugeN) {
  // The old (n * i) / blocks formula wraps std::size_t once n * blocks
  // exceeds 2^64; the quotient/remainder form must not.
  const std::size_t n = std::numeric_limits<std::size_t>::max() - 5;
  const std::size_t blocks = 7;
  const auto b = detail::block_bounds(n, blocks);
  ASSERT_EQ(b.size(), blocks + 1);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), n);
  for (std::size_t i = 0; i < blocks; ++i) {
    ASSERT_LE(b[i], b[i + 1]) << i;
    // Near-equal split: block sizes differ by at most one.
    const std::size_t sz = b[i + 1] - b[i];
    EXPECT_GE(sz, n / blocks);
    EXPECT_LE(sz, n / blocks + 1);
  }
}

TEST(Primitives, BlockBoundsSmallCases) {
  EXPECT_EQ(detail::block_bounds(10, 3),
            (std::vector<std::size_t>{0, 4, 7, 10}));
  EXPECT_EQ(detail::block_bounds(0, 2), (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_EQ(detail::block_bounds(5, 5),
            (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Primitives, ReduceMatchesSerialSum) {
  constexpr std::size_t kN = 1 << 18;
  const auto sum = parallel_sum<std::uint64_t>(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(Primitives, ReduceWithMinCombine) {
  constexpr std::size_t kN = 100000;
  const auto mn = parallel_reduce(
      kN, std::numeric_limits<std::uint64_t>::max(),
      [](std::size_t i) { return static_cast<std::uint64_t>((i * 37 + 11) % 1000); },
      [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
  std::uint64_t expect = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < kN; ++i) {
    expect = std::min<std::uint64_t>(expect, (i * 37 + 11) % 1000);
  }
  EXPECT_EQ(mn, expect);
}

TEST(Primitives, SmallInputsTakeSerialPath) {
  const auto sum = parallel_sum<int>(10, [](std::size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(Primitives, ExclusiveScanMatchesSerial) {
  for (std::size_t n : {0ul, 1ul, 100ul, 5000ul, 1ul << 17}) {
    Xoshiro256 rng(n);
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) v = rng.next_below(100);
    std::vector<std::uint64_t> expect = vals;
    std::uint64_t acc = 0;
    for (auto& v : expect) {
      const auto tmp = v;
      v = acc;
      acc += tmp;
    }
    auto mine = vals;
    const auto total = parallel_scan_exclusive(mine);
    EXPECT_EQ(total, acc) << n;
    EXPECT_EQ(mine, expect) << n;
  }
}

TEST(Primitives, PackKeepsOrderAndFilters) {
  constexpr std::size_t kN = 1 << 17;
  auto out = parallel_pack<std::size_t>(
      kN, [](std::size_t i) { return i % 3 == 0; },
      [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), (kN + 2) / 3);
  for (std::size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(out[j], j * 3);
  }
}

TEST(Primitives, FilterOnElements) {
  std::vector<int> in(100000);
  std::iota(in.begin(), in.end(), 0);
  auto evens = parallel_filter(in, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), in.size() / 2);
  EXPECT_EQ(evens[10], 20);
}

TEST(Primitives, TabulateAndCount) {
  auto sq = parallel_tabulate<std::uint64_t>(
      50000, [](std::size_t i) { return static_cast<std::uint64_t>(i) * i; });
  EXPECT_EQ(sq[333], 333ull * 333);
  const auto odd = parallel_count(50000, [](std::size_t i) {
    return i % 2 == 1;
  });
  EXPECT_EQ(odd, 25000u);
}

TEST(Primitives, CutoffOverrideExercisesParallelPathsOnSmallInputs) {
  // CPKC_GRAIN-style overrides: with tiny cutoffs even a few hundred
  // elements take the fork-join paths; results must match serial.
  RuntimeConfigGuard guard;
  Scheduler::instance().set_num_workers(4);
  set_serial_cutoff(8);
  set_sort_serial_cutoff(32);

  constexpr std::size_t kN = 700;
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> vals(kN);
  for (auto& v : vals) v = rng.next_below(1000);

  std::uint64_t expect_sum = 0;
  for (auto v : vals) expect_sum += v;
  EXPECT_EQ(parallel_sum<std::uint64_t>(
                kN, [&](std::size_t i) { return vals[i]; }),
            expect_sum);

  auto scanned = vals;
  EXPECT_EQ(parallel_scan_exclusive(scanned), expect_sum);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(scanned[i], acc) << i;
    acc += vals[i];
  }

  auto big = parallel_filter(vals, [](std::uint64_t v) { return v >= 500; });
  std::vector<std::uint64_t> expect_big;
  for (auto v : vals) {
    if (v >= 500) expect_big.push_back(v);
  }
  EXPECT_EQ(big, expect_big);

  auto sorted = vals;
  parallel_sort(sorted);
  auto expect_sorted = vals;
  std::sort(expect_sorted.begin(), expect_sorted.end());
  EXPECT_EQ(sorted, expect_sorted);
}

TEST(Sort, RandomInput) {
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> data(200000);
  for (auto& d : data) d = rng.next();
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, AlreadySortedAndReverse) {
  std::vector<int> data(100000);
  std::iota(data.begin(), data.end(), 0);
  auto expect = data;
  parallel_sort(data);
  EXPECT_EQ(data, expect);
  std::reverse(data.begin(), data.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, ManyDuplicates) {
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> data(150000);
  for (auto& d : data) d = static_cast<std::uint32_t>(rng.next_below(7));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, CustomComparator) {
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> data(100000);
  for (auto& d : data) d = rng.next();
  auto expect = data;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  parallel_sort(data, std::greater<>());
  EXPECT_EQ(data, expect);
}

TEST(Sort, SmallInputsUseSerialPath) {
  std::vector<int> data = {5, 3, 8, 1};
  parallel_sort(data);
  EXPECT_EQ(data, (std::vector<int>{1, 3, 5, 8}));
}

TEST(Sort, SkewedBucketsWithTinyCutoff) {
  // Tiny sort cutoff + one dominant value: the oversized bucket exercises
  // the nested fork-join quicksort path.
  RuntimeConfigGuard guard;
  Scheduler::instance().set_num_workers(4);
  set_sort_serial_cutoff(64);
  Xoshiro256 rng(21);
  std::vector<std::uint32_t> data(50000);
  for (auto& d : data) {
    d = rng.next_below(10) == 0 ? static_cast<std::uint32_t>(rng.next()) : 7u;
  }
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(GroupBy, GroupsAreContiguousAndComplete) {
  Xoshiro256 rng(8);
  struct Item {
    std::uint32_t key;
    std::uint32_t payload;
  };
  std::vector<Item> items(120000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<std::uint32_t>(rng.next_below(500)),
                static_cast<std::uint32_t>(i)};
  }
  std::vector<std::size_t> key_count(500, 0);
  for (const auto& it : items) ++key_count[it.key];

  auto groups = group_by_key(items, [](const Item& it) { return it.key; });
  std::size_t covered = 0;
  std::uint32_t prev_key = 0;
  bool first = true;
  for (const auto& g : groups) {
    ASSERT_GT(g.size(), 0u);
    const std::uint32_t key = items[g.begin].key;
    for (std::size_t i = g.begin; i < g.end; ++i) {
      ASSERT_EQ(items[i].key, key);
    }
    EXPECT_EQ(g.size(), key_count[key]);
    if (!first) {
      EXPECT_GT(key, prev_key);
    }
    prev_key = key;
    first = false;
    covered += g.size();
  }
  EXPECT_EQ(covered, items.size());
}

TEST(GroupBy, EmptyAndSingleKey) {
  std::vector<std::uint32_t> empty;
  EXPECT_TRUE(group_by_key(empty, [](std::uint32_t k) { return k; }).empty());
  std::vector<std::uint32_t> same(1000, 7);
  auto groups = group_by_key(same, [](std::uint32_t k) { return k; });
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 1000u);
}

TEST(Scheduler, SetNumWorkersReconfigures) {
  auto& sched = Scheduler::instance();
  const std::size_t original = sched.num_workers();
  sched.set_num_workers(2);
  EXPECT_EQ(sched.num_workers(), 2u);
  std::atomic<std::size_t> count{0};
  parallel_for(0, 10000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
  sched.set_num_workers(original);
  EXPECT_EQ(sched.num_workers(), original);
  count = 0;
  parallel_for(0, 10000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
}

}  // namespace
}  // namespace cpkcore
