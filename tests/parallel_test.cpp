// Tests for the parallel runtime: scheduler semantics (coverage, nesting,
// concurrent submitters), primitives (reduce/scan/pack), sample sort, and
// group_by.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Scheduler, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, NestedParallelForRunsSerially) {
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  parallel_for(0, kOuter, [&](std::size_t i) {
    EXPECT_FALSE(!Scheduler::in_chunk());
    parallel_for(0, kInner, [&](std::size_t j) {
      hits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Scheduler, InChunkOnPoollessFastPath) {
  // One total worker means no pool threads: every parallel_for takes the
  // threads_.empty() inline path, which must still mark the chunk scope.
  Scheduler serial(1);
  std::atomic<int> bad{0};
  serial.parallel_for(0, 64, [&](std::size_t) {
    if (!Scheduler::in_chunk()) bad.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(bad.load(), 0);

  Scheduler zero(0);
  bad = 0;
  zero.parallel_for(0, 64, [&](std::size_t) {
    if (!Scheduler::in_chunk()) bad.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scheduler, InChunkOnSingletonAndSingleChunkFastPaths) {
  Scheduler pooled(4);
  // n == 1 inline path.
  bool in = false;
  pooled.parallel_for(0, 1, [&](std::size_t) { in = Scheduler::in_chunk(); });
  EXPECT_TRUE(in);
  // Grain >= n collapses to num_chunks <= 1, also executed inline.
  std::atomic<int> bad{0};
  pooled.parallel_for(
      0, 128,
      [&](std::size_t) {
        if (!Scheduler::in_chunk()) bad.fetch_add(1, std::memory_order_relaxed);
      },
      1 << 20);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scheduler, NestedLoopNeverLeavesCallingThread) {
  // A loop body already inside a chunk must run nested parallel_for calls
  // serially on the same thread — a nested call that enqueues a pool job
  // would show foreign thread ids (and risks unbounded nesting).
  Scheduler pooled(4);
  std::atomic<int> escaped{0};
  pooled.parallel_for(
      0, 8,
      [&](std::size_t) {
        ASSERT_TRUE(Scheduler::in_chunk());
        const auto outer_tid = std::this_thread::get_id();
        pooled.parallel_for(0, 4096, [&](std::size_t) {
          if (std::this_thread::get_id() != outer_tid) {
            escaped.fetch_add(1, std::memory_order_relaxed);
          }
        });
      },
      1);
  EXPECT_EQ(escaped.load(), 0);
}

TEST(Scheduler, SingleChunkOuterCollapsesNestedLoop) {
  // Seed bug: an outer loop taking the num_chunks <= 1 inline path ran its
  // body at depth 0, so the nested loop spawned a parallel job instead of
  // collapsing to serial. All inner iterations must stay on the caller.
  Scheduler pooled(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> escaped{0};
  pooled.parallel_for(
      0, 16,
      [&](std::size_t) {
        EXPECT_TRUE(Scheduler::in_chunk());
        pooled.parallel_for(0, 4096, [&](std::size_t) {
          if (std::this_thread::get_id() != caller) {
            escaped.fetch_add(1, std::memory_order_relaxed);
          }
        });
      },
      64);
  EXPECT_EQ(escaped.load(), 0);
}

TEST(Scheduler, ConcurrentSubmittersBothComplete) {
  std::atomic<std::uint64_t> sum_a{0};
  std::atomic<std::uint64_t> sum_b{0};
  std::thread ta([&] {
    parallel_for(0, 200000, [&](std::size_t i) {
      sum_a.fetch_add(i, std::memory_order_relaxed);
    });
  });
  std::thread tb([&] {
    parallel_for(0, 200000, [&](std::size_t i) {
      sum_b.fetch_add(i, std::memory_order_relaxed);
    });
  });
  ta.join();
  tb.join();
  const std::uint64_t expect = 200000ull * 199999 / 2;
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), expect);
}

TEST(Scheduler, GrainControlsChunking) {
  std::atomic<std::size_t> count{0};
  parallel_for(
      0, 1000, [&](std::size_t) { count.fetch_add(1); }, 100);
  EXPECT_EQ(count.load(), 1000u);
}

TEST(Primitives, ReduceMatchesSerialSum) {
  constexpr std::size_t kN = 1 << 18;
  const auto sum = parallel_sum<std::uint64_t>(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(Primitives, ReduceWithMinCombine) {
  constexpr std::size_t kN = 100000;
  const auto mn = parallel_reduce(
      kN, std::numeric_limits<std::uint64_t>::max(),
      [](std::size_t i) { return static_cast<std::uint64_t>((i * 37 + 11) % 1000); },
      [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
  std::uint64_t expect = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < kN; ++i) {
    expect = std::min<std::uint64_t>(expect, (i * 37 + 11) % 1000);
  }
  EXPECT_EQ(mn, expect);
}

TEST(Primitives, SmallInputsTakeSerialPath) {
  const auto sum = parallel_sum<int>(10, [](std::size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(Primitives, ExclusiveScanMatchesSerial) {
  for (std::size_t n : {0ul, 1ul, 100ul, 5000ul, 1ul << 17}) {
    Xoshiro256 rng(n);
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) v = rng.next_below(100);
    std::vector<std::uint64_t> expect = vals;
    std::uint64_t acc = 0;
    for (auto& v : expect) {
      const auto tmp = v;
      v = acc;
      acc += tmp;
    }
    auto mine = vals;
    const auto total = parallel_scan_exclusive(mine);
    EXPECT_EQ(total, acc) << n;
    EXPECT_EQ(mine, expect) << n;
  }
}

TEST(Primitives, PackKeepsOrderAndFilters) {
  constexpr std::size_t kN = 1 << 17;
  auto out = parallel_pack<std::size_t>(
      kN, [](std::size_t i) { return i % 3 == 0; },
      [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), (kN + 2) / 3);
  for (std::size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(out[j], j * 3);
  }
}

TEST(Primitives, FilterOnElements) {
  std::vector<int> in(100000);
  std::iota(in.begin(), in.end(), 0);
  auto evens = parallel_filter(in, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), in.size() / 2);
  EXPECT_EQ(evens[10], 20);
}

TEST(Primitives, TabulateAndCount) {
  auto sq = parallel_tabulate<std::uint64_t>(
      50000, [](std::size_t i) { return static_cast<std::uint64_t>(i) * i; });
  EXPECT_EQ(sq[333], 333ull * 333);
  const auto odd = parallel_count(50000, [](std::size_t i) {
    return i % 2 == 1;
  });
  EXPECT_EQ(odd, 25000u);
}

TEST(Sort, RandomInput) {
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> data(200000);
  for (auto& d : data) d = rng.next();
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, AlreadySortedAndReverse) {
  std::vector<int> data(100000);
  std::iota(data.begin(), data.end(), 0);
  auto expect = data;
  parallel_sort(data);
  EXPECT_EQ(data, expect);
  std::reverse(data.begin(), data.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, ManyDuplicates) {
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> data(150000);
  for (auto& d : data) d = static_cast<std::uint32_t>(rng.next_below(7));
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

TEST(Sort, CustomComparator) {
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> data(100000);
  for (auto& d : data) d = rng.next();
  auto expect = data;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  parallel_sort(data, std::greater<>());
  EXPECT_EQ(data, expect);
}

TEST(Sort, SmallInputsUseSerialPath) {
  std::vector<int> data = {5, 3, 8, 1};
  parallel_sort(data);
  EXPECT_EQ(data, (std::vector<int>{1, 3, 5, 8}));
}

TEST(GroupBy, GroupsAreContiguousAndComplete) {
  Xoshiro256 rng(8);
  struct Item {
    std::uint32_t key;
    std::uint32_t payload;
  };
  std::vector<Item> items(120000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<std::uint32_t>(rng.next_below(500)),
                static_cast<std::uint32_t>(i)};
  }
  std::vector<std::size_t> key_count(500, 0);
  for (const auto& it : items) ++key_count[it.key];

  auto groups = group_by_key(items, [](const Item& it) { return it.key; });
  std::size_t covered = 0;
  std::uint32_t prev_key = 0;
  bool first = true;
  for (const auto& g : groups) {
    ASSERT_GT(g.size(), 0u);
    const std::uint32_t key = items[g.begin].key;
    for (std::size_t i = g.begin; i < g.end; ++i) {
      ASSERT_EQ(items[i].key, key);
    }
    EXPECT_EQ(g.size(), key_count[key]);
    if (!first) {
      EXPECT_GT(key, prev_key);
    }
    prev_key = key;
    first = false;
    covered += g.size();
  }
  EXPECT_EQ(covered, items.size());
}

TEST(GroupBy, EmptyAndSingleKey) {
  std::vector<std::uint32_t> empty;
  EXPECT_TRUE(group_by_key(empty, [](std::uint32_t k) { return k; }).empty());
  std::vector<std::uint32_t> same(1000, 7);
  auto groups = group_by_key(same, [](std::uint32_t k) { return k; });
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 1000u);
}

TEST(Scheduler, SetNumWorkersReconfigures) {
  auto& sched = Scheduler::instance();
  const std::size_t original = sched.num_workers();
  sched.set_num_workers(2);
  std::atomic<std::size_t> count{0};
  parallel_for(0, 10000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
  sched.set_num_workers(original);
  count = 0;
  parallel_for(0, 10000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
}

}  // namespace
}  // namespace cpkcore
