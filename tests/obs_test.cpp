// Tests for the flight recorder (src/obs/): metrics registry consistency
// under concurrent writers, trace ring wraparound and cross-thread
// ordering, Chrome trace-event JSON well-formedness, and the stats
// sampler's lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parallel/scheduler.hpp"
#include "service/kcore_service.hpp"

namespace {

using namespace cpkcore;

/// Minimal structural JSON check: balanced {}/[] outside strings, string
/// escapes honored, no dangling string. Enough to catch a malformed
/// export without a JSON library (CI additionally json.loads() real runs).
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && !escaped && stack.empty();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Obs, CounterConcurrentAdds) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Obs, StripedHistogramConcurrentRecords) {
  obs::StripedHistogram hist;
  constexpr int kThreads = 6;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(1000 * (static_cast<std::uint64_t>(t) + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.merged().count(), kThreads * kPerThread);
}

// The tentpole consistency property: snapshots taken while writers hammer
// the counters are each internally complete (every registered sample
// present) and values only grow across successive snapshots. Run under
// TSan this also proves the registry/collect path is race-free.
TEST(Obs, SnapshotConsistentUnderConcurrentWriters) {
  obs::MetricsRegistry registry;
  obs::Counter ops;
  obs::StripedHistogram lat;
  const std::uint64_t id = registry.add_source(
      "svc.", [&](obs::MetricsSink& sink) {
        sink.counter("ops", ops);
        sink.histogram("latency_ns", lat);
      });
  ASSERT_EQ(registry.num_sources(), 1u);

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ops.add();
        lat.record(500);
      }
    });
  }

  double last_ops = -1.0;
  std::uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.samples.size(), 2u);
    const obs::MetricSample* ops_sample = snap.find("svc.ops");
    const obs::MetricSample* lat_sample = snap.find("svc.latency_ns");
    ASSERT_NE(ops_sample, nullptr);
    ASSERT_NE(lat_sample, nullptr);
    EXPECT_EQ(ops_sample->type, obs::MetricType::kCounter);
    EXPECT_EQ(lat_sample->type, obs::MetricType::kHistogram);
    // Monotone: the counter and histogram only grow.
    EXPECT_GE(ops_sample->value, last_ops);
    EXPECT_GE(lat_sample->hist.count, last_count);
    last_ops = ops_sample->value;
    last_count = lat_sample->hist.count;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();

  registry.remove_source(id);
  EXPECT_EQ(registry.num_sources(), 0u);
  EXPECT_TRUE(registry.snapshot().samples.empty());
}

TEST(Obs, MetricsGroupRaiiDeregisters) {
  obs::MetricsRegistry registry;
  {
    obs::MetricsGroup group(&registry, "a.");
    group.collect([](obs::MetricsSink& sink) { sink.gauge("x", 1.0); });
    group.collect([](obs::MetricsSink& sink) { sink.gauge("y", 2.0); });
    EXPECT_EQ(registry.num_sources(), 2u);
    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_NE(snap.find("a.x"), nullptr);
    ASSERT_NE(snap.find("a.y"), nullptr);

    // Move transfers ownership of the registrations.
    obs::MetricsGroup moved = std::move(group);
    EXPECT_EQ(registry.num_sources(), 2u);
    EXPECT_TRUE(moved.enabled());
  }
  // Everything deregistered at scope exit; the callbacks can never run
  // against destroyed captures again.
  EXPECT_EQ(registry.num_sources(), 0u);

  // A null-registry group is inert at every call site.
  obs::MetricsGroup inert;
  inert.collect([](obs::MetricsSink& sink) { sink.gauge("never", 0.0); });
  EXPECT_FALSE(inert.enabled());
}

TEST(Obs, SnapshotJsonAndPrometheusFormats) {
  obs::MetricsRegistry registry;
  LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.record(i * 1000);
  obs::MetricsGroup group(&registry, "svc.");
  group.collect([&](obs::MetricsSink& sink) {
    sink.counter("acked_ops", 42.0);
    sink.gauge("queue_depth", 7.5);
    sink.histogram("ack_ns", hist);
  });
  // A prefix starting with a digit must come out of the Prometheus
  // sanitizer with a leading underscore guard.
  obs::MetricsGroup numeric(&registry, "0p.");
  numeric.collect(
      [](obs::MetricsSink& sink) { sink.gauge("lag", 3.0); });

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.wall_unix_ms, 0u);

  const std::string json = snap.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"svc.acked_ops\":42"), std::string::npos);
  EXPECT_NE(json.find("\"svc.queue_depth\":7.5"), std::string::npos);
  EXPECT_NE(json.find("\"svc.ack_ns.count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"svc.ack_ns.p99_ns\":"), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("svc_acked_ops_total 42"), std::string::npos) << prom;
  EXPECT_NE(prom.find("svc_queue_depth 7.5"), std::string::npos);
  EXPECT_NE(prom.find("svc_ack_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("svc_ack_ns_count 100"), std::string::npos);
  EXPECT_NE(prom.find("_0p_lag 3"), std::string::npos) << prom;
}

// Touching the scheduler registers its work-stealing counters with the
// process-wide registry (the one pipeline source that is always on).
TEST(Obs, SchedulerRegistersGlobalMetrics) {
  std::atomic<int> sum{0};
  Scheduler::instance().parallel_for(
      0, 1000, [&](std::size_t) { sum.fetch_add(1); }, 10);
  EXPECT_EQ(sum.load(), 1000);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  const obs::MetricSample* spawns = snap.find("sched.spawns");
  ASSERT_NE(spawns, nullptr);
  ASSERT_NE(snap.find("sched.steals"), nullptr);
  const obs::MetricSample* workers = snap.find("sched.workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_GE(workers->value, 1.0);
}

// End-to-end registry wiring: a service constructed with a registry
// exports its pipeline stats under its prefix, and deregisters on
// shutdown/destruction.
TEST(Obs, ServiceRegistersPipelineMetrics) {
  obs::MetricsRegistry registry;
  {
    service::ServiceConfig cfg;
    cfg.num_vertices = 64;
    cfg.metrics = &registry;
    service::KCoreService svc(cfg);
    svc.submit_insert(1, 2);
    svc.submit_insert(2, 3);
    svc.drain();
    const obs::MetricsSnapshot snap = registry.snapshot();
    const obs::MetricSample* acked = snap.find("service.acked_ops");
    ASSERT_NE(acked, nullptr);
    EXPECT_EQ(acked->value, 2.0);
    ASSERT_NE(snap.find("service.commit_lsn"), nullptr);
    ASSERT_NE(snap.find("service.ack_latency_ns"), nullptr);
  }
  EXPECT_EQ(registry.num_sources(), 0u);
}

TEST(Obs, TraceRingWraparound) {
  obs::trace_clear();
  obs::trace_set_enabled(true);
  obs::trace_set_ring_capacity(64);
  const obs::TraceStats before = obs::trace_stats();
  // A fresh thread gets a fresh ring with the just-set capacity.
  std::thread recorder([] {
    for (int i = 0; i < 1000; ++i) {
      obs::trace_instant("wrap", 1, static_cast<std::uint64_t>(i));
    }
  });
  recorder.join();
  const obs::TraceStats after = obs::trace_stats();
  EXPECT_EQ(after.recorded - before.recorded, 1000u);
  EXPECT_EQ(after.dropped - before.dropped, 1000u - 64u);
  EXPECT_EQ(after.retained - before.retained, 64u);

  // The ring keeps the most recent events: every surviving "wrap" arg is
  // from the tail of the sequence.
  const std::string json = obs::trace_chrome_json();
  ASSERT_TRUE(json_well_formed(json));
  std::size_t pos = 0;
  int survivors = 0;
  while ((pos = json.find("\"wrap\"", pos)) != std::string::npos) {
    const std::size_t vpos = json.find("\"v\":", pos);
    ASSERT_NE(vpos, std::string::npos);
    const long v = std::strtol(json.c_str() + vpos + 4, nullptr, 10);
    EXPECT_GE(v, 1000 - 64);
    ++survivors;
    pos = vpos;
  }
  EXPECT_EQ(survivors, 64);
  obs::trace_set_enabled(false);
  obs::trace_set_ring_capacity(0);  // restore default for later tests
  obs::trace_clear();
}

TEST(Obs, TraceCrossThreadOrderingAndAsyncPair) {
  obs::trace_clear();
  obs::trace_set_enabled(true);
  // Sequenced threads: every event of the begin thread strictly precedes
  // every event of the end thread on the steady clock, so the sorted
  // export must put the async 'b' before the matching 'e'.
  std::thread begin_thread([] {
    obs::trace_set_thread_name("begin_thread");
    obs::trace_async_begin("commit", 0x2a, 5);
  });
  begin_thread.join();
  std::thread end_thread([] {
    obs::trace_set_thread_name("end_thread");
    obs::trace_async_end("commit", 0x2a, 5);
  });
  end_thread.join();

  const std::string json = obs::trace_chrome_json();
  ASSERT_TRUE(json_well_formed(json)) << json;
  const std::size_t b = json.find("\"ph\":\"b\"");
  const std::size_t e = json.find("\"ph\":\"e\"");
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  EXPECT_LT(b, e);
  // Both carry the async id that matches them into one cross-thread span.
  EXPECT_NE(json.find("\"id\":\"0x2a\""), std::string::npos);
  EXPECT_NE(json.rfind("\"id\":\"0x2a\""), json.find("\"id\":\"0x2a\""));
  // Thread-name metadata for both rings.
  EXPECT_NE(json.find("begin_thread"), std::string::npos);
  EXPECT_NE(json.find("end_thread"), std::string::npos);
  obs::trace_set_enabled(false);
  obs::trace_clear();
}

TEST(Obs, TraceDisabledRecordsNothing) {
  obs::trace_clear();
  obs::trace_set_enabled(false);
  const obs::TraceStats before = obs::trace_stats();
  obs::trace_instant("nope", 1, 1);
  obs::trace_async_begin("nope", 2, 2);
  {
    obs::TraceSpan span("nope", 3, 3);
  }
  const obs::TraceStats after = obs::trace_stats();
  EXPECT_EQ(after.recorded, before.recorded);
}

// Golden sequence: a deterministic set of events exports in timestamp
// order with the exact phases Chrome/Perfetto expect.
TEST(Obs, TraceGoldenExportSequence) {
  obs::trace_clear();
  obs::trace_set_enabled(true);
  std::thread recorder([] {
    obs::trace_set_thread_name("golden");
    {
      obs::TraceSpan span("apply", 9, 100);
    }
    obs::trace_instant("ack", 9, 1);
    obs::trace_async_begin("commit", 9, 1);
    obs::trace_async_end("commit", 9, 1);
  });
  recorder.join();

  const std::string json = obs::trace_chrome_json();
  ASSERT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;

  // Extract the (phase, name) sequence, skipping metadata events.
  std::vector<std::pair<char, std::string>> seq;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    // The event's name precedes its phase within the same object.
    const std::size_t npos_ = json.rfind("\"name\":\"", pos);
    ASSERT_NE(npos_, std::string::npos);
    const std::size_t nstart = npos_ + 8;
    const std::size_t nend = json.find('"', nstart);
    if (ph != 'M') seq.emplace_back(ph, json.substr(nstart, nend - nstart));
    pos += 6;
  }
  const std::vector<std::pair<char, std::string>> golden = {
      {'X', "apply"}, {'i', "ack"}, {'b', "commit"}, {'e', "commit"}};
  EXPECT_EQ(seq, golden) << json;
  // The complete span carries a duration; instants carry scope "t".
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  obs::trace_set_enabled(false);
  obs::trace_clear();
}

TEST(Obs, SamplerLifecycleAndOnDemandDump) {
  const std::string path = temp_path("cpkc_obs_sampler_test.jsonl");
  std::filesystem::remove(path);

  obs::MetricsRegistry registry;
  obs::Counter ticks;
  obs::MetricsGroup group(&registry, "t.");
  group.collect(
      [&](obs::MetricsSink& sink) { sink.counter("ticks", ticks); });

  std::atomic<std::uint64_t> callbacks{0};
  {
    obs::SamplerOptions opts;
    opts.path = path;
    opts.interval_ms = 20;
    opts.registry = &registry;
    opts.on_sample = [&](const obs::MetricsSnapshot& snap) {
      EXPECT_NE(snap.find("t.ticks"), nullptr);
      callbacks.fetch_add(1, std::memory_order_relaxed);
    };
    obs::StatsSampler sampler(std::move(opts));
    EXPECT_TRUE(sampler.running());
    ticks.add(5);
    sampler.request_sample();  // off-schedule dump (the SIGUSR1 hook)
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    EXPECT_GE(sampler.samples(), 2u);  // ticks + on-demand + final
    EXPECT_EQ(sampler.samples(), callbacks.load());
    sampler.stop();  // idempotent
  }

  // Every emitted line is one well-formed JSON object with a timestamp.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(json_well_formed(line)) << line;
    EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"t.ticks\":"), std::string::npos);
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  std::filesystem::remove(path);
}

TEST(Obs, SamplerThrowsOnUnopenablePath) {
  obs::SamplerOptions opts;
  opts.path = "/nonexistent_dir_cpkc_obs/file.jsonl";
  EXPECT_THROW(obs::StatsSampler sampler(std::move(opts)),
               std::runtime_error);
}

}  // namespace
