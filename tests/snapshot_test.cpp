// Snapshot save/restore and mixed-batch application tests.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/snapshot.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "kcore/peel.hpp"

namespace cpkcore {
namespace {

TEST(Snapshot, RoundTripPreservesEdgeSet) {
  const std::string path = "/tmp/cpkc_snapshot_test.snap";
  constexpr vertex_t kN = 400;
  CPLDS ds(kN, LDSParams::create(kN));
  auto edges = gen::social(kN, 4, 3, 30, 0.9, 5);
  ds.insert_batch(edges);
  ds.delete_batch({edges.begin(),
                   edges.begin() + static_cast<std::ptrdiff_t>(100)});
  save_snapshot(ds, path);

  auto restored = load_snapshot(path);
  std::filesystem::remove(path);
  ASSERT_EQ(restored->num_vertices(), kN);
  ASSERT_EQ(restored->num_edges(), ds.num_edges());
  for (const Edge& e : edges) {
    EXPECT_EQ(restored->plds().has_edge(e.u, e.v),
              ds.plds().has_edge(e.u, e.v));
  }
  std::string why;
  EXPECT_TRUE(restored->plds().validate(&why)) << why;
}

TEST(Snapshot, RestoredEstimatesSatisfyBound) {
  const std::string path = "/tmp/cpkc_snapshot_bound.snap";
  constexpr vertex_t kN = 300;
  CPLDS ds(kN, LDSParams::create(kN));
  ds.insert_batch(gen::barabasi_albert(kN, 6, 9));
  save_snapshot(ds, path);
  auto restored = load_snapshot(path);
  std::filesystem::remove(path);

  DynamicGraph mirror(kN);
  const PLDS& plds = restored->plds();
  for (vertex_t v = 0; v < kN; ++v) {
    for (vertex_t w : plds.neighbors(v)) {
      if (w > v) mirror.insert_edge({v, w});
    }
  }
  const auto exact = exact_coreness(mirror);
  const double c = (2.0 + 3.0 / 9.0) * 1.44;
  for (vertex_t v = 0; v < kN; ++v) {
    const double est = restored->read_coreness(v);
    const double truth = std::max<double>(1.0, exact[v]);
    EXPECT_LE(std::max(est / truth, truth / est), c) << v;
  }
}

TEST(Snapshot, LoadOptionsSelectParameters) {
  const std::string path = "/tmp/cpkc_snapshot_opts.snap";
  constexpr vertex_t kN = 200;
  CPLDS ds(kN, LDSParams::create(kN));
  ds.insert_batch(gen::barabasi_albert(kN, 3, 4));
  save_snapshot(ds, path);

  SnapshotLoadOptions opts;
  opts.delta = 0.4;
  opts.lambda = 3.0;
  opts.levels_per_group_cap = 10;
  opts.cplds.track_dependencies = false;
  auto restored = load_snapshot(path, opts);
  std::filesystem::remove(path);
  EXPECT_EQ(restored->num_edges(), ds.num_edges());
  EXPECT_DOUBLE_EQ(restored->params().delta(), 0.4);
  EXPECT_DOUBLE_EQ(restored->params().lambda(), 3.0);
  EXPECT_EQ(restored->params().levels_per_group(), 10);
}

TEST(Snapshot, RejectsCorruptFiles) {
  const std::string path = "/tmp/cpkc_snapshot_bad.snap";
  {
    std::ofstream out(path);
    out << "not-a-snapshot\n12\n1 2\n";
  }
  EXPECT_THROW(load_snapshot(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(load_snapshot("/nonexistent/x.snap"), std::runtime_error);
}

TEST(MixedBatches, ApplyMixedSplitsRuns) {
  constexpr vertex_t kN = 100;
  CPLDS ds(kN, LDSParams::create(kN));
  std::vector<Update> updates = {
      {{0, 1}, UpdateKind::kInsert}, {{1, 2}, UpdateKind::kInsert},
      {{2, 3}, UpdateKind::kInsert}, {{0, 1}, UpdateKind::kDelete},
      {{4, 5}, UpdateKind::kInsert},
  };
  const std::uint64_t batches_before = ds.batch_number();
  const std::size_t applied = ds.apply_mixed(updates);
  EXPECT_EQ(applied, 5u);
  // Three homogeneous runs -> three batches.
  EXPECT_EQ(ds.batch_number() - batches_before, 3u);
  EXPECT_EQ(ds.num_edges(), 3u);
  EXPECT_FALSE(ds.plds().has_edge(0, 1));
  EXPECT_TRUE(ds.plds().has_edge(4, 5));
}

TEST(MixedBatches, MixedStreamMatchesManualSplit) {
  constexpr vertex_t kN = 300;
  Xoshiro256 rng(33);
  std::vector<Update> updates;
  DynamicGraph mirror(kN);
  std::vector<Edge> present;
  for (int i = 0; i < 2000; ++i) {
    if (present.empty() || rng.next_below(3) != 0) {
      const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                   static_cast<vertex_t>(rng.next_below(kN))};
      updates.push_back({e, UpdateKind::kInsert});
      if (mirror.insert_edge(e)) present.push_back(e.canonical());
    } else {
      const std::size_t j = rng.next_below(present.size());
      updates.push_back({present[j], UpdateKind::kDelete});
      mirror.delete_edge(present[j]);
      present[j] = present.back();
      present.pop_back();
    }
  }
  CPLDS ds(kN, LDSParams::create(kN));
  ds.apply_mixed(updates);
  EXPECT_EQ(ds.num_edges(), mirror.num_edges());
  for (vertex_t v = 0; v < kN; v += 3) {
    for (vertex_t w : mirror.neighbors(v)) {
      EXPECT_TRUE(ds.plds().has_edge(v, w));
    }
  }
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
}

}  // namespace
}  // namespace cpkcore
