// Tests for the applications layer (the paper's §9 related problems):
// low out-degree orientation, level-order coloring, parallel maximal
// matching, and approximate densest subgraph — all derived from quiescent
// PLDS snapshots, parameterized across graph families.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

#include "apps/coloring.hpp"
#include "apps/densest.hpp"
#include "apps/matching.hpp"
#include "apps/orientation.hpp"
#include "graph/generators.hpp"
#include "kcore/peel.hpp"
#include "graph/dynamic_graph.hpp"

namespace cpkcore::apps {
namespace {

std::unique_ptr<PLDS> build_plds(vertex_t n, std::vector<Edge> edges) {
  auto plds = std::make_unique<PLDS>(n, LDSParams::create(n));
  plds->insert_batch(std::move(edges));
  return plds;
}

// ---------------------------------------------------------------------------
// Orientation
// ---------------------------------------------------------------------------

TEST(Orientation, EveryEdgeOrientedExactlyOnce) {
  auto edges = gen::erdos_renyi(300, 1500, 3);
  auto plds_owner = build_plds(300, edges);
  auto& plds = *plds_owner;
  auto o = extract_orientation(plds);
  EXPECT_EQ(o.num_edges(), edges.size());
  std::set<std::uint64_t> oriented;
  for (vertex_t v = 0; v < 300; ++v) {
    for (vertex_t w : o.out[v]) {
      EXPECT_TRUE(plds.has_edge(v, w));
      oriented.insert(Edge{v, w}.canonical().key());
    }
  }
  EXPECT_EQ(oriented.size(), edges.size());
}

TEST(Orientation, RespectsPerVertexBound) {
  auto plds_owner = build_plds(500, gen::social(500, 5, 5, 30, 0.9, 7));
  auto& plds = *plds_owner;
  auto o = extract_orientation(plds);
  for (vertex_t v = 0; v < 500; ++v) {
    EXPECT_LE(static_cast<double>(o.out_degree(v)),
              orientation_bound(plds, v))
        << v;
  }
}

TEST(Orientation, IsAcyclic) {
  // Orientation by (level, id) is a topological order, hence acyclic:
  // verify out-edges strictly increase in that order.
  auto plds_owner = build_plds(200, gen::barabasi_albert(200, 4, 9));
  auto& plds = *plds_owner;
  auto o = extract_orientation(plds);
  auto key = [&](vertex_t v) {
    return std::make_pair(plds.level(v), v);
  };
  for (vertex_t v = 0; v < 200; ++v) {
    for (vertex_t w : o.out[v]) {
      EXPECT_LT(key(v), key(w));
    }
  }
}

TEST(Orientation, TreeHasConstantOutDegree) {
  auto plds_owner = build_plds(500, gen::random_tree(500, 11));
  auto& plds = *plds_owner;
  auto o = extract_orientation(plds);
  // Trees have arboricity 1; the bound is the group-0..1 threshold.
  EXPECT_LE(o.max_out_degree(), 4u);
}

// ---------------------------------------------------------------------------
// Coloring
// ---------------------------------------------------------------------------

class ColoringFamilies : public ::testing::TestWithParam<int> {};

TEST_P(ColoringFamilies, ProperAndBounded) {
  vertex_t n = 0;
  std::vector<Edge> edges;
  switch (GetParam()) {
    case 0:
      n = 400;
      edges = gen::erdos_renyi(n, 2000, 13);
      break;
    case 1:
      n = 400;
      edges = gen::barabasi_albert(n, 6, 13);
      break;
    case 2:
      n = 400;
      edges = gen::grid_2d(20, 20, true);
      break;
    case 3:
      n = 120;
      edges = gen::disjoint_cliques(n, 12);
      break;
    default:
      FAIL();
  }
  auto plds_owner = build_plds(n, edges);
  auto& plds = *plds_owner;
  auto coloring = level_order_coloring(plds);
  EXPECT_TRUE(is_proper(plds, coloring));
  // Bound: 1 + max over vertices of the Invariant-1 threshold.
  double max_bound = 0;
  for (vertex_t v = 0; v < n; ++v) {
    max_bound = std::max(max_bound, orientation_bound(plds, v));
  }
  EXPECT_LE(coloring.num_colors, static_cast<color_t>(max_bound) + 1);
}

INSTANTIATE_TEST_SUITE_P(Families, ColoringFamilies, ::testing::Range(0, 4));

TEST(Coloring, CliqueNeedsCliqueSizeColors) {
  auto plds_owner = build_plds(30, gen::complete(30));
  auto& plds = *plds_owner;
  auto coloring = level_order_coloring(plds);
  EXPECT_TRUE(is_proper(plds, coloring));
  EXPECT_EQ(coloring.num_colors, 30u);  // chromatic number of K_30
}

TEST(Coloring, EmptyGraphUsesOneColor) {
  PLDS plds(10, LDSParams::create(10));
  auto coloring = level_order_coloring(plds);
  EXPECT_EQ(coloring.num_colors, 1u);
}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

class MatchingFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MatchingFamilies, ValidAndMaximal) {
  const auto [family, seed] = GetParam();
  vertex_t n = 0;
  std::vector<Edge> edges;
  switch (family) {
    case 0:
      n = 500;
      edges = gen::erdos_renyi(n, 2500, seed);
      break;
    case 1:
      n = 500;
      edges = gen::barabasi_albert(n, 5, seed);
      break;
    case 2:
      n = 400;
      edges = gen::grid_2d(20, 20, false);
      break;
    default:
      FAIL();
  }
  auto plds_owner = build_plds(n, edges);
  auto& plds = *plds_owner;
  auto m = maximal_matching(plds, seed);
  EXPECT_TRUE(is_valid_matching(plds, m));
  EXPECT_TRUE(is_maximal_matching(plds, m));
  EXPECT_GT(m.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MatchingFamilies,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(1ull, 2ull, 3ull)));

TEST(Matching, PerfectOnEvenCycle) {
  auto plds_owner = build_plds(100, gen::cycle(100));
  auto& plds = *plds_owner;
  auto m = maximal_matching(plds, 5);
  EXPECT_TRUE(is_valid_matching(plds, m));
  EXPECT_TRUE(is_maximal_matching(plds, m));
  // Maximal matching on a cycle covers at least 2/3 ... at least n/3 edges.
  EXPECT_GE(m.size(), 100u / 3);
}

TEST(Matching, StarMatchesExactlyOneEdge) {
  auto plds_owner = build_plds(50, gen::star(50));
  auto& plds = *plds_owner;
  auto m = maximal_matching(plds, 7);
  EXPECT_TRUE(is_valid_matching(plds, m));
  EXPECT_TRUE(is_maximal_matching(plds, m));
  EXPECT_EQ(m.size(), 1u);
}

TEST(Matching, DeterministicForFixedSeed) {
  auto edges = gen::erdos_renyi(300, 1200, 17);
  auto p1 = build_plds(300, edges);
  auto p2 = build_plds(300, edges);
  EXPECT_EQ(maximal_matching(*p1, 9).mate, maximal_matching(*p2, 9).mate);
}

// ---------------------------------------------------------------------------
// Densest subgraph
// ---------------------------------------------------------------------------

TEST(Densest, FindsPlantedDenseCommunity) {
  // Sparse background + a 40-clique: densest subgraph density ~ 19.5.
  constexpr vertex_t kN = 2000;
  auto edges = gen::random_tree(kN, 3);
  for (vertex_t u = 0; u < 40; ++u) {
    for (vertex_t v = u + 1; v < 40; ++v) edges.push_back({u, v});
  }
  auto plds_owner = build_plds(kN, edges);
  auto& plds = *plds_owner;
  auto result = approx_densest_subgraph(plds);
  // The optimum is (40*39/2)/40 = 19.5; a 2(1+eps) approximation must
  // exceed 19.5 / (2 * 1.2^2) ~ 6.8.
  EXPECT_GT(result.density, 6.7);
  // Reported density must match an exact recount of the returned set.
  EXPECT_NEAR(result.density, induced_density(plds, result.vertices), 1e-9);
  // The planted clique must be inside the reported subgraph.
  std::set<vertex_t> members(result.vertices.begin(), result.vertices.end());
  for (vertex_t v = 0; v < 40; ++v) {
    EXPECT_TRUE(members.contains(v)) << v;
  }
}

TEST(Densest, DensityConsistentOnUniformGraph) {
  auto plds_owner = build_plds(300, gen::erdos_renyi(300, 3000, 21));
  auto& plds = *plds_owner;
  auto result = approx_densest_subgraph(plds);
  EXPECT_GT(result.density, 0);
  EXPECT_NEAR(result.density, induced_density(plds, result.vertices), 1e-9);
  // Whole graph density is 10; the best suffix is at least half of it
  // under the approximation guarantee.
  EXPECT_GE(result.density, 10.0 / (2 * 1.44) - 1e-9);
}

TEST(Densest, EmptyGraphYieldsZero) {
  PLDS plds(10, LDSParams::create(10));
  auto result = approx_densest_subgraph(plds);
  EXPECT_EQ(result.density, 0);
}

}  // namespace
}  // namespace cpkcore::apps
