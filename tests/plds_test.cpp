// PLDS tests: structural validation (buckets + both invariants) after every
// batch, equivalence of membership with a mirror graph, determinism of the
// level-synchronous algorithm, and the coreness-approximation property
// across graph families and batch sizes (parameterized).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <tuple>

#include "graph/batch.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "kcore/peel.hpp"
#include "plds/plds.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

void expect_within_bound(const PLDS& plds, const DynamicGraph& mirror,
                         const std::string& context) {
  const auto exact = exact_coreness(mirror);
  const auto& p = plds.params();
  const double c =
      (2.0 + 3.0 / p.lambda()) * std::pow(1.0 + p.delta(), 2);
  for (vertex_t v = 0; v < plds.num_vertices(); ++v) {
    const double est = plds.coreness_estimate(v);
    const double truth = std::max<double>(1.0, exact[v]);
    const double ratio = std::max(est / truth, truth / est);
    ASSERT_LE(ratio, c) << context << " vertex " << v << " level "
                        << plds.level(v) << " est " << est << " true "
                        << truth;
  }
}

TEST(Plds, EmptyStartsAtLevelZero) {
  PLDS plds(50, LDSParams::create(50));
  for (vertex_t v = 0; v < 50; ++v) EXPECT_EQ(plds.level(v), 0);
  std::string why;
  EXPECT_TRUE(plds.validate(&why)) << why;
}

TEST(Plds, SingleBatchInsertValidates) {
  PLDS plds(100, LDSParams::create(100));
  auto applied = plds.insert_batch(gen::erdos_renyi(100, 400, 1));
  EXPECT_EQ(applied.size(), 400u);
  EXPECT_EQ(plds.num_edges(), 400u);
  std::string why;
  EXPECT_TRUE(plds.validate(&why)) << why;
}

TEST(Plds, RejectsSelfLoopsAndDuplicates) {
  PLDS plds(10, LDSParams::create(10));
  auto applied = plds.insert_batch({{1, 2}, {2, 1}, {3, 3}, {1, 2}});
  EXPECT_EQ(applied.size(), 1u);
  applied = plds.insert_batch({{1, 2}, {2, 3}});
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_TRUE(plds.has_edge(1, 2));
  EXPECT_TRUE(plds.has_edge(3, 2));
  EXPECT_FALSE(plds.has_edge(1, 3));
}

TEST(Plds, DeleteBatchRemovesAndValidates) {
  PLDS plds(100, LDSParams::create(100));
  auto edges = gen::erdos_renyi(100, 500, 2);
  plds.insert_batch(edges);
  std::vector<Edge> half(edges.begin(),
                         edges.begin() + static_cast<std::ptrdiff_t>(250));
  auto removed = plds.delete_batch(half);
  EXPECT_EQ(removed.size(), 250u);
  EXPECT_EQ(plds.num_edges(), 250u);
  std::string why;
  EXPECT_TRUE(plds.validate(&why)) << why;
  // Absent deletions are dropped.
  EXPECT_TRUE(plds.delete_batch(half).empty());
}

TEST(Plds, InsertThenDeleteEverythingReturnsToLevelZero) {
  PLDS plds(80, LDSParams::create(80));
  auto edges = gen::barabasi_albert(80, 4, 3);
  plds.insert_batch(edges);
  plds.delete_batch(edges);
  EXPECT_EQ(plds.num_edges(), 0u);
  std::string why;
  EXPECT_TRUE(plds.validate(&why)) << why;
  for (vertex_t v = 0; v < 80; ++v) {
    EXPECT_DOUBLE_EQ(plds.coreness_estimate(v), 1.0);
  }
}

TEST(Plds, HasEdgeMatchesMirrorUnderChurn) {
  constexpr vertex_t kN = 300;
  PLDS plds(kN, LDSParams::create(kN));
  DynamicGraph mirror(kN);
  Xoshiro256 rng(4);
  for (int round = 0; round < 10; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 500; ++i) {
      batch.push_back({static_cast<vertex_t>(rng.next_below(kN)),
                       static_cast<vertex_t>(rng.next_below(kN))});
    }
    if (round % 3 == 2) {
      auto removed = plds.delete_batch(batch);
      mirror.delete_batch(batch);
      EXPECT_EQ(plds.num_edges(), mirror.num_edges());
    } else {
      plds.insert_batch(batch);
      mirror.insert_batch(batch);
      EXPECT_EQ(plds.num_edges(), mirror.num_edges());
    }
    for (int probe = 0; probe < 200; ++probe) {
      const auto u = static_cast<vertex_t>(rng.next_below(kN));
      const auto v = static_cast<vertex_t>(rng.next_below(kN));
      ASSERT_EQ(plds.has_edge(u, v), mirror.has_edge(u, v));
    }
  }
}

TEST(Plds, LevelsAreDeterministicAcrossRuns) {
  auto run = [](std::size_t batch_size) {
    PLDS plds(200, LDSParams::create(200));
    auto stream = insertion_stream(gen::barabasi_albert(200, 5, 5),
                                   batch_size, 7);
    for (const auto& b : stream) plds.insert_batch(b.edges);
    std::vector<level_t> levels(200);
    for (vertex_t v = 0; v < 200; ++v) levels[v] = plds.level(v);
    return levels;
  };
  EXPECT_EQ(run(100), run(100));  // same batches, two executions
}

TEST(Plds, MarkHooksFireOncePerMovedVertexWithOldLevel) {
  constexpr vertex_t kN = 60;
  PLDS plds(kN, LDSParams::create(kN));
  std::vector<int> marks(kN, 0);
  std::vector<level_t> old_levels(kN, -1);
  std::atomic<int> total{0};
  PLDS::Hooks hooks;
  hooks.on_mark = [&](vertex_t v, level_t old_level,
                      std::span<const vertex_t>) {
    ++marks[v];
    old_levels[v] = old_level;
    total.fetch_add(1);
  };
  hooks.is_marked = [&](vertex_t v) { return marks[v] > 0; };
  plds.set_hooks(hooks);

  std::vector<level_t> before(kN);
  for (vertex_t v = 0; v < kN; ++v) before[v] = plds.level(v);
  plds.insert_batch(gen::complete(kN));

  EXPECT_GT(total.load(), 0);
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_LE(marks[v], 1) << v;
    if (marks[v] == 1) {
      // Old level recorded at mark time must be the pre-batch level.
      EXPECT_EQ(old_levels[v], before[v]) << v;
      EXPECT_GT(plds.level(v), before[v]) << v;
    } else {
      EXPECT_EQ(plds.level(v), before[v]) << v;
    }
  }
}

TEST(Plds, TriggerRuleRespectsLevelsPerPhase) {
  // Paper §5.2: insertion triggers are marked neighbors at the same or
  // higher level than the marked vertex (pre-move); deletion triggers are
  // marked neighbors strictly below level(v) - 1. Capture every hook call
  // and check both rules against levels at mark time.
  constexpr vertex_t kN = 200;
  PLDS plds(kN, LDSParams::create(kN));

  struct MarkRecord {
    vertex_t v;
    level_t old_level;
    std::vector<vertex_t> triggers;
  };
  std::vector<MarkRecord> records;
  std::mutex mu;
  std::vector<std::uint8_t> marked(kN, 0);
  bool deleting = false;

  PLDS::Hooks hooks;
  hooks.on_mark = [&](vertex_t v, level_t old_level,
                      std::span<const vertex_t> triggers) {
    std::lock_guard lock(mu);
    marked[v] = 1;
    // Check trigger levels NOW (triggers have not moved past this point in
    // the current step; earlier movers already sit at their new levels).
    for (vertex_t t : triggers) {
      const level_t lt = plds.level(t);
      if (deleting) {
        EXPECT_LT(lt, old_level - 1)
            << "deletion trigger " << t << " for " << v;
      } else {
        EXPECT_GE(lt, old_level)
            << "insertion trigger " << t << " for " << v;
      }
      EXPECT_TRUE(marked[t]) << "trigger " << t << " not marked";
    }
    records.push_back(
        {v, old_level, std::vector<vertex_t>(triggers.begin(),
                                             triggers.end())});
  };
  hooks.is_marked = [&](vertex_t v) {
    std::lock_guard lock(mu);
    return marked[v] != 0;
  };
  plds.set_hooks(hooks);

  auto edges = gen::disjoint_cliques(kN, 20);
  plds.insert_batch(edges);
  EXPECT_FALSE(records.empty());

  records.clear();
  std::fill(marked.begin(), marked.end(), 0);
  deleting = true;
  std::vector<Edge> del;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i % 190 != 0) del.push_back(edges[i]);
  }
  plds.delete_batch(del);
  EXPECT_FALSE(records.empty());
}

struct PldsCase {
  int family;
  std::size_t batch_size;
};

class PldsApprox
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PldsApprox, InvariantsAndApproximationAcrossBatches) {
  const auto [family, batch_size] = GetParam();
  vertex_t n = 0;
  std::vector<Edge> edges;
  switch (family) {
    case 0:
      n = 400;
      edges = gen::erdos_renyi(n, 2400, 13);
      break;
    case 1:
      n = 400;
      edges = gen::barabasi_albert(n, 6, 14);
      break;
    case 2:
      n = 1024;
      edges = gen::rmat(10, 4000, 15);
      break;
    case 3:
      n = 400;
      edges = gen::grid_2d(20, 20, true);
      break;
    case 4:
      n = 120;
      edges = gen::disjoint_cliques(n, 12);
      break;
    default:
      FAIL();
  }
  PLDS plds(n, LDSParams::create(n));
  DynamicGraph mirror(n);

  auto ins = insertion_stream(edges, batch_size, 99);
  // Validation is O(n + m); for single-edge streams validate periodically.
  const std::size_t stride = ins.size() > 200 ? 23 : 1;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    plds.insert_batch(ins[i].edges);
    mirror.insert_batch(ins[i].edges);
    if (i % stride == 0 || i + 1 == ins.size()) {
      std::string why;
      ASSERT_TRUE(plds.validate(&why))
          << "insert batch " << i << ": " << why;
    }
  }
  expect_within_bound(plds, mirror, "after inserts");

  auto del = deletion_stream(edges, batch_size, 99);
  for (std::size_t i = 0; i < del.size(); ++i) {
    plds.delete_batch(del[i].edges);
    mirror.delete_batch(del[i].edges);
    if (i % stride == 0 || i + 1 == del.size()) {
      std::string why;
      ASSERT_TRUE(plds.validate(&why))
          << "delete batch " << i << ": " << why;
    }
    if (i == del.size() / 2) {
      expect_within_bound(plds, mirror, "mid deletes");
    }
  }
  EXPECT_EQ(plds.num_edges(), 0u);
}

const char* const kPldsFamilyNames[] = {"er", "ba", "rmat", "grid",
                                        "cliques"};

std::string plds_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
  return std::string(kPldsFamilyNames[std::get<0>(info.param)]) + "_b" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndBatchSizes, PldsApprox,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{1000},
                                         std::size_t{1000000})),
    plds_case_name);

TEST(Plds, SlidingWindowChurnStaysValid) {
  constexpr vertex_t kN = 500;
  PLDS plds(kN, LDSParams::create(kN));
  auto edges = gen::barabasi_albert(kN, 6, 21);
  auto stream = sliding_window_stream(edges, 1200, 300, 5);
  for (const auto& b : stream) {
    if (b.kind == UpdateKind::kInsert) {
      plds.insert_batch(b.edges);
    } else {
      plds.delete_batch(b.edges);
    }
    std::string why;
    ASSERT_TRUE(plds.validate(&why)) << why;
  }
}

TEST(Plds, CappedLevelsStillValidate) {
  constexpr vertex_t kN = 300;
  PLDS plds(kN, LDSParams::create(kN, 0.2, 9.0, /*levels_per_group_cap=*/8));
  plds.insert_batch(gen::barabasi_albert(kN, 8, 30));
  std::string why;
  EXPECT_TRUE(plds.validate(&why)) << why;
}

}  // namespace
}  // namespace cpkcore
