// Direct unit tests for VertexBuckets — the PLDS's per-vertex level-
// partitioned adjacency. Exercises every transition the PLDS performs:
// neighbor inserts/erases at all relative levels, neighbor moves, own
// rises (with co-movers staying in `up`), own drops (bucket merge), and a
// randomized consistency check against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "plds/level_buckets.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

TEST(VertexBuckets, InsertPlacesByRelativeLevel) {
  VertexBuckets b;
  // Owner at level 3: neighbors below go into down[their level], others up.
  b.insert_neighbor(10, 0, 3);
  b.insert_neighbor(11, 2, 3);
  b.insert_neighbor(12, 3, 3);
  b.insert_neighbor(13, 9, 3);
  EXPECT_EQ(b.degree(), 4u);
  EXPECT_EQ(b.up_degree(), 2u);  // 12 and 13
  EXPECT_EQ(b.down_size(0), 1u);
  EXPECT_EQ(b.down_size(1), 0u);
  EXPECT_EQ(b.down_size(2), 1u);
  EXPECT_TRUE(b.contains(10, 0, 3));
  EXPECT_TRUE(b.contains(13, 9, 3));
  EXPECT_FALSE(b.contains(14, 1, 3));
}

TEST(VertexBuckets, CountAtOrAbove) {
  VertexBuckets b;
  b.insert_neighbor(1, 0, 4);
  b.insert_neighbor(2, 1, 4);
  b.insert_neighbor(3, 3, 4);
  b.insert_neighbor(4, 4, 4);
  b.insert_neighbor(5, 7, 4);
  EXPECT_EQ(b.count_at_or_above(4, 4), 2u);   // up only
  EXPECT_EQ(b.count_at_or_above(3, 4), 3u);   // + level 3
  EXPECT_EQ(b.count_at_or_above(1, 4), 4u);
  EXPECT_EQ(b.count_at_or_above(0, 4), 5u);
}

TEST(VertexBuckets, EraseFromEitherSide) {
  VertexBuckets b;
  b.insert_neighbor(1, 2, 5);
  b.insert_neighbor(2, 6, 5);
  b.erase_neighbor(1, 2, 5);
  EXPECT_EQ(b.degree(), 1u);
  EXPECT_FALSE(b.contains(1, 2, 5));
  b.erase_neighbor(2, 6, 5);
  EXPECT_EQ(b.degree(), 0u);
}

TEST(VertexBuckets, NeighborMovedAcrossBoundary) {
  VertexBuckets b;
  b.insert_neighbor(7, 1, 3);  // below
  EXPECT_EQ(b.up_degree(), 0u);
  b.neighbor_moved(7, 1, 3, 3);  // rises to my level -> joins up
  EXPECT_EQ(b.up_degree(), 1u);
  EXPECT_EQ(b.down_size(1), 0u);
  b.neighbor_moved(7, 3, 0, 3);  // drops to 0
  EXPECT_EQ(b.up_degree(), 0u);
  EXPECT_EQ(b.down_size(0), 1u);
}

TEST(VertexBuckets, OwnLevelUpDemotesStayingNeighbors) {
  VertexBuckets b;
  // Owner at 2; neighbors: one at 2 staying, one at 2 co-moving, one at 5.
  b.insert_neighbor(1, 2, 2);
  b.insert_neighbor(2, 2, 2);
  b.insert_neighbor(3, 5, 2);
  EXPECT_EQ(b.up_degree(), 3u);
  b.on_my_level_up(2, [](vertex_t w) { return w == 1; });  // 1 stays behind
  EXPECT_EQ(b.up_degree(), 2u);
  EXPECT_EQ(b.down_size(2), 1u);
  EXPECT_TRUE(b.contains(1, 2, 3));  // now viewed from level 3
  EXPECT_TRUE(b.contains(2, 3, 3));
}

TEST(VertexBuckets, OwnLevelDownMergesBuckets) {
  VertexBuckets b;
  // Owner at 5 with neighbors at 0, 2, 3, 4, 6.
  b.insert_neighbor(1, 0, 5);
  b.insert_neighbor(2, 2, 5);
  b.insert_neighbor(3, 3, 5);
  b.insert_neighbor(4, 4, 5);
  b.insert_neighbor(5, 6, 5);
  b.on_my_level_down(5, 2);
  // New level 2: up = neighbors at >= 2 (four of them), down[0] keeps 1.
  EXPECT_EQ(b.up_degree(), 4u);
  EXPECT_EQ(b.down_size(0), 1u);
  EXPECT_EQ(b.down_size(2), 0u);
  EXPECT_EQ(b.down_size(3), 0u);
  EXPECT_EQ(b.count_at_or_above(1, 2), 4u);
}

TEST(VertexBuckets, ForEachNeighborVisitsAllWithBucketLevels) {
  VertexBuckets b;
  b.insert_neighbor(1, 0, 4);
  b.insert_neighbor(2, 3, 4);
  b.insert_neighbor(3, 8, 4);
  std::map<vertex_t, level_t> seen;
  b.for_each_neighbor(4, [&](vertex_t w, level_t bucket) {
    seen[w] = bucket;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], 0);
  EXPECT_EQ(seen[2], 3);
  EXPECT_EQ(seen[3], 4);  // up bucket reported as my level
}

TEST(VertexBuckets, RandomizedAgainstReferenceModel) {
  // Model: owner level + map neighbor -> level. Apply random ops to both
  // and compare counts/membership.
  Xoshiro256 rng(77);
  VertexBuckets b;
  level_t my_level = 0;
  std::map<vertex_t, level_t> ref;

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.next_below(5));
    if (op == 0 || ref.empty()) {  // insert new neighbor
      const auto w = static_cast<vertex_t>(rng.next_below(500));
      if (ref.contains(w)) continue;
      const auto lw = static_cast<level_t>(rng.next_below(12));
      ref[w] = lw;
      b.insert_neighbor(w, lw, my_level);
    } else if (op == 1) {  // erase random neighbor
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.next_below(ref.size())));
      b.erase_neighbor(it->first, it->second, my_level);
      ref.erase(it);
    } else if (op == 2) {  // neighbor moves
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.next_below(ref.size())));
      const auto to = static_cast<level_t>(rng.next_below(12));
      b.neighbor_moved(it->first, it->second, to, my_level);
      it->second = to;
    } else if (op == 3 && my_level < 11) {  // own rise by one
      b.on_my_level_up(my_level, [&](vertex_t w) {
        return ref[w] == my_level;  // same-level neighbors stay behind
      });
      ++my_level;
    } else if (op == 4 && my_level > 0) {  // own drop to random lower
      const auto to = static_cast<level_t>(rng.next_below(
          static_cast<std::uint64_t>(my_level)));
      b.on_my_level_down(my_level, to);
      my_level = to;
    }

    if (step % 500 == 0) {
      ASSERT_EQ(b.degree(), ref.size()) << step;
      std::size_t expect_up = 0;
      for (const auto& [w, lw] : ref) {
        expect_up += (lw >= my_level) ? 1 : 0;
        ASSERT_TRUE(b.contains(w, lw, my_level)) << step << " w=" << w;
      }
      ASSERT_EQ(b.up_degree(), expect_up) << step;
      for (level_t j = 0; j <= my_level; ++j) {
        std::size_t expect = 0;
        for (const auto& [w, lw] : ref) {
          expect += (lw >= j) ? 1 : 0;
        }
        if (j < my_level || j == my_level) {
          ASSERT_EQ(b.count_at_or_above(j, my_level), expect)
              << step << " j=" << j;
        }
      }
    }
  }
}

TEST(VertexBuckets, UpNeighborsSnapshot) {
  VertexBuckets b;
  b.insert_neighbor(3, 5, 2);
  b.insert_neighbor(9, 2, 2);
  b.insert_neighbor(1, 0, 2);
  auto up = b.up_neighbors();
  std::sort(up.begin(), up.end());
  EXPECT_EQ(up, (std::vector<vertex_t>{3, 9}));
}

}  // namespace
}  // namespace cpkcore
