// Tests for the concurrency substrate: the stamped concurrent union-find
// (sequential semantics, deterministic roots, multi-threaded stress against
// a sequential reference, stale-compression rejection) and the packed
// descriptor table.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "concurrent/descriptor_table.hpp"
#include "concurrent/union_find.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

/// Simple sequential DSU for reference partitions.
struct RefDsu {
  std::vector<vertex_t> parent;
  explicit RefDsu(vertex_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  vertex_t find(vertex_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  }
  void unite(vertex_t u, vertex_t v) {
    u = find(u);
    v = find(v);
    if (u != v) parent[std::min(u, v)] = std::max(u, v);
  }
};

TEST(UnionFind, SingletonsAreRoots) {
  ConcurrentUnionFind uf(10);
  for (vertex_t v = 0; v < 10; ++v) {
    EXPECT_EQ(uf.parent(v), v);
    EXPECT_EQ(uf.find(v), v);
  }
}

TEST(UnionFind, UniteMergesAndRootIsMaxId) {
  ConcurrentUnionFind uf(10);
  uf.unite(2, 5);
  EXPECT_TRUE(uf.same_set(2, 5));
  EXPECT_EQ(uf.find(2), 5u);
  uf.unite(5, 3);
  EXPECT_EQ(uf.find(3), 5u);
  uf.unite(7, 2);
  EXPECT_EQ(uf.find(2), 7u);
  EXPECT_EQ(uf.find(5), 7u);
  EXPECT_FALSE(uf.same_set(0, 2));
}

TEST(UnionFind, PathCompressionPreservesPartition) {
  ConcurrentUnionFind uf(100);
  for (vertex_t v = 0; v + 1 < 100; ++v) uf.unite(v, v + 1);
  for (vertex_t v = 0; v < 100; ++v) EXPECT_EQ(uf.find(v), 99u);
  // Path halving shortens the chain geometrically: a few repeated finds
  // must flatten vertex 0 all the way to the root.
  for (int i = 0; i < 8; ++i) uf.find(0);
  EXPECT_EQ(uf.parent(0), 99u);
}

TEST(UnionFind, MatchesReferenceOnRandomUnions) {
  constexpr vertex_t kN = 500;
  ConcurrentUnionFind uf(kN);
  RefDsu ref(kN);
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<vertex_t>(rng.next_below(kN));
    const auto v = static_cast<vertex_t>(rng.next_below(kN));
    uf.unite(u, v);
    ref.unite(u, v);
  }
  for (vertex_t u = 0; u < kN; u += 7) {
    for (vertex_t v = 0; v < kN; v += 11) {
      ASSERT_EQ(uf.same_set(u, v), ref.find(u) == ref.find(v))
          << u << "," << v;
    }
  }
}

TEST(UnionFind, ConcurrentUnionsMatchSequentialPartition) {
  constexpr vertex_t kN = 20000;
  constexpr int kThreads = 8;
  constexpr int kPairsPerThread = 30000;
  // Pre-generate pairs so the reference applies the same multiset.
  Xoshiro256 rng(23);
  std::vector<std::pair<vertex_t, vertex_t>> pairs;
  pairs.reserve(kThreads * kPairsPerThread);
  for (int i = 0; i < kThreads * kPairsPerThread; ++i) {
    pairs.emplace_back(static_cast<vertex_t>(rng.next_below(kN)),
                       static_cast<vertex_t>(rng.next_below(kN)));
  }

  ConcurrentUnionFind uf(kN);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPairsPerThread; ++i) {
        const auto& [u, v] = pairs[t * kPairsPerThread + i];
        uf.unite(u, v);
      }
    });
  }
  for (auto& th : threads) th.join();

  RefDsu ref(kN);
  for (const auto& [u, v] : pairs) ref.unite(u, v);
  // Same partition: map each vertex's root consistently.
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(uf.find(v) == uf.find(ref.find(v)), true) << v;
  }
  // Spot-check disjointness both ways.
  Xoshiro256 rng2(29);
  for (int i = 0; i < 20000; ++i) {
    const auto u = static_cast<vertex_t>(rng2.next_below(kN));
    const auto v = static_cast<vertex_t>(rng2.next_below(kN));
    ASSERT_EQ(uf.same_set(u, v), ref.find(u) == ref.find(v));
  }
}

TEST(UnionFind, ConcurrentFindsDuringUnionsTerminate) {
  constexpr vertex_t kN = 5000;
  ConcurrentUnionFind uf(kN);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Xoshiro256 rng(31);
    while (!stop.load(std::memory_order_relaxed)) {
      uf.find(static_cast<vertex_t>(rng.next_below(kN)));
    }
  });
  Xoshiro256 rng(37);
  for (int i = 0; i < 100000; ++i) {
    uf.unite(static_cast<vertex_t>(rng.next_below(kN)),
             static_cast<vertex_t>(rng.next_below(kN)));
  }
  stop.store(true);
  reader.join();
  SUCCEED();
}

TEST(UnionFind, ResetMakesSingletonAgainWithNewStamp) {
  ConcurrentUnionFind uf(10);
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(1), 2u);
  uf.reset(1, /*stamp=*/5);
  EXPECT_EQ(uf.parent(1), 1u);
  EXPECT_EQ(ConcurrentUnionFind::stamp_of(uf.word(1)), 5u);
}

TEST(UnionFind, StaleCompressionIsRejected) {
  ConcurrentUnionFind uf(10);
  uf.reset(3, 1);
  uf.reset(7, 1);
  uf.unite(3, 7);  // parent(3) = 7, stamp 1
  const auto stale_word = uf.word(3);
  // A new "batch" resets 3 and links it elsewhere.
  uf.reset(3, 2);
  uf.reset(9, 2);
  uf.unite(3, 9);  // parent(3) = 9, stamp 2
  // A delayed reader from batch 1 tries to compress with its stale word.
  uf.compress(3, stale_word, 7);
  EXPECT_EQ(uf.parent(3), 9u) << "stale CAS must fail on stamp mismatch";
  // A current-word compression succeeds.
  uf.compress(3, uf.word(3), 9);
  EXPECT_EQ(uf.parent(3), 9u);
}

TEST(UnionFind, ParentNeverBelowSelf) {
  // The max-root link rule means every stored parent id >= own id; readers
  // rely on this for wait-free termination of traversals.
  ConcurrentUnionFind uf(1000);
  Xoshiro256 rng(41);
  for (int i = 0; i < 5000; ++i) {
    uf.unite(static_cast<vertex_t>(rng.next_below(1000)),
             static_cast<vertex_t>(rng.next_below(1000)));
  }
  for (vertex_t v = 0; v < 1000; ++v) {
    EXPECT_GE(uf.parent(v), v);
  }
}

TEST(DescriptorTable, PackRoundTrip) {
  using DT = DescriptorTable;
  const auto w = DT::pack(1234, 77);
  EXPECT_TRUE(DT::is_marked(w));
  EXPECT_EQ(DT::old_level(w), 1234);
  EXPECT_EQ(DT::batch_tag(w), 77u);
  EXPECT_FALSE(DT::is_marked(DT::kUnmarked));
}

TEST(DescriptorTable, MarkUnmarkLifecycle) {
  DescriptorTable desc(10);
  EXPECT_FALSE(desc.marked(3));
  desc.mark(3, 12, 1);
  EXPECT_TRUE(desc.marked(3));
  EXPECT_EQ(DescriptorTable::old_level(desc.word(3)), 12);
  desc.unmark(3);
  EXPECT_FALSE(desc.marked(3));
  desc.unmark(3);  // idempotent
  EXPECT_FALSE(desc.marked(3));
}

TEST(DescriptorTable, BatchTagWraps31Bits) {
  DescriptorTable desc(2);
  desc.mark(0, 5, (1ull << 31) + 9);
  EXPECT_EQ(DescriptorTable::batch_tag(desc.word(0)), 9u);
  EXPECT_TRUE(desc.marked(0));
}

}  // namespace
}  // namespace cpkcore
