// Parameter-sweep property suite: the approximation guarantee and both
// invariants must hold for every (delta, lambda) combination, for both the
// sequential LDS and the PLDS, and the CPLDS read protocol must remain
// linearizable under non-default geometry. Sweeps the constants the paper's
// theory parameterizes (delta controls group growth, lambda the Invariant-1
// slack).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "kcore/peel.hpp"
#include "lds/sequential_lds.hpp"
#include "plds/plds.hpp"

namespace cpkcore {
namespace {

class ParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ParamSweep, ParamsGeometryIsConsistent) {
  const auto [delta, lambda] = GetParam();
  auto p = LDSParams::create(5000, delta, lambda);
  EXPECT_GT(p.num_levels(), 0);
  EXPECT_EQ(p.num_levels(), p.num_groups() * p.levels_per_group());
  for (int g = 0; g + 1 < p.num_groups(); ++g) {
    EXPECT_NEAR(p.lower_threshold(g + 1) / p.lower_threshold(g), 1 + delta,
                1e-9);
    EXPECT_NEAR(p.upper_threshold(g) / p.lower_threshold(g),
                2.0 + 3.0 / lambda, 1e-9);
  }
  // Estimates are monotone in level and start at 1.
  EXPECT_DOUBLE_EQ(p.coreness_estimate(0), 1.0);
  for (int l = 1; l < p.num_levels(); ++l) {
    EXPECT_GE(p.coreness_estimate(l), p.coreness_estimate(l - 1));
  }
}

TEST_P(ParamSweep, PldsApproximationHoldsAcrossGeometry) {
  const auto [delta, lambda] = GetParam();
  constexpr vertex_t kN = 300;
  auto params = LDSParams::create(kN, delta, lambda);
  PLDS plds(kN, params);
  DynamicGraph mirror(kN);
  auto edges = gen::social(kN, 5, 4, 30, 0.9, 7);
  for (const auto& b : insertion_stream(edges, 400, 9)) {
    plds.insert_batch(b.edges);
    mirror.insert_batch(b.edges);
    std::string why;
    ASSERT_TRUE(plds.validate(&why)) << why;
  }
  const double c =
      (2.0 + 3.0 / lambda) * std::pow(1.0 + delta, 2);
  const auto exact = exact_coreness(mirror);
  for (vertex_t v = 0; v < kN; ++v) {
    const double est = plds.coreness_estimate(v);
    const double truth = std::max<double>(1.0, exact[v]);
    ASSERT_LE(std::max(est / truth, truth / est), c)
        << "delta=" << delta << " lambda=" << lambda << " v=" << v;
  }
  // Deletion phase under the same geometry.
  for (const auto& b : deletion_stream(edges, 400, 9)) {
    plds.delete_batch(b.edges);
    std::string why;
    ASSERT_TRUE(plds.validate(&why)) << why;
  }
  EXPECT_EQ(plds.num_edges(), 0u);
}

TEST_P(ParamSweep, SequentialLdsAgreesWithGeometry) {
  const auto [delta, lambda] = GetParam();
  constexpr vertex_t kN = 100;
  SequentialLDS lds(kN, LDSParams::create(kN, delta, lambda));
  auto edges = gen::erdos_renyi(kN, 400, 11);
  for (const Edge& e : edges) lds.insert_edge(e);
  EXPECT_TRUE(lds.invariants_hold());
  for (std::size_t i = 0; i < edges.size(); i += 3) {
    lds.delete_edge(edges[i]);
  }
  EXPECT_TRUE(lds.invariants_hold());
}

TEST_P(ParamSweep, CpldsReadsLinearizableAcrossGeometry) {
  const auto [delta, lambda] = GetParam();
  constexpr vertex_t kN = 800;
  auto ds = std::make_unique<CPLDS>(
      kN, LDSParams::create(kN, delta, lambda));
  auto stream = insertion_stream(gen::barabasi_albert(kN, 6, 13), 1200, 15);
  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = 3;
  cfg.sample_stride = 8;
  cfg.record_boundary_levels = true;
  auto result = harness::run_workload(*ds, stream, cfg);
  EXPECT_EQ(harness::count_out_of_window_samples(
                result.samples, result.boundary_levels, result.window_base),
            0u)
      << "delta=" << delta << " lambda=" << lambda;
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
  const auto [delta, lambda] = info.param;
  // Built up with += (not one operator+ chain): GCC 12's -Wrestrict
  // false-positives on `const char* + std::string&&` when inlined here.
  std::string name = "d";
  name += std::to_string(static_cast<int>(delta * 100));
  name += "_l";
  name += std::to_string(static_cast<int>(lambda));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ParamSweep,
    ::testing::Combine(::testing::Values(0.1, 0.2, 0.5, 1.0),
                       ::testing::Values(3.0, 9.0, 30.0)),
    param_name);

}  // namespace
}  // namespace cpkcore
