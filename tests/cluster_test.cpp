// Cluster-layer tests: WAL log shipping, exact read replicas, late-joiner
// catch-up (ring and on-disk paths), the sharded write plane (Partitioner,
// ShardGroup, per-partition replica bit-equivalence), the shard-aware
// router's cross-partition read-your-writes guarantee under concurrent
// writers + readers, the P=1 regression guard against the unsharded
// topology, ingest backpressure (block and reject admission), WAL
// durability levels, and LSN continuity across checkpoint + restart.
//
// Sharded topologies default to 2 partitions x 2 replicas; CI's sharded
// TSan leg pins that via CPKC_TEST_WRITE_SHARDS / CPKC_TEST_REPLICAS.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/log_ship.hpp"
#include "cluster/partition.hpp"
#include "cluster/replica.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_group.hpp"
#include "graph/generators.hpp"
#include "harness/service_workload.hpp"
#include "service/kcore_service.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

using cluster::ClusterConfig;
using cluster::LogShipper;
using cluster::Partitioner;
using cluster::Replica;
using cluster::Router;
using cluster::ShardGroup;
using service::AdmissionPolicy;
using service::KCoreService;
using service::QueueFullError;
using service::ServiceConfig;
using service::Ticket;
using service::WalDurability;

std::size_t env_topology(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const unsigned long parsed = std::strtoul(v, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::size_t test_write_shards() {
  return env_topology("CPKC_TEST_WRITE_SHARDS", 2);
}
std::size_t test_replicas() {
  return env_topology("CPKC_TEST_REPLICAS", 2);
}

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("/tmp/cpkc_cluster_" + std::to_string(::getpid()) + "_" +
              name) {
    std::filesystem::remove(path_);
  }
  ~TempPath() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::set<std::uint64_t> edge_keys(const CPLDS& ds) {
  std::set<std::uint64_t> keys;
  for (vertex_t v = 0; v < ds.num_vertices(); ++v) {
    for (vertex_t w : ds.plds().neighbors(v)) {
      if (w > v) keys.insert(Edge{v, w}.key());
    }
  }
  return keys;
}

/// The acceptance bar: after quiesce, a replica is *bit-identical* to the
/// primary — same edges, same levels, and therefore the same coreness
/// estimate under every ReadMode.
void expect_exact_replica(const KCoreService& primary, const Replica& rep) {
  ASSERT_EQ(primary.num_vertices(), rep.num_vertices());
  EXPECT_EQ(primary.num_edges(), rep.num_edges());
  EXPECT_EQ(edge_keys(primary.cplds()), edge_keys(rep.cplds()));
  for (vertex_t v = 0; v < primary.num_vertices(); ++v) {
    ASSERT_EQ(primary.cplds().plds().level(v), rep.cplds().plds().level(v))
        << "level mismatch at " << v;
    for (ReadMode mode :
         {ReadMode::kCplds, ReadMode::kNonSync, ReadMode::kSyncReads}) {
      ASSERT_EQ(primary.read_coreness(v, mode), rep.read_coreness(v, mode))
          << "coreness mismatch at " << v << " mode "
          << to_string(mode);
      ASSERT_EQ(primary.read_level(v, mode), rep.read_level(v, mode))
          << "read level mismatch at " << v;
    }
  }
  std::string why;
  EXPECT_TRUE(rep.cplds().plds().validate(&why)) << why;
}

TEST(Cluster, ReplicasMirrorPrimaryExactly) {
  constexpr vertex_t kN = 800;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.min_ops_per_cycle = 16;
  cfg.max_ops_per_cycle = 256;  // many cycles -> many shipped records
  KCoreService primary(cfg);
  LogShipper shipper(primary);
  Replica a(cfg);
  Replica b(cfg);
  a.start(shipper);
  b.start(shipper);

  for (const Edge& e : gen::barabasi_albert(kN, 5, 17)) {
    primary.submit_insert(e.u, e.v);
  }
  // Mix in deletions so replicas replay both batch kinds.
  for (vertex_t v = 0; v + 1 < 100; ++v) primary.submit_delete(v, v + 1);
  primary.drain();
  const std::uint64_t target = primary.commit_lsn();
  EXPECT_GT(target, 0u);
  ASSERT_TRUE(a.wait_for_lsn(target));
  ASSERT_TRUE(b.wait_for_lsn(target));

  expect_exact_replica(primary, a);
  expect_exact_replica(primary, b);
  EXPECT_GT(a.stats().applied_batches, 0u);
  a.stop();
  b.stop();
  primary.shutdown();
}

TEST(Cluster, LateJoinerCatchesUpThroughRetentionRing) {
  constexpr vertex_t kN = 500;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.min_ops_per_cycle = 8;
  cfg.max_ops_per_cycle = 64;
  KCoreService primary(cfg);
  LogShipper shipper(primary);  // unbounded retention, no WAL needed

  auto edges = gen::erdos_renyi(kN, 3000, 23);
  const std::size_t half = edges.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    primary.submit_insert(edges[i].u, edges[i].v);
  }
  primary.drain();

  // Joins after half the stream: everything missed comes from the ring.
  Replica late(cfg);
  late.start(shipper);
  for (std::size_t i = half; i < edges.size(); ++i) {
    primary.submit_insert(edges[i].u, edges[i].v);
  }
  primary.drain();
  ASSERT_TRUE(late.wait_for_lsn(primary.commit_lsn()));
  expect_exact_replica(primary, late);
  EXPECT_GT(shipper.stats().catchup_records, 0u);
  late.stop();
  primary.shutdown();
}

TEST(Cluster, LateJoinerCatchesUpFromDiskUnderConcurrentWrites) {
  // The satellite's convergence test: a replica joins mid-stream while
  // writers keep going, with a retention ring so small that catch-up MUST
  // read the primary's on-disk WAL; after quiesce it is exact under all
  // three ReadModes (expect_exact_replica checks them all).
  TempPath wal("latejoin.wal");
  constexpr vertex_t kN = 600;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  cfg.min_ops_per_cycle = 4;
  cfg.max_ops_per_cycle = 32;
  KCoreService primary(cfg);
  LogShipper::Options ship_opts;
  ship_opts.retain_records = 4;  // force the disk path
  LogShipper shipper(primary, ship_opts);

  auto edges = gen::social(kN, 5, 4, 40, 0.9, 29);
  const std::size_t half = edges.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    primary.submit_insert(edges[i].u, edges[i].v);
  }
  primary.drain();

  // Writers stay hot while the late joiner subscribes.
  std::thread writer([&] {
    for (std::size_t i = half; i < edges.size(); ++i) {
      primary.submit_insert(edges[i].u, edges[i].v);
    }
  });
  Replica late(cfg);
  late.start(shipper);
  writer.join();
  primary.drain();
  ASSERT_TRUE(late.wait_for_lsn(primary.commit_lsn()));
  expect_exact_replica(primary, late);
  EXPECT_GT(shipper.stats().disk_records, 0u)
      << "retention ring was large enough to bypass the WAL; the disk "
         "catch-up path went untested";
  late.stop();
  primary.shutdown();
}

TEST(Cluster, SubscribePastCompactionDemandsSnapshotBootstrap) {
  TempPath wal("compacted.wal");
  TempPath snap("compacted.snap");
  ServiceConfig cfg;
  cfg.num_vertices = 200;
  cfg.wal_path = wal.str();
  cfg.snapshot_path = snap.str();
  KCoreService primary(cfg);
  for (vertex_t v = 0; v + 1 < 100; ++v) primary.submit_insert(v, v + 1);
  primary.drain();
  primary.checkpoint();  // WAL truncated; base LSN > 0

  LogShipper::Options ship_opts;
  ship_opts.retain_records = 0;  // nothing in the ring either
  LogShipper shipper(primary, ship_opts);
  for (vertex_t v = 100; v + 1 < 120; ++v) primary.submit_insert(v, v + 1);
  primary.drain();
  Replica fresh(cfg);
  EXPECT_THROW(fresh.start(shipper), std::runtime_error);
  primary.shutdown();
}

TEST(Cluster, RouterReadYourWritesUnderConcurrentLoad) {
  // The PR-4 acceptance demo, now on the assembled single-partition form
  // of the shard-aware router: 4 writers + 4 readers. Every read must be
  // served by a backend whose applied LSN is at or past the session's
  // cursor as observed before the read — a session never reads state older
  // than its last acked write.
  constexpr vertex_t kN = 1500;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.min_ops_per_cycle = 16;
  cfg.max_ops_per_cycle = 512;
  KCoreService primary(cfg);
  LogShipper shipper(primary);
  Replica r0(cfg);
  Replica r1(cfg);
  r0.start(shipper);
  r1.start(shipper);
  Router router(Partitioner(1),
                {Router::PartitionBackends{&primary, {&r0, &r1}, {}}});

  constexpr std::size_t kPairs = 4;
  constexpr std::size_t kOps = 1500;
  std::vector<std::unique_ptr<Router::Session>> sessions;
  for (std::size_t t = 0; t < kPairs; ++t) {
    sessions.push_back(router.make_session());
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> replica_served{0};

  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kPairs; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<vertex_t>(rng.next_below(kN));
        // Sample the cursor BEFORE the read: the served LSN may only be
        // at or past it (the cursor can advance concurrently, which only
        // raises what the router must deliver).
        const std::uint64_t cursor = sessions[t]->last_lsn(0);
        const auto read = router.read_coreness(*sessions[t], v);
        if (read.parts[0].served_lsn < cursor) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (read.parts[0].backend != Router::kPrimary) {
          replica_served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kPairs; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(2000 + t);
      for (std::size_t i = 0; i < kOps; ++i) {
        const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                     static_cast<vertex_t>(rng.next_below(kN))};
        const std::uint64_t lsn =
            router.write(*sessions[t], {e, UpdateKind::kInsert});
        EXPECT_GE(sessions[t]->last_lsn(0), lsn);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(replica_served.load(), 0u)
      << "every read fell back to the primary; replica routing went "
         "untested";
  const auto stats = router.stats();
  EXPECT_EQ(stats.writes, kPairs * kOps);
  EXPECT_EQ(stats.reads, stats.primary_reads +
                             stats.partitions[0].replica_reads[0] +
                             stats.partitions[0].replica_reads[1]);

  // Quiesce: replicas converge to the primary's exact state.
  primary.drain();
  ASSERT_TRUE(r0.wait_for_lsn(primary.commit_lsn()));
  ASSERT_TRUE(r1.wait_for_lsn(primary.commit_lsn()));
  expect_exact_replica(primary, r0);
  expect_exact_replica(primary, r1);
  r0.stop();
  r1.stop();
  primary.shutdown();
}

TEST(Cluster, RouterFallsBackToPrimaryWhenNoReplicaQualifies) {
  ServiceConfig cfg;
  cfg.num_vertices = 100;
  KCoreService primary(cfg);
  LogShipper shipper(primary);
  Replica rep(cfg);  // never started: applied LSN pinned at 0
  Router router(Partitioner(1),
                {Router::PartitionBackends{&primary, {&rep}, {}}});

  Router::Session session(1);
  const std::uint64_t lsn = router.write_insert(session, 1, 2);
  EXPECT_GT(lsn, 0u);
  EXPECT_EQ(session.last_lsn(0), lsn);
  const auto read = router.read_coreness(session, 1);
  EXPECT_EQ(read.parts[0].backend, Router::kPrimary);
  EXPECT_GE(read.parts[0].served_lsn, lsn);

  // A fresh session has no freshness floor: the idle replica qualifies.
  const auto lazy = router.read_coreness(2);
  EXPECT_EQ(lazy.parts[0].backend, 0);
  EXPECT_EQ(router.stats().partitions[0].replica_reads[0], 1u);
  primary.shutdown();
}

TEST(Cluster, ClusterWorkloadHarnessDrivesRouter) {
  constexpr vertex_t kN = 800;
  ClusterConfig cfg;
  cfg.partitions = 1;
  cfg.replicas = 1;
  cfg.base.num_vertices = kN;
  ShardGroup group(cfg);
  Router router(group);

  harness::ClusterWorkloadConfig wl;
  wl.writer_threads = 2;
  wl.reader_threads = 2;
  wl.ops_per_thread = 500;
  wl.seed = 11;
  const auto result = harness::run_cluster_workload(router, wl);
  EXPECT_EQ(result.ops_written, 2u * 500u);
  EXPECT_EQ(result.total_reads * router.num_partitions(),
            result.primary_reads + result.replica_reads);

  group.quiesce();
  expect_exact_replica(group.primary(0), group.replica(0, 0));
  group.shutdown();
}

TEST(Cluster, ShardGroupRoutesEveryEdgeToExactlyOnePartition) {
  const std::size_t kParts = std::max<std::size_t>(2, test_write_shards());
  constexpr vertex_t kN = 600;
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.base.num_vertices = kN;
  ShardGroup group(cfg);
  ASSERT_EQ(group.num_partitions(), kParts);

  const auto edges = gen::erdos_renyi(kN, 4000, 51);
  std::set<std::uint64_t> distinct;
  for (const Edge& e : edges) {
    if (!e.is_self_loop()) distinct.insert(e.canonical().key());
    group.submit({e, UpdateKind::kInsert});
  }
  group.drain();

  // Disjoint ownership: each edge lives on exactly one partition, so the
  // partition edge counts add up to the distinct non-loop edges submitted.
  std::size_t total = 0;
  for (std::size_t p = 0; p < kParts; ++p) {
    EXPECT_GT(group.primary(p).num_edges(), 0u)
        << "partition " << p << " received no edges: the hash partitioner "
        << "is not spreading the write load";
    total += group.primary(p).num_edges();
  }
  EXPECT_EQ(total, distinct.size());
  EXPECT_EQ(group.num_edges(), distinct.size());

  // Ownership agrees with the (stateless, deterministic) Partitioner.
  for (std::size_t i = 0; i < edges.size(); i += 97) {
    const Edge e = edges[i].canonical();
    if (e.is_self_loop()) continue;
    const std::size_t owner = group.partitioner().partition_of(e);
    for (std::size_t p = 0; p < kParts; ++p) {
      EXPECT_EQ(group.primary(p).cplds().plds().has_edge(e.u, e.v),
                p == owner)
          << "edge (" << e.u << "," << e.v << ") vs partition " << p;
    }
  }
  group.shutdown();
}

TEST(Cluster, ShardedReplicasBitIdenticalPerPartitionAfterQuiesce) {
  // The sharded half of the PR-4 acceptance bar: under concurrent open-loop
  // writers (inserts and deletes), every partition's replicas converge to
  // that partition's exact primary state once quiesced.
  const std::size_t kParts = test_write_shards();
  const std::size_t kReps = test_replicas();
  constexpr vertex_t kN = 700;
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.replicas = kReps;
  cfg.base.num_vertices = kN;
  cfg.base.min_ops_per_cycle = 16;
  cfg.base.max_ops_per_cycle = 256;  // many cycles -> many shipped records
  ShardGroup group(cfg);

  constexpr std::size_t kWriters = 4;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(7000 + t);
      std::vector<Edge> inserted;
      for (std::size_t i = 0; i < 2000; ++i) {
        if (!inserted.empty() && rng.next_double() < 0.25) {
          const std::size_t j = rng.next_below(inserted.size());
          group.submit({inserted[j], UpdateKind::kDelete});
          inserted[j] = inserted.back();
          inserted.pop_back();
        } else {
          const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                       static_cast<vertex_t>(rng.next_below(kN))};
          group.submit({e, UpdateKind::kInsert});
          if (!e.is_self_loop()) inserted.push_back(e.canonical());
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  group.quiesce();

  for (std::size_t p = 0; p < kParts; ++p) {
    EXPECT_GT(group.shipper(p).stats().shipped_records, 0u);
    for (std::size_t r = 0; r < kReps; ++r) {
      expect_exact_replica(group.primary(p), group.replica(p, r));
    }
  }
  group.shutdown();
}

TEST(Cluster, ShardedRouterCrossPartitionReadYourWrites) {
  // The sharded acceptance demo: 4 writers + 4 readers through the
  // shard-aware router over a P x R ShardGroup. A session's cursor is now
  // an LSN *vector*; every fan-out read must be served, per partition, by
  // a backend at or past that partition's cursor entry as observed before
  // the read — a session never observes state older than its own acked
  // writes on any partition.
  const std::size_t kParts = test_write_shards();
  const std::size_t kReps = test_replicas();
  constexpr vertex_t kN = 1200;
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.replicas = kReps;
  cfg.base.num_vertices = kN;
  cfg.base.min_ops_per_cycle = 16;
  cfg.base.max_ops_per_cycle = 512;
  ShardGroup group(cfg);
  Router router(group);

  constexpr std::size_t kPairs = 4;
  constexpr std::size_t kOps = 1200;
  std::vector<std::unique_ptr<Router::Session>> sessions;
  for (std::size_t t = 0; t < kPairs; ++t) {
    sessions.push_back(router.make_session());
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> replica_served{0};

  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kPairs; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<vertex_t>(rng.next_below(kN));
        // Sample the whole cursor vector BEFORE the read; concurrent
        // writes only raise entries, which only raises what the router
        // must deliver.
        const std::vector<std::uint64_t> cursor =
            sessions[t]->lsn_vector();
        const auto read = router.read_coreness(*sessions[t], v);
        for (std::size_t p = 0; p < read.parts.size(); ++p) {
          if (read.parts[p].served_lsn < cursor[p]) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          if (read.parts[p].backend != Router::kPrimary) {
            replica_served.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kPairs; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(2000 + t);
      for (std::size_t i = 0; i < kOps; ++i) {
        const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                     static_cast<vertex_t>(rng.next_below(kN))};
        const std::size_t owner = router.partitioner().partition_of(e);
        const std::uint64_t lsn =
            router.write(*sessions[t], {e, UpdateKind::kInsert});
        EXPECT_GE(sessions[t]->last_lsn(owner), lsn);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(replica_served.load(), 0u)
      << "every partition-read fell back to its primary; replica routing "
         "went untested";
  const auto stats = router.stats();
  EXPECT_EQ(stats.writes, kPairs * kOps);
  EXPECT_EQ(stats.primary_reads + stats.replica_reads,
            stats.reads * kParts);
  for (std::size_t p = 0; p < kParts; ++p) {
    EXPECT_GT(stats.partitions[p].writes, 0u)
        << "partition " << p << " owned no writes";
  }

  // Quiesce: every partition's replicas converge to their primary.
  group.quiesce();
  for (std::size_t p = 0; p < kParts; ++p) {
    for (std::size_t r = 0; r < kReps; ++r) {
      expect_exact_replica(group.primary(p), group.replica(p, r));
    }
  }
  group.shutdown();
}

TEST(Cluster, PartitionCountOneMatchesUnshardedService) {
  // Regression guard: a 1-partition ShardGroup behind the shard-aware
  // router IS the unsharded PR-4 topology — same LSN stream, same CPLDS
  // state, same read values. Both sides get a deterministic identical
  // batch schedule: one ingest shard (global FIFO), a pinned cycle budget,
  // and every op enqueued while applies are paused.
  constexpr vertex_t kN = 400;
  const auto base_cfg = [] {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.num_shards = 1;
    cfg.min_ops_per_cycle = 64;
    cfg.max_ops_per_cycle = 64;
    return cfg;
  };
  KCoreService svc(base_cfg());
  ClusterConfig ccfg;
  ccfg.partitions = 1;
  ccfg.replicas = 1;
  ccfg.base = base_cfg();
  ShardGroup group(ccfg);
  Router router(group);
  const auto session = router.make_session();
  ASSERT_EQ(session->num_partitions(), 1u);

  svc.pause_applies();
  group.primary(0).pause_applies();
  for (const Edge& e : gen::barabasi_albert(kN, 4, 31)) {
    svc.submit({e, UpdateKind::kInsert});
    group.submit({e, UpdateKind::kInsert});
  }
  for (vertex_t v = 0; v + 1 < 60; ++v) {
    svc.submit({{v, v + 1}, UpdateKind::kDelete});
    group.submit({{v, v + 1}, UpdateKind::kDelete});
  }
  svc.resume_applies();
  group.primary(0).resume_applies();
  svc.drain();
  group.quiesce();

  // Identical LSN stream and bitwise-identical structure.
  EXPECT_EQ(svc.commit_lsn(), group.primary(0).commit_lsn());
  EXPECT_EQ(edge_keys(svc.cplds()), edge_keys(group.primary(0).cplds()));
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(svc.cplds().plds().level(v),
              group.primary(0).cplds().plds().level(v))
        << "level mismatch at " << v;
  }
  // Fan-out reads over one partition reproduce the plain service reads
  // exactly (the sum/max aggregates are identities at P = 1).
  for (vertex_t v = 0; v < kN; v += 7) {
    const auto read = router.read_coreness(*session, v);
    ASSERT_EQ(read.parts.size(), 1u);
    EXPECT_EQ(read.value, svc.read_coreness(v));
    const auto level = router.read_level(*session, v);
    EXPECT_EQ(level.value, svc.read_level(v));
  }
  // ... and the single partition's replica mirrors it bitwise.
  expect_exact_replica(group.primary(0), group.replica(0, 0));
  svc.shutdown();
  group.shutdown();
}

TEST(Cluster, ConsistentCutScatterGatherAcrossPartitions) {
  const std::size_t kParts = test_write_shards();
  constexpr vertex_t kN = 500;
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.replicas = 1;
  cfg.base.num_vertices = kN;
  ShardGroup group(cfg);
  Router router(group);

  for (const Edge& e : gen::barabasi_albert(kN, 4, 61)) {
    group.submit({e, UpdateKind::kInsert});
  }
  group.drain();

  // The sampled cut is the committed frontier; at-cut reads must be served
  // at-or-past it on every partition.
  const std::vector<std::uint64_t> cut = router.consistent_cut();
  ASSERT_EQ(cut.size(), kParts);
  for (vertex_t v = 0; v < kN; v += 31) {
    const auto read = router.read_coreness_at_cut(cut, v);
    ASSERT_EQ(read.parts.size(), kParts);
    double sum = 0;
    for (std::size_t p = 0; p < kParts; ++p) {
      EXPECT_GE(read.parts[p].served_lsn, cut[p]);
      sum += read.parts[p].value;
    }
    EXPECT_DOUBLE_EQ(read.value, sum);
  }
  EXPECT_THROW(
      (void)router.read_coreness_at_cut(
          std::vector<std::uint64_t>(kParts + 1, 0), 0),
      std::invalid_argument);

  // Strict at-cut reads hold under in-flight writes too: a cut taken from
  // the *committed* frontier can run ahead of the applied one
  // (committed-but-unapplied batches), and the read must wait that out
  // rather than silently serve older state.
  std::thread writer([&] {
    Xoshiro256 rng(99);
    for (std::size_t i = 0; i < 3000; ++i) {
      const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                   static_cast<vertex_t>(rng.next_below(kN))};
      group.submit({e, UpdateKind::kInsert});
    }
  });
  for (vertex_t v = 0; v < 200; ++v) {
    const std::vector<std::uint64_t> commit_cut = group.commit_cut();
    const auto read = router.read_coreness_at_cut(commit_cut, v % kN);
    for (std::size_t p = 0; p < kParts; ++p) {
      ASSERT_GE(read.parts[p].served_lsn, commit_cut[p]);
    }
  }
  writer.join();
  group.drain();

  // Global stats gather at a cut sampled before the per-partition figures.
  const auto gs = group.global_stats();
  ASSERT_EQ(gs.cut.size(), kParts);
  ASSERT_EQ(gs.partitions.size(), kParts);
  ASSERT_EQ(gs.shippers.size(), kParts);
  EXPECT_EQ(gs.num_edges, group.num_edges());
  std::uint64_t acked = 0;
  for (const auto& part : gs.partitions) acked += part.acked_ops;
  EXPECT_EQ(gs.acked_ops, acked);
  group.shutdown();
}

TEST(Cluster, ClusterConfigControlsShipperRetentionRing) {
  const std::size_t kParts = test_write_shards();
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.replicas = 1;
  cfg.retain_records = 4;  // plumbed through to every partition's shipper
  cfg.base.num_vertices = 300;
  cfg.base.min_ops_per_cycle = 4;
  cfg.base.max_ops_per_cycle = 16;  // several commits per partition
  ShardGroup group(cfg);

  for (vertex_t v = 0; v + 1 < 300; ++v) group.submit_insert(v, v + 1);
  group.quiesce();

  for (std::size_t p = 0; p < kParts; ++p) {
    const LogShipper::Stats stats = group.shipper(p).stats();
    EXPECT_EQ(stats.retain_capacity, 4u);
    EXPECT_LE(stats.retained, 4u);
    EXPECT_LE(stats.retained_peak, 4u);
    EXPECT_GT(stats.retained_peak, 0u);
    EXPECT_GT(stats.shipped_records, 0u);
    EXPECT_EQ(stats.subscribers, 1u);
  }
  group.shutdown();
}

TEST(Cluster, ShardedWorkloadHarnessDrivesWritePlane) {
  const std::size_t kParts = test_write_shards();
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.base.num_vertices = 800;
  ShardGroup group(cfg);

  harness::ShardedWorkloadConfig wl;
  wl.submitter_threads = 2;
  wl.reader_threads = 2;
  wl.ops_per_thread = 500;
  wl.seed = 13;
  const auto result = harness::run_sharded_workload(group, wl);
  EXPECT_EQ(result.ops_submitted, 2u * 500u);
  ASSERT_EQ(result.ops_per_partition.size(), kParts);
  std::uint64_t routed = 0;
  for (std::uint64_t ops : result.ops_per_partition) routed += ops;
  EXPECT_EQ(routed, result.ops_submitted);
  EXPECT_GT(result.total_reads, 0u);
  group.shutdown();
}

TEST(Cluster, BackpressureRejectPolicyBoundsShardQueues) {
  ServiceConfig cfg;
  cfg.num_vertices = 100;
  cfg.num_shards = 1;
  cfg.max_pending_per_shard = 8;
  cfg.admission = AdmissionPolicy::kReject;
  KCoreService svc(cfg);
  svc.pause_applies();  // freeze drains so queue growth is deterministic

  std::vector<Ticket> accepted;
  for (vertex_t v = 0; v < 8; ++v) {
    accepted.push_back(svc.submit_insert(v, v + 1));
  }
  EXPECT_THROW(svc.submit_insert(50, 51), QueueFullError);
  auto stats = svc.stats();
  EXPECT_EQ(stats.rejected_ops, 1u);
  ASSERT_EQ(stats.shard_depths.size(), 1u);
  EXPECT_EQ(stats.shard_depths[0], 8u);  // gauge reads the frozen backlog

  svc.resume_applies();
  for (const Ticket& t : accepted) EXPECT_TRUE(svc.wait(t));
  EXPECT_EQ(svc.stats().shard_depths[0], 0u);
  EXPECT_EQ(svc.num_edges(), 8u);
  svc.shutdown();
}

TEST(Cluster, BackpressureBlockPolicyWaitsForSpaceAndCompletes) {
  ServiceConfig cfg;
  cfg.num_vertices = 100;
  cfg.num_shards = 1;
  cfg.max_pending_per_shard = 4;
  cfg.admission = AdmissionPolicy::kBlock;
  KCoreService svc(cfg);
  svc.pause_applies();

  for (vertex_t v = 0; v < 4; ++v) svc.submit_insert(v, v + 1);
  std::atomic<bool> overflow_accepted{false};
  std::thread blocked([&] {
    svc.submit_insert(60, 61);  // must block: shard is at its bound
    overflow_accepted.store(true, std::memory_order_release);
  });
  // The submitter is parked, not rejected, and the bound holds.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(overflow_accepted.load(std::memory_order_acquire));
  EXPECT_EQ(svc.stats().shard_depths[0], 4u);

  svc.resume_applies();
  blocked.join();
  EXPECT_TRUE(overflow_accepted.load());
  svc.drain();
  EXPECT_EQ(svc.num_edges(), 5u);
  const auto stats = svc.stats();
  EXPECT_GE(stats.blocked_submits, 1u);
  EXPECT_EQ(stats.rejected_ops, 0u);
  svc.shutdown();
}

TEST(Cluster, BlockedSubmitterWakesOnShutdown) {
  ServiceConfig cfg;
  cfg.num_vertices = 100;
  cfg.num_shards = 1;
  cfg.max_pending_per_shard = 2;
  KCoreService svc(cfg);
  svc.pause_applies();
  svc.submit_insert(1, 2);
  svc.submit_insert(2, 3);
  std::atomic<bool> threw{false};
  std::thread blocked([&] {
    try {
      svc.submit_insert(3, 4);
    } catch (const std::runtime_error&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.simulate_crash();  // crash-stop drains nothing: the waiter must wake
  blocked.join();
  EXPECT_TRUE(threw.load());
}

TEST(Cluster, WalDurabilityLevelsReplayIdentically) {
  for (WalDurability durability :
       {WalDurability::kOsCache, WalDurability::kFdatasync,
        WalDurability::kFsync}) {
    TempPath wal("durability.wal");
    constexpr vertex_t kN = 200;
    auto edges = gen::barabasi_albert(kN, 3, 37);
    std::set<std::uint64_t> before;
    {
      ServiceConfig cfg;
      cfg.num_vertices = kN;
      cfg.wal_path = wal.str();
      cfg.wal_durability = durability;
      KCoreService svc(cfg);
      for (const Edge& e : edges) svc.submit_insert(e.u, e.v);
      svc.drain();
      before = edge_keys(svc.cplds());
      svc.simulate_crash();
    }
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.wal_durability = durability;
    KCoreService svc(cfg);
    EXPECT_GT(svc.stats().replayed_batches, 0u);
    EXPECT_EQ(edge_keys(svc.cplds()), before);
    svc.shutdown();
  }
}

TEST(Cluster, LsnNumberingSurvivesCheckpointAndRestart) {
  TempPath wal("lsncont.wal");
  TempPath snap("lsncont.snap");
  ServiceConfig cfg;
  cfg.num_vertices = 300;
  cfg.wal_path = wal.str();
  cfg.snapshot_path = snap.str();
  std::uint64_t pre_crash_lsn = 0;
  {
    KCoreService svc(cfg);
    for (vertex_t v = 0; v + 1 < 100; ++v) svc.submit_insert(v, v + 1);
    svc.drain();
    svc.checkpoint();  // compaction must not rewind the LSN clock
    const std::uint64_t after_ckpt = svc.commit_lsn();
    Ticket t = svc.submit_insert(200, 201);
    std::uint64_t lsn = 0;
    ASSERT_TRUE(svc.wait(t, &lsn));
    EXPECT_GT(lsn, after_ckpt);
    pre_crash_lsn = svc.commit_lsn();
    svc.simulate_crash();
  }
  KCoreService svc(cfg);
  EXPECT_EQ(svc.commit_lsn(), pre_crash_lsn);
  std::uint64_t lsn = 0;
  Ticket t = svc.submit_insert(210, 211);
  ASSERT_TRUE(svc.wait(t, &lsn));
  EXPECT_GT(lsn, pre_crash_lsn);
  svc.shutdown();
}

TEST(Cluster, UnsubscribedReplicaStopsReceiving) {
  ServiceConfig cfg;
  cfg.num_vertices = 100;
  KCoreService primary(cfg);
  LogShipper shipper(primary);
  Replica rep(cfg);
  rep.start(shipper);
  primary.submit_insert(1, 2);
  primary.drain();
  ASSERT_TRUE(rep.wait_for_lsn(primary.commit_lsn()));
  const std::uint64_t at_stop = rep.applied_lsn();
  rep.stop();

  primary.submit_insert(2, 3);
  primary.drain();
  EXPECT_GT(primary.commit_lsn(), at_stop);
  EXPECT_EQ(rep.applied_lsn(), at_stop);
  EXPECT_EQ(shipper.stats().subscribers, 0u);
  primary.shutdown();
}

TEST(Cluster, EncodeOncePipelineCountsCodecInvocations) {
  // The PR's acceptance criterion, measured: with a binary WAL, a shipper
  // ring small enough to force disk catch-up, and two replicas consuming
  // the committed stream, the codec encodes each batch exactly once (on
  // the primary's apply thread) and decodes it exactly once per replica —
  // nothing between the group commit and replica apply re-serializes.
  TempPath wal("encodeonce.wal");
  constexpr vertex_t kN = 400;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  cfg.min_ops_per_cycle = 4;
  cfg.max_ops_per_cycle = 64;
  KCoreService primary(cfg);
  service::reset_wal_codec_counters();

  LogShipper::Options ship_opts;
  ship_opts.retain_records = 4;  // late joiners must hit the disk path
  LogShipper shipper(primary, ship_opts);
  Replica live(cfg);
  live.start(shipper);  // rides the live stream from LSN 0

  auto edges = gen::barabasi_albert(kN, 4, 53);
  const std::size_t half = edges.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    primary.submit_insert(edges[i].u, edges[i].v);
  }
  primary.drain();

  Replica late(cfg);
  late.start(shipper);  // catches up through on-disk frames

  for (std::size_t i = half; i < edges.size(); ++i) {
    primary.submit_insert(edges[i].u, edges[i].v);
  }
  primary.drain();
  ASSERT_TRUE(live.wait_for_lsn(primary.commit_lsn()));
  ASSERT_TRUE(late.wait_for_lsn(primary.commit_lsn()));
  EXPECT_GT(shipper.stats().disk_records, 0u)
      << "ring served everything; the disk path went unmeasured";
  expect_exact_replica(primary, live);
  expect_exact_replica(primary, late);

  // Every committed record = one applied batch on the primary.
  const std::uint64_t records = primary.stats().batches;
  ASSERT_GT(records, 0u);
  const auto counters = service::wal_codec_counters();
  EXPECT_EQ(counters.encoded_frames, records)
      << "a consumer re-encoded: WAL append, ring retention, and disk "
         "catch-up must all reuse the apply thread's single encode";
  EXPECT_EQ(counters.decoded_batches, 2 * records)
      << "each of the 2 replicas must decode each record exactly once";
  live.stop();
  late.stop();
  primary.shutdown();
}

TEST(Cluster, RingAndDiskCatchupShipIdenticalFrameBytes) {
  // Replicas must decode the *same bytes* no matter which path delivered
  // them. Capture every shipped frame once through the retention ring and
  // once through pure disk catch-up (retain_records = 0), and compare both
  // bit-for-bit against each other and against the frames on disk.
  TempPath wal("bitident.wal");
  constexpr vertex_t kN = 300;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  cfg.min_ops_per_cycle = 4;
  cfg.max_ops_per_cycle = 32;
  KCoreService primary(cfg);

  std::map<std::uint64_t, std::vector<unsigned char>> ring_bytes;
  std::map<std::uint64_t, std::vector<unsigned char>> disk_bytes;
  {
    LogShipper shipper(primary);  // unbounded ring: catch-up stays in memory
    for (const Edge& e : gen::barabasi_albert(kN, 4, 61)) {
      primary.submit_insert(e.u, e.v);
    }
    primary.drain();
    const std::uint64_t sub = shipper.subscribe(
        0, [&](const cluster::ShippedRecord& rec) {
          ring_bytes.emplace(rec.lsn, rec.frame->bytes());
        });
    shipper.unsubscribe(sub);
  }
  {
    LogShipper::Options opts;
    opts.retain_records = 0;  // ring keeps nothing: catch-up must hit disk
    LogShipper shipper(primary, opts);
    const std::uint64_t sub = shipper.subscribe(
        0, [&](const cluster::ShippedRecord& rec) {
          disk_bytes.emplace(rec.lsn, rec.frame->bytes());
        });
    shipper.unsubscribe(sub);
  }
  ASSERT_FALSE(ring_bytes.empty());
  EXPECT_EQ(ring_bytes, disk_bytes);

  std::map<std::uint64_t, std::vector<unsigned char>> wal_bytes;
  service::scan_wal_frames(cfg.wal_path, kN,
                           [&](const service::WalFramePtr& frame) {
                             wal_bytes.emplace(frame->lsn(), frame->bytes());
                           });
  EXPECT_EQ(ring_bytes, wal_bytes);
  primary.shutdown();
}

TEST(Cluster, ShipAtDurableReplicasConverge) {
  // ship_at = kDurable: records reach the shipper only once the async
  // engine's watermark covers them, so a replica can never apply bytes the
  // primary might lose in a crash. Replicas must still converge exactly —
  // the stream stays gapless and ordered, just delayed to durability.
  constexpr vertex_t kN = 500;
  TempPath wal("ship_at_durable.wal");
  ClusterConfig cfg;
  cfg.partitions = 1;
  cfg.replicas = 2;
  cfg.base.num_vertices = kN;
  cfg.base.wal_path = wal.str();
  cfg.base.wal_durability = WalDurability::kFdatasync;
  cfg.base.wal_engine = service::WalEngine::kFlusher;
  cfg.base.ship_at = service::ShipPoint::kDurable;
  cfg.base.min_ops_per_cycle = 16;
  cfg.base.max_ops_per_cycle = 256;
  {
    ShardGroup group(cfg);
    constexpr std::size_t kWriters = 2;
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        Xoshiro256 rng(7700 + t);
        std::vector<Edge> inserted;
        for (std::size_t i = 0; i < 1500; ++i) {
          if (!inserted.empty() && rng.next_double() < 0.25) {
            const std::size_t j = rng.next_below(inserted.size());
            group.submit({inserted[j], UpdateKind::kDelete});
            inserted[j] = inserted.back();
            inserted.pop_back();
          } else {
            const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                         static_cast<vertex_t>(rng.next_below(kN))};
            group.submit({e, UpdateKind::kInsert});
            if (!e.is_self_loop()) inserted.push_back(e.canonical());
          }
        }
      });
    }
    for (auto& w : writers) w.join();
    group.quiesce();
    EXPECT_GT(group.shipper(0).stats().shipped_records, 0u);
    const auto stats = group.global_stats();
    EXPECT_EQ(stats.partitions[0].wal_engine, "flusher");
    EXPECT_GT(stats.wal_flushes, 0u);
    EXPECT_GT(stats.wal_flush_bytes, 0u);
    for (std::size_t r = 0; r < cfg.replicas; ++r) {
      expect_exact_replica(group.primary(0), group.replica(0, r));
    }
    group.shutdown();
  }
  std::filesystem::remove(wal.str());
}

TEST(Cluster, ShardedClusterDurableBinaryWalConverges) {
  // The CI binary-WAL TSan leg runs this under the sharded env pins: every
  // partition group-commits a durable (kFdatasync) binary v4 WAL while
  // concurrent writers drive the encode-once fan-out, and every partition's
  // replicas converge to their primary bit-for-bit.
  const std::size_t kParts = test_write_shards();
  const std::size_t kReps = test_replicas();
  constexpr vertex_t kN = 500;
  TempPath wal("durable_v4.wal");
  ClusterConfig cfg;
  cfg.partitions = kParts;
  cfg.replicas = kReps;
  cfg.base.num_vertices = kN;
  cfg.base.wal_path = wal.str();
  cfg.base.wal_durability = WalDurability::kFdatasync;
  cfg.base.min_ops_per_cycle = 16;
  cfg.base.max_ops_per_cycle = 256;
  {
    ShardGroup group(cfg);
    constexpr std::size_t kWriters = 2;
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        Xoshiro256 rng(9100 + t);
        std::vector<Edge> inserted;
        for (std::size_t i = 0; i < 1500; ++i) {
          if (!inserted.empty() && rng.next_double() < 0.25) {
            const std::size_t j = rng.next_below(inserted.size());
            group.submit({inserted[j], UpdateKind::kDelete});
            inserted[j] = inserted.back();
            inserted.pop_back();
          } else {
            const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                         static_cast<vertex_t>(rng.next_below(kN))};
            group.submit({e, UpdateKind::kInsert});
            if (!e.is_self_loop()) inserted.push_back(e.canonical());
          }
        }
      });
    }
    for (auto& w : writers) w.join();
    group.quiesce();
    for (std::size_t p = 0; p < kParts; ++p) {
      for (std::size_t r = 0; r < kReps; ++r) {
        expect_exact_replica(group.primary(p), group.replica(p, r));
      }
    }
    group.shutdown();
  }
  for (std::size_t p = 0; p < kParts; ++p) {
    const std::string path = cluster::partition_path(wal.str(), p, kParts);
    EXPECT_EQ(service::read_wal_header(path).format,
              service::WalFormat::kBinaryV4);
    std::filesystem::remove(path);
  }
}

}  // namespace
}  // namespace cpkcore
