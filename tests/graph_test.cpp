// Tests for the graph substrate: dynamic graph batch semantics, CSR
// snapshots, generators, IO round-trips, and batch-stream builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "graph/batch.hpp"
#include "graph/csr.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

TEST(DynamicGraph, SingleInsertDelete) {
  DynamicGraph g(10);
  EXPECT_TRUE(g.insert_edge({1, 2}));
  EXPECT_FALSE(g.insert_edge({2, 1}));  // duplicate (canonicalized)
  EXPECT_FALSE(g.insert_edge({3, 3}));  // self loop
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.delete_edge({2, 1}));
  EXPECT_FALSE(g.delete_edge({1, 2}));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraph, BatchInsertDedupsAndDropsExisting) {
  DynamicGraph g(100);
  g.insert_edge({0, 1});
  std::vector<Edge> batch = {{1, 0}, {0, 1}, {2, 3}, {3, 2}, {4, 4}, {5, 6}};
  auto applied = g.insert_batch(batch);
  ASSERT_EQ(applied.size(), 2u);  // (2,3) and (5,6)
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(5, 6));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(DynamicGraph, BatchDeleteDropsAbsent) {
  DynamicGraph g(100);
  g.insert_batch({{0, 1}, {1, 2}, {2, 3}});
  auto applied = g.delete_batch({{1, 0}, {7, 8}, {1, 0}});
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DynamicGraph, LargeBatchMatchesReference) {
  Xoshiro256 rng(21);
  constexpr vertex_t kN = 2000;
  DynamicGraph g(kN);
  std::set<std::pair<vertex_t, vertex_t>> ref;
  for (int round = 0; round < 5; ++round) {
    std::vector<Edge> ins;
    for (int i = 0; i < 20000; ++i) {
      const auto u = static_cast<vertex_t>(rng.next_below(kN));
      const auto v = static_cast<vertex_t>(rng.next_below(kN));
      ins.push_back({u, v});
    }
    g.insert_batch(ins);
    for (auto e : ins) {
      e = e.canonical();
      if (!e.is_self_loop()) ref.insert({e.u, e.v});
    }
    ASSERT_EQ(g.num_edges(), ref.size());

    std::vector<Edge> del;
    for (int i = 0; i < 5000; ++i) {
      const auto u = static_cast<vertex_t>(rng.next_below(kN));
      const auto v = static_cast<vertex_t>(rng.next_below(kN));
      del.push_back({u, v});
    }
    g.delete_batch(del);
    for (auto e : del) {
      e = e.canonical();
      ref.erase({e.u, e.v});
    }
    ASSERT_EQ(g.num_edges(), ref.size());
  }
  // Spot-check adjacency symmetry and sortedness.
  for (vertex_t v = 0; v < kN; v += 97) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (vertex_t w : nbrs) {
      EXPECT_TRUE(g.has_edge(w, v));
    }
  }
}

TEST(DynamicGraph, EdgesReturnsCanonicalSortedList) {
  DynamicGraph g(10);
  g.insert_batch({{3, 1}, {0, 2}, {5, 4}});
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
  EXPECT_EQ(edges[2], (Edge{4, 5}));
}

TEST(Csr, FromEdgesBuildsSymmetricAdjacency) {
  auto g = CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {1, 3}, {0, 1}});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  auto n1 = g.neighbors(1);
  EXPECT_EQ(std::vector<vertex_t>(n1.begin(), n1.end()),
            (std::vector<vertex_t>{0, 2, 3}));
}

TEST(Csr, FromDynamicMatches) {
  DynamicGraph dyn(50);
  Xoshiro256 rng(5);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back({static_cast<vertex_t>(rng.next_below(50)),
                     static_cast<vertex_t>(rng.next_below(50))});
  }
  dyn.insert_batch(edges);
  auto csr = CsrGraph::from_dynamic(dyn);
  ASSERT_EQ(csr.num_edges(), dyn.num_edges());
  for (vertex_t v = 0; v < 50; ++v) {
    auto a = dyn.neighbors(v);
    auto b = csr.neighbors(v);
    ASSERT_EQ(std::vector<vertex_t>(a.begin(), a.end()),
              std::vector<vertex_t>(b.begin(), b.end()));
  }
}

TEST(Generators, ErdosRenyiProducesRequestedEdges) {
  auto edges = gen::erdos_renyi(1000, 5000, 1);
  EXPECT_EQ(edges.size(), 5000u);
  std::set<std::uint64_t> keys;
  for (const auto& e : edges) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 1000u);
    keys.insert(e.key());
  }
  EXPECT_EQ(keys.size(), edges.size());
}

TEST(Generators, ErdosRenyiClampsToMaxEdges) {
  auto edges = gen::erdos_renyi(10, 1000, 2);
  EXPECT_EQ(edges.size(), 45u);  // complete graph
}

TEST(Generators, BarabasiAlbertDegreesSkewed) {
  auto edges = gen::barabasi_albert(5000, 3, 3);
  std::vector<std::size_t> deg(5000, 0);
  for (const auto& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  // Preferential attachment must produce hubs far above the mean (~6).
  EXPECT_GT(max_deg, 50u);
}

TEST(Generators, RmatStaysInRange) {
  auto edges = gen::rmat(12, 20000, 4);
  EXPECT_GT(edges.size(), 10000u);
  for (const auto& e : edges) {
    EXPECT_LT(e.v, 1u << 12);
  }
}

TEST(Generators, GridHasExpectedEdgeCount) {
  // 4-neighbor grid: 2*r*c - r - c edges.
  auto plain = gen::grid_2d(10, 12, /*with_diagonals=*/false);
  EXPECT_EQ(plain.size(), 2u * 10 * 12 - 10 - 12);
  auto diag = gen::grid_2d(10, 12, /*with_diagonals=*/true);
  EXPECT_EQ(diag.size(), plain.size() + 9u * 11);
}

TEST(Generators, WattsStrogatzKeepsDegreeBudget) {
  auto edges = gen::watts_strogatz(2000, 8, 0.1, 6);
  EXPECT_GT(edges.size(), 7000u);
  EXPECT_LE(edges.size(), 8000u);
}

TEST(Generators, KnownStructures) {
  EXPECT_EQ(gen::complete(6).size(), 15u);
  EXPECT_EQ(gen::cycle(10).size(), 10u);
  EXPECT_EQ(gen::star(10).size(), 9u);
  EXPECT_EQ(gen::random_tree(100, 7).size(), 99u);
  EXPECT_EQ(gen::disjoint_cliques(12, 4).size(), 3u * 6);
}

TEST(Io, RoundTripAndRemap) {
  const std::string path = "/tmp/cpkc_io_test.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment line\n100 200\n200 300\n% other comment\n100 300\n",
               f);
    std::fclose(f);
  }
  auto parsed = read_edge_list(path);
  EXPECT_EQ(parsed.num_vertices, 3u);
  ASSERT_EQ(parsed.edges.size(), 3u);
  // Ids remapped densely in first-appearance order: 100->0, 200->1, 300->2.
  EXPECT_EQ(parsed.edges[0], (Edge{0, 1}));
  EXPECT_EQ(parsed.edges[1], (Edge{1, 2}));
  EXPECT_EQ(parsed.edges[2], (Edge{0, 2}));

  write_edge_list(path, parsed.edges);
  auto again = read_edge_list(path);
  EXPECT_EQ(again.edges.size(), parsed.edges.size());
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list("/nonexistent/nope.txt"), std::runtime_error);
}

TEST(BatchStream, SplitBatchesSegmentsByKind) {
  std::vector<Update> updates = {
      {{0, 1}, UpdateKind::kInsert}, {{1, 2}, UpdateKind::kInsert},
      {{0, 1}, UpdateKind::kDelete}, {{2, 3}, UpdateKind::kInsert},
  };
  auto batches = split_batches(updates);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(batches[0].edges.size(), 2u);
  EXPECT_EQ(batches[1].kind, UpdateKind::kDelete);
  EXPECT_EQ(batches[2].kind, UpdateKind::kInsert);
}

TEST(BatchStream, InsertionStreamCoversAllEdges) {
  auto edges = gen::erdos_renyi(500, 3000, 9);
  auto batches = insertion_stream(edges, 1000, 42);
  ASSERT_EQ(batches.size(), 3u);
  std::set<std::uint64_t> seen;
  for (const auto& b : batches) {
    EXPECT_EQ(b.kind, UpdateKind::kInsert);
    for (const auto& e : b.edges) seen.insert(e.canonical().key());
  }
  EXPECT_EQ(seen.size(), edges.size());
}

TEST(BatchStream, DeletionStreamIsReverseOfInsertion) {
  auto edges = gen::erdos_renyi(200, 900, 10);
  auto ins = insertion_stream(edges, 300, 5);
  auto del = deletion_stream(edges, 300, 5);
  ASSERT_EQ(ins.size(), del.size());
  // First deleted edge equals last inserted edge (same shuffle, reversed).
  EXPECT_EQ(del.front().edges.front(), ins.back().edges.back());
}

TEST(BatchStream, SlidingWindowKeepsWindowSize) {
  auto edges = gen::erdos_renyi(300, 2000, 11);
  auto stream = sliding_window_stream(edges, 800, 200, 13);
  ASSERT_FALSE(stream.empty());
  EXPECT_EQ(stream[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(stream[0].edges.size(), 800u);
  DynamicGraph g(300);
  std::size_t applied = 0;
  for (const auto& b : stream) {
    if (b.kind == UpdateKind::kInsert) {
      applied += g.insert_batch(b.edges).size();
    } else {
      g.delete_batch(b.edges);
    }
    EXPECT_LE(g.num_edges(), 800u);
  }
  EXPECT_EQ(applied, edges.size());
}

}  // namespace
}  // namespace cpkcore
