// Serving-layer tests: concurrent multi-client submission, ticket
// acknowledgment ordering, WAL group-commit replay after simulated crashes
// (both sides of the commit marker), snapshot compaction equivalence, and
// concurrent readers through all three ReadModes while submitters run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <thread>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "harness/service_workload.hpp"
#include "kcore/peel.hpp"
#include "service/kcore_service.hpp"
#include "service/wal.hpp"

namespace cpkcore {
namespace {

using service::KCoreService;
using service::ServiceConfig;
using service::Ticket;
using service::WalDurability;
using service::WalFormat;
using service::WalOptions;
using service::WriteAheadLog;

/// Unique temp path per test *and* per process (two build trees' suites
/// running concurrently must not clobber each other); removed by the guard.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("/tmp/cpkc_service_" + std::to_string(::getpid()) + "_" +
              name) {
    std::filesystem::remove(path_);
  }
  ~TempPath() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::set<std::uint64_t> edge_keys(const KCoreService& svc) {
  std::set<std::uint64_t> keys;
  const PLDS& plds = svc.cplds().plds();
  for (vertex_t v = 0; v < svc.num_vertices(); ++v) {
    for (vertex_t w : plds.neighbors(v)) {
      if (w > v) keys.insert(Edge{v, w}.key());
    }
  }
  return keys;
}

TEST(Service, SingleClientInsertAndRead) {
  ServiceConfig cfg;
  cfg.num_vertices = 300;
  KCoreService svc(cfg);
  auto edges = gen::barabasi_albert(300, 4, 11);
  std::vector<Ticket> tickets;
  tickets.reserve(edges.size());
  for (const Edge& e : edges) tickets.push_back(svc.submit_insert(e.u, e.v));
  for (const Ticket& t : tickets) EXPECT_TRUE(svc.wait(t));

  CPLDS reference(300, LDSParams::create(300));
  reference.insert_batch(edges);
  EXPECT_EQ(svc.num_edges(), reference.num_edges());
  for (vertex_t v = 0; v < 300; ++v) {
    for (vertex_t w : reference.plds().neighbors(v)) {
      EXPECT_TRUE(svc.cplds().plds().has_edge(v, w));
    }
  }
  svc.shutdown();
}

TEST(Service, ConcurrentSubmissionAppliesUnion) {
  constexpr vertex_t kN = 1000;
  constexpr std::size_t kClients = 4;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  KCoreService svc(cfg);

  // Disjoint vertex ranges per client so the expected union is exact even
  // though submission order across clients is unconstrained.
  std::vector<std::vector<Edge>> per_client(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    const auto base = static_cast<vertex_t>(c * (kN / kClients));
    for (vertex_t i = 0; i + 1 < kN / kClients; ++i) {
      per_client[c].push_back({base + i, base + i + 1});
      if (i + 2 < kN / kClients) {
        per_client[c].push_back({base + i, base + i + 2});
      }
    }
  }
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<Ticket> tickets;
      tickets.reserve(per_client[c].size());
      for (const Edge& e : per_client[c]) {
        tickets.push_back(svc.submit_insert(e.u, e.v));
      }
      for (const Ticket& t : tickets) EXPECT_TRUE(svc.wait(t));
    });
  }
  for (auto& t : clients) t.join();

  std::size_t expected = 0;
  for (const auto& edges : per_client) {
    expected += edges.size();
    for (const Edge& e : edges) {
      EXPECT_TRUE(svc.cplds().plds().has_edge(e.u, e.v));
    }
  }
  EXPECT_EQ(svc.num_edges(), expected);
  std::string why;
  EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
  svc.shutdown();
}

TEST(Service, TicketAcknowledgmentOrderIsMonotonePerShard) {
  ServiceConfig cfg;
  cfg.num_vertices = 500;
  cfg.num_shards = 1;  // one shard -> all tickets totally ordered
  cfg.min_ops_per_cycle = 4;
  cfg.max_ops_per_cycle = 16;  // force many small drain cycles
  KCoreService svc(cfg);

  auto edges = gen::erdos_renyi(500, 2000, 3);
  std::vector<Ticket> tickets;
  tickets.reserve(edges.size());
  for (const Edge& e : edges) {
    tickets.push_back(svc.submit_insert(e.u, e.v));
    ASSERT_EQ(tickets.back().shard, 0u);
    ASSERT_EQ(tickets.back().seq, tickets.size());
  }
  // Acks are monotone: whenever a ticket is applied, so is every earlier
  // one. Probe at several points while batches are still in flight.
  for (std::size_t probe : {std::size_t{10}, edges.size() / 2,
                            edges.size() - 1}) {
    ASSERT_TRUE(svc.wait(tickets[probe]));
    for (std::size_t j = 0; j <= probe; ++j) {
      EXPECT_TRUE(svc.is_applied(tickets[j])) << j;
    }
  }
  svc.shutdown();
}

TEST(Service, MixedInsertDeleteMatchesSequentialMirror) {
  constexpr vertex_t kN = 400;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.min_ops_per_cycle = 8;
  cfg.max_ops_per_cycle = 64;
  KCoreService svc(cfg);

  // Single client: per-edge order equals submission order, so a sequential
  // mirror predicts the final state exactly.
  Xoshiro256 rng(99);
  DynamicGraph mirror(kN);
  std::vector<Edge> present;
  Ticket last{};
  for (int i = 0; i < 4000; ++i) {
    if (present.empty() || rng.next_below(3) != 0) {
      const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                   static_cast<vertex_t>(rng.next_below(kN))};
      last = svc.submit({e, UpdateKind::kInsert});
      if (mirror.insert_edge(e)) present.push_back(e.canonical());
    } else {
      const std::size_t j = rng.next_below(present.size());
      last = svc.submit({present[j], UpdateKind::kDelete});
      mirror.delete_edge(present[j]);
      present[j] = present.back();
      present.pop_back();
    }
  }
  svc.drain();
  EXPECT_TRUE(svc.is_applied(last));
  EXPECT_EQ(svc.num_edges(), mirror.num_edges());
  for (vertex_t v = 0; v < kN; ++v) {
    for (vertex_t w : mirror.neighbors(v)) {
      EXPECT_TRUE(svc.cplds().plds().has_edge(v, w)) << v << "," << w;
    }
  }
  std::string why;
  EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
  svc.shutdown();
}

TEST(Service, WalReplayAfterCrashRestoresAckedOps) {
  TempPath wal("crash.wal");
  constexpr vertex_t kN = 400;
  auto edges = gen::social(kN, 4, 3, 30, 0.9, 21);
  std::set<std::uint64_t> before;
  {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    KCoreService svc(cfg);
    std::vector<Ticket> tickets;
    for (const Edge& e : edges) tickets.push_back(svc.submit_insert(e.u, e.v));
    for (const Ticket& t : tickets) ASSERT_TRUE(svc.wait(t));
    before = edge_keys(svc);
    // Crash after every op was acked (kill *after* group commit): the WAL
    // must reproduce the acked edge set exactly.
    svc.simulate_crash();
  }
  {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    KCoreService svc(cfg);
    EXPECT_GT(svc.stats().replayed_batches, 0u);
    EXPECT_EQ(edge_keys(svc), before);
    std::string why;
    EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
    svc.shutdown();
  }
}

TEST(Service, CrashDropsPendingUnackedOps) {
  TempPath wal("pending.wal");
  constexpr vertex_t kN = 100;
  Ticket pending_ticket{};
  {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    KCoreService svc(cfg);
    auto t1 = svc.submit_insert(1, 2);
    ASSERT_TRUE(svc.wait(t1));
    svc.simulate_crash();
    // Submissions after the crash are rejected.
    EXPECT_THROW(svc.submit_insert(2, 3), std::runtime_error);
    // A ticket the crash left behind reports failure instead of hanging.
    pending_ticket = Ticket{0, ~std::uint64_t{0}};
    EXPECT_FALSE(svc.wait(pending_ticket));
  }
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  KCoreService svc(cfg);
  EXPECT_EQ(svc.num_edges(), 1u);
  EXPECT_TRUE(svc.cplds().plds().has_edge(1, 2));
  svc.shutdown();
}

TEST(Service, WalDiscardsUncommittedTail) {
  // Kill *before* group commit: hand-craft a log whose last batch lacks its
  // commit marker; replay must keep the committed prefix only, and the log
  // must stay appendable afterwards.
  TempPath wal("tail.wal");
  {
    const UpdateBatch committed{UpdateKind::kInsert, {{1, 2}, {2, 3}}};
    std::ofstream out(wal.str());
    out << "cpkcore-wal-v3\n100 0\n";
    out << "B I 2 1\n1 2\n2 3\nC 2 1 "
        << service::wal_record_crc(1, committed) << "\n";
    out << "B I 3 2\n3 4\n4 5\n";  // crash: no commit marker
  }
  std::vector<UpdateBatch> replayed;
  std::vector<std::uint64_t> lsns;
  WriteAheadLog log;
  const auto info = log.open(wal.str(), 100,
                             [&](std::uint64_t lsn, const UpdateBatch& b) {
                               lsns.push_back(lsn);
                               replayed.push_back(b);
                             });
  EXPECT_EQ(info.replayed, 1u);
  EXPECT_EQ(info.last_lsn, 1u);
  // Opened under the default (binary) format, the v3 prefix was migrated.
  EXPECT_TRUE(info.migrated);
  EXPECT_EQ(info.format, WalFormat::kBinaryV4);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(replayed[0].edges,
            (std::vector<Edge>{{1, 2}, {2, 3}}));

  // Append a committed batch past the truncation point and re-open.
  log.append(2, UpdateBatch{UpdateKind::kDelete, {{1, 2}}});
  log.flush();
  log.close();
  replayed.clear();
  lsns.clear();
  WriteAheadLog reopened;
  EXPECT_EQ(reopened
                .open(wal.str(), 100,
                      [&](std::uint64_t lsn, const UpdateBatch& b) {
                        lsns.push_back(lsn);
                        replayed.push_back(b);
                      })
                .replayed,
            2u);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(replayed[1].kind, UpdateKind::kDelete);
  EXPECT_EQ(replayed[1].edges, (std::vector<Edge>{{1, 2}}));
}

TEST(Service, WalChecksumTruncatesCorruptTail) {
  // Bit rot / torn write in a *v3 text* log's last record: the payload
  // still parses (valid numbers, marker present), but the recomputed CRC no
  // longer matches the stored one — the record must be dropped exactly like
  // an uncommitted tail. The default-format reopen then migrates the
  // surviving prefix to v4, so this also covers migration of a log whose
  // tail rotted.
  TempPath wal("crc.wal");
  WalOptions text;
  text.durability = WalDurability::kOsCache;
  text.format = WalFormat::kTextV3;
  {
    WriteAheadLog log;
    log.open(wal.str(), 100, nullptr, text);
    log.append(1, UpdateBatch{UpdateKind::kInsert, {{1, 2}, {2, 3}}});
    log.append(2, UpdateBatch{UpdateKind::kInsert, {{3, 4}}});
    log.flush();
    log.close();
  }
  {
    // Corrupt record 2's edge payload ("3 4" occurs only there).
    std::ifstream in(wal.str());
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    const std::size_t at = contents.find("3 4\n");
    ASSERT_NE(at, std::string::npos);
    contents[at + 2] = '5';
    std::ofstream out(wal.str(), std::ios::trunc);
    out << contents;
  }
  // Both readers agree: the committed prefix ends before the rotted record.
  const auto scanned = service::scan_wal(wal.str(), 100, nullptr);
  EXPECT_EQ(scanned.records, 1u);
  EXPECT_EQ(scanned.last_lsn, 1u);
  EXPECT_EQ(scanned.format, WalFormat::kTextV3);
  std::size_t replayed_count = 0;
  WriteAheadLog log;
  const auto info = log.open(
      wal.str(), 100,
      [&](std::uint64_t, const UpdateBatch&) { ++replayed_count; });
  EXPECT_EQ(info.replayed, 1u);
  EXPECT_EQ(info.last_lsn, 1u);
  EXPECT_EQ(replayed_count, 1u);
  EXPECT_TRUE(info.migrated);
  EXPECT_EQ(info.format, WalFormat::kBinaryV4);
  // The corrupt tail did not survive migration: LSN 2 is free again and the
  // (now binary) log keeps working.
  log.append(2, UpdateBatch{UpdateKind::kDelete, {{1, 2}}});
  log.flush();
  log.close();
  WriteAheadLog reopened;
  EXPECT_EQ(reopened.open(wal.str(), 100, nullptr).replayed, 2u);
}

TEST(Service, WalRejectsMismatchedVertexCount) {
  TempPath wal("mismatch.wal");
  {
    std::ofstream out(wal.str());
    out << "cpkcore-wal-v3\n100 0\n";
  }
  WriteAheadLog log;
  EXPECT_THROW(log.open(wal.str(), 200, nullptr), std::runtime_error);
}

TEST(Service, WalTreatsEmptyFileAsFresh) {
  // A crash inside reset()'s truncate-then-header window leaves a zero-byte
  // file; restart must not be bricked by it.
  TempPath wal("empty.wal");
  { std::ofstream out(wal.str()); }  // create empty
  WriteAheadLog log;
  std::size_t replayed = ~std::size_t{0};
  ASSERT_NO_THROW(replayed = log.open(wal.str(), 50, nullptr).replayed);
  EXPECT_EQ(replayed, 0u);
  log.append(1, UpdateBatch{UpdateKind::kInsert, {{1, 2}}});
  log.flush();
  log.close();
  std::size_t count = 0;
  WriteAheadLog reopened;
  EXPECT_EQ(reopened
                .open(wal.str(), 50,
                      [&](std::uint64_t, const UpdateBatch&) { ++count; })
                .replayed,
            1u);
  EXPECT_EQ(count, 1u);
}

/// Writes a fresh two-record binary log; returns the file size after the
/// first record's group commit — a frame boundary, so corruption injected
/// past it hits exactly the second frame.
std::uintmax_t write_two_record_binary_log(const std::string& path) {
  WriteAheadLog log;
  log.open(path, 100, nullptr);
  EXPECT_EQ(log.format(), WalFormat::kBinaryV4);
  log.append(1, UpdateBatch{UpdateKind::kInsert, {{1, 2}, {2, 3}}});
  log.flush();
  const std::uintmax_t boundary = std::filesystem::file_size(path);
  log.append(2, UpdateBatch{UpdateKind::kInsert, {{3, 4}}});
  log.flush();
  log.close();
  return boundary;
}

/// The v3 truncate-and-resume contract, asserted against a damaged binary
/// log: both readers agree the committed prefix is record 1 only, the open
/// truncates the damage away, LSN 2 is reusable, and the log keeps working.
void expect_truncates_to_first_record(const std::string& path) {
  const auto scanned = service::scan_wal(path, 100, nullptr);
  EXPECT_EQ(scanned.records, 1u);
  EXPECT_EQ(scanned.last_lsn, 1u);
  std::vector<std::uint64_t> lsns;
  WriteAheadLog log;
  const auto info =
      log.open(path, 100, [&](std::uint64_t lsn, const UpdateBatch&) {
        lsns.push_back(lsn);
      });
  EXPECT_EQ(info.replayed, 1u);
  EXPECT_EQ(info.last_lsn, 1u);
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1}));
  log.append(2, UpdateBatch{UpdateKind::kDelete, {{1, 2}}});
  log.flush();
  log.close();
  WriteAheadLog reopened;
  EXPECT_EQ(reopened.open(path, 100, nullptr).replayed, 2u);
}

TEST(Service, WalBinaryTornMidFrameTail) {
  // Crash between append and group commit: the second frame's length
  // prefix and a few payload bytes made it to disk, the rest did not.
  TempPath wal("v4_torn.wal");
  const std::uintmax_t boundary = write_two_record_binary_log(wal.str());
  ASSERT_GT(std::filesystem::file_size(wal.str()), boundary + 7);
  std::filesystem::resize_file(wal.str(), boundary + 7);
  expect_truncates_to_first_record(wal.str());
}

TEST(Service, WalBinaryTruncatedLengthPrefix) {
  // Harsher tear: only 2 of the second frame's 4 length-prefix bytes
  // survive — the reader cannot even tell how long the record claims to be.
  TempPath wal("v4_prefix.wal");
  const std::uintmax_t boundary = write_two_record_binary_log(wal.str());
  std::filesystem::resize_file(wal.str(), boundary + 2);
  expect_truncates_to_first_record(wal.str());
}

TEST(Service, WalBinaryBitFlipTruncatesCorruptTail) {
  // Bit rot: the second frame is structurally intact (full length, trailer
  // present, vertex ids in range) but one payload bit flipped, so the
  // stored CRC no longer matches the bytes.
  TempPath wal("v4_flip.wal");
  const std::uintmax_t boundary = write_two_record_binary_log(wal.str());
  {
    std::fstream f(wal.str(),
                   std::ios::in | std::ios::out | std::ios::binary);
    // Offset 17 into a frame is its first edge byte (see wal_codec.hpp).
    f.seekg(static_cast<std::streamoff>(boundary) + 17);
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(boundary) + 17);
    f.put(static_cast<char>(byte ^ 0x20));
  }
  expect_truncates_to_first_record(wal.str());
}

TEST(Service, V3ServiceMigratesToV4WithIdenticalCoreness) {
  // Warm-restart an "old deployment" (a service that wrote the v3 text
  // format) into the v4 world: the first restart replays the text log and
  // atomically rewrites it as v4; coreness must be identical before the
  // crash, after the migrating restart, and after a second restart that
  // replays the migrated binary log.
  TempPath wal("migrate.wal");
  constexpr vertex_t kN = 300;
  const auto edges = gen::barabasi_albert(kN, 4, 23);
  std::vector<double> before(kN);
  {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.wal_format = WalFormat::kTextV3;
    KCoreService svc(cfg);
    for (const Edge& e : edges) svc.submit_insert(e.u, e.v);
    svc.drain();
    for (vertex_t v = 0; v < kN; ++v) before[v] = svc.read_coreness(v);
    svc.simulate_crash();
  }
  ASSERT_EQ(service::read_wal_header(wal.str()).format, WalFormat::kTextV3);
  for (int restart = 0; restart < 2; ++restart) {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    KCoreService svc(cfg);
    EXPECT_GT(svc.stats().replayed_batches, 0u);
    for (vertex_t v = 0; v < kN; ++v) {
      ASSERT_EQ(svc.read_coreness(v), before[v]) << "vertex " << v;
    }
    std::string why;
    EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
    svc.simulate_crash();
    // The text log became binary on the first restart and stays binary.
    EXPECT_EQ(service::read_wal_header(wal.str()).format,
              WalFormat::kBinaryV4);
  }
}

TEST(Service, TinyBudgetManyShardsDrainsFairly) {
  // Budget smaller than the shard count: the rotating drain start must
  // still reach every shard, so every ticket acks.
  ServiceConfig cfg;
  cfg.num_vertices = 200;
  cfg.num_shards = 8;
  cfg.min_ops_per_cycle = 2;
  cfg.max_ops_per_cycle = 2;
  KCoreService svc(cfg);
  std::vector<Ticket> tickets;
  for (vertex_t i = 0; i + 1 < 120; ++i) {
    tickets.push_back(svc.submit_insert(i, i + 1));
  }
  for (const Ticket& t : tickets) EXPECT_TRUE(svc.wait(t));
  EXPECT_EQ(svc.num_edges(), 119u);
  svc.shutdown();
}

TEST(Service, SnapshotCompactionEquivalence) {
  TempPath wal("compact.wal");
  TempPath snap("compact.snap");
  constexpr vertex_t kN = 300;
  auto phase_a = gen::barabasi_albert(kN, 5, 31);
  auto phase_b = gen::erdos_renyi(kN, 800, 32);
  std::set<std::uint64_t> before;
  {
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.snapshot_path = snap.str();
    KCoreService svc(cfg);
    for (const Edge& e : phase_a) svc.submit_insert(e.u, e.v);
    svc.drain();
    // A stale temp file from a crashed earlier checkpoint must not matter.
    { std::ofstream garbage(snap.str() + ".tmp"); garbage << "torn"; }
    svc.checkpoint();  // snapshot phase A (atomic rename), truncate the WAL
    EXPECT_FALSE(std::filesystem::exists(snap.str() + ".tmp"));
    for (const Edge& e : phase_b) svc.submit_insert(e.u, e.v);
    svc.drain();
    before = edge_keys(svc);
    svc.simulate_crash();
  }
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  cfg.snapshot_path = snap.str();
  KCoreService svc(cfg);
  // Warm restart = snapshot (phase A) + WAL suffix (phase B only).
  EXPECT_EQ(edge_keys(svc), before);

  // Coreness estimates after restart stay within the paper's bound.
  DynamicGraph mirror(kN);
  const PLDS& plds = svc.cplds().plds();
  for (vertex_t v = 0; v < kN; ++v) {
    for (vertex_t w : plds.neighbors(v)) {
      if (w > v) mirror.insert_edge({v, w});
    }
  }
  const auto exact = exact_coreness(mirror);
  const double bound = (2.0 + 3.0 / 9.0) * 1.44;
  for (vertex_t v = 0; v < kN; ++v) {
    const double est = svc.read_coreness(v);
    const double truth = std::max<double>(1.0, exact[v]);
    EXPECT_LE(std::max(est / truth, truth / est), bound) << v;
  }
  svc.shutdown();
}

TEST(Service, ConcurrentSubmittersAndReadersAllModes) {
  // The acceptance demo: >= 4 submitter threads and >= 4 reader threads,
  // every ReadMode exercised, TSan-clean (this suite runs in the TSan CI
  // leg). Correctness: structure validates and reads stay in range.
  constexpr vertex_t kN = 2000;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.min_ops_per_cycle = 32;
  cfg.max_ops_per_cycle = 4096;
  KCoreService svc(cfg);
  // Preload so readers see a nontrivial structure from the start.
  for (const Edge& e : gen::barabasi_albert(kN, 3, 41)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();

  harness::ServiceWorkloadConfig wl;
  wl.submitter_threads = 4;
  wl.reader_threads = 4;
  wl.ops_per_thread = 3000;
  wl.delete_fraction = 0.25;
  wl.seed = 5;
  // One run per read mode; all three against the same live service.
  for (ReadMode mode :
       {ReadMode::kCplds, ReadMode::kNonSync, ReadMode::kSyncReads}) {
    wl.mode = mode;
    auto result = harness::run_service_workload(svc, wl);
    EXPECT_EQ(result.ops_submitted, 4u * 3000u);
    EXPECT_GT(result.total_reads, 0u);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.acked_ops, stats.submitted_ops);
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.ack_latency.count(), 0u);
  svc.shutdown();
  std::string why;
  EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
}

TEST(Service, AdaptiveBatchSizerTracksTarget) {
  service::AdaptiveBatchSizer sizer(16, 8192, /*target_apply_ns=*/1000000);
  // 1 us per op -> ideal budget 1000; growth capped at 2x per observation.
  std::size_t prev = sizer.budget();
  for (int i = 0; i < 10; ++i) {
    sizer.observe(prev, prev * 1000);
    EXPECT_LE(sizer.budget(), std::max(prev * 2, std::size_t{16}));
    prev = sizer.budget();
  }
  EXPECT_NEAR(static_cast<double>(sizer.budget()), 1000.0, 200.0);
  // Ops suddenly 100x slower -> budget shrinks toward 10.
  for (int i = 0; i < 20; ++i) sizer.observe(sizer.budget(), sizer.budget() * 100000);
  EXPECT_LE(sizer.budget(), 64u);
  EXPECT_GE(sizer.budget(), 16u);  // floor respected
}

TEST(Service, WalEngineProbeLogsSelection) {
  // The CI "WAL engine probe" step runs exactly this test and reads its
  // output: which async engine the kernel supports and what kAuto resolves
  // to under the leg's CPKC_WAL_ENGINE pin, so every CI log records which
  // engine its suites actually exercised.
  const bool uring = service::io_uring_engine_available();
  const service::WalEngineKind auto_kind =
      service::resolve_wal_engine(service::WalEngine::kAuto);
  std::printf("[wal-engine-probe] io_uring=%s resolved(auto)=%s\n",
              uring ? "available" : "unavailable",
              service::wal_engine_name(auto_kind));
  // Explicit pins resolve verbatim (the env override applies only to
  // kAuto), and an unsupported io_uring request degrades to the flusher —
  // it never reports an engine the kernel cannot run.
  EXPECT_EQ(service::resolve_wal_engine(service::WalEngine::kSync),
            service::WalEngineKind::kSync);
  EXPECT_EQ(service::resolve_wal_engine(service::WalEngine::kFlusher),
            service::WalEngineKind::kFlusher);
  const service::WalEngineKind uring_kind =
      service::resolve_wal_engine(service::WalEngine::kIoUring);
  if (uring) {
    EXPECT_EQ(uring_kind, service::WalEngineKind::kIoUring);
  } else {
    EXPECT_EQ(uring_kind, service::WalEngineKind::kFlusher);
  }
}

TEST(Service, AsyncCrashReplayRestoresAckedOpsAllDurabilities) {
  // The async engine must not weaken the crash contract at any durability
  // level: every acked op is in the committed prefix the reopen replays.
  constexpr vertex_t kN = 300;
  const auto edges = gen::barabasi_albert(kN, 4, 17);
  for (WalDurability level :
       {WalDurability::kOsCache, WalDurability::kFdatasync,
        WalDurability::kFsync}) {
    TempPath wal("async_crash.wal");
    std::set<std::uint64_t> before;
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.wal_durability = level;
    cfg.wal_engine = service::WalEngine::kFlusher;
    {
      KCoreService svc(cfg);
      std::vector<Ticket> tickets;
      tickets.reserve(edges.size());
      for (const Edge& e : edges) {
        tickets.push_back(svc.submit_insert(e.u, e.v));
      }
      for (const Ticket& t : tickets) ASSERT_TRUE(svc.wait(t));
      before = edge_keys(svc);
      svc.simulate_crash();
    }
    KCoreService svc(cfg);
    EXPECT_GT(svc.stats().replayed_batches, 0u);
    EXPECT_EQ(edge_keys(svc), before)
        << "durability level " << static_cast<int>(level);
    std::string why;
    EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
    svc.shutdown();
  }
}

TEST(Service, AckNeverPrecedesDurabilityAtSyncLevels) {
  // The pipelined commit defers acks to the durable watermark: at
  // fdatasync/fsync, the moment wait() returns the acked LSN must already
  // be covered by the WAL's durable LSN — an ack may never outrun its
  // durability point.
  constexpr vertex_t kN = 200;
  for (WalDurability level :
       {WalDurability::kFdatasync, WalDurability::kFsync}) {
    TempPath wal("ack_durable.wal");
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.wal_durability = level;
    cfg.wal_engine = service::WalEngine::kFlusher;
    KCoreService svc(cfg);
    const auto edges = gen::erdos_renyi(kN, 600, 9);
    std::vector<Ticket> tickets;
    tickets.reserve(edges.size());
    for (const Edge& e : edges) {
      tickets.push_back(svc.submit_insert(e.u, e.v));
    }
    for (const Ticket& t : tickets) {
      std::uint64_t lsn = 0;
      ASSERT_TRUE(svc.wait(t, &lsn));
      EXPECT_GE(svc.durable_lsn(), lsn);
    }
    svc.shutdown();
  }
}

TEST(Service, AsyncCompactPreservesUnshippedSuffixAllDurabilities) {
  // checkpoint() stops and restarts the engine around the WAL compaction;
  // records committed after the cut must survive in the compacted log and
  // replay on reopen, at every durability level.
  constexpr vertex_t kN = 250;
  const auto phase_a = gen::barabasi_albert(kN, 4, 51);
  const auto phase_b = gen::erdos_renyi(kN, 500, 52);
  for (WalDurability level :
       {WalDurability::kOsCache, WalDurability::kFdatasync,
        WalDurability::kFsync}) {
    TempPath wal("async_compact.wal");
    TempPath snap("async_compact.snap");
    std::set<std::uint64_t> before;
    ServiceConfig cfg;
    cfg.num_vertices = kN;
    cfg.wal_path = wal.str();
    cfg.snapshot_path = snap.str();
    cfg.wal_durability = level;
    cfg.wal_engine = service::WalEngine::kFlusher;
    {
      KCoreService svc(cfg);
      for (const Edge& e : phase_a) svc.submit_insert(e.u, e.v);
      svc.drain();
      svc.checkpoint();
      for (const Edge& e : phase_b) svc.submit_insert(e.u, e.v);
      svc.drain();
      before = edge_keys(svc);
      svc.shutdown();
    }
    KCoreService svc(cfg);
    // Warm restart = snapshot (phase A) + compacted-WAL suffix (phase B).
    EXPECT_GT(svc.stats().replayed_batches, 0u);
    EXPECT_EQ(edge_keys(svc), before)
        << "durability level " << static_cast<int>(level);
    std::string why;
    EXPECT_TRUE(svc.cplds().plds().validate(&why)) << why;
    svc.shutdown();
  }
}

TEST(Service, AsyncEngineStatsExposeFlushPipeline) {
  TempPath wal("flush_stats.wal");
  constexpr vertex_t kN = 300;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  cfg.wal_durability = WalDurability::kFdatasync;
  cfg.wal_engine = service::WalEngine::kFlusher;
  KCoreService svc(cfg);
  for (const Edge& e : gen::barabasi_albert(kN, 4, 23)) {
    svc.submit_insert(e.u, e.v);
  }
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.wal_engine, "flusher");
  EXPECT_GT(stats.wal_flushes, 0u);
  EXPECT_GT(stats.wal_flush_bytes, 0u);
  EXPECT_GT(stats.durable_lag.count(), 0u);
  EXPECT_GT(stats.applied_latency.count(), 0u);
  // Quiescent after drain: the watermark covers everything committed, and
  // nothing rides the flush pipeline.
  EXPECT_GE(stats.durable_lsn, stats.commit_lsn);
  EXPECT_EQ(stats.wal_flush_depth, 0u);
  EXPECT_EQ(stats.wal_inflight_bytes, 0u);
  svc.shutdown();
}

TEST(Service, WalScanReportsCommittedBytes) {
  // committed_bytes is walcat --verify's foundation: it equals the file
  // size on a clean log and stays put when garbage is appended.
  TempPath wal("cbytes.wal");
  constexpr vertex_t kN = 100;
  ServiceConfig cfg;
  cfg.num_vertices = kN;
  cfg.wal_path = wal.str();
  {
    KCoreService svc(cfg);
    for (vertex_t v = 0; v + 1 < 50; ++v) svc.submit_insert(v, v + 1);
    svc.drain();
    svc.shutdown();
  }
  const auto clean = service::scan_wal_frames(
      wal.str(), kN, [](const service::WalFramePtr&) {});
  EXPECT_GT(clean.records, 0u);
  EXPECT_EQ(clean.committed_bytes, std::filesystem::file_size(wal.str()));
  {
    std::ofstream out(wal.str(),
                      std::ios::app | std::ios::binary);
    out << "garbage tail";
  }
  const auto torn = service::scan_wal_frames(
      wal.str(), kN, [](const service::WalFramePtr&) {});
  EXPECT_EQ(torn.records, clean.records);
  EXPECT_EQ(torn.committed_bytes, clean.committed_bytes);
  EXPECT_LT(torn.committed_bytes, std::filesystem::file_size(wal.str()));
}

TEST(Service, AdaptiveBatchSizerBacksOffOnAckLag) {
  service::AdaptiveBatchSizer sizer(16, 8192, /*target_apply_ns=*/1000000);
  // Converge with a healthy pipeline: 1 us per op, no ack lag -> ~1000.
  for (int i = 0; i < 20; ++i) sizer.observe(sizer.budget(), sizer.budget() * 1000);
  const std::size_t base = sizer.budget();
  EXPECT_NEAR(static_cast<double>(base), 1000.0, 200.0);
  // Durability pipeline falls behind: acks trail applies by 0.9 targets.
  // The lag eats the latency budget, so the op budget backs off hard even
  // though per-op apply cost is unchanged.
  for (int i = 0; i < 30; ++i) {
    sizer.observe(sizer.budget(), sizer.budget() * 1000, 900000);
  }
  EXPECT_LT(sizer.budget(), base / 4);
  EXPECT_GE(sizer.budget(), 16u);  // floor respected
  // Pipeline catches up: zero-lag observations decay the EWMA and the
  // budget recovers (2x growth per observation).
  for (int i = 0; i < 30; ++i) sizer.observe(sizer.budget(), sizer.budget() * 1000);
  EXPECT_NEAR(static_cast<double>(sizer.budget()),
              static_cast<double>(base), static_cast<double>(base) / 2.0);
}

TEST(Service, AdaptiveBatchSizerBacksOffOnReplicaLag) {
  service::AdaptiveBatchSizer::Feedback fb;
  fb.max_replica_lag = 100;  // threshold: >100 records behind is unhealthy
  service::AdaptiveBatchSizer sizer(16, 8192, /*target_apply_ns=*/1000000,
                                    fb);
  for (int i = 0; i < 20; ++i) sizer.observe(sizer.budget(), sizer.budget() * 1000);
  const std::size_t base = sizer.budget();
  EXPECT_NEAR(static_cast<double>(base), 1000.0, 200.0);
  // The slowest replica falls 10x past the threshold: the budget backs
  // off (scaled by threshold/lag, floored) so the shipper can catch up.
  for (int i = 0; i < 30; ++i) {
    sizer.observe(sizer.budget(), sizer.budget() * 1000, /*ack_lag_ns=*/0,
                  /*replica_lag=*/1000);
  }
  EXPECT_LT(sizer.budget(), base / 4);
  EXPECT_GE(sizer.budget(), 16u);  // floor respected
  // Replica catches up: lag-free observations decay the EWMA and the
  // budget recovers.
  for (int i = 0; i < 30; ++i) sizer.observe(sizer.budget(), sizer.budget() * 1000);
  EXPECT_NEAR(static_cast<double>(sizer.budget()),
              static_cast<double>(base), static_cast<double>(base) / 2.0);

  // With the threshold unset (default 0) the same lag signal is ignored.
  service::AdaptiveBatchSizer no_fb(16, 8192, 1000000);
  for (int i = 0; i < 20; ++i) no_fb.observe(no_fb.budget(), no_fb.budget() * 1000);
  const std::size_t no_fb_base = no_fb.budget();
  for (int i = 0; i < 30; ++i) {
    no_fb.observe(no_fb.budget(), no_fb.budget() * 1000, 0, 1000);
  }
  EXPECT_NEAR(static_cast<double>(no_fb.budget()),
              static_cast<double>(no_fb_base),
              static_cast<double>(no_fb_base) / 2.0);
}

TEST(Service, AdaptiveBatchSizerBacksOffOnReadP99) {
  service::AdaptiveBatchSizer::Feedback fb;
  fb.target_read_p99_ns = 1000000;  // readers should see p99 <= 1 ms
  service::AdaptiveBatchSizer sizer(16, 8192, /*target_apply_ns=*/1000000,
                                    fb);
  for (int i = 0; i < 20; ++i) sizer.observe(sizer.budget(), sizer.budget() * 1000);
  const std::size_t base = sizer.budget();
  EXPECT_NEAR(static_cast<double>(base), 1000.0, 200.0);
  // Readers are the bottleneck: observed p99 8x over target -> the drain
  // budget backs off so apply holds the write lock in shorter bursts.
  for (int i = 0; i < 30; ++i) {
    sizer.observe(sizer.budget(), sizer.budget() * 1000, /*ack_lag_ns=*/0,
                  /*replica_lag=*/0, /*read_p99_ns=*/8000000);
  }
  EXPECT_LT(sizer.budget(), base / 4);
  EXPECT_GE(sizer.budget(), 16u);  // floor respected
  // Read latency returns under target: the budget recovers.
  for (int i = 0; i < 30; ++i) {
    sizer.observe(sizer.budget(), sizer.budget() * 1000, 0, 0, 500000);
  }
  EXPECT_NEAR(static_cast<double>(sizer.budget()),
              static_cast<double>(base), static_cast<double>(base) / 2.0);
}

TEST(Service, CoalescerSplitsDedupsAndCanonicalizes) {
  std::vector<Update> ops = {
      {{5, 1}, UpdateKind::kInsert}, {{1, 5}, UpdateKind::kInsert},
      {{2, 2}, UpdateKind::kInsert},  // self-loop: dropped
      {{3, 4}, UpdateKind::kInsert}, {{1, 5}, UpdateKind::kDelete},
      {{4, 3}, UpdateKind::kDelete}, {{6, 7}, UpdateKind::kInsert},
  };
  const auto batches = service::coalesce_updates(std::move(ops));
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(batches[0].edges, (std::vector<Edge>{{1, 5}, {3, 4}}));
  EXPECT_EQ(batches[1].kind, UpdateKind::kDelete);
  EXPECT_EQ(batches[1].edges, (std::vector<Edge>{{1, 5}, {3, 4}}));
  EXPECT_EQ(batches[2].kind, UpdateKind::kInsert);
  EXPECT_EQ(batches[2].edges, (std::vector<Edge>{{6, 7}}));
}

}  // namespace
}  // namespace cpkcore
