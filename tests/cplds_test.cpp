// CPLDS tests — the paper's core claims (§4–§6):
//  * quiescent reads equal live levels; estimates stay within the bound;
//  * descriptors are all unmarked after every batch (root-first unmark);
//  * Lemma 6.3: endpoints of an applied batch edge that both move share a
//    dependency DAG;
//  * concurrent linearizable reads only ever observe pre-batch or
//    post-batch levels (never intermediate ones), checked against recorded
//    boundary snapshots;
//  * no new-old inversions within a DAG for reads issued by one thread;
//  * the NonSync baseline *does* observe intermediate levels on cascading
//    workloads (sanity check that the property being tested has teeth);
//  * final levels with concurrent readers match an unperturbed replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <thread>

#include "core/cplds.hpp"
#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "kcore/peel.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

LDSParams small_params(vertex_t n) { return LDSParams::create(n); }

TEST(Cplds, QuiescentReadsMatchLiveLevels) {
  CPLDS ds(200, small_params(200));
  ds.insert_batch(gen::erdos_renyi(200, 800, 1));
  for (vertex_t v = 0; v < 200; ++v) {
    EXPECT_EQ(ds.read_level(v), ds.read_level_nonsync(v));
    EXPECT_DOUBLE_EQ(ds.read_coreness(v), ds.read_coreness_nonsync(v));
    EXPECT_DOUBLE_EQ(ds.read_coreness_sync(v), ds.read_coreness(v));
  }
}

TEST(Cplds, BatchNumberIncrementsPerBatch) {
  CPLDS ds(100, small_params(100));
  EXPECT_EQ(ds.batch_number(), 0u);
  ds.insert_batch({{0, 1}, {1, 2}});
  EXPECT_EQ(ds.batch_number(), 1u);
  ds.delete_batch({{0, 1}});
  EXPECT_EQ(ds.batch_number(), 2u);
}

TEST(Cplds, ApplyDispatchesOnKind) {
  CPLDS ds(100, small_params(100));
  UpdateBatch ins{UpdateKind::kInsert, {{0, 1}, {1, 2}}};
  EXPECT_EQ(ds.apply(ins).size(), 2u);
  UpdateBatch del{UpdateKind::kDelete, {{0, 1}}};
  EXPECT_EQ(ds.apply(del).size(), 1u);
  EXPECT_EQ(ds.num_edges(), 1u);
}

TEST(Cplds, EstimatesWithinBoundAfterBatches) {
  constexpr vertex_t kN = 400;
  CPLDS ds(kN, small_params(kN));
  DynamicGraph mirror(kN);
  auto edges = gen::barabasi_albert(kN, 6, 2);
  auto stream = insertion_stream(edges, 700, 3);
  const double c = (2.0 + 3.0 / 9.0) * 1.2 * 1.2;
  for (const auto& b : stream) {
    ds.insert_batch(b.edges);
    mirror.insert_batch(b.edges);
  }
  const auto exact = exact_coreness(mirror);
  for (vertex_t v = 0; v < kN; ++v) {
    const double est = ds.read_coreness(v);
    const double truth = std::max<double>(1.0, exact[v]);
    EXPECT_LE(std::max(est / truth, truth / est), c) << v;
  }
}

TEST(Cplds, AllDescriptorsUnmarkedAfterBatch) {
  constexpr vertex_t kN = 300;
  CPLDS::Options opt;
  opt.capture_dags = true;
  CPLDS ds(kN, small_params(kN), opt);
  ds.insert_batch(gen::barabasi_albert(kN, 8, 5));
  EXPECT_GT(ds.last_batch_stats().marked_vertices, 0u);
  // Every read must take the live path now (no marked descriptors), and the
  // PLDS must validate.
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_EQ(ds.read_level(v), ds.read_level_nonsync(v));
  }
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
}

TEST(Cplds, MarkedCountMatchesCapturedDags) {
  constexpr vertex_t kN = 200;
  CPLDS::Options opt;
  opt.capture_dags = true;
  CPLDS ds(kN, small_params(kN), opt);
  ds.insert_batch(gen::complete(60));
  const auto& dags = ds.last_batch_dags();
  EXPECT_EQ(dags.size(), ds.last_batch_stats().marked_vertices);
  // Roots must be members of their own DAG set.
  for (const auto& [v, root] : dags) {
    EXPECT_GE(root, v == root ? v : 0u);
  }
}

TEST(Cplds, BatchEdgeEndpointsThatBothMoveShareADag) {
  // Lemma 6.3. Use a clique insertion: plenty of co-moving batch edges.
  constexpr vertex_t kN = 80;
  CPLDS::Options opt;
  opt.capture_dags = true;
  CPLDS ds(kN, small_params(kN), opt);
  auto edges = gen::complete(kN);
  ds.insert_batch(edges);

  std::map<vertex_t, vertex_t> root_of;
  for (const auto& [v, root] : ds.last_batch_dags()) root_of[v] = root;
  std::size_t checked = 0;
  for (const Edge& e : edges) {
    const auto ru = root_of.find(e.u);
    const auto rv = root_of.find(e.v);
    if (ru != root_of.end() && rv != root_of.end()) {
      ASSERT_EQ(ru->second, rv->second)
          << "batch edge (" << e.u << "," << e.v << ") crosses DAGs";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Cplds, DeletionMarksAndStaysConsistent) {
  constexpr vertex_t kN = 150;
  CPLDS::Options opt;
  opt.capture_dags = true;
  CPLDS ds(kN, small_params(kN), opt);
  auto edges = gen::disjoint_cliques(kN, 15);
  ds.insert_batch(edges);
  // Dissolve the cliques almost completely (coreness 14 -> 1): vertices
  // must cascade down many levels, so deletion-phase marking must fire.
  // (Deleting only half the edges legally moves nothing: Invariant 2 is a
  // lazy lower bound.)
  std::vector<Edge> del;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i % 105 != 0) del.push_back(edges[i]);  // keep 1 edge per clique
  }
  ds.delete_batch(del);
  EXPECT_GT(ds.last_batch_stats().marked_vertices, 0u);
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
}

// ---------------------------------------------------------------------------
// Concurrent linearizability checks
// ---------------------------------------------------------------------------

harness::WorkloadResult churn_with_readers(CPLDS& ds,
                                           const std::vector<UpdateBatch>& st,
                                           ReadMode mode,
                                           std::size_t readers = 4) {
  harness::WorkloadConfig cfg;
  cfg.mode = mode;
  cfg.reader_threads = readers;
  cfg.seed = 12345;
  cfg.sample_stride = 1;  // record every unambiguous read
  cfg.record_boundary_levels = true;
  return harness::run_workload(ds, st, cfg);
}

TEST(CpldsConcurrent, ReadsNeverObserveIntermediateLevels) {
  constexpr vertex_t kN = 2000;
  CPLDS ds(kN, small_params(kN));
  auto edges = gen::barabasi_albert(kN, 8, 7);
  auto stream = insertion_stream(edges, 2000, 9);
  auto result = churn_with_readers(ds, stream, ReadMode::kCplds);
  ASSERT_GT(result.samples.size(), 0u);
  const auto violations = harness::count_out_of_window_samples(
      result.samples, result.boundary_levels, result.window_base);
  EXPECT_EQ(violations, 0u)
      << "out of " << result.samples.size() << " sampled reads";
}

TEST(CpldsConcurrent, DagReadsNeverObserveIntermediateLevels) {
  // Algorithm 4 (the descriptor/DAG double-collect) keeps its own
  // linearizability guarantee independent of the published view.
  constexpr vertex_t kN = 2000;
  CPLDS ds(kN, small_params(kN));
  auto edges = gen::barabasi_albert(kN, 8, 7);
  auto stream = insertion_stream(edges, 2000, 9);
  auto result = churn_with_readers(ds, stream, ReadMode::kCpldsDag);
  ASSERT_GT(result.samples.size(), 0u);
  const auto violations = harness::count_out_of_window_samples(
      result.samples, result.boundary_levels, result.window_base);
  EXPECT_EQ(violations, 0u)
      << "out of " << result.samples.size() << " sampled reads";
}

TEST(CpldsConcurrent, DeletionReadsNeverObserveIntermediateLevels) {
  constexpr vertex_t kN = 2000;
  CPLDS ds(kN, small_params(kN));
  auto edges = gen::barabasi_albert(kN, 8, 17);
  ds.insert_batch(edges);
  auto stream = deletion_stream(edges, 2000, 19);
  auto result = churn_with_readers(ds, stream, ReadMode::kCplds);
  ASSERT_GT(result.samples.size(), 0u);
  const auto violations = harness::count_out_of_window_samples(
      result.samples, result.boundary_levels, result.window_base);
  EXPECT_EQ(violations, 0u);
}

TEST(CpldsConcurrent, SyncReadsAlsoLinearizable) {
  constexpr vertex_t kN = 1000;
  CPLDS ds(kN, small_params(kN));
  auto stream = insertion_stream(gen::barabasi_albert(kN, 6, 27), 1500, 29);
  auto result = churn_with_readers(ds, stream, ReadMode::kSyncReads, 2);
  const auto violations = harness::count_out_of_window_samples(
      result.samples, result.boundary_levels, result.window_base);
  EXPECT_EQ(violations, 0u);
}

TEST(CpldsConcurrent, NonSyncIsStaleButNeverTorn) {
  // Since the wait-free read path landed, NonSync routes through the
  // published view: a read may lag by the in-flight batch but never
  // observes an intermediate level.
  constexpr vertex_t kN = 3000;
  CPLDS ds(kN, small_params(kN));
  auto edges = gen::barabasi_albert(kN, 16, 100);
  auto stream = insertion_stream(edges, 4000, 31);
  auto result = churn_with_readers(ds, stream, ReadMode::kNonSync, 8);
  ASSERT_GT(result.samples.size(), 0u);
  const auto violations = harness::count_out_of_window_samples(
      result.samples, result.boundary_levels, result.window_base);
  EXPECT_EQ(violations, 0u)
      << "out of " << result.samples.size() << " sampled reads";
}

TEST(CpldsConcurrent, RawLiveReadsObserveIntermediateLevelsOnCascades) {
  // Sanity check that the checker can fail: a long chain of dependent moves
  // makes intermediate levels visible to a reader sampling the raw live
  // level array (the historical torn NonSync behavior, reachable only via
  // the harness's raw_live_reads negative control now that every ReadMode
  // is tear-free). Inherently probabilistic, so retry a few times.
  constexpr vertex_t kN = 3000;
  std::size_t violations = 0;
  for (int attempt = 0; attempt < 5 && violations == 0; ++attempt) {
    CPLDS ds(kN, small_params(kN));
    auto edges = gen::barabasi_albert(kN, 16, 100 + attempt);
    auto stream = insertion_stream(edges, 4000, 31 + attempt);
    harness::WorkloadConfig cfg;
    cfg.reader_threads = 8;
    cfg.seed = 12345 + static_cast<std::uint64_t>(attempt);
    cfg.sample_stride = 1;
    cfg.record_boundary_levels = true;
    cfg.raw_live_reads = true;
    auto result = harness::run_workload(ds, stream, cfg);
    violations = harness::count_out_of_window_samples(
        result.samples, result.boundary_levels, result.window_base);
  }
  EXPECT_GT(violations, 0u)
      << "raw live reads never observed an intermediate level; the "
         "linearizability checker may be vacuous";
}

TEST(CpldsConcurrent, FinalLevelsMatchUnperturbedReplay) {
  constexpr vertex_t kN = 1500;
  auto edges = gen::barabasi_albert(kN, 6, 47);
  auto stream = insertion_stream(edges, 1000, 49);

  CPLDS with_readers(kN, small_params(kN));
  churn_with_readers(with_readers, stream, ReadMode::kCplds, 6);

  CPLDS replay(kN, small_params(kN));
  for (const auto& b : stream) replay.insert_batch(b.edges);

  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(with_readers.read_level(v), replay.read_level(v)) << v;
  }
}

TEST(CpldsConcurrent, NoNewOldInversionWithinADagForOneThread) {
  // Reads issued sequentially by one thread: once it has seen the NEW level
  // of any vertex in DAG D (in batch window c), it must never see the OLD
  // level of another vertex of D within the same window.
  constexpr vertex_t kN = 1200;
  CPLDS::Options opt;
  opt.capture_dags = true;
  CPLDS ds(kN, small_params(kN), opt);
  auto edges = gen::barabasi_albert(kN, 12, 53);
  auto stream = insertion_stream(edges, edges.size(), 55);  // one big batch
  ASSERT_EQ(stream.size(), 1u);

  struct Obs {
    vertex_t v;
    level_t level;
    std::uint64_t window;
  };
  std::vector<Obs> observations;
  std::vector<level_t> before(kN);
  for (vertex_t v = 0; v < kN; ++v) before[v] = ds.read_level_nonsync(v);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Xoshiro256 rng(57);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto v = static_cast<vertex_t>(rng.next_below(kN));
      const std::uint64_t b1 = ds.batch_number();
      const level_t l = ds.read_level_dag(v);
      const std::uint64_t b2 = ds.batch_number();
      if (b1 == b2) observations.push_back({v, l, b1});
    }
  });
  ds.insert_batch(stream[0].edges);
  stop.store(true);
  reader.join();

  std::map<vertex_t, vertex_t> root_of;
  for (const auto& [v, root] : ds.last_batch_dags()) root_of[v] = root;
  std::vector<level_t> after(kN);
  for (vertex_t v = 0; v < kN; ++v) after[v] = ds.read_level_nonsync(v);

  // For each DAG, track whether a NEW observation has occurred; any OLD
  // observation afterwards (same window) is an inversion.
  std::map<vertex_t, bool> dag_saw_new;
  std::size_t moved_observations = 0;
  for (const Obs& o : observations) {
    if (o.window != 1) continue;  // only the batch's window
    const auto it = root_of.find(o.v);
    if (it == root_of.end()) continue;  // vertex did not move
    if (before[o.v] == after[o.v]) continue;
    ++moved_observations;
    const vertex_t dag = it->second;
    const bool is_new = o.level == after[o.v];
    const bool is_old = o.level == before[o.v];
    ASSERT_TRUE(is_new || is_old) << "intermediate level observed";
    if (is_new) {
      dag_saw_new[dag] = true;
    } else if (dag_saw_new.contains(dag) && dag_saw_new[dag]) {
      FAIL() << "new-old inversion in DAG rooted at " << dag << ": vertex "
             << o.v << " returned old level " << o.level
             << " after the DAG was already observed at a new level";
    }
  }
  // The batch is large; we expect at least some observations of movers.
  EXPECT_GT(moved_observations, 0u);
}

TEST(Cplds, AblationOptionsStillCorrect) {
  constexpr vertex_t kN = 800;
  for (const bool compression : {true, false}) {
    for (const bool early_exit : {true, false}) {
      CPLDS::Options opt;
      opt.path_compression = compression;
      opt.early_exit = early_exit;
      CPLDS ds(kN, small_params(kN), opt);
      auto stream =
          insertion_stream(gen::barabasi_albert(kN, 6, 61), 1200, 63);
      auto result = churn_with_readers(ds, stream, ReadMode::kCpldsDag, 3);
      const auto violations = harness::count_out_of_window_samples(
          result.samples, result.boundary_levels, result.window_base);
      EXPECT_EQ(violations, 0u)
          << "compression=" << compression << " early_exit=" << early_exit;
    }
  }
}

TEST(Cplds, DeleteVerticesIsolatesThem) {
  constexpr vertex_t kN = 300;
  CPLDS ds(kN, small_params(kN));
  ds.insert_batch(gen::erdos_renyi(kN, 1500, 71));
  const std::size_t before = ds.num_edges();
  const std::vector<vertex_t> victims = {3, 50, 51, 200};
  std::size_t incident = 0;
  for (vertex_t v : victims) incident += ds.plds().degree(v);
  auto removed = ds.delete_vertices(victims);
  EXPECT_GT(removed.size(), 0u);
  EXPECT_LE(removed.size(), incident);  // shared edges dedup
  EXPECT_EQ(ds.num_edges(), before - removed.size());
  for (vertex_t v : victims) {
    EXPECT_EQ(ds.plds().degree(v), 0u) << v;
    EXPECT_DOUBLE_EQ(ds.read_coreness(v), 1.0) << v;
  }
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
  // The ids stay usable: re-insert edges on a deleted vertex.
  ds.insert_batch({{3, 7}, {3, 9}});
  EXPECT_EQ(ds.plds().degree(3), 2u);
}

TEST(Cplds, ReadModeHelpers) {
  EXPECT_EQ(to_string(ReadMode::kCplds), "CPLDS");
  EXPECT_EQ(to_string(ReadMode::kCpldsDag), "CPLDS-DAG");
  EXPECT_EQ(to_string(ReadMode::kSyncReads), "SyncReads");
  EXPECT_EQ(to_string(ReadMode::kNonSync), "NonSync");
  EXPECT_EQ(parse_read_mode("cplds"), ReadMode::kCplds);
  EXPECT_EQ(parse_read_mode("dag"), ReadMode::kCpldsDag);
  EXPECT_EQ(parse_read_mode("cplds-dag"), ReadMode::kCpldsDag);
  EXPECT_EQ(parse_read_mode("sync"), ReadMode::kSyncReads);
  EXPECT_EQ(parse_read_mode("NonSync"), ReadMode::kNonSync);
  EXPECT_THROW(static_cast<void>(parse_read_mode("bogus")),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpkcore
