// Tests for LDS parameters and the sequential level data structure:
// threshold math, invariant maintenance under random update sequences, and
// the (2+epsilon) coreness-approximation property against exact peeling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "kcore/peel.hpp"
#include "lds/params.hpp"
#include "lds/sequential_lds.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

TEST(LdsParams, StructureSizes) {
  auto p = LDSParams::create(1000, 0.2, 9.0);
  EXPECT_GT(p.num_groups(), 0);
  EXPECT_EQ(p.levels_per_group() % 4, 0);
  EXPECT_EQ(p.num_levels(), p.num_groups() * p.levels_per_group());
  // Enough groups to cover degree n: (1+delta)^{G-2} >= n.
  EXPECT_GE(std::pow(1.2, p.num_groups() - 1), 1000.0);
}

TEST(LdsParams, ThresholdsGrowGeometrically) {
  auto p = LDSParams::create(10000, 0.2, 9.0);
  for (int g = 0; g + 1 < p.num_groups(); ++g) {
    EXPECT_NEAR(p.lower_threshold(g + 1) / p.lower_threshold(g), 1.2, 1e-9);
    EXPECT_NEAR(p.upper_threshold(g) / p.lower_threshold(g), 2.0 + 3.0 / 9.0,
                1e-9);
  }
}

TEST(LdsParams, GroupOfLevel) {
  auto p = LDSParams::create(1000);
  EXPECT_EQ(p.group_of_level(0), 0);
  EXPECT_EQ(p.group_of_level(p.levels_per_group() - 1), 0);
  EXPECT_EQ(p.group_of_level(p.levels_per_group()), 1);
}

TEST(LdsParams, EstimateMonotoneInLevel) {
  auto p = LDSParams::create(100000);
  double prev = 0;
  for (int l = 0; l < p.num_levels(); ++l) {
    const double e = p.coreness_estimate(l);
    EXPECT_GE(e, prev);
    prev = e;
  }
  EXPECT_DOUBLE_EQ(p.coreness_estimate(0), 1.0);
}

TEST(LdsParams, EstimateFollowsDefinition31) {
  auto p = LDSParams::create(5000, 0.2, 9.0);
  const int lpg = p.levels_per_group();
  for (int l : {0, 1, lpg - 1, lpg, 2 * lpg - 1, 2 * lpg, 3 * lpg + 5}) {
    const int idx = std::max((l + 1) / lpg - 1, 0);
    EXPECT_DOUBLE_EQ(p.coreness_estimate(l), std::pow(1.2, idx)) << l;
  }
}

TEST(LdsParams, LevelsPerGroupCapApplies) {
  auto theory = LDSParams::create(100000, 0.2, 9.0, 0);
  auto capped = LDSParams::create(100000, 0.2, 9.0, 20);
  EXPECT_GT(theory.levels_per_group(), 20);
  EXPECT_EQ(capped.levels_per_group(), 20);
  EXPECT_LT(capped.num_levels(), theory.num_levels());
}

TEST(LdsParams, Inv1TopLevelAlwaysOk) {
  auto p = LDSParams::create(1000);
  EXPECT_TRUE(p.inv1_ok(p.num_levels() - 1, 1u << 30));
  EXPECT_TRUE(p.inv2_ok(0, 0));
}

TEST(SequentialLds, EmptyGraphAllAtLevelZero) {
  SequentialLDS lds(10, LDSParams::create(10));
  for (vertex_t v = 0; v < 10; ++v) EXPECT_EQ(lds.level(v), 0);
  EXPECT_TRUE(lds.invariants_hold());
}

TEST(SequentialLds, RejectsBadUpdates) {
  SequentialLDS lds(10, LDSParams::create(10));
  EXPECT_FALSE(lds.insert_edge({3, 3}));
  EXPECT_TRUE(lds.insert_edge({1, 2}));
  EXPECT_FALSE(lds.insert_edge({2, 1}));
  EXPECT_FALSE(lds.delete_edge({4, 5}));
  EXPECT_TRUE(lds.delete_edge({1, 2}));
}

TEST(SequentialLds, InvariantsHoldDuringRandomChurn) {
  constexpr vertex_t kN = 120;
  SequentialLDS lds(kN, LDSParams::create(kN));
  Xoshiro256 rng(31);
  std::vector<Edge> present;
  for (int step = 0; step < 1500; ++step) {
    if (present.empty() || rng.next_below(3) != 0) {
      const Edge e{static_cast<vertex_t>(rng.next_below(kN)),
                   static_cast<vertex_t>(rng.next_below(kN))};
      if (lds.insert_edge(e)) present.push_back(e.canonical());
    } else {
      const std::size_t i = rng.next_below(present.size());
      EXPECT_TRUE(lds.delete_edge(present[i]));
      present[i] = present.back();
      present.pop_back();
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(lds.invariants_hold()) << "step " << step;
    }
  }
  EXPECT_TRUE(lds.invariants_hold());
}

/// The paper's Lemma 3.2 yields: estimate/k in [1/c, c] where
/// c = (2 + 3/lambda)(1 + delta)^2 up to rounding at group boundaries. We
/// assert the practical bound used in the paper's plots: ratio <= c for
/// k >= 1 vertices (with one (1+delta) slack for discretization).
void expect_estimates_within_bound(const SequentialLDS& lds) {
  const auto exact = exact_coreness(lds.graph());
  const double c =
      (2.0 + 3.0 / lds.params().lambda()) * std::pow(1 + lds.params().delta(), 2);
  for (vertex_t v = 0; v < lds.num_vertices(); ++v) {
    const double est = lds.coreness_estimate(v);
    const double truth = std::max<double>(1.0, exact[v]);
    const double ratio = std::max(est / truth, truth / est);
    EXPECT_LE(ratio, c) << "vertex " << v << " est " << est << " true "
                        << truth;
  }
}

class SeqLdsApprox
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SeqLdsApprox, EstimateWithinTheoreticalFactor) {
  const auto [family, seed] = GetParam();
  vertex_t n = 0;
  std::vector<Edge> edges;
  switch (family) {
    case 0:
      n = 150;
      edges = gen::erdos_renyi(n, 700, seed);
      break;
    case 1:
      n = 150;
      edges = gen::barabasi_albert(n, 4, seed);
      break;
    case 2:
      n = 144;
      edges = gen::grid_2d(12, 12, true);
      break;
    case 3:
      n = 60;
      edges = gen::disjoint_cliques(n, 10);
      break;
    default:
      FAIL();
  }
  SequentialLDS lds(n, LDSParams::create(n));
  for (const Edge& e : edges) lds.insert_edge(e);
  ASSERT_TRUE(lds.invariants_hold());
  expect_estimates_within_bound(lds);

  // Delete half the edges and re-check.
  for (std::size_t i = 0; i < edges.size(); i += 2) {
    lds.delete_edge(edges[i]);
  }
  ASSERT_TRUE(lds.invariants_hold());
  expect_estimates_within_bound(lds);
}

const char* const kLdsFamilyNames[] = {"er", "ba", "grid", "cliques"};

std::string lds_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  return std::string(kLdsFamilyNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Families, SeqLdsApprox,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(11ull, 22ull)),
    lds_case_name);

TEST(SequentialLds, CliqueLandsInHighGroup) {
  constexpr vertex_t kN = 40;
  SequentialLDS lds(kN, LDSParams::create(kN));
  for (const Edge& e : gen::complete(kN)) lds.insert_edge(e);
  // Every vertex has coreness 39; estimates must be > 39 / 2.8.
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_GT(lds.coreness_estimate(v), 39.0 / 2.8);
  }
}

TEST(SequentialLds, DeleteAllEdgesReturnsEstimateToOne) {
  constexpr vertex_t kN = 30;
  SequentialLDS lds(kN, LDSParams::create(kN));
  auto edges = gen::erdos_renyi(kN, 120, 8);
  for (const Edge& e : edges) lds.insert_edge(e);
  for (const Edge& e : edges) lds.delete_edge(e);
  EXPECT_TRUE(lds.invariants_hold());
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(lds.coreness_estimate(v), 1.0);
  }
}

}  // namespace
}  // namespace cpkcore
