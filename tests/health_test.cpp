// Health-plane tests: the structured event journal (ring wraparound,
// per-key rate limiting with suppressed-count carry, subscribers), the
// stall watchdog (idle-vs-busy semantics, the 3-heartbeat-interval
// detection bound — deterministic via manual check_now() and end-to-end
// via an injected apply-thread stall on a live KCoreService), the
// Router's stalled-replica read gate, and the embedded HTTP exporter
// (/metrics Prometheus scrape, /healthz flip to 503 under a stall,
// /events journal tail).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/log_ship.hpp"
#include "cluster/partition.hpp"
#include "cluster/replica.hpp"
#include "cluster/router.hpp"
#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "service/kcore_service.hpp"

namespace cpkcore {
namespace {

using cluster::LogShipper;
using cluster::Partitioner;
using cluster::Replica;
using cluster::Router;
using obs::EventLog;
using obs::EventLogOptions;
using obs::HealthMonitor;
using obs::HealthMonitorOptions;
using obs::HealthState;
using obs::HttpExporter;
using obs::HttpExporterOptions;
using obs::MetricsRegistry;
using obs::Severity;
using service::KCoreService;
using service::ServiceConfig;

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------------

TEST(EventLogTest, RingWraparoundKeepsNewestInOrder) {
  EventLogOptions opts;
  opts.capacity = 4;
  opts.rate_limit_burst = 1000;  // rate limiting off for this test
  EventLog log(opts);
  for (int i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    log.emit(Severity::kInfo, "test", std::move(name));
  }
  const auto events = log.tail(100);
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, newest last, consecutive seq.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  const EventLog::Stats st = log.stats();
  EXPECT_EQ(st.emitted, 10u);
  EXPECT_EQ(st.overwritten, 6u);
  EXPECT_EQ(st.suppressed, 0u);
}

TEST(EventLogTest, RateLimitSuppressesAndCarriesCount) {
  EventLogOptions opts;
  opts.capacity = 64;
  opts.rate_limit_window_ms = 50;
  opts.rate_limit_burst = 2;
  EventLog log(opts);
  // 5 emits of one (component, name) key inside one window: 2 admitted.
  for (int i = 0; i < 5; ++i) {
    log.emit(Severity::kWarn, "svc", "hot", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(log.tail(100).size(), 2u);
  EXPECT_EQ(log.stats().suppressed, 3u);
  // A different key has its own budget.
  log.emit(Severity::kInfo, "svc", "other");
  EXPECT_EQ(log.tail(100).size(), 3u);
  // Next window: the first admitted event for the throttled key carries
  // the suppressed count, so the journal never lies by omission.
  sleep_ms(75);
  log.emit(Severity::kWarn, "svc", "hot");
  const auto events = log.tail(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "hot");
  bool found = false;
  for (const auto& [k, v] : events[0].fields) {
    if (k == "suppressed") {
      EXPECT_EQ(v, "3");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EventLogTest, SubscribersSeeAdmittedEvents) {
  EventLog log(EventLogOptions{});
  std::vector<std::string> seen;
  const std::uint64_t id =
      log.subscribe([&](const obs::Event& e) { seen.push_back(e.name); });
  log.emit(Severity::kInfo, "c", "first");
  log.unsubscribe(id);
  log.emit(Severity::kInfo, "c", "second");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
}

TEST(EventLogTest, TailJsonIsWellFormedArray) {
  EventLog log(EventLogOptions{});
  log.emit(Severity::kError, "c", "boom", {{"detail", "a \"quoted\" str"}});
  const std::string json = log.tail_json(10);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"event\":\"boom\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

TEST(HealthMonitorTest, DeterministicStallAndRecovery) {
  EventLog events(EventLogOptions{});
  HealthMonitorOptions opts;
  opts.heartbeat_interval_ms = 40;
  opts.start_thread = false;  // drive check_now() by hand
  opts.events = &events;
  HealthMonitor monitor(opts);
  auto* c = monitor.register_thread("worker", /*partition=*/0);

  c->beat();
  auto rollup = monitor.check_now();
  EXPECT_EQ(rollup.overall, HealthState::kHealthy);

  // A parked (idle) thread stays healthy no matter the beat age.
  c->idle();
  sleep_ms(130);
  rollup = monitor.check_now();
  EXPECT_EQ(rollup.overall, HealthState::kHealthy);
  EXPECT_FALSE(rollup.any_stalled());

  // A busy beat aging past stalled_after_intervals (2 x 40ms) stalls —
  // within the 3-interval detection bound by construction: we check at
  // 2.5 intervals past the beat.
  c->busy();
  sleep_ms(100);
  rollup = monitor.check_now();
  EXPECT_EQ(rollup.overall, HealthState::kStalled);
  EXPECT_TRUE(rollup.any_stalled());
  EXPECT_EQ(c->state(), HealthState::kStalled);
  ASSERT_EQ(rollup.partitions.size(), 1u);
  EXPECT_EQ(rollup.partitions[0], HealthState::kStalled);

  // Recovery: a fresh beat re-classifies healthy.
  c->beat();
  rollup = monitor.check_now();
  EXPECT_EQ(rollup.overall, HealthState::kHealthy);

  // Transitions (-> stalled, -> healthy) landed in the journal.
  const std::string json = events.tail_json(100);
  EXPECT_NE(json.find("health_transition"), std::string::npos);
  EXPECT_NE(json.find("\"to\":\"stalled\""), std::string::npos);
  EXPECT_NE(json.find("\"to\":\"healthy\""), std::string::npos);
}

TEST(HealthMonitorTest, ProbeThresholdsClassify) {
  HealthMonitorOptions opts;
  opts.start_thread = false;
  HealthMonitor monitor(opts);
  double value = 0.0;
  auto* probe = monitor.register_probe(
      "lag", /*partition=*/-1, [&] { return value; },
      /*degraded_at=*/10.0, /*stalled_at=*/100.0);
  EXPECT_EQ(monitor.check_now().overall, HealthState::kHealthy);
  value = 50.0;
  EXPECT_EQ(monitor.check_now().overall, HealthState::kDegraded);
  value = 200.0;
  EXPECT_EQ(monitor.check_now().overall, HealthState::kStalled);
  value = 0.0;
  EXPECT_EQ(monitor.check_now().overall, HealthState::kHealthy);
  monitor.unregister(probe);
  // Tombstoned: excluded from rollups, pointer still readable.
  value = 200.0;
  EXPECT_EQ(monitor.check_now().overall, HealthState::kHealthy);
  EXPECT_FALSE(probe->active());
}

// The end-to-end bound the ISSUE pins: an injected apply-thread stall on a
// live service is flagged by the watchdog thread within 3 heartbeat
// intervals of the last beat.
TEST(HealthMonitorTest, InjectedApplyStallDetectedWithinThreeIntervals) {
  EventLog events(EventLogOptions{});
  HealthMonitorOptions opts;
  opts.heartbeat_interval_ms = 300;  // generous: absorbs scheduler jitter
  opts.events = &events;
  HealthMonitor monitor(opts);

  ServiceConfig cfg;
  cfg.num_vertices = 100;
  cfg.health = &monitor;
  KCoreService svc(cfg);
  svc.submit_insert(1, 2);
  svc.drain();
  EXPECT_EQ(monitor.check_now().overall, HealthState::kHealthy);

  // Inject a 4-interval busy sleep into the next cycle and start the
  // clock at the submit that triggers it (the cycle beats, then sleeps).
  svc.debug_inject_apply_stall(1200);
  const auto t0 = std::chrono::steady_clock::now();
  svc.submit_insert(2, 3);  // open loop: the ack rides out the stall
  bool stalled = false;
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(900)) {  // the 3-interval bound
    if (monitor.rollup().overall == HealthState::kStalled) {
      stalled = true;
      break;
    }
    sleep_ms(10);
  }
  EXPECT_TRUE(stalled) << "stall not detected within 3 heartbeat intervals";

  // The stall clears once the injected sleep ends and the cycle acks.
  svc.drain();
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    recovered = monitor.check_now().overall == HealthState::kHealthy;
    if (!recovered) sleep_ms(10);
  }
  EXPECT_TRUE(recovered);
  // The service emits to the process-wide journal; the monitor's
  // transition events went to the private one wired via options.
  EXPECT_NE(EventLog::instance().tail_json(200).find("apply_stall_injected"),
            std::string::npos);
  EXPECT_NE(events.tail_json(200).find("\"to\":\"stalled\""),
            std::string::npos);
  svc.shutdown();
}

// ---------------------------------------------------------------------------
// Router x health: stalled replicas stop serving reads
// ---------------------------------------------------------------------------

TEST(RouterHealthTest, StalledReplicaIsSkipped) {
  HealthMonitorOptions opts;
  opts.heartbeat_interval_ms = 40;
  opts.start_thread = false;
  HealthMonitor monitor(opts);

  ServiceConfig cfg;
  cfg.num_vertices = 64;
  KCoreService primary(cfg);
  LogShipper shipper(primary);
  ServiceConfig like = cfg;
  Replica r0(like);
  Replica r1(like);
  r0.register_health(monitor, "replica0", 0);
  r1.register_health(monitor, "replica1", 0);
  r0.start(shipper);
  r1.start(shipper);
  for (vertex_t v = 0; v + 1 < 10; ++v) {
    primary.submit_insert(v, v + 1);
  }
  primary.drain();
  r0.wait_for_lsn(primary.applied_lsn());
  r1.wait_for_lsn(primary.applied_lsn());

  Router::PartitionBackends part;
  part.primary = &primary;
  part.replicas = {&r0, &r1};
  part.replica_health = {r0.health_component(), r1.health_component()};
  std::vector<Router::PartitionBackends> parts;
  parts.push_back(std::move(part));
  Router router(Partitioner(1), std::move(parts));

  // Both healthy: reads spread over both replicas.
  for (int i = 0; i < 8; ++i) (void)router.read_coreness(1);
  EXPECT_EQ(router.stats().reads_rerouted_unhealthy, 0u);

  // Force replica 0 stalled: stamp its heartbeat busy, age it past the
  // threshold, re-evaluate. The stamp simulates the apply thread wedging
  // mid-record — but that thread may not have parked yet after
  // wait_for_lsn, and its final idle() on the way into the cv wait would
  // overwrite the stamp. Retry until the stamp survives the aging window;
  // once the thread is parked it writes nothing more, so this converges.
  bool stalled = false;
  for (int attempt = 0; attempt < 50 && !stalled; ++attempt) {
    const_cast<obs::HealthComponent*>(r0.health_component())->busy();
    sleep_ms(100);
    stalled = monitor.check_now().overall == HealthState::kStalled;
  }
  ASSERT_TRUE(stalled) << "busy stamp never survived the aging window";

  const auto before = router.stats();
  for (int i = 0; i < 8; ++i) {
    const auto result = router.read_coreness(1);
    ASSERT_EQ(result.parts.size(), 1u);
    EXPECT_NE(result.parts[0].backend, 0) << "stalled replica served a read";
  }
  const auto after = router.stats();
  EXPECT_GT(after.reads_rerouted_unhealthy,
            before.reads_rerouted_unhealthy);
  // All 8 reads landed on replica 1 (or, pathologically, the primary —
  // but never replica 0).
  EXPECT_EQ(after.partitions[0].replica_reads[0],
            before.partitions[0].replica_reads[0]);

  r0.stop();
  r1.stop();
  shipper.detach();
  primary.shutdown();
}

// ---------------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------------

/// Minimal HTTP/1.0 GET: returns the full response (headers + body).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET ";
  req += target;
  req += " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpExporterTest, EndpointsServeMetricsHealthAndEvents) {
  MetricsRegistry registry;
  const std::uint64_t src = registry.add_source(
      "demo.", [](obs::MetricsSink& sink) { sink.counter("ticks", 42.0); });
  EventLog events(EventLogOptions{});
  events.emit(Severity::kInfo, "test", "hello_event");
  HealthMonitorOptions hopts;
  hopts.heartbeat_interval_ms = 40;
  hopts.start_thread = false;
  HealthMonitor monitor(hopts);
  auto* worker = monitor.register_thread("worker");
  worker->beat();

  HttpExporterOptions opts;
  opts.port = 0;  // ephemeral
  opts.registry = &registry;
  opts.events = &events;
  opts.health = &monitor;
  HttpExporter exporter(opts);
  ASSERT_GT(exporter.port(), 0);

  // /metrics: a Prometheus scrape with our counter in it.
  std::string resp = http_get(exporter.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("text/plain"), std::string::npos);
  EXPECT_NE(resp.find("demo_ticks_total 42"), std::string::npos);

  // /vars: the JSON snapshot.
  resp = http_get(exporter.port(), "/vars");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("\"demo.ticks\":42"), std::string::npos);

  // /healthz healthy: 200 + ok.
  resp = http_get(exporter.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos);

  // /events: the journal tail as a JSON array.
  resp = http_get(exporter.port(), "/events?n=10");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("hello_event"), std::string::npos);

  // Stall the worker -> /healthz flips 503 and names the state.
  worker->busy();
  sleep_ms(100);
  resp = http_get(exporter.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(resp.find("\"status\":\"stalled\""), std::string::npos);

  // Recovery flips it back.
  worker->beat();
  resp = http_get(exporter.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);

  // Unknown path: 404. Bad request: counted.
  resp = http_get(exporter.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_GE(exporter.stats().requests, 7u);
  registry.remove_source(src);
}

}  // namespace
}  // namespace cpkcore
