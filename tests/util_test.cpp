// Unit tests for src/util: RNG, flat hash containers, latency histogram,
// cache-line padding, and the core Edge type.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "util/cacheline.hpp"
#include "util/flat_map.hpp"
#include "util/flat_set.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace cpkcore {
namespace {

TEST(Edge, CanonicalOrdersEndpoints) {
  EXPECT_EQ((Edge{3, 7}.canonical()), (Edge{3, 7}));
  EXPECT_EQ((Edge{7, 3}.canonical()), (Edge{3, 7}));
  EXPECT_TRUE((Edge{5, 5}.is_self_loop()));
  EXPECT_FALSE((Edge{5, 6}.is_self_loop()));
}

TEST(Edge, KeyIsInjectiveOnCanonicalEdges) {
  std::set<std::uint64_t> keys;
  for (vertex_t u = 0; u < 30; ++u) {
    for (vertex_t v = u + 1; v < 30; ++v) {
      keys.insert(Edge{u, v}.key());
    }
  }
  EXPECT_EQ(keys.size(), 30u * 29 / 2);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, 1048576ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRangeRoughlyUniformly) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 16;
  std::vector<int> hits(kBound, 0);
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++hits[rng.next_below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_GT(hits[b], kDraws / static_cast<int>(kBound) / 2);
    EXPECT_LT(hits[b], kDraws * 2 / static_cast<int>(kBound));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(FlatSet, InsertContainsErase) {
  IntSet<vertex_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, DefaultConstructedHoldsNoAllocation) {
  IntSet<vertex_t> s;
  EXPECT_EQ(s.capacity(), 0u);
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.erase(3));
}

TEST(FlatSet, MatchesStdUnorderedSetUnderRandomOps) {
  Xoshiro256 rng(123);
  IntSet<vertex_t> mine;
  std::unordered_set<vertex_t> ref;
  for (int i = 0; i < 50000; ++i) {
    const auto key = static_cast<vertex_t>(rng.next_below(500));
    if (rng.next_below(3) == 0) {
      EXPECT_EQ(mine.erase(key), ref.erase(key) > 0);
    } else {
      EXPECT_EQ(mine.insert(key), ref.insert(key).second);
    }
    if (i % 1000 == 0) {
      ASSERT_EQ(mine.size(), ref.size());
    }
  }
  EXPECT_EQ(mine.size(), ref.size());
  std::size_t seen = 0;
  mine.for_each([&](vertex_t k) {
    EXPECT_TRUE(ref.contains(k));
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatSet, ToVectorReturnsAllElements) {
  IntSet<vertex_t> s;
  for (vertex_t v = 0; v < 100; ++v) s.insert(v * 3);
  auto vec = s.to_vector();
  std::sort(vec.begin(), vec.end());
  ASSERT_EQ(vec.size(), 100u);
  for (vertex_t i = 0; i < 100; ++i) EXPECT_EQ(vec[i], i * 3);
}

TEST(FlatSet, BackwardShiftPreservesLookupAfterHeavyChurn) {
  IntSet<vertex_t> s;
  // Force many collisions with a small key range, then verify integrity.
  for (int round = 0; round < 50; ++round) {
    for (vertex_t v = 0; v < 64; ++v) s.insert(v);
    for (vertex_t v = 0; v < 64; v += 2) s.erase(v);
    for (vertex_t v = 0; v < 64; ++v) {
      EXPECT_EQ(s.contains(v), v % 2 == 1) << v;
    }
    for (vertex_t v = 1; v < 64; v += 2) s.erase(v);
    EXPECT_TRUE(s.empty());
  }
}

TEST(FlatMap, InsertFindEraseBracket) {
  IntMap<vertex_t, int> m;
  EXPECT_TRUE(m.insert_or_assign(4, 40));
  EXPECT_FALSE(m.insert_or_assign(4, 44));
  ASSERT_NE(m.find(4), nullptr);
  EXPECT_EQ(*m.find(4), 44);
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 50;
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_TRUE(m.erase(4));
  EXPECT_EQ(m.find(4), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, RandomOpsMatchReference) {
  Xoshiro256 rng(99);
  IntMap<vertex_t, vertex_t> mine;
  std::unordered_set<vertex_t> keys;
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<vertex_t>(rng.next_below(300));
    if (rng.next_below(4) == 0) {
      mine.erase(k);
      keys.erase(k);
    } else {
      mine.insert_or_assign(k, k + 1);
      keys.insert(k);
    }
  }
  EXPECT_EQ(mine.size(), keys.size());
  for (vertex_t k : keys) {
    ASSERT_NE(mine.find(k), nullptr);
    EXPECT_EQ(*mine.find(k), k + 1);
  }
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_ns(0.5), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 31u);
  EXPECT_EQ(h.quantile_ns(0.0), 0u);
  EXPECT_EQ(h.quantile_ns(1.0), 31u);
}

TEST(LatencyHistogram, QuantilesWithinBucketError) {
  LatencyHistogram h;
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = 100 + rng.next_below(1000000);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99, 0.9999}) {
    const auto exact =
        vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    const auto approx = h.quantile_ns(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max_ns(), 1000000u);
  EXPECT_EQ(a.min_ns(), 10u);
  EXPECT_LT(a.quantile_ns(0.25), 100u);
  EXPECT_GT(a.quantile_ns(0.75), 100000u);
}

TEST(LatencyHistogram, MeanMatchesSum) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 50.5);
}

TEST(Padded, OccupiesFullCacheLines) {
  static_assert(sizeof(Padded<int>) >= kCacheLine);
  static_assert(alignof(Padded<int>) >= kCacheLine);
  Padded<int> p(7);
  EXPECT_EQ(*p, 7);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.elapsed_ns(), 0u);
  EXPECT_GE(t.elapsed_s(), 0.0);
}

TEST(Hash64, MixesBits) {
  // Adjacent inputs should produce very different outputs.
  int differing_bits = 0;
  const std::uint64_t a = hash64(1);
  const std::uint64_t b = hash64(2);
  differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 16);
}

}  // namespace
}  // namespace cpkcore
