// End-to-end integration: every registry dataset through mixed workloads
// with concurrent readers, cross-checked against the exact oracle and the
// sequential LDS; IO round-trips feeding the CPLDS; and full pipeline runs
// (generate -> stream -> CPLDS + mirror -> accuracy).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/datasets.hpp"
#include "harness/driver.hpp"
#include "kcore/parallel_peel.hpp"
#include "kcore/peel.hpp"
#include "lds/sequential_lds.hpp"

namespace cpkcore {
namespace {

double bound(const LDSParams& p) {
  return (2.0 + 3.0 / p.lambda()) * std::pow(1.0 + p.delta(), 2);
}

class DatasetPipeline : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetPipeline, SlidingWindowChurnWithReadersStaysSound) {
  auto data = harness::make_dataset(GetParam());
  // Shrink for test time: keep ~12k edges.
  if (data.edges.size() > 12000) data.edges.resize(12000);
  auto params = LDSParams::create(data.num_vertices);
  CPLDS ds(data.num_vertices, params);
  DynamicGraph mirror(data.num_vertices);

  auto stream = sliding_window_stream(data.edges, 6000, 2000, 3);
  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = 3;
  cfg.sample_stride = 64;
  cfg.record_boundary_levels = true;
  auto result = harness::run_workload(ds, stream, cfg);

  // Linearizability evidence.
  EXPECT_EQ(harness::count_out_of_window_samples(
                result.samples, result.boundary_levels, result.window_base),
            0u);

  // Structure + approximation vs the exact oracle at the end.
  for (const auto& b : stream) {
    if (b.kind == UpdateKind::kInsert) {
      mirror.insert_batch(b.edges);
    } else {
      mirror.delete_batch(b.edges);
    }
  }
  ASSERT_EQ(ds.num_edges(), mirror.num_edges());
  std::string why;
  ASSERT_TRUE(ds.plds().validate(&why)) << why;
  const auto exact = exact_coreness(mirror);
  for (vertex_t v = 0; v < data.num_vertices; ++v) {
    const double est = ds.read_coreness(v);
    const double truth = std::max<double>(1.0, exact[v]);
    ASSERT_LE(std::max(est / truth, truth / est), bound(params))
        << GetParam() << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPipeline,
                         ::testing::Values("dblp", "wiki", "yt", "ctr",
                                           "orkut"),
                         [](const auto& info) { return info.param; });

TEST(Integration, SequentialAndParallelStructuresAgreeOnEstimateBounds) {
  // The sequential LDS and the CPLDS need not produce identical levels, but
  // both must satisfy the same approximation bound on the same graph.
  constexpr vertex_t kN = 250;
  auto edges = gen::social(kN, 4, 4, 25, 0.9, 5);
  auto params = LDSParams::create(kN);

  SequentialLDS seq(kN, params);
  for (const Edge& e : edges) seq.insert_edge(e);
  CPLDS par(kN, params);
  par.insert_batch(edges);

  DynamicGraph mirror(kN);
  mirror.insert_batch(edges);
  const auto exact = exact_coreness(mirror);
  for (vertex_t v = 0; v < kN; ++v) {
    const double truth = std::max<double>(1.0, exact[v]);
    for (double est : {seq.coreness_estimate(v), par.read_coreness(v)}) {
      ASSERT_LE(std::max(est / truth, truth / est), bound(params)) << v;
    }
  }
}

TEST(Integration, EdgeListFileFeedsCplds) {
  const std::string path = "/tmp/cpkc_integration_edges.txt";
  auto edges = gen::erdos_renyi(500, 2500, 21);
  write_edge_list(path, edges);
  auto parsed = read_edge_list(path);
  std::filesystem::remove(path);
  ASSERT_EQ(parsed.edges.size(), edges.size());

  CPLDS ds(parsed.num_vertices, LDSParams::create(parsed.num_vertices));
  auto applied = ds.insert_batch(parsed.edges);
  EXPECT_EQ(applied.size(), edges.size());
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
}

TEST(Integration, ParallelPeelMatchesSequentialOnRegistryDataset) {
  auto data = harness::make_dataset("wiki");
  auto csr = CsrGraph::from_edges(data.num_vertices, data.edges);
  EXPECT_EQ(parallel_exact_coreness(csr), exact_coreness(csr));
}

TEST(Integration, AllReadModesAgreeAtQuiescence) {
  auto data = harness::make_dataset("ctr");
  CPLDS ds(data.num_vertices, LDSParams::create(data.num_vertices));
  ds.insert_batch(data.edges);
  for (vertex_t v = 0; v < data.num_vertices; v += 37) {
    const double a = read_with_mode(ds, v, ReadMode::kCplds);
    const double b = read_with_mode(ds, v, ReadMode::kSyncReads);
    const double c = read_with_mode(ds, v, ReadMode::kNonSync);
    ASSERT_DOUBLE_EQ(a, b);
    ASSERT_DOUBLE_EQ(a, c);
  }
}

TEST(Integration, RepeatedInsertDeleteCyclesStaySound) {
  constexpr vertex_t kN = 400;
  CPLDS ds(kN, LDSParams::create(kN));
  auto edges = gen::watts_strogatz(kN, 8, 0.2, 17);
  for (int cycle = 0; cycle < 4; ++cycle) {
    ds.insert_batch(edges);
    EXPECT_EQ(ds.num_edges(), edges.size()) << cycle;
    ds.delete_batch(edges);
    EXPECT_EQ(ds.num_edges(), 0u) << cycle;
    std::string why;
    ASSERT_TRUE(ds.plds().validate(&why)) << cycle << ": " << why;
    for (vertex_t v = 0; v < kN; v += 51) {
      ASSERT_DOUBLE_EQ(ds.read_coreness(v), 1.0) << cycle;
    }
  }
}

TEST(Integration, CappedParamsKeepLinearizability) {
  // The "-opt" level cap degrades approximation but must not affect the
  // concurrency protocol.
  constexpr vertex_t kN = 1000;
  CPLDS ds(kN, LDSParams::create(kN, 0.2, 9.0, /*cap=*/20));
  auto stream = insertion_stream(gen::social(kN, 6, 6, 40, 0.9, 23), 1500, 25);
  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = 3;
  cfg.sample_stride = 4;
  cfg.record_boundary_levels = true;
  auto result = harness::run_workload(ds, stream, cfg);
  ASSERT_GT(result.samples.size(), 0u);
  EXPECT_EQ(harness::count_out_of_window_samples(
                result.samples, result.boundary_levels, result.window_base),
            0u);
}

}  // namespace
}  // namespace cpkcore
