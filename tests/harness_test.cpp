// Tests for the experiment harness: dataset registry, workload runner
// bookkeeping (latencies, throughput, boundary snapshots, sample windows),
// accuracy evaluation math, the experiment driver, and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"
#include "harness/datasets.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "kcore/peel.hpp"

namespace cpkcore::harness {
namespace {

TEST(Datasets, RegistryBuildsEveryEntry) {
  for (const auto& name : dataset_names()) {
    auto d = make_dataset(name);
    EXPECT_EQ(d.name, name);
    EXPECT_GT(d.num_vertices, 0u) << name;
    EXPECT_GT(d.edges.size(), 0u) << name;
    for (const Edge& e : d.edges) {
      EXPECT_LT(e.u, d.num_vertices) << name;
      EXPECT_LT(e.v, d.num_vertices) << name;
      EXPECT_LT(e.u, e.v) << name;  // canonical, no self loops
    }
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("not-a-dataset"), std::invalid_argument);
}

TEST(Datasets, DeterministicAcrossCalls) {
  auto a = make_dataset("dblp");
  auto b = make_dataset("dblp");
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Datasets, RoadNetworksHaveCorenessThree) {
  for (const char* name : {"ctr", "usa"}) {
    auto d = make_dataset(name);
    auto coreness =
        exact_coreness(CsrGraph::from_edges(d.num_vertices, d.edges));
    vertex_t mx = 0;
    for (vertex_t c : coreness) mx = std::max(mx, c);
    EXPECT_EQ(mx, 3u) << name;
  }
}

TEST(Datasets, SmallNamesAreSubsetOfRegistry) {
  auto all = dataset_names();
  for (const auto& name : small_dataset_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

TEST(Workload, CountsReadsAndBatches) {
  constexpr vertex_t kN = 500;
  CPLDS ds(kN, LDSParams::create(kN));
  auto stream = insertion_stream(gen::erdos_renyi(kN, 2000, 3), 500, 5);
  WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = 2;
  auto result = run_workload(ds, stream, cfg);
  EXPECT_EQ(result.batch_seconds.size(), stream.size());
  EXPECT_EQ(result.total_applied_edges, 2000u);
  EXPECT_GT(result.total_reads, 0u);
  EXPECT_EQ(result.latency.count(), result.total_reads);
  EXPECT_GT(result.read_throughput(), 0.0);
  EXPECT_GT(result.write_throughput(), 0.0);
  EXPECT_EQ(result.window_base, 0u);
}

TEST(Workload, BoundarySnapshotsHaveCorrectShape) {
  constexpr vertex_t kN = 300;
  CPLDS ds(kN, LDSParams::create(kN));
  auto stream = insertion_stream(gen::erdos_renyi(kN, 900, 5), 300, 7);
  WorkloadConfig cfg;
  cfg.reader_threads = 1;
  cfg.record_boundary_levels = true;
  auto result = run_workload(ds, stream, cfg);
  ASSERT_EQ(result.boundary_levels.size(), stream.size() + 1);
  for (const auto& snap : result.boundary_levels) {
    EXPECT_EQ(snap.size(), kN);
  }
  // Boundary 0 is the empty structure: all levels zero.
  for (level_t l : result.boundary_levels[0]) EXPECT_EQ(l, 0);
  // Final boundary equals the quiescent structure.
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_EQ(result.boundary_levels.back()[v], ds.read_level(v));
  }
}

TEST(Workload, WindowBaseReflectsPreloadedBatches) {
  constexpr vertex_t kN = 200;
  CPLDS ds(kN, LDSParams::create(kN));
  ds.insert_batch(gen::erdos_renyi(kN, 400, 9));  // preload: batch #1
  auto stream = deletion_stream(gen::erdos_renyi(kN, 400, 9), 200, 11);
  WorkloadConfig cfg;
  cfg.reader_threads = 1;
  auto result = run_workload(ds, stream, cfg);
  EXPECT_EQ(result.window_base, 1u);
}

TEST(Workload, BoundaryExactRequiresEmptyStart) {
  constexpr vertex_t kN = 100;
  CPLDS ds(kN, LDSParams::create(kN));
  ds.insert_batch({{0, 1}});
  WorkloadConfig cfg;
  cfg.record_boundary_exact = true;
  EXPECT_THROW(run_workload(ds, {}, cfg), std::logic_error);
}

TEST(Workload, BoundaryExactTracksMirror) {
  constexpr vertex_t kN = 200;
  CPLDS ds(kN, LDSParams::create(kN));
  auto edges = gen::disjoint_cliques(kN, 10);
  std::vector<UpdateBatch> stream = {
      UpdateBatch{UpdateKind::kInsert, edges},
      UpdateBatch{UpdateKind::kDelete, edges},
  };
  WorkloadConfig cfg;
  cfg.reader_threads = 1;
  cfg.record_boundary_exact = true;
  auto result = run_workload(ds, stream, cfg);
  ASSERT_EQ(result.boundary_exact.size(), 3u);
  for (vertex_t c : result.boundary_exact[0]) EXPECT_EQ(c, 0u);
  for (vertex_t c : result.boundary_exact[1]) EXPECT_EQ(c, 9u);
  for (vertex_t c : result.boundary_exact[2]) EXPECT_EQ(c, 0u);
}

TEST(Driver, InsertionExperimentRuns) {
  ExperimentSpec spec;
  spec.dataset = "ctr";
  spec.kind = UpdateKind::kInsert;
  spec.batch_size = 5000;
  spec.max_batches = 2;
  spec.workload.reader_threads = 2;
  auto out = run_experiment(spec);
  EXPECT_EQ(out.batches_run, 2u);
  EXPECT_EQ(out.result.batch_seconds.size(), 2u);
  EXPECT_GT(out.result.total_applied_edges, 0u);
}

TEST(Driver, DeletionExperimentPreloads) {
  ExperimentSpec spec;
  spec.dataset = "ctr";
  spec.kind = UpdateKind::kDelete;
  spec.batch_size = 5000;
  spec.max_batches = 2;
  spec.workload.reader_threads = 1;
  auto out = run_experiment(spec);
  EXPECT_EQ(out.batches_run, 2u);
  // Deletions actually removed edges (the graph was preloaded).
  EXPECT_GT(out.result.total_applied_edges, 0u);
}

TEST(Driver, AccuracyMathMatchesHandComputation) {
  // One vertex, two boundaries: exact coreness 4 -> 8. Samples at level
  // whose estimate is 5.0 land between them.
  LDSParams params = LDSParams::create(100);
  // Find a level whose estimate is some value e; use level 0 (e=1).
  std::vector<std::vector<vertex_t>> exact = {{4}, {8}};
  std::vector<ReadSample> samples = {{0, 0, 1}};  // level 0 -> estimate 1
  auto stats = evaluate_accuracy(samples, exact, params, 0);
  ASSERT_EQ(stats.samples, 1u);
  // err vs 4 = 4, err vs 8 = 8 -> min is 4.
  EXPECT_DOUBLE_EQ(stats.max_error, 4.0);
  EXPECT_DOUBLE_EQ(stats.avg_error, 4.0);
}

TEST(Driver, OutOfWindowCounterFlagsIntermediateLevels) {
  std::vector<std::vector<level_t>> bounds = {{0}, {10}};
  // window 1 (during batch 1): levels 0 and 10 are fine, 5 is a violation.
  std::vector<ReadSample> ok1 = {{0, 0, 1}};
  std::vector<ReadSample> ok2 = {{0, 10, 1}};
  std::vector<ReadSample> bad = {{0, 5, 1}};
  EXPECT_EQ(count_out_of_window_samples(ok1, bounds, 0), 0u);
  EXPECT_EQ(count_out_of_window_samples(ok2, bounds, 0), 0u);
  EXPECT_EQ(count_out_of_window_samples(bad, bounds, 0), 1u);
  // With a window base of 3, window 4 maps to the same boundaries.
  std::vector<ReadSample> shifted = {{0, 5, 4}};
  EXPECT_EQ(count_out_of_window_samples(shifted, bounds, 3), 1u);
  // Windows at or before the base map to boundary 0.
  std::vector<ReadSample> pre = {{0, 0, 3}};
  EXPECT_EQ(count_out_of_window_samples(pre, bounds, 3), 0u);
}

TEST(Report, TableAlignsColumns) {
  Table t({"A", "Long header", "C"});
  t.add_row({"x", "1", "yy"});
  t.add_row({"longer", "2", "z"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Long header"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header, separator, and two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_NE(fmt_seconds(0.001).find("e-03"), std::string::npos);
  EXPECT_NE(fmt_si(1234567.0).find("e+06"), std::string::npos);
}

TEST(Workload, SamplesRespectStrideAndCap) {
  constexpr vertex_t kN = 300;
  CPLDS ds(kN, LDSParams::create(kN));
  auto stream = insertion_stream(gen::erdos_renyi(kN, 1500, 13), 500, 15);
  WorkloadConfig cfg;
  cfg.reader_threads = 2;
  cfg.sample_stride = 8;
  cfg.max_samples_per_thread = 100;
  auto result = run_workload(ds, stream, cfg);
  EXPECT_LE(result.samples.size(), 200u);
  for (const auto& s : result.samples) {
    EXPECT_LT(s.v, kN);
    EXPECT_GE(s.level, 0);
  }
}

}  // namespace
}  // namespace cpkcore::harness
