// Exact k-core oracle tests: closed-form graphs, sequential-vs-parallel
// equivalence (parameterized across families and sizes), and a brute-force
// cross-check on tiny random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/csr.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "kcore/parallel_peel.hpp"
#include "kcore/peel.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

/// O(n^2 m)-ish reference: repeatedly strip vertices of degree < k.
std::vector<vertex_t> brute_force_coreness(const CsrGraph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> coreness(n, 0);
  for (vertex_t k = 1;; ++k) {
    std::vector<bool> alive(n, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (vertex_t v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        std::size_t deg = 0;
        for (vertex_t w : g.neighbors(v)) deg += alive[w] ? 1 : 0;
        if (deg < k) {
          alive[v] = false;
          changed = true;
        }
      }
    }
    bool any = false;
    for (vertex_t v = 0; v < n; ++v) {
      if (alive[v]) {
        coreness[v] = k;
        any = true;
      }
    }
    if (!any) break;
  }
  return coreness;
}

TEST(ExactCore, CompleteGraph) {
  auto g = CsrGraph::from_edges(8, gen::complete(8));
  for (vertex_t c : exact_coreness(g)) EXPECT_EQ(c, 7u);
  EXPECT_EQ(degeneracy(g), 7u);
}

TEST(ExactCore, CycleIsTwo) {
  auto g = CsrGraph::from_edges(20, gen::cycle(20));
  for (vertex_t c : exact_coreness(g)) EXPECT_EQ(c, 2u);
}

TEST(ExactCore, TreeIsOne) {
  auto g = CsrGraph::from_edges(200, gen::random_tree(200, 3));
  for (vertex_t c : exact_coreness(g)) EXPECT_EQ(c, 1u);
}

TEST(ExactCore, StarIsOne) {
  auto g = CsrGraph::from_edges(50, gen::star(50));
  for (vertex_t c : exact_coreness(g)) EXPECT_EQ(c, 1u);
}

TEST(ExactCore, IsolatedVerticesAreZero) {
  auto g = CsrGraph::from_edges(10, {{0, 1}});
  auto c = exact_coreness(g);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], 1u);
  for (vertex_t v = 2; v < 10; ++v) EXPECT_EQ(c[v], 0u);
}

TEST(ExactCore, DisjointCliquesHaveKnownCoreness) {
  auto g = CsrGraph::from_edges(20, gen::disjoint_cliques(20, 5));
  for (vertex_t c : exact_coreness(g)) EXPECT_EQ(c, 4u);
}

TEST(ExactCore, GridWithDiagonalsIsAtMostThree) {
  auto g = CsrGraph::from_edges(400, gen::grid_2d(20, 20, true));
  const auto c = exact_coreness(g);
  const auto mx = *std::max_element(c.begin(), c.end());
  EXPECT_EQ(mx, 3u);
}

TEST(ExactCore, CliqueWithTailPeelsTail) {
  // 5-clique (0..4) plus a path 4-5-6: path vertices have coreness 1.
  auto edges = gen::complete(5);
  edges.push_back({4, 5});
  edges.push_back({5, 6});
  auto g = CsrGraph::from_edges(7, edges);
  auto c = exact_coreness(g);
  for (vertex_t v = 0; v < 5; ++v) EXPECT_EQ(c[v], 4u);
  EXPECT_EQ(c[5], 1u);
  EXPECT_EQ(c[6], 1u);
}

TEST(ExactCore, MatchesBruteForceOnTinyRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto edges = gen::erdos_renyi(30, 60 + seed * 10, seed);
    auto g = CsrGraph::from_edges(30, edges);
    EXPECT_EQ(exact_coreness(g), brute_force_coreness(g)) << seed;
  }
}

TEST(ExactCore, DynamicGraphOverloadMatches) {
  DynamicGraph dyn(100);
  dyn.insert_batch(gen::erdos_renyi(100, 400, 17));
  auto c1 = exact_coreness(dyn);
  auto c2 = exact_coreness(CsrGraph::from_dynamic(dyn));
  EXPECT_EQ(c1, c2);
}

struct PeelCase {
  const char* name;
  vertex_t n;
  std::vector<Edge> edges;
};

class PeelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PeelEquivalence, ParallelMatchesSequential) {
  const auto [family, seed] = GetParam();
  vertex_t n = 0;
  std::vector<Edge> edges;
  switch (family) {
    case 0:
      n = 3000;
      edges = gen::erdos_renyi(n, 12000, seed);
      break;
    case 1:
      n = 3000;
      edges = gen::barabasi_albert(n, 5, seed);
      break;
    case 2:
      n = 4096;
      edges = gen::rmat(12, 16000, seed);
      break;
    case 3:
      n = 2500;
      edges = gen::grid_2d(50, 50, true);
      break;
    case 4:
      n = 3000;
      edges = gen::watts_strogatz(n, 6, 0.2, seed);
      break;
    default:
      FAIL();
  }
  auto g = CsrGraph::from_edges(n, std::move(edges));
  EXPECT_EQ(parallel_exact_coreness(g), exact_coreness(g));
}

const char* const kPeelFamilyNames[] = {"er", "ba", "rmat", "grid", "ws"};

std::string peel_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  return std::string(kPeelFamilyNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Families, PeelEquivalence,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1ull, 2ull, 3ull)),
    peel_case_name);

TEST(ParallelPeel, EmptyGraph) {
  auto g = CsrGraph::from_edges(10, {});
  auto c = parallel_exact_coreness(g);
  for (vertex_t v : c) EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace cpkcore
