// Longer-running concurrency stress: many reader threads across all three
// read modes simultaneously, repeated insert/delete cycles, reader threads
// that outlive multiple batches (the asynchronous-process model: readers
// may be arbitrarily delayed), and scheduler reconfiguration under load.
// These runs assert the strongest cheap global properties: no crash/hang,
// linearizable samples, structural validity, and exact agreement with an
// unperturbed replay.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "parallel/scheduler.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

TEST(Stress, MixedModeReadersDuringInsertAndDeletePhases) {
  constexpr vertex_t kN = 4000;
  CPLDS ds(kN, LDSParams::create(kN));
  auto edges = gen::social(kN, 6, 8, 50, 0.9, 3);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    const ReadMode mode = t % 3 == 0   ? ReadMode::kCplds
                          : t % 3 == 1 ? ReadMode::kSyncReads
                                       : ReadMode::kNonSync;
    readers.emplace_back([&, mode, t] {
      Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<vertex_t>(rng.next_below(kN));
        const double est = read_with_mode(ds, v, mode);
        ASSERT_GE(est, 1.0);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const auto& b : insertion_stream(edges, 5000, 11 + cycle)) {
      ds.insert_batch(b.edges);
    }
    for (const auto& b : deletion_stream(edges, 5000, 11 + cycle)) {
      ds.delete_batch(b.edges);
    }
    ASSERT_EQ(ds.num_edges(), 0u) << cycle;
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  std::string why;
  EXPECT_TRUE(ds.plds().validate(&why)) << why;
}

TEST(Stress, DelayedReaderAcrossManyBatchesStaysLinearizable) {
  // A reader that sleeps mid-stream models the paper's asynchronous-process
  // assumption: arbitrary delays must not break linearizability (the
  // stamped union-find rejects its stale compressions).
  constexpr vertex_t kN = 1500;
  CPLDS ds(kN, LDSParams::create(kN));
  auto edges = gen::barabasi_albert(kN, 10, 17);
  auto stream = insertion_stream(edges, 600, 19);

  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kCplds;
  cfg.reader_threads = 5;
  cfg.sample_stride = 2;
  cfg.record_boundary_levels = true;
  // Many small batches maximize cross-batch reader exposure.
  auto result = harness::run_workload(ds, stream, cfg);
  ASSERT_GT(result.samples.size(), 0u);
  EXPECT_EQ(harness::count_out_of_window_samples(
                result.samples, result.boundary_levels, result.window_base),
            0u);
}

TEST(Stress, SchedulerWidthChangesBetweenBatches) {
  constexpr vertex_t kN = 2000;
  auto edges = gen::erdos_renyi(kN, 10000, 23);
  auto stream = insertion_stream(edges, 2500, 29);

  CPLDS narrow(kN, LDSParams::create(kN));
  Scheduler::instance().set_num_workers(2);
  for (const auto& b : stream) narrow.insert_batch(b.edges);

  CPLDS wide(kN, LDSParams::create(kN));
  Scheduler::instance().set_num_workers(16);
  for (const auto& b : stream) wide.insert_batch(b.edges);

  // Level-synchronous updates are deterministic regardless of parallelism.
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(narrow.read_level(v), wide.read_level(v)) << v;
  }
  Scheduler::instance().set_num_workers(
      std::thread::hardware_concurrency());
}

TEST(Stress, ManySmallBatchesWithSyncReaders) {
  // SyncReads blocks readers on a condition variable per batch; hammer the
  // wait/notify path with hundreds of small batches.
  constexpr vertex_t kN = 800;
  CPLDS ds(kN, LDSParams::create(kN));
  auto stream = insertion_stream(gen::barabasi_albert(kN, 5, 31), 50, 37);
  harness::WorkloadConfig cfg;
  cfg.mode = ReadMode::kSyncReads;
  cfg.reader_threads = 4;
  auto result = harness::run_workload(ds, stream, cfg);
  EXPECT_GT(result.total_reads, 0u);
  EXPECT_EQ(result.batch_seconds.size(), stream.size());
}

TEST(Stress, HighChurnSlidingWindowWithAllModes) {
  constexpr vertex_t kN = 4096;  // rmat(12) vertex space
  auto edges = gen::rmat(12, 20000, 41);
  auto stream = sliding_window_stream(edges, 8000, 2000, 43);
  for (ReadMode mode :
       {ReadMode::kCplds, ReadMode::kCpldsDag, ReadMode::kSyncReads,
        ReadMode::kNonSync}) {
    CPLDS::Options opt;
    opt.track_dependencies = (mode == ReadMode::kCpldsDag);
    CPLDS ds(kN, LDSParams::create(kN), opt);
    harness::WorkloadConfig cfg;
    cfg.mode = mode;
    cfg.reader_threads = 3;
    auto result = harness::run_workload(ds, stream, cfg);
    EXPECT_GT(result.total_reads, 0u) << to_string(mode);
    std::string why;
    EXPECT_TRUE(ds.plds().validate(&why)) << to_string(mode) << ": " << why;
  }
}

}  // namespace
}  // namespace cpkcore
