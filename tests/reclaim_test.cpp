// Tests for the pluggable memory reclamation behind the wait-free read
// path: epoch advancement under concurrent retire, reader pins blocking
// reclamation (and unblocking it on release), epoch-vs-qsbr equivalence on
// the same CPLDS workload, and a reader/writer stress run checking the
// view-backed reads stay bit-equal to the SyncReads quiescent levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/reclaim.hpp"
#include "core/cplds.hpp"
#include "core/level_view.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace cpkcore {
namespace {

using concurrent::Reclaimer;
using concurrent::ReclaimerKind;

/// A retired payload that counts its own deletions.
struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
  static void destroy(void* p) { delete static_cast<Tracked*>(p); }
};
std::atomic<int> Tracked::live{0};

class ReclaimTest : public ::testing::TestWithParam<ReclaimerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, ReclaimTest,
                         ::testing::Values(ReclaimerKind::kEpoch,
                                           ReclaimerKind::kQsbr),
                         [](const auto& info) {
                           return std::string(
                               concurrent::to_string(info.param));
                         });

TEST_P(ReclaimTest, RetireWithoutReadersFreesEverything) {
  auto r = concurrent::make_reclaimer(GetParam());
  constexpr std::uint64_t kObjects = 200;
  for (std::uint64_t i = 0; i < kObjects; ++i) {
    r->retire(new Tracked, &Tracked::destroy);
  }
  // With no reader ever pinned, a few idle reclaim passes drain the limbo
  // list entirely (EBR needs two epoch advances past the newest tag).
  for (int i = 0; i < 8 && r->stats().limbo > 0; ++i) r->try_reclaim();
  const Reclaimer::Stats stats = r->stats();
  EXPECT_EQ(stats.retired, kObjects);
  EXPECT_EQ(stats.freed, kObjects);
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST_P(ReclaimTest, EpochAdvancesUnderConcurrentRetire) {
  auto r = concurrent::make_reclaimer(GetParam());
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Readers cycle in and out while other threads retire.
        {
          const Reclaimer::Guard guard = r->read_guard();
        }
        r->retire(new Tracked, &Tracked::destroy);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int i = 0; i < 8 && r->stats().limbo > 0; ++i) r->try_reclaim();
  const Reclaimer::Stats stats = r->stats();
  EXPECT_EQ(stats.retired, kThreads * kPerThread);
  EXPECT_GT(stats.epoch_advances, 0u);
  EXPECT_EQ(stats.freed, stats.retired);
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST_P(ReclaimTest, ReaderPinBlocksReclamation) {
  auto r = concurrent::make_reclaimer(GetParam());
  // The pinned reader must be a *different* thread: the retiring thread's
  // own slot is idle (EBR) / quiesced late (QSBR) from its point of view.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    const Reclaimer::Guard guard = r->read_guard();
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr std::size_t kObjects = 50;
  for (std::size_t i = 0; i < kObjects; ++i) {
    r->retire(new Tracked, &Tracked::destroy);
  }
  r->try_reclaim();
  // Everything retired after the pin must still be in limbo.
  EXPECT_EQ(r->stats().limbo, kObjects);
  EXPECT_EQ(Tracked::live.load(), static_cast<int>(kObjects));
  EXPECT_GT(r->stats().lagging_readers, 0u);

  release.store(true, std::memory_order_release);
  reader.join();
  for (int i = 0; i < 8 && r->stats().limbo > 0; ++i) r->try_reclaim();
  EXPECT_EQ(r->stats().limbo, 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST_P(ReclaimTest, GuardIsReentrant) {
  auto r = concurrent::make_reclaimer(GetParam());
  const Reclaimer::Guard outer = r->read_guard();
  {
    const Reclaimer::Guard inner = r->read_guard();
  }
  // Still pinned: a retire on another thread must not free under us.
  std::thread retirer([&r] {
    r->retire(new Tracked, &Tracked::destroy);
    r->try_reclaim();
  });
  retirer.join();
  EXPECT_EQ(Tracked::live.load(), 1);
}

TEST(ReclaimKind, ParseAndResolve) {
  EXPECT_EQ(concurrent::parse_reclaimer_kind("epoch"), ReclaimerKind::kEpoch);
  EXPECT_EQ(concurrent::parse_reclaimer_kind("ebr"), ReclaimerKind::kEpoch);
  EXPECT_EQ(concurrent::parse_reclaimer_kind("qsbr"), ReclaimerKind::kQsbr);
  EXPECT_EQ(concurrent::parse_reclaimer_kind("auto"), ReclaimerKind::kAuto);
  EXPECT_THROW(static_cast<void>(concurrent::parse_reclaimer_kind("bogus")),
               std::invalid_argument);
  EXPECT_EQ(concurrent::to_string(ReclaimerKind::kQsbr), "qsbr");
  // A pinned kind resolves to itself regardless of the environment.
  EXPECT_EQ(concurrent::resolve_reclaimer_kind(ReclaimerKind::kQsbr),
            ReclaimerKind::kQsbr);
  EXPECT_EQ(concurrent::resolve_reclaimer_kind(ReclaimerKind::kEpoch),
            ReclaimerKind::kEpoch);
}

// ---------------------------------------------------------------------------
// CPLDS integration
// ---------------------------------------------------------------------------

/// Applies the same batched insertion stream under the given reclaimer and
/// returns the final levels (quiescent).
std::vector<level_t> levels_after_stream(ReclaimerKind kind,
                                         vertex_t n,
                                         const std::vector<Edge>& edges,
                                         std::size_t batch_size) {
  auto reclaimer = concurrent::make_reclaimer(kind);
  CPLDS::Options opt;
  opt.reclaimer = reclaimer.get();
  CPLDS ds(n, LDSParams::create(n), opt);
  for (std::size_t i = 0; i < edges.size(); i += batch_size) {
    const std::size_t end = std::min(edges.size(), i + batch_size);
    ds.insert_batch({edges.begin() + static_cast<std::ptrdiff_t>(i),
                     edges.begin() + static_cast<std::ptrdiff_t>(end)});
  }
  std::vector<level_t> out(n);
  for (vertex_t v = 0; v < n; ++v) out[v] = ds.read_level(v);
  EXPECT_GT(ds.view_version(), 0u);
  EXPECT_GT(ds.reclaimer().stats().retired, 0u);
  return out;
}

TEST(ReclaimCplds, ReclaimerSwapEquivalence) {
  // The reclamation scheme must be invisible to the data structure: the
  // same update stream yields bit-identical levels under epoch and qsbr.
  constexpr vertex_t kN = 1500;
  const auto edges = gen::barabasi_albert(kN, 6, 77);
  const auto epoch = levels_after_stream(ReclaimerKind::kEpoch, kN, edges, 900);
  const auto qsbr = levels_after_stream(ReclaimerKind::kQsbr, kN, edges, 900);
  ASSERT_EQ(epoch.size(), qsbr.size());
  for (vertex_t v = 0; v < kN; ++v) EXPECT_EQ(epoch[v], qsbr[v]) << v;
}

TEST(ReclaimCplds, ViewReadsBitEqualToSyncReadsUnderStress) {
  // Reader/writer stress: concurrent view readers never crash or tear, and
  // once quiescent every read path agrees bit-for-bit with the locked
  // SyncReads baseline.
  for (const ReclaimerKind kind :
       {ReclaimerKind::kEpoch, ReclaimerKind::kQsbr}) {
    auto reclaimer = concurrent::make_reclaimer(kind);
    constexpr vertex_t kN = 2000;
    CPLDS::Options opt;
    opt.reclaimer = reclaimer.get();
    CPLDS ds(kN, LDSParams::create(kN), opt);
    const auto edges = gen::barabasi_albert(kN, 8, 91);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    constexpr int kReaders = 6;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&ds, &stop, t] {
        Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
        while (!stop.load(std::memory_order_relaxed)) {
          const auto v = static_cast<vertex_t>(rng.next_below(kN));
          const level_t l = ds.read_level(v);
          ASSERT_GE(l, 0);  // never torn garbage
        }
      });
    }
    constexpr std::size_t kBatch = 500;
    for (std::size_t i = 0; i < edges.size(); i += kBatch) {
      const std::size_t end = std::min(edges.size(), i + kBatch);
      ds.insert_batch({edges.begin() + static_cast<std::ptrdiff_t>(i),
                       edges.begin() + static_cast<std::ptrdiff_t>(end)});
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& th : readers) th.join();

    for (vertex_t v = 0; v < kN; ++v) {
      const level_t sync_level = ds.read_level_sync(v);
      ASSERT_EQ(ds.read_level(v), sync_level)
          << "view read diverged from SyncReads at v=" << v << " under "
          << concurrent::to_string(kind);
      ASSERT_EQ(ds.read_level_nonsync(v), sync_level) << v;
    }
    const Reclaimer::Stats stats = ds.reclaimer().stats();
    EXPECT_GT(stats.retired, 0u);
    EXPECT_GT(stats.freed, 0u);
  }
}

TEST(ReclaimCplds, ViewVersionCountsMovingBatches) {
  constexpr vertex_t kN = 64;
  auto reclaimer = concurrent::make_reclaimer(ReclaimerKind::kEpoch);
  CPLDS::Options opt;
  opt.reclaimer = reclaimer.get();
  CPLDS ds(kN, LDSParams::create(kN), opt);
  EXPECT_EQ(ds.view_version(), 0u);
  // A dense clique forces level moves; version advances.
  std::vector<Edge> clique;
  for (vertex_t u = 0; u < 16; ++u) {
    for (vertex_t v = u + 1; v < 16; ++v) clique.push_back({u, v});
  }
  ds.insert_batch(clique);
  const std::uint64_t after_clique = ds.view_version();
  EXPECT_GT(after_clique, 0u);
  // A no-op batch (re-inserting existing edges) publishes nothing.
  ds.insert_batch(clique);
  EXPECT_EQ(ds.view_version(), after_clique);
}

TEST(LevelViewTest, SuccessorSharesUntouchedPages) {
  constexpr vertex_t kN = LevelView::kPageSize * 3 + 5;  // 4 pages
  const LevelView* v0 = LevelView::initial(kN, 0);
  EXPECT_EQ(v0->num_pages(), 4u);
  for (vertex_t v = 0; v < kN; ++v) ASSERT_EQ(v0->level(v), 0);

  // Touch one vertex in page 2 only.
  const vertex_t moved = 2 * LevelView::kPageSize + 7;
  const vertex_t moved_arr[] = {moved};
  const LevelView* v1 = LevelView::successor(
      *v0, moved_arr, [&](vertex_t v) { return v == moved ? 5 : 0; });
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->level(moved), 5);
  EXPECT_EQ(v1->level(moved - 1), 0);
  EXPECT_EQ(v1->level(0), 0);

  // Destroying the predecessor must leave the successor (and its shared
  // pages) fully readable.
  LevelView::destroy(v0);
  EXPECT_EQ(v1->level(moved), 5);
  EXPECT_EQ(v1->level(kN - 1), 0);
  LevelView::destroy(v1);
}

}  // namespace
}  // namespace cpkcore
