// Quickstart: build a CPLDS, apply insertion/deletion batches, and read
// approximate coreness values — including concurrently with a batch.
//
//   $ ./example_quickstart
#include <cstdio>
#include <thread>

#include "core/cplds.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace cpkcore;

  // 1. Create the structure for a graph of up to n vertices. LDSParams
  //    picks the level geometry for a (2+epsilon)-approximation with the
  //    paper's delta = 0.2, lambda = 9 (factor 2.8).
  constexpr vertex_t n = 10000;
  CPLDS cores(n, LDSParams::create(n));

  // 2. Apply a batch of edge insertions (here: a scale-free graph). Batches
  //    execute in parallel internally; self loops and duplicates are
  //    dropped automatically.
  auto edges = gen::barabasi_albert(n, 5, /*seed=*/42);
  const auto applied = cores.insert_batch(edges);
  std::printf("inserted %zu edges (batch #%llu)\n", applied.size(),
              static_cast<unsigned long long>(cores.batch_number()));

  // 3. Read coreness estimates. read_coreness is linearizable and safe at
  //    any time from any thread, even while a batch is running.
  for (vertex_t v : {vertex_t{0}, vertex_t{17}, vertex_t{4242}}) {
    std::printf("coreness estimate of %u: %.2f\n", v, cores.read_coreness(v));
  }

  // 4. Reads concurrent with an update batch: spawn a reader while the
  //    update thread deletes half the graph.
  std::thread reader([&] {
    double max_seen = 0;
    for (int i = 0; i < 200000; ++i) {
      max_seen = std::max(max_seen,
                          cores.read_coreness(static_cast<vertex_t>(
                              i % n)));
    }
    std::printf("reader finished; max estimate seen: %.2f\n", max_seen);
  });
  std::vector<Edge> to_delete(edges.begin(),
                              edges.begin() + static_cast<std::ptrdiff_t>(
                                                  edges.size() / 2));
  cores.delete_batch(to_delete);
  reader.join();

  std::printf("after deletions: m = %zu, coreness(17) = %.2f\n",
              cores.num_edges(), cores.read_coreness(17));
  return 0;
}
