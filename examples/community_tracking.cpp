// Streaming community tracking: maintain dense-community membership over a
// sliding window of interactions (the k-core decomposition's classic
// community-detection use, §1 of the paper). Old interactions expire
// (deletion batches) while new ones arrive (insertion batches); a
// monitoring thread watches the k-core membership of a set of tracked
// accounts in real time via asynchronous reads.
//
//   $ ./example_community_tracking
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cplds.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"
#include "kcore/peel.hpp"

int main() {
  using namespace cpkcore;

  constexpr vertex_t kAccounts = 20000;
  // Interaction stream: scale-free base + periodic bursts inside a planted
  // dense group (accounts 0..59 form a near-clique), which should surface
  // as a high-coreness community while its burst is inside the window.
  auto background = gen::barabasi_albert(kAccounts, 4, 7);
  std::vector<Edge> burst;
  for (vertex_t u = 0; u < 60; ++u) {
    for (vertex_t v = u + 1; v < 60; ++v) burst.push_back({u, v});
  }
  std::vector<Edge> all = background;
  // Interleave the burst mid-stream.
  all.insert(all.begin() + static_cast<std::ptrdiff_t>(all.size() / 2),
             burst.begin(), burst.end());

  auto stream = sliding_window_stream(all, /*window=*/40000,
                                      /*batch_size=*/8000, /*seed=*/5);
  std::printf("interaction stream: %zu edges, %zu batches (window 40000)\n",
              all.size(), stream.size());

  CPLDS ds(kAccounts, LDSParams::create(kAccounts));

  // Monitor thread: tracks the community signal of the planted group and
  // a control group, concurrently with the update stream.
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    double peak_planted = 0;
    double peak_control = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      double planted = 0;
      double control = 0;
      for (vertex_t v = 0; v < 30; ++v) {
        planted += ds.read_coreness(v);
        control += ds.read_coreness(10000 + v * 13);
      }
      peak_planted = std::max(peak_planted, planted / 30);
      peak_control = std::max(peak_control, control / 30);
    }
    std::printf(
        "monitor: peak avg estimate — planted community %.2f, control "
        "group %.2f\n",
        peak_planted, peak_control);
  });

  for (std::size_t i = 0; i < stream.size(); ++i) {
    ds.apply(stream[i]);
    if (i % 4 == 0) {
      std::printf("batch %2zu (%s): m=%zu, planted member estimate=%.2f\n", i,
                  stream[i].kind == UpdateKind::kInsert ? "ins" : "del",
                  ds.num_edges(), ds.read_coreness(0));
    }
  }
  stop.store(true);
  monitor.join();
  return 0;
}
