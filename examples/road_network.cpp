// Road-network maintenance: the paper's low-coreness regime (usa/ctr in
// Table 1 have k_max = 3). Road graphs stress a different axis than social
// networks: huge diameter, tiny cores, and updates (closures/openings)
// that cause shallow cascades. This example shows that coreness estimates
// remain pinned at their tiny true values through heavy edge churn, and
// compares against the exact decomposition.
//
//   $ ./example_road_network
#include <algorithm>
#include <cstdio>

#include "core/cplds.hpp"
#include "graph/batch.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "kcore/peel.hpp"

int main() {
  using namespace cpkcore;

  constexpr vertex_t kSide = 120;
  constexpr vertex_t kN = kSide * kSide;
  auto roads = gen::grid_2d(kSide, kSide, /*with_diagonals=*/true);
  std::printf("road network: %u junctions, %zu segments\n", kN, roads.size());

  CPLDS ds(kN, LDSParams::create(kN));
  DynamicGraph mirror(kN);
  ds.insert_batch(roads);
  mirror.insert_batch(roads);

  // Simulate closures and re-openings: delete 15% of segments, re-add them.
  std::vector<Edge> closures;
  for (std::size_t i = 0; i < roads.size(); i += 7) {
    closures.push_back(roads[i]);
  }
  ds.delete_batch(closures);
  mirror.delete_batch(closures);
  std::printf("closed %zu segments; m=%zu\n", closures.size(),
              ds.num_edges());

  const auto exact_closed = exact_coreness(mirror);
  double worst_ratio = 1.0;
  for (vertex_t v = 0; v < kN; ++v) {
    const double est = std::max(1.0, ds.read_coreness(v));
    const double truth = std::max<double>(1.0, exact_closed[v]);
    worst_ratio = std::max({worst_ratio, est / truth, truth / est});
  }
  std::printf("after closures: worst estimate/exact ratio %.2f "
              "(theoretical bound %.2f)\n",
              worst_ratio, ds.params().approx_factor());

  ds.insert_batch(closures);
  mirror.insert_batch(closures);
  const auto exact_final = exact_coreness(mirror);
  const auto kmax = *std::max_element(exact_final.begin(), exact_final.end());
  std::printf("after re-opening: m=%zu, exact k_max=%u (road networks stay "
              "at k<=3), estimate(center)=%.2f\n",
              ds.num_edges(), kmax,
              ds.read_coreness(kSide * (kSide / 2) + kSide / 2));
  return 0;
}
