// Interactive CLI over the CPLDS: load or generate a graph, apply edge and
// vertex updates in batches, and query coreness estimates (with the exact
// oracle available for comparison). Reads commands from stdin; run with no
// arguments for a demo script.
//
//   $ ./example_dynamic_kcore_cli            # runs the built-in demo
//   $ echo "gen ba 1000 4 7
//           query 12
//           insert 12 13
//           exact 12
//           stats
//           quit" | ./example_dynamic_kcore_cli -
//
// Warm restart end to end (the serving layer's snapshot path):
//   --snapshot-load <path>   restore the graph from a snapshot at startup
//   --snapshot-save <path>   save a snapshot of the final graph on exit
//
// Replication and sharding end to end (the cluster layer): --replicas <r>
// and/or --write-shards <p> run the session's graph behind a ShardGroup —
// p partition primaries (edge-key hash partitioned write plane), each with
// r exact read replicas fed by WAL shipping — and the shard-aware router.
// insert/delete become routed writes (printing the owning partition and
// the acked partition LSN), query becomes a fan-out read (printing each
// partition's serving backend; the estimate is the cross-partition
// aggregate), and stats shows every partition's commit cursor, the
// session's LSN vector, and each replica's replication cursor. delv is not
// available in this mode (the serving layer ingests edge ops).
//
//   $ echo "gen ba 2000 4 7
//           insert 17 42
//           query 17
//           stats
//           quit" | ./example_dynamic_kcore_cli --write-shards 2 --replicas 2 -
//
//   $ echo "gen ba 1000 4 7
//           quit" | ./example_dynamic_kcore_cli --snapshot-save g.snap -
//   $ echo "stats
//           quit" | ./example_dynamic_kcore_cli --snapshot-load g.snap -
//
// Flight recorder (see src/obs/):
//   --metrics-out <path>   stream MetricsRegistry snapshots to <path> as
//                          JSON lines while the session runs (StatsSampler;
//                          final sample on exit). SIGUSR1 requests an
//                          immediate off-schedule sample — `kill -USR1
//                          <pid>` dumps the live state of a long session.
//   --sample-ms <n>        sampling interval (default 1000)
//   metrics                (command) print the current registry snapshot in
//                          Prometheus text exposition format
//
// Health plane (see src/obs/): a stall watchdog (HealthMonitor) always
// runs; cluster mode registers every pipeline thread with it.
//   --http-port <n>        serve the flight recorder and health plane over
//                          HTTP on 127.0.0.1:<n> (0 = ephemeral; the bound
//                          port is printed): GET /metrics (Prometheus),
//                          /healthz (503 when stalled), /vars (JSON),
//                          /events (journal tail)
//   health                 (command) print the watchdog rollup as JSON
//   stall <ms>             (command, cluster mode) inject an <ms> busy-sleep
//                          into partition 0's apply thread — the watchdog
//                          flags it stalled, /healthz flips 503, and it
//                          recovers on its own
//
// Commands:
//   gen ba <n> <edges_per_vertex> <seed>   generate Barabasi-Albert
//   gen er <n> <m> <seed>                  generate Erdos-Renyi
//   gen grid <side>                        generate triangulated grid
//   load <path>                            load an edge-list file
//   insert <u> <v> | delete <u> <v>        single-edge batch
//   batch insert|delete <u1> <v1> <u2> <v2> ...   multi-edge batch
//   delv <v> [...]                         delete vertices
//   query <v>                              approximate coreness (CPLDS read)
//   exact <v>                              exact coreness (full peel)
//   stats                                  n, m, batch number, max estimate
//   metrics                                registry snapshot (Prometheus)
//   health                                 watchdog rollup (JSON)
//   stall <ms>                             inject an apply-thread stall
//   quit
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard_group.hpp"
#include "core/cplds.hpp"
#include "core/snapshot.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "kcore/peel.hpp"
#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "service/kcore_service.hpp"

namespace {

using namespace cpkcore;

/// The session's flight-recorder sampler, reachable from the SIGUSR1
/// handler. request_sample() is async-signal-safe (it only sets an atomic
/// flag; the sampler thread does the work).
std::atomic<obs::StatsSampler*> g_sampler{nullptr};

void on_sigusr1(int) {
  if (obs::StatsSampler* s = g_sampler.load(std::memory_order_relaxed)) {
    s->request_sample();
  }
}

/// The session's stall watchdog (always on; cluster mode registers every
/// pipeline thread with it). Set once in main before any command runs.
obs::HealthMonitor* g_health = nullptr;

/// The `health` command: the watchdog rollup, re-evaluated now.
void print_health() {
  if (g_health == nullptr) {
    std::printf("no health monitor\n");
    return;
  }
  std::printf("%s\n", g_health->check_now().to_json().c_str());
}

/// The `metrics` command: one consistent snapshot of every registered
/// source, in Prometheus text exposition format (stable, greppable).
void print_metrics() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  if (snap.samples.empty()) {
    std::printf("no metrics registered (cluster mode registers the full "
                "pipeline; the scheduler always reports under sched_*)\n");
    return;
  }
  std::fputs(snap.to_prometheus().c_str(), stdout);
}

struct Session {
  std::unique_ptr<CPLDS> ds;
  std::unique_ptr<DynamicGraph> mirror;  // for the exact oracle

  void reset(vertex_t n, std::vector<Edge> edges) {
    ds = std::make_unique<CPLDS>(n, LDSParams::create(n));
    mirror = std::make_unique<DynamicGraph>(n);
    auto applied = ds->insert_batch(edges);
    mirror->insert_batch(applied);
    std::printf("graph ready: n=%u m=%zu\n", n, ds->num_edges());
  }

  /// Warm restart: adopt a CPLDS restored from a snapshot, rebuilding the
  /// exact-oracle mirror from its adjacency.
  void adopt(std::unique_ptr<CPLDS> restored) {
    ds = std::move(restored);
    mirror = std::make_unique<DynamicGraph>(ds->num_vertices());
    for (vertex_t v = 0; v < ds->num_vertices(); ++v) {
      for (vertex_t w : ds->plds().neighbors(v)) {
        if (w > v) mirror->insert_edge({v, w});
      }
    }
    std::printf("snapshot loaded: n=%u m=%zu\n", ds->num_vertices(),
                ds->num_edges());
  }

  bool ready() const { return ds != nullptr; }
};

/// --write-shards/--replicas mode: the same commands, served by a sharded
/// ShardGroup (partition primaries x replica sets) behind the shard-aware
/// router instead of a bare CPLDS. Heap-held (Router::Session is not
/// movable).
struct Cluster {
  std::size_t partitions;
  std::size_t num_replicas;
  std::unique_ptr<cluster::ShardGroup> group;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<cluster::Router::Session> session;
  std::unique_ptr<DynamicGraph> mirror;  // for the exact oracle

  Cluster(std::size_t n_partitions, std::size_t n_replicas)
      : partitions(n_partitions), num_replicas(n_replicas) {}

  ~Cluster() { teardown(); }

  void teardown() {
    // The group tears its components down in dependency order (replicas,
    // shippers, primaries); the router only holds references into it.
    router.reset();
    session.reset();
    if (group) group->shutdown();
    group.reset();
  }

  void reset(vertex_t n, const std::vector<Edge>& edges) {
    teardown();
    cluster::ClusterConfig cfg;
    cfg.partitions = partitions;
    cfg.replicas = num_replicas;
    // Every replica subscribes at group construction, before any write,
    // and no one joins later — so the retention ring can stay small
    // instead of holding every batch ever committed for the session's
    // lifetime.
    cfg.retain_records = 1024;
    cfg.base.num_vertices = n;
    // Register the whole pipeline with the process registry so `metrics`
    // and --metrics-out see it (partition p under "p<p>.", router under
    // "router.").
    cfg.base.metrics = &obs::MetricsRegistry::instance();
    // ... and every pipeline thread with the watchdog, so `health`,
    // /healthz, and the router's stalled-replica gate see the real state.
    cfg.base.health = g_health;
    group = std::make_unique<cluster::ShardGroup>(cfg);
    router = std::make_unique<cluster::Router>(*group);
    router->register_metrics(&obs::MetricsRegistry::instance());
    session = router->make_session();
    mirror = std::make_unique<DynamicGraph>(n);
    for (const Edge& e : edges) {
      group->submit({e, UpdateKind::kInsert});
      mirror->insert_edge(e);
    }
    group->quiesce();
    std::printf(
        "cluster ready: n=%u m=%zu write_shards=%zu replicas=%zu/partition\n",
        n, group->num_edges(), partitions, num_replicas);
  }

  bool ready() const { return group != nullptr; }
};

const char* backend_name(int backend, std::string& scratch) {
  if (backend == cluster::Router::kPrimary) return "primary";
  scratch = "replica " + std::to_string(backend);
  return scratch.c_str();
}

/// Shared by both modes: parses the rest of a "gen ..."/"load ..." line
/// into a graph source. Prints its own diagnostics; returns nothing on a
/// malformed line (the caller just moves on, matching the other commands'
/// silent-on-parse-failure behavior).
std::optional<std::pair<vertex_t, std::vector<Edge>>> parse_graph_source(
    const std::string& cmd, std::istringstream& in) {
  if (cmd == "gen") {
    std::string family;
    in >> family;
    if (family == "ba") {
      vertex_t n;
      std::size_t epv;
      std::uint64_t seed;
      if (in >> n >> epv >> seed) {
        return {{n, gen::barabasi_albert(n, epv, seed)}};
      }
    } else if (family == "er") {
      vertex_t n;
      std::size_t m;
      std::uint64_t seed;
      if (in >> n >> m >> seed) return {{n, gen::erdos_renyi(n, m, seed)}};
    } else if (family == "grid") {
      vertex_t side;
      if (in >> side) {
        return {{static_cast<vertex_t>(side * side),
                 gen::grid_2d(side, side, true)}};
      }
    } else {
      std::printf("unknown family '%s' (ba|er|grid)\n", family.c_str());
    }
    return std::nullopt;
  }
  std::string path;  // cmd == "load"
  if (in >> path) {
    try {
      auto file = read_edge_list(path);
      return {{file.num_vertices, std::move(file.edges)}};
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return std::nullopt;
}

bool handle_cluster(Cluster& c, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;
  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "gen" || cmd == "load") {
    if (auto graph = parse_graph_source(cmd, in)) {
      c.reset(graph->first, graph->second);
    }
    return true;
  }
  if (!c.ready()) {
    std::printf("no graph loaded; use gen/load first\n");
    return true;
  }

  if (cmd == "insert" || cmd == "delete") {
    vertex_t u, v;
    if (in >> u >> v) {
      const Update op{{u, v},
                      cmd == "insert" ? UpdateKind::kInsert
                                      : UpdateKind::kDelete};
      try {
        const std::size_t p = c.group->partitioner().partition_of(op);
        const std::uint64_t lsn = c.router->write(*c.session, op);
        if (op.kind == UpdateKind::kInsert) {
          c.mirror->insert_edge(op.edge);
        } else {
          c.mirror->delete_edge(op.edge);
        }
        std::printf("%s (%u,%u): partition %zu acked at lsn %llu; m=%zu\n",
                    cmd.c_str(), u, v, p,
                    static_cast<unsigned long long>(lsn),
                    c.group->num_edges());
      } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
      }
    }
    return true;
  }
  if (cmd == "batch") {
    std::string kind;
    in >> kind;
    const UpdateKind k =
        kind == "delete" ? UpdateKind::kDelete : UpdateKind::kInsert;
    vertex_t u, v;
    std::size_t count = 0;
    std::uint64_t lsn = 0;
    try {
      while (in >> u >> v) {
        lsn = c.router->write(*c.session, {{u, v}, k});
        if (k == UpdateKind::kInsert) {
          c.mirror->insert_edge({u, v});
        } else {
          c.mirror->delete_edge({u, v});
        }
        ++count;
      }
    } catch (const std::exception& e) {
      std::printf("error after %zu writes: %s\n", count, e.what());
      return true;
    }
    std::printf("batch %s: %zu routed writes, last lsn %llu; m=%zu\n",
                kind.c_str(), count, static_cast<unsigned long long>(lsn),
                c.group->num_edges());
    return true;
  }
  if (cmd == "delv") {
    std::printf("delv is not available with --replicas (edge-op ingest)\n");
    return true;
  }
  if (cmd == "query") {
    vertex_t v;
    if (in >> v && v < c.group->num_vertices()) {
      const auto read = c.router->read_coreness(*c.session, v);
      std::printf("coreness_estimate(%u) = %.3f  (fan-out across %zu "
                  "partition%s)\n",
                  v, read.value, read.parts.size(),
                  read.parts.size() == 1 ? "" : "s");
      std::string scratch;
      for (std::size_t p = 0; p < read.parts.size(); ++p) {
        std::printf(
            "  partition %zu: %.3f served by %s at lsn %llu (session lsn "
            "%llu)\n",
            p, read.parts[p].value,
            backend_name(read.parts[p].backend, scratch),
            static_cast<unsigned long long>(read.parts[p].served_lsn),
            static_cast<unsigned long long>(c.session->last_lsn(p)));
      }
    }
    return true;
  }
  if (cmd == "exact") {
    vertex_t v;
    if (in >> v && v < c.group->num_vertices()) {
      const auto coreness = exact_coreness(*c.mirror);
      const auto read = c.router->read_coreness(*c.session, v);
      std::printf("exact_coreness(%u) = %u  (estimate %.3f%s)\n", v,
                  coreness[v], read.value,
                  read.parts.size() > 1 ? ", cross-partition aggregate" : "");
    }
    return true;
  }
  if (cmd == "stats") {
    const auto rstats = c.router->stats();
    std::printf(
        "n=%u m=%zu write_shards=%zu writes=%llu reads=%llu "
        "primary_serves=%llu replica_serves=%llu\n",
        c.group->num_vertices(), c.group->num_edges(),
        c.group->num_partitions(),
        static_cast<unsigned long long>(rstats.writes),
        static_cast<unsigned long long>(rstats.reads),
        static_cast<unsigned long long>(rstats.primary_reads),
        static_cast<unsigned long long>(rstats.replica_reads));
    for (std::size_t p = 0; p < c.group->num_partitions(); ++p) {
      std::printf(
          "  partition %zu: m=%zu commit_lsn=%llu session_lsn=%llu "
          "writes=%llu\n",
          p, c.group->primary(p).num_edges(),
          static_cast<unsigned long long>(c.group->primary(p).commit_lsn()),
          static_cast<unsigned long long>(c.session->last_lsn(p)),
          static_cast<unsigned long long>(rstats.partitions[p].writes));
      for (std::size_t r = 0; r < c.group->num_replicas(); ++r) {
        std::printf(
            "    replica %zu: applied_lsn=%llu reads=%llu\n", r,
            static_cast<unsigned long long>(
                c.group->replica(p, r).applied_lsn()),
            static_cast<unsigned long long>(
                rstats.partitions[p].replica_reads[r]));
      }
    }
    return true;
  }
  if (cmd == "metrics") {
    print_metrics();
    return true;
  }
  if (cmd == "health") {
    print_health();
    return true;
  }
  if (cmd == "stall") {
    std::uint64_t ms = 0;
    if (in >> ms && ms > 0) {
      // Arm the one-shot injection, then poke partition 0's pipeline with
      // a duplicate insert (a structural no-op) so the apply thread runs a
      // cycle, beats, and busy-sleeps — exactly what a wedged apply looks
      // like to the watchdog. Fire-and-forget: the ack rides out the stall.
      c.group->primary(0).debug_inject_apply_stall(ms);
      c.group->primary(0).submit_insert(0, 1);
      c.mirror->insert_edge({0, 1});
      std::printf("stall armed: partition 0 apply thread sleeps %llu ms on "
                  "its next cycle (watch `health` / GET /healthz)\n",
                  static_cast<unsigned long long>(ms));
    } else {
      std::printf("usage: stall <ms>\n");
    }
    return true;
  }
  std::printf("unknown command '%s'\n", cmd.c_str());
  return true;
}

bool handle(Session& s, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;
  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "gen" || cmd == "load") {
    if (auto graph = parse_graph_source(cmd, in)) {
      s.reset(graph->first, std::move(graph->second));
    }
    return true;
  }
  if (!s.ready()) {
    std::printf("no graph loaded; use gen/load first\n");
    return true;
  }

  if (cmd == "insert" || cmd == "delete") {
    vertex_t u, v;
    if (in >> u >> v) {
      UpdateBatch b{cmd == "insert" ? UpdateKind::kInsert
                                    : UpdateKind::kDelete,
                    {{u, v}}};
      auto applied = s.ds->apply(b);
      if (b.kind == UpdateKind::kInsert) {
        s.mirror->insert_batch(applied);
      } else {
        s.mirror->delete_batch(applied);
      }
      std::printf("%s (%u,%u): %s; m=%zu\n", cmd.c_str(), u, v,
                  applied.empty() ? "no-op" : "ok", s.ds->num_edges());
    }
    return true;
  }
  if (cmd == "batch") {
    std::string kind;
    in >> kind;
    std::vector<Edge> edges;
    vertex_t u, v;
    while (in >> u >> v) edges.push_back({u, v});
    UpdateBatch b{kind == "delete" ? UpdateKind::kDelete
                                   : UpdateKind::kInsert,
                  std::move(edges)};
    auto applied = s.ds->apply(b);
    if (b.kind == UpdateKind::kInsert) {
      s.mirror->insert_batch(applied);
    } else {
      s.mirror->delete_batch(applied);
    }
    std::printf("batch %s: %zu applied; m=%zu\n", kind.c_str(),
                applied.size(), s.ds->num_edges());
    return true;
  }
  if (cmd == "delv") {
    std::vector<vertex_t> victims;
    vertex_t v;
    while (in >> v) victims.push_back(v);
    auto removed = s.ds->delete_vertices(victims);
    s.mirror->delete_batch(removed);
    std::printf("deleted %zu vertices (%zu incident edges); m=%zu\n",
                victims.size(), removed.size(), s.ds->num_edges());
    return true;
  }
  if (cmd == "query") {
    vertex_t v;
    if (in >> v && v < s.ds->num_vertices()) {
      std::printf("coreness_estimate(%u) = %.3f  (level %d)\n", v,
                  s.ds->read_coreness(v), s.ds->read_level(v));
    }
    return true;
  }
  if (cmd == "exact") {
    vertex_t v;
    if (in >> v && v < s.ds->num_vertices()) {
      const auto coreness = exact_coreness(*s.mirror);
      std::printf("exact_coreness(%u) = %u  (estimate %.3f)\n", v,
                  coreness[v], s.ds->read_coreness(v));
    }
    return true;
  }
  if (cmd == "stats") {
    double max_est = 0;
    for (vertex_t w = 0; w < s.ds->num_vertices(); ++w) {
      max_est = std::max(max_est, s.ds->read_coreness_nonsync(w));
    }
    std::printf("n=%u m=%zu batches=%llu max_estimate=%.3f approx_bound=%.2f\n",
                s.ds->num_vertices(), s.ds->num_edges(),
                static_cast<unsigned long long>(s.ds->batch_number()),
                max_est, s.ds->params().approx_factor());
    return true;
  }
  if (cmd == "metrics") {
    print_metrics();
    return true;
  }
  if (cmd == "health") {
    print_health();
    return true;
  }
  if (cmd == "stall") {
    std::printf("stall requires cluster mode (--write-shards/--replicas)\n");
    return true;
  }
  std::printf("unknown command '%s'\n", cmd.c_str());
  return true;
}

int run_demo(Session& s) {
  const char* script[] = {
      "gen ba 5000 4 7",   "query 17",        "insert 17 42",
      "query 17",          "exact 17",        "batch insert 1 2 2 3 3 1",
      "delv 42",           "query 42",        "stats",
  };
  for (const char* line : script) {
    std::printf("> %s\n", line);
    handle(s, line);
  }
  return 0;
}

int run_cluster_demo(Cluster& c) {
  const char* script[] = {
      "gen ba 2000 4 7", "query 17",  "insert 17 42", "query 17",
      "exact 17",        "stats",     "delete 17 42", "stats",
  };
  for (const char* line : script) {
    std::printf("> %s\n", line);
    handle_cluster(c, line);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_load;
  std::string snapshot_save;
  std::string metrics_out;
  std::uint64_t sample_ms = 1000;
  int http_port = -1;  // -1 = no exporter; 0 = ephemeral
  bool interactive = false;
  std::size_t replicas = 0;
  std::size_t write_shards = 1;
  bool cluster_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshot-load" && i + 1 < argc) {
      snapshot_load = argv[++i];
    } else if (arg == "--snapshot-save" && i + 1 < argc) {
      snapshot_save = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--sample-ms" && i + 1 < argc) {
      sample_ms = std::strtoull(argv[++i], nullptr, 10);
      if (sample_ms == 0) sample_ms = 1000;
    } else if (arg == "--http-port" && i + 1 < argc) {
      http_port = static_cast<int>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--replicas" && i + 1 < argc) {
      replicas = std::strtoul(argv[++i], nullptr, 10);
      cluster_mode = true;
    } else if (arg == "--write-shards" && i + 1 < argc) {
      write_shards = std::strtoul(argv[++i], nullptr, 10);
      cluster_mode = true;
    } else if (arg == "-") {
      interactive = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--snapshot-load <path>] "
                   "[--snapshot-save <path>] [--replicas <r>] "
                   "[--write-shards <p>] [--metrics-out <path>] "
                   "[--sample-ms <n>] [--http-port <n>] [-]\n",
                   argv[0]);
      return 2;
    }
  }

  // Health plane: the stall watchdog always runs (cluster mode registers
  // its pipeline threads below); the HTTP exporter is opt-in. Both outlive
  // every session object created later in main, so teardown unregisters
  // cleanly before the monitor dies.
  obs::HealthMonitor health_monitor;
  g_health = &health_monitor;
  std::unique_ptr<obs::HttpExporter> exporter;
  if (http_port >= 0) {
    obs::HttpExporterOptions hopts;
    hopts.port = static_cast<std::uint16_t>(http_port);
    hopts.health = &health_monitor;
    try {
      exporter = std::make_unique<obs::HttpExporter>(hopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error starting --http-port exporter: %s\n",
                   e.what());
      return 1;
    }
    std::printf("http exporter on 127.0.0.1:%u "
                "(/metrics /healthz /vars /events)\n",
                static_cast<unsigned>(exporter->port()));
  }

  // Flight recorder: stream registry snapshots for the whole session;
  // SIGUSR1 dumps an off-schedule sample (handy on a long-running
  // interactive session). Destroyed on exit — the final sample captures
  // the end state.
  std::unique_ptr<obs::StatsSampler> sampler;
  if (!metrics_out.empty()) {
    obs::SamplerOptions sopts;
    sopts.path = metrics_out;
    sopts.interval_ms = sample_ms;
    try {
      sampler = std::make_unique<obs::StatsSampler>(std::move(sopts));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error opening --metrics-out: %s\n", e.what());
      return 1;
    }
    g_sampler.store(sampler.get(), std::memory_order_relaxed);
    std::signal(SIGUSR1, on_sigusr1);
  }
  // Un-publish (and quiet the signal) before the sampler dies, whatever
  // return path runs: declared after `sampler`, so this destructor runs
  // first.
  struct SamplerGuard {
    ~SamplerGuard() {
      if (g_sampler.exchange(nullptr, std::memory_order_relaxed) != nullptr) {
        std::signal(SIGUSR1, SIG_IGN);
      }
    }
  } sampler_guard;

  if (cluster_mode) {
    if (!snapshot_load.empty() || !snapshot_save.empty()) {
      std::fprintf(stderr,
                   "--replicas/--write-shards and "
                   "--snapshot-load/--snapshot-save are mutually "
                   "exclusive\n");
      return 2;
    }
    if (write_shards == 0) {
      std::fprintf(stderr, "--write-shards must be >= 1\n");
      return 2;
    }
    Cluster c(write_shards, replicas);
    if (!interactive) return run_cluster_demo(c);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!handle_cluster(c, line)) break;
    }
    return 0;
  }

  Session s;
  if (!snapshot_load.empty()) {
    try {
      s.adopt(load_snapshot(snapshot_load));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading snapshot: %s\n", e.what());
      return 1;
    }
  }

  if (argc < 2) {
    run_demo(s);
  } else if (interactive || !snapshot_load.empty() || !snapshot_save.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!handle(s, line)) break;
    }
  }

  if (!snapshot_save.empty()) {
    if (!s.ready()) {
      std::fprintf(stderr, "no graph to save\n");
      return 1;
    }
    try {
      save_snapshot(*s.ds, snapshot_save);
      std::printf("snapshot saved: %s (n=%u m=%zu)\n", snapshot_save.c_str(),
                  s.ds->num_vertices(), s.ds->num_edges());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error saving snapshot: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
