// Interactive CLI over the CPLDS: load or generate a graph, apply edge and
// vertex updates in batches, and query coreness estimates (with the exact
// oracle available for comparison). Reads commands from stdin; run with no
// arguments for a demo script.
//
//   $ ./example_dynamic_kcore_cli            # runs the built-in demo
//   $ echo "gen ba 1000 4 7
//           query 12
//           insert 12 13
//           exact 12
//           stats
//           quit" | ./example_dynamic_kcore_cli -
//
// Warm restart end to end (the serving layer's snapshot path):
//   --snapshot-load <path>   restore the graph from a snapshot at startup
//   --snapshot-save <path>   save a snapshot of the final graph on exit
//
//   $ echo "gen ba 1000 4 7
//           quit" | ./example_dynamic_kcore_cli --snapshot-save g.snap -
//   $ echo "stats
//           quit" | ./example_dynamic_kcore_cli --snapshot-load g.snap -
//
// Commands:
//   gen ba <n> <edges_per_vertex> <seed>   generate Barabasi-Albert
//   gen er <n> <m> <seed>                  generate Erdos-Renyi
//   gen grid <side>                        generate triangulated grid
//   load <path>                            load an edge-list file
//   insert <u> <v> | delete <u> <v>        single-edge batch
//   batch insert|delete <u1> <v1> <u2> <v2> ...   multi-edge batch
//   delv <v> [...]                         delete vertices
//   query <v>                              approximate coreness (CPLDS read)
//   exact <v>                              exact coreness (full peel)
//   stats                                  n, m, batch number, max estimate
//   quit
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/cplds.hpp"
#include "core/snapshot.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "kcore/peel.hpp"

namespace {

using namespace cpkcore;

struct Session {
  std::unique_ptr<CPLDS> ds;
  std::unique_ptr<DynamicGraph> mirror;  // for the exact oracle

  void reset(vertex_t n, std::vector<Edge> edges) {
    ds = std::make_unique<CPLDS>(n, LDSParams::create(n));
    mirror = std::make_unique<DynamicGraph>(n);
    auto applied = ds->insert_batch(edges);
    mirror->insert_batch(applied);
    std::printf("graph ready: n=%u m=%zu\n", n, ds->num_edges());
  }

  /// Warm restart: adopt a CPLDS restored from a snapshot, rebuilding the
  /// exact-oracle mirror from its adjacency.
  void adopt(std::unique_ptr<CPLDS> restored) {
    ds = std::move(restored);
    mirror = std::make_unique<DynamicGraph>(ds->num_vertices());
    for (vertex_t v = 0; v < ds->num_vertices(); ++v) {
      for (vertex_t w : ds->plds().neighbors(v)) {
        if (w > v) mirror->insert_edge({v, w});
      }
    }
    std::printf("snapshot loaded: n=%u m=%zu\n", ds->num_vertices(),
                ds->num_edges());
  }

  bool ready() const { return ds != nullptr; }
};

bool handle(Session& s, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;
  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "gen") {
    std::string family;
    in >> family;
    if (family == "ba") {
      vertex_t n;
      std::size_t epv;
      std::uint64_t seed;
      if (in >> n >> epv >> seed) {
        s.reset(n, gen::barabasi_albert(n, epv, seed));
      }
    } else if (family == "er") {
      vertex_t n;
      std::size_t m;
      std::uint64_t seed;
      if (in >> n >> m >> seed) s.reset(n, gen::erdos_renyi(n, m, seed));
    } else if (family == "grid") {
      vertex_t side;
      if (in >> side) s.reset(side * side, gen::grid_2d(side, side, true));
    } else {
      std::printf("unknown family '%s' (ba|er|grid)\n", family.c_str());
    }
    return true;
  }
  if (cmd == "load") {
    std::string path;
    if (in >> path) {
      try {
        auto file = read_edge_list(path);
        s.reset(file.num_vertices, std::move(file.edges));
      } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
      }
    }
    return true;
  }
  if (!s.ready()) {
    std::printf("no graph loaded; use gen/load first\n");
    return true;
  }

  if (cmd == "insert" || cmd == "delete") {
    vertex_t u, v;
    if (in >> u >> v) {
      UpdateBatch b{cmd == "insert" ? UpdateKind::kInsert
                                    : UpdateKind::kDelete,
                    {{u, v}}};
      auto applied = s.ds->apply(b);
      if (b.kind == UpdateKind::kInsert) {
        s.mirror->insert_batch(applied);
      } else {
        s.mirror->delete_batch(applied);
      }
      std::printf("%s (%u,%u): %s; m=%zu\n", cmd.c_str(), u, v,
                  applied.empty() ? "no-op" : "ok", s.ds->num_edges());
    }
    return true;
  }
  if (cmd == "batch") {
    std::string kind;
    in >> kind;
    std::vector<Edge> edges;
    vertex_t u, v;
    while (in >> u >> v) edges.push_back({u, v});
    UpdateBatch b{kind == "delete" ? UpdateKind::kDelete
                                   : UpdateKind::kInsert,
                  std::move(edges)};
    auto applied = s.ds->apply(b);
    if (b.kind == UpdateKind::kInsert) {
      s.mirror->insert_batch(applied);
    } else {
      s.mirror->delete_batch(applied);
    }
    std::printf("batch %s: %zu applied; m=%zu\n", kind.c_str(),
                applied.size(), s.ds->num_edges());
    return true;
  }
  if (cmd == "delv") {
    std::vector<vertex_t> victims;
    vertex_t v;
    while (in >> v) victims.push_back(v);
    auto removed = s.ds->delete_vertices(victims);
    s.mirror->delete_batch(removed);
    std::printf("deleted %zu vertices (%zu incident edges); m=%zu\n",
                victims.size(), removed.size(), s.ds->num_edges());
    return true;
  }
  if (cmd == "query") {
    vertex_t v;
    if (in >> v && v < s.ds->num_vertices()) {
      std::printf("coreness_estimate(%u) = %.3f  (level %d)\n", v,
                  s.ds->read_coreness(v), s.ds->read_level(v));
    }
    return true;
  }
  if (cmd == "exact") {
    vertex_t v;
    if (in >> v && v < s.ds->num_vertices()) {
      const auto coreness = exact_coreness(*s.mirror);
      std::printf("exact_coreness(%u) = %u  (estimate %.3f)\n", v,
                  coreness[v], s.ds->read_coreness(v));
    }
    return true;
  }
  if (cmd == "stats") {
    double max_est = 0;
    for (vertex_t w = 0; w < s.ds->num_vertices(); ++w) {
      max_est = std::max(max_est, s.ds->read_coreness_nonsync(w));
    }
    std::printf("n=%u m=%zu batches=%llu max_estimate=%.3f approx_bound=%.2f\n",
                s.ds->num_vertices(), s.ds->num_edges(),
                static_cast<unsigned long long>(s.ds->batch_number()),
                max_est, s.ds->params().approx_factor());
    return true;
  }
  std::printf("unknown command '%s'\n", cmd.c_str());
  return true;
}

int run_demo(Session& s) {
  const char* script[] = {
      "gen ba 5000 4 7",   "query 17",        "insert 17 42",
      "query 17",          "exact 17",        "batch insert 1 2 2 3 3 1",
      "delv 42",           "query 42",        "stats",
  };
  for (const char* line : script) {
    std::printf("> %s\n", line);
    handle(s, line);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_load;
  std::string snapshot_save;
  bool interactive = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshot-load" && i + 1 < argc) {
      snapshot_load = argv[++i];
    } else if (arg == "--snapshot-save" && i + 1 < argc) {
      snapshot_save = argv[++i];
    } else if (arg == "-") {
      interactive = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--snapshot-load <path>] "
                   "[--snapshot-save <path>] [-]\n",
                   argv[0]);
      return 2;
    }
  }

  Session s;
  if (!snapshot_load.empty()) {
    try {
      s.adopt(load_snapshot(snapshot_load));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading snapshot: %s\n", e.what());
      return 1;
    }
  }

  if (argc < 2) {
    run_demo(s);
  } else if (interactive || !snapshot_load.empty() || !snapshot_save.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!handle(s, line)) break;
    }
  }

  if (!snapshot_save.empty()) {
    if (!s.ready()) {
      std::fprintf(stderr, "no graph to save\n");
      return 1;
    }
    try {
      save_snapshot(*s.ds, snapshot_save);
      std::printf("snapshot saved: %s (n=%u m=%zu)\n", snapshot_save.c_str(),
                  s.ds->num_vertices(), s.ds->num_edges());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error saving snapshot: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
