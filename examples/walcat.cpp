// walcat — dump a write-ahead log human-readably.
//
// The binary v4 format trades the text log's `cat`-ability for speed; this
// tool gives the debuggability back. It prints the header (format, vertex
// count, base LSN) and then one line per committed record, for either
// format, and reports where the committed prefix ends (a torn or corrupt
// tail is diagnosed, not fatal — exactly what a scan after a crash sees).
//
//   walcat [--edges] <wal-file>
//
//   --edges   also print every edge of every record (default: a summary
//             line per record)
//
// Exit status: 0 on a clean dump, 1 on usage/IO/header errors.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "service/wal.hpp"

namespace {

const char* format_name(cpkcore::service::WalFormat format) {
  return format == cpkcore::service::WalFormat::kBinaryV4 ? "binary-v4"
                                                          : "text-v3";
}

const char* kind_name(cpkcore::UpdateKind kind) {
  return kind == cpkcore::UpdateKind::kInsert ? "insert" : "delete";
}

}  // namespace

int main(int argc, char** argv) {
  bool print_edges = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--edges") == 0) {
      print_edges = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: walcat [--edges] <wal-file>\n");
    return 1;
  }

  using namespace cpkcore;
  try {
    const service::WalHeaderInfo header = service::read_wal_header(path);
    std::printf("# %s  format=%s  num_vertices=%u  base_lsn=%llu\n", path,
                format_name(header.format), header.num_vertices,
                static_cast<unsigned long long>(header.base_lsn));
    std::size_t total_edges = 0;
    const service::WalScanInfo info = service::scan_wal(
        path, header.num_vertices,
        [&](std::uint64_t lsn, const UpdateBatch& batch) {
          std::printf("lsn=%llu  %s  edges=%zu\n",
                      static_cast<unsigned long long>(lsn),
                      kind_name(batch.kind), batch.edges.size());
          total_edges += batch.edges.size();
          if (print_edges) {
            for (const Edge& e : batch.edges) {
              std::printf("  %u %u\n", e.u, e.v);
            }
          }
        });
    std::printf("# %zu committed record(s), %zu edge(s), last_lsn=%llu\n",
                info.records, total_edges,
                static_cast<unsigned long long>(info.last_lsn));
    if (info.last_lsn == info.base_lsn && info.records == 0) {
      std::printf("# log is empty (compacted or fresh)\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "walcat: %s\n", e.what());
    return 1;
  }
  return 0;
}
