// walcat — dump or verify a write-ahead log human-readably.
//
// The binary v4 format trades the text log's `cat`-ability for speed; this
// tool gives the debuggability back. It prints the header (format, vertex
// count, base LSN) and then one line per committed record, for either
// format, and reports where the committed prefix ends (a torn or corrupt
// tail is diagnosed, not fatal — exactly what a scan after a crash sees).
// For a v4 log each record line carries its byte offset in the file and
// its CRC-32 trailer, so an on-disk frame can be located with dd and
// cross-checked against a shipped copy without re-hashing.
//
//   walcat [--edges] [--verify] <wal-file>
//
//   --edges   also print every edge of every record (default: a summary
//             line per record)
//   --verify  scan silently and check that the committed prefix reaches
//             the end of the file — the post-crash / post-kill integrity
//             check. Exits 2 when trailing bytes exist past the committed
//             prefix (a torn or corrupt tail); a v3 text log may trail
//             whitespace (a final newline), which is accepted.
//
// Exit status: 0 on a clean dump/verify, 1 on usage/IO/header errors,
// 2 (--verify) on a torn or corrupt tail.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/wal.hpp"

namespace {

const char* format_name(cpkcore::service::WalFormat format) {
  return format == cpkcore::service::WalFormat::kBinaryV4 ? "binary-v4"
                                                          : "text-v3";
}

const char* kind_name(cpkcore::UpdateKind kind) {
  return kind == cpkcore::UpdateKind::kInsert ? "insert" : "delete";
}

/// A v3 text log legitimately ends with a newline past the last committed
/// record; only non-whitespace past the committed prefix is damage.
bool tail_is_whitespace(const std::string& path, std::uint64_t from) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(static_cast<std::streamoff>(from));
  char c = 0;
  while (in.get(c)) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

int verify(const std::string& path) {
  using namespace cpkcore;
  const service::WalHeaderInfo header = service::read_wal_header(path);
  const service::WalScanInfo info = service::scan_wal_frames(
      path, header.num_vertices, [](const service::WalFramePtr&) {});
  const std::uint64_t file_size = std::filesystem::file_size(path);
  const bool clean =
      file_size <= info.committed_bytes ||
      (info.format == service::WalFormat::kTextV3 &&
       tail_is_whitespace(path, info.committed_bytes));
  if (!clean) {
    std::fprintf(stderr,
                 "walcat: %s: torn or corrupt tail — committed prefix ends "
                 "at byte %llu of %llu (%llu trailing byte(s), last good "
                 "lsn=%llu)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(info.committed_bytes),
                 static_cast<unsigned long long>(file_size),
                 static_cast<unsigned long long>(file_size -
                                                 info.committed_bytes),
                 static_cast<unsigned long long>(info.last_lsn));
    return 2;
  }
  std::printf("# %s  ok  format=%s  %zu record(s)  last_lsn=%llu  "
              "committed_bytes=%llu\n",
              path.c_str(), format_name(info.format), info.records,
              static_cast<unsigned long long>(info.last_lsn),
              static_cast<unsigned long long>(info.committed_bytes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool print_edges = false;
  bool verify_only = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--edges") == 0) {
      print_edges = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify_only = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: walcat [--edges] [--verify] <wal-file>\n");
    return 1;
  }

  using namespace cpkcore;
  try {
    if (verify_only) return verify(path);

    const service::WalHeaderInfo header = service::read_wal_header(path);
    std::printf("# %s  format=%s  num_vertices=%u  base_lsn=%llu\n", path,
                format_name(header.format), header.num_vertices,
                static_cast<unsigned long long>(header.base_lsn));
    const bool v4 = header.format == service::WalFormat::kBinaryV4;
    std::size_t total_edges = 0;
    // v4 frames are lifted verbatim off disk, so the running offset below
    // is each frame's true file position (starting right after the
    // header); a v3 record's frame is a re-encode, so no offset is printed
    // for text logs.
    std::uint64_t offset = service::kWalHeaderV4Bytes;
    const service::WalScanInfo info = service::scan_wal_frames(
        path, header.num_vertices,
        [&](const service::WalFramePtr& frame) {
          if (v4) {
            std::printf("off=%llu  lsn=%llu  %s  edges=%zu  crc=%08x\n",
                        static_cast<unsigned long long>(offset),
                        static_cast<unsigned long long>(frame->lsn()),
                        kind_name(frame->kind()), frame->edge_count(),
                        frame->crc());
            offset += frame->bytes().size();
          } else {
            std::printf("lsn=%llu  %s  edges=%zu\n",
                        static_cast<unsigned long long>(frame->lsn()),
                        kind_name(frame->kind()), frame->edge_count());
          }
          total_edges += frame->edge_count();
          if (print_edges) {
            const UpdateBatch batch = frame->decode_batch();
            for (const Edge& e : batch.edges) {
              std::printf("  %u %u\n", e.u, e.v);
            }
          }
        });
    std::printf("# %zu committed record(s), %zu edge(s), last_lsn=%llu, "
                "committed_bytes=%llu\n",
                info.records, total_edges,
                static_cast<unsigned long long>(info.last_lsn),
                static_cast<unsigned long long>(info.committed_bytes));
    if (info.last_lsn == info.base_lsn && info.records == 0) {
      std::printf("# log is empty (compacted or fresh)\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "walcat: %s\n", e.what());
    return 1;
  }
  return 0;
}
