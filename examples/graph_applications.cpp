// The paper's §9 related problems, driven live off the dynamic structure:
// maintain a CPLDS under update batches, and after each batch derive a low
// out-degree orientation, an O(alpha)-coloring, a maximal matching, and an
// approximate densest subgraph from the same level snapshot.
//
//   $ ./example_graph_applications
#include <cstdio>

#include "apps/coloring.hpp"
#include "apps/densest.hpp"
#include "apps/matching.hpp"
#include "apps/orientation.hpp"
#include "core/cplds.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace cpkcore;

  constexpr vertex_t kN = 8000;
  auto edges = gen::social(kN, 5, 8, 60, 0.9, 11);
  CPLDS ds(kN, LDSParams::create(kN));
  auto stream = insertion_stream(edges, edges.size() / 4 + 1, 13);

  std::printf("%-8s %-8s %-12s %-8s %-10s %-10s\n", "batch", "edges",
              "max outdeg", "colors", "matching", "densest");
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ds.apply(stream[i]);
    const auto& plds = ds.plds();

    auto orientation = apps::extract_orientation(plds);
    auto coloring = apps::level_order_coloring(plds);
    auto matching = apps::maximal_matching(plds, 3);
    auto densest = apps::approx_densest_subgraph(plds);

    std::printf("%-8zu %-8zu %-12zu %-8u %-10zu %-10.2f\n", i,
                ds.num_edges(), orientation.max_out_degree(),
                coloring.num_colors, matching.size(), densest.density);
  }
  std::printf(
      "\nAll four structures derive from the same level snapshot the\n"
      "k-core estimates come from; no extra graph traversal state needed.\n");
  return 0;
}
